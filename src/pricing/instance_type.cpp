#include "pricing/instance_type.hpp"

#include "common/assert.hpp"

namespace rimarket::pricing {

Fraction InstanceType::alpha() const {
  RIMARKET_EXPECTS(on_demand_hourly > Rate{0.0});
  return Fraction{reserved_hourly / on_demand_hourly};
}

double InstanceType::theta() const {
  RIMARKET_EXPECTS(upfront > Money{0.0});
  return on_demand_hourly.value() * static_cast<double>(term) / upfront.value();
}

Hours InstanceType::break_even_hours(Fraction decision_fraction, Fraction selling_discount) const {
  RIMARKET_EXPECTS(decision_fraction > Fraction{0.0});
  const double discount = alpha().value();
  RIMARKET_EXPECTS(discount < 1.0);
  return Hours{decision_fraction.value() * selling_discount.value() * upfront.value() /
               (on_demand_hourly.value() * (1.0 - discount))};
}

Money InstanceType::prorated_upfront(Hour elapsed) const {
  RIMARKET_EXPECTS(elapsed >= 0 && elapsed <= term);
  const double remaining_fraction =
      static_cast<double>(term - elapsed) / static_cast<double>(term);
  return Money{remaining_fraction * upfront.value()};
}

Money InstanceType::sale_income(Hour elapsed, Fraction selling_discount) const {
  return Money{selling_discount.value() * prorated_upfront(elapsed).value()};
}

bool InstanceType::valid() const {
  return !name.empty() && on_demand_hourly > Rate{0.0} && upfront > Money{0.0} &&
         reserved_hourly >= Rate{0.0} && reserved_hourly < on_demand_hourly && term > 0;
}

bool operator==(const InstanceType& lhs, const InstanceType& rhs) {
  return lhs.name == rhs.name && lhs.on_demand_hourly == rhs.on_demand_hourly &&
         lhs.upfront == rhs.upfront && lhs.reserved_hourly == rhs.reserved_hourly &&
         lhs.term == rhs.term;
}

}  // namespace rimarket::pricing
