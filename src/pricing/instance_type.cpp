#include "pricing/instance_type.hpp"

#include "common/assert.hpp"

namespace rimarket::pricing {

double InstanceType::alpha() const {
  RIMARKET_EXPECTS(on_demand_hourly > 0.0);
  return reserved_hourly / on_demand_hourly;
}

double InstanceType::theta() const {
  RIMARKET_EXPECTS(upfront > 0.0);
  return on_demand_hourly * static_cast<double>(term) / upfront;
}

double InstanceType::break_even_hours(double decision_fraction, double selling_discount) const {
  RIMARKET_EXPECTS(decision_fraction > 0.0 && decision_fraction <= 1.0);
  RIMARKET_EXPECTS(selling_discount >= 0.0 && selling_discount <= 1.0);
  const double discount = alpha();
  RIMARKET_EXPECTS(discount < 1.0);
  return decision_fraction * selling_discount * upfront / (on_demand_hourly * (1.0 - discount));
}

Dollars InstanceType::prorated_upfront(Hour elapsed) const {
  RIMARKET_EXPECTS(elapsed >= 0 && elapsed <= term);
  const double remaining_fraction =
      static_cast<double>(term - elapsed) / static_cast<double>(term);
  return remaining_fraction * upfront;
}

Dollars InstanceType::sale_income(Hour elapsed, double selling_discount) const {
  RIMARKET_EXPECTS(selling_discount >= 0.0 && selling_discount <= 1.0);
  return selling_discount * prorated_upfront(elapsed);
}

bool InstanceType::valid() const {
  return !name.empty() && on_demand_hourly > 0.0 && upfront > 0.0 && reserved_hourly >= 0.0 &&
         reserved_hourly < on_demand_hourly && term > 0;
}

bool operator==(const InstanceType& lhs, const InstanceType& rhs) {
  return lhs.name == rhs.name && lhs.on_demand_hourly == rhs.on_demand_hourly &&
         lhs.upfront == rhs.upfront && lhs.reserved_hourly == rhs.reserved_hourly &&
         lhs.term == rhs.term;
}

}  // namespace rimarket::pricing
