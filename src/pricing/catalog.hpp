// Pricing catalog of standard Linux US-East 1-year reserved instances.
//
// The builtin table is representative of Amazon EC2 pricing as of Jan 2018
// (the paper's snapshot).  The d2.xlarge row reproduces the paper's own
// numbers exactly: R = $1506, p = $0.69/h, alpha = 0.25, plus the full
// Table I payment-option quotes.  The remaining rows are period-accurate
// standard instances satisfying the two statistics the paper's theory relies
// on: theta = p*T/R in (1, 4] and alpha < 0.36.
//
// A catalog can also be loaded from CSV (`name,on_demand,upfront,reserved`)
// so users can refresh prices without recompiling.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pricing/instance_type.hpp"
#include "pricing/payment.hpp"

namespace rimarket::pricing {

/// A set of instance types addressable by name.
class PricingCatalog {
 public:
  PricingCatalog() = default;
  explicit PricingCatalog(std::vector<InstanceType> types);

  /// The builtin Jan-2018 standard Linux US-East 1-yr catalog.
  static const PricingCatalog& builtin();

  /// Representative 3-year partial-upfront contracts (the paper's footnote:
  /// "Amazon has 1-year and 3-year options").  Note theta = p*T/R exceeds 4
  /// for several 3-year contracts — the paper's theta in (1,4) statistic is
  /// specific to 1-year terms, so bounds over this catalog must use the
  /// instance's own theta (see theory::verify_bound).
  static const PricingCatalog& builtin_3year();

  /// Parses a CSV catalog (`name,on_demand,upfront,reserved[,term]`, header
  /// required).  Returns nullopt if any row is malformed or invalid.
  static std::optional<PricingCatalog> from_csv(std::string_view text);

  /// Lookup by API name; nullopt when absent.
  std::optional<InstanceType> find(std::string_view name) const;

  /// Lookup that aborts when absent (for configs already validated).
  const InstanceType& require(std::string_view name) const;

  std::span<const InstanceType> types() const { return types_; }
  std::size_t size() const { return types_.size(); }

  /// True when every entry is valid() and names are unique.
  bool valid() const;

  /// Extremes of alpha/theta across the catalog — the statistics quoted in
  /// the paper's proofs ("alpha < 0.36", "theta in (1,4)").
  struct Statistics {
    // Report-only extremes (stats boundary): plain double by design.
    double min_alpha = 0.0;  // lint-allow(units-in-api): report-only statistic
    double max_alpha = 0.0;  // lint-allow(units-in-api): report-only statistic
    double min_theta = 0.0;
    double max_theta = 0.0;
  };
  Statistics statistics() const;

 private:
  std::vector<InstanceType> types_;
};

/// The paper's Table I: d2.xlarge (US East (Ohio), Linux) quotes under all
/// four payment options, as of Jan 1, 2018.
std::vector<PaymentQuote> d2_xlarge_payment_quotes();

}  // namespace rimarket::pricing
