#include "pricing/payment.hpp"

#include "common/assert.hpp"

namespace rimarket::pricing {

std::string_view payment_option_name(PaymentOption option) {
  switch (option) {
    case PaymentOption::kNoUpfront: return "No Upfront";
    case PaymentOption::kPartialUpfront: return "Partial Upfront";
    case PaymentOption::kAllUpfront: return "All Upfront";
    case PaymentOption::kOnDemand: return "On-Demand";
  }
  return "?";
}

double months_in_term(Hour term) {
  RIMARKET_EXPECTS(term > 0);
  return 12.0 * static_cast<double>(term) / static_cast<double>(kHoursPerYear);
}

Rate PaymentQuote::effective_hourly() const {
  if (option == PaymentOption::kOnDemand) {
    return hourly;
  }
  RIMARKET_EXPECTS(term > 0);
  return Rate{(upfront.value() + monthly.value() * months_in_term(term)) /
              static_cast<double>(term)};
}

Money PaymentQuote::total_cost(Hour used_hours) const {
  RIMARKET_EXPECTS(used_hours >= 0);
  if (option == PaymentOption::kOnDemand) {
    return Money{hourly.value() * static_cast<double>(used_hours)};
  }
  return Money{upfront.value() + monthly.value() * months_in_term(term)};
}

}  // namespace rimarket::pricing
