#include "pricing/catalog.hpp"

#include <set>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"

namespace rimarket::pricing {

namespace {

// Standard Linux US-East 1-year partial-upfront reserved instances,
// representative of Jan-2018 EC2 pricing.  Columns: name, on-demand hourly
// p, upfront R, reserved hourly alpha*p.  d2.xlarge matches the paper
// exactly (alpha = 0.25, R = $1506, p = $0.69).
constexpr struct {
  const char* name;
  double on_demand;
  double upfront;
  double reserved;
} kBuiltinRows[] = {
    {"t2.nano", 0.0058, 16.0, 0.0020},
    {"t2.micro", 0.0116, 32.0, 0.0040},
    {"t2.small", 0.0230, 64.0, 0.0080},
    {"t2.medium", 0.0464, 128.0, 0.0161},
    {"t2.large", 0.0928, 257.0, 0.0322},
    {"t2.xlarge", 0.1856, 514.0, 0.0645},
    {"t2.2xlarge", 0.3712, 1028.0, 0.1290},
    {"m4.large", 0.1000, 342.0, 0.0335},
    {"m4.xlarge", 0.2000, 684.0, 0.0670},
    {"m4.2xlarge", 0.4000, 1368.0, 0.1340},
    {"m4.4xlarge", 0.8000, 2736.0, 0.2680},
    {"m4.10xlarge", 2.0000, 6840.0, 0.6700},
    {"c4.large", 0.1000, 367.0, 0.0345},
    {"c4.xlarge", 0.1990, 734.0, 0.0690},
    {"c4.2xlarge", 0.3980, 1468.0, 0.1380},
    {"c4.4xlarge", 0.7960, 2936.0, 0.2760},
    {"r4.large", 0.1330, 380.0, 0.0450},
    {"r4.xlarge", 0.2660, 760.0, 0.0900},
    {"r4.2xlarge", 0.5320, 1520.0, 0.1800},
    {"d2.xlarge", 0.6900, 1506.0, 0.1725},
    {"d2.2xlarge", 1.3800, 3012.0, 0.3450},
    {"d2.4xlarge", 2.7600, 6024.0, 0.6900},
    {"i3.large", 0.1560, 447.0, 0.0510},
    {"i3.xlarge", 0.3120, 894.0, 0.1020},
    {"x1.16xlarge", 6.6690, 19247.0, 2.2010},
};

// Representative 3-year partial-upfront contracts (same columns).  Upfronts
// are roughly twice the 1-year fee and hourly rates about two thirds, the
// structure of Amazon's 2018 3-yr pricing.
constexpr struct {
  const char* name;
  double on_demand;
  double upfront;
  double reserved;
} kBuiltin3YearRows[] = {
    {"t2.small", 0.0230, 135.0, 0.0052},
    {"t2.medium", 0.0464, 270.0, 0.0104},
    {"t2.large", 0.0928, 540.0, 0.0208},
    {"m4.large", 0.1000, 684.0, 0.0223},
    {"m4.xlarge", 0.2000, 1368.0, 0.0446},
    {"c4.large", 0.1000, 734.0, 0.0230},
    {"c4.xlarge", 0.1990, 1468.0, 0.0460},
    {"r4.large", 0.1330, 742.0, 0.0280},
    {"d2.xlarge", 0.6900, 3089.0, 0.1160},
    {"i3.large", 0.1560, 894.0, 0.0340},
};

}  // namespace

PricingCatalog::PricingCatalog(std::vector<InstanceType> types) : types_(std::move(types)) {}

const PricingCatalog& PricingCatalog::builtin() {
  static const PricingCatalog catalog = [] {
    std::vector<InstanceType> types;
    types.reserve(std::size(kBuiltinRows));
    for (const auto& row : kBuiltinRows) {
      types.push_back(InstanceType{row.name, Rate{row.on_demand}, Money{row.upfront},
                                   Rate{row.reserved}, kHoursPerYear});
    }
    PricingCatalog built(std::move(types));
    RIMARKET_CHECK_MSG(built.valid(), "builtin catalog must be internally consistent");
    return built;
  }();
  return catalog;
}

const PricingCatalog& PricingCatalog::builtin_3year() {
  static const PricingCatalog catalog = [] {
    std::vector<InstanceType> types;
    types.reserve(std::size(kBuiltin3YearRows));
    for (const auto& row : kBuiltin3YearRows) {
      types.push_back(InstanceType{row.name, Rate{row.on_demand}, Money{row.upfront},
                                   Rate{row.reserved}, 3 * kHoursPerYear});
    }
    PricingCatalog built(std::move(types));
    RIMARKET_CHECK_MSG(built.valid(), "builtin 3-year catalog must be internally consistent");
    return built;
  }();
  return catalog;
}

std::optional<PricingCatalog> PricingCatalog::from_csv(std::string_view text) {
  const common::CsvDocument doc = common::parse_csv(text, /*expect_header=*/true);
  if (doc.header.size() < 4) {
    return std::nullopt;
  }
  std::vector<InstanceType> types;
  types.reserve(doc.rows.size());
  for (const common::CsvRow& row : doc.rows) {
    if (row.size() < 4) {
      return std::nullopt;
    }
    InstanceType type;
    type.name = std::string(common::trim(row[0]));
    const auto on_demand = common::parse_double(row[1]);
    const auto upfront = common::parse_double(row[2]);
    const auto reserved = common::parse_double(row[3]);
    if (!on_demand || !upfront || !reserved) {
      return std::nullopt;
    }
    type.on_demand_hourly = Rate{*on_demand};
    type.upfront = Money{*upfront};
    type.reserved_hourly = Rate{*reserved};
    type.term = kHoursPerYear;
    if (row.size() >= 5) {
      const auto term = common::parse_int(row[4]);
      if (!term) {
        return std::nullopt;
      }
      type.term = *term;
    }
    if (!type.valid()) {
      return std::nullopt;
    }
    types.push_back(std::move(type));
  }
  PricingCatalog catalog(std::move(types));
  if (!catalog.valid()) {
    return std::nullopt;
  }
  return catalog;
}

std::optional<InstanceType> PricingCatalog::find(std::string_view name) const {
  for (const InstanceType& type : types_) {
    if (type.name == name) {
      return type;
    }
  }
  return std::nullopt;
}

const InstanceType& PricingCatalog::require(std::string_view name) const {
  for (const InstanceType& type : types_) {
    if (type.name == name) {
      return type;
    }
  }
  RIMARKET_CHECK_MSG(false, "instance type not in catalog");
  RIMARKET_UNREACHABLE("require");
}

bool PricingCatalog::valid() const {
  std::set<std::string_view> names;
  for (const InstanceType& type : types_) {
    if (!type.valid()) {
      return false;
    }
    if (!names.insert(type.name).second) {
      return false;
    }
  }
  return true;
}

PricingCatalog::Statistics PricingCatalog::statistics() const {
  RIMARKET_EXPECTS(!types_.empty());
  Statistics stats;
  bool first = true;
  for (const InstanceType& type : types_) {
    const double alpha = type.alpha().value();
    const double theta = type.theta();
    if (first) {
      stats.min_alpha = stats.max_alpha = alpha;
      stats.min_theta = stats.max_theta = theta;
      first = false;
      continue;
    }
    stats.min_alpha = std::min(stats.min_alpha, alpha);
    stats.max_alpha = std::max(stats.max_alpha, alpha);
    stats.min_theta = std::min(stats.min_theta, theta);
    stats.max_theta = std::max(stats.max_theta, theta);
  }
  return stats;
}

std::vector<PaymentQuote> d2_xlarge_payment_quotes() {
  // Paper Table I, verbatim.
  return {
      PaymentQuote{PaymentOption::kNoUpfront, Money{0.0}, Money{293.46}, Rate{0.0},
                   kHoursPerYear},
      PaymentQuote{PaymentOption::kPartialUpfront, Money{1506.0}, Money{125.56}, Rate{0.0},
                   kHoursPerYear},
      PaymentQuote{PaymentOption::kAllUpfront, Money{2952.0}, Money{0.0}, Rate{0.0},
                   kHoursPerYear},
      PaymentQuote{PaymentOption::kOnDemand, Money{0.0}, Money{0.0}, Rate{0.69}, kHoursPerYear},
  };
}

}  // namespace rimarket::pricing
