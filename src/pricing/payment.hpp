// Payment options for reserved instances (paper Table I).
//
// Amazon sells RIs under three payment options — No Upfront, Partial
// Upfront, All Upfront — plus plain on-demand.  The paper's Table I lists
// the d2.xlarge (US East (Ohio), Linux) quotes as of Jan 1, 2018; this
// module models a quote and the derived "effective hourly" column.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "common/units.hpp"

namespace rimarket::pricing {

enum class PaymentOption {
  kNoUpfront,
  kPartialUpfront,
  kAllUpfront,
  kOnDemand,
};

/// Human-readable name matching the paper's table ("No Upfront", ...).
std::string_view payment_option_name(PaymentOption option);

/// One row of a pricing table: how a given payment option is billed.
struct PaymentQuote {
  PaymentOption option = PaymentOption::kOnDemand;
  /// Upfront fee (dollars); 0 for No Upfront and On-Demand.
  Money upfront{0.0};
  /// Recurring monthly fee (dollars); 0 for All Upfront.
  Money monthly{0.0};
  /// Plain hourly rate; only nonzero for On-Demand.
  Rate hourly{0.0};
  /// Contract length in hours (ignored for On-Demand).
  Hour term = kHoursPerYear;

  /// Effective hourly rate over the full term:
  ///   (upfront + monthly * months(term)) / term   for reservations,
  ///   hourly                                      for on-demand.
  /// Matches the paper's "Effective Hourly" column.
  Rate effective_hourly() const;

  /// Total bill for holding the contract for the full term and using it
  /// `used_hours` (on-demand pays per used hour; reservations pay the
  /// contract regardless of use).
  Money total_cost(Hour used_hours) const;
};

/// Months in a term, using the paper's convention (12 months per 8760 h).
double months_in_term(Hour term);

}  // namespace rimarket::pricing
