// Instance-type pricing model (paper Section III-A).
//
// An instance type carries the two prices the paper's analysis is built on:
// the on-demand hourly rate `p` and the reservation contract (upfront `R`,
// discounted hourly rate `alpha * p`, term `T`).  All derived quantities the
// theory uses — the reservation discount alpha, the utilization parameter
// theta = p*T/R, and the selling break-even point beta(f) — live here.
#pragma once

#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace rimarket::pricing {

/// Pricing of one EC2 instance type under a fixed reservation term.
struct InstanceType {
  /// API name, e.g. "d2.xlarge".
  std::string name;
  /// On-demand hourly rate p (dollars/hour), > 0.
  Rate on_demand_hourly{0.0};
  /// Reservation upfront fee R (dollars), > 0.
  Money upfront{0.0};
  /// Discounted hourly rate alpha*p while reserved (dollars/hour), >= 0.
  Rate reserved_hourly{0.0};
  /// Reservation term T in hours (1 year by default).
  Hour term = kHoursPerYear;

  /// Reservation discount alpha = reserved_hourly / on_demand_hourly.
  Fraction alpha() const;

  /// theta = p*T/R, the ratio between the worst-case on-demand bill over a
  /// full term and the upfront fee.  Dimensionless but unbounded above 1,
  /// so a plain double.  The paper's bound derivations use the measured
  /// fact theta in (1, 4) for standard Linux US-East 1-yr RIs.
  double theta() const;

  /// Break-even working time beta(f) = f*a*R / (p*(1-alpha)) for a selling
  /// decision taken at fraction `f` of the term with selling discount `a`
  /// (paper Eq. (9) for f=3/4 and Section V for f=1/2, 1/4).
  Hours break_even_hours(Fraction decision_fraction, Fraction selling_discount) const;

  /// Pro-rated upfront value of the remaining period [t, T) — the
  /// marketplace cap on the seller's asking price.
  Money prorated_upfront(Hour elapsed) const;

  /// Gross marketplace income for selling at `elapsed` hours with discount
  /// `a`: a * rp * R, where rp = (T - elapsed)/T (paper Eq. (1) term).
  Money sale_income(Hour elapsed, Fraction selling_discount) const;

  /// True when the fields form a consistent reservation contract
  /// (positive prices, reserved cheaper than on-demand, positive term).
  bool valid() const;
};

/// Structural equality (name and every price field).
bool operator==(const InstanceType& lhs, const InstanceType& rhs);

}  // namespace rimarket::pricing
