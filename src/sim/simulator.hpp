// The hour-by-hour cost simulator (paper Section III-C).
//
// Wiring per hour t:
//   1. book the hour's new reservations n_t (they serve immediately),
//   2. let the selling policy inspect the ledger and sell instances
//      (income a*rp*R, net of the marketplace fee; Eq. (1)'s s_t removes
//      the sold instance from the fleet at the decision spot, so it is
//      excluded from hour t's r_t — see DESIGN.md "Sale timing"),
//   3. assign demand d_t least-remaining-period-first; overflow becomes
//      on-demand purchases o_t,
//   4. record C_t = o_t*p + n_t*R + r_t*alpha*p - s_t*a*rp*R.
//
// The paper treats the reservation stream n_t as an *input* to the selling
// algorithm ("Input: ... the set of new reserved instances n"), produced by
// a purchasing imitator that does not observe sales.  `ReservationStream`
// captures that open-loop protocol: generate n once per (user, purchaser),
// then replay it identically under every selling policy, which is also what
// makes the keep-reserved normalization exact.  A closed-loop variant — the
// purchaser reacting to the post-sale fleet — is provided for ablations.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "fleet/accounting.hpp"
#include "fleet/ledger.hpp"
#include "pricing/instance_type.hpp"
#include "purchasing/policy.hpp"
#include "selling/policy.hpp"
#include "workload/trace.hpp"

namespace rimarket::sim {

/// Gross income realized when a reservation aged `age` hours is sold at
/// price discount `discount`.  The default (unset) realization is the
/// paper's Eq. (1): an instant gross sale a * rp * R.  The configured
/// service fee is applied uniformly *after* the model, so custom models
/// must return fee-exclusive (gross) income.  The market module provides
/// realistic models (fill latency, pro-ration erosion) via
/// market::make_income_model.
using IncomeModel =
    std::function<Money(const pricing::InstanceType& type, Hour age, Fraction discount)>;

/// Economic and accounting knobs of one simulation.
struct SimulationConfig {
  pricing::InstanceType type;
  /// Seller's marketplace price discount a in [0,1].
  Fraction selling_discount{0.8};
  /// Marketplace service fee on sale income, as a fraction of the income.
  /// 0 reproduces the paper's Eq. (1) (gross income); Amazon charges 0.12.
  /// Applied uniformly to the default instant-sale path *and* any custom
  /// `income_model` (which must therefore return gross, fee-exclusive
  /// income).
  Fraction service_fee{0.0};
  fleet::ChargePolicy charge_policy = fleet::ChargePolicy::kAllActiveHours;
  /// Simulated hours; 0 means the trace length.
  Hour horizon = 0;
  /// Keep a per-hour CostBreakdown series in the result.
  bool keep_hourly_series = false;
  /// Optional marketplace-income realization override (see IncomeModel).
  IncomeModel income_model;
  /// Related-work baseline (Zhang et al., ICWS'17 / Wang et al., TPDS'15):
  /// instead of selling whole contracts, the user re-leases *idle* reserved
  /// hours pay-per-use at this rate (dollars/hour, typically between
  /// alpha*p and p), weighted by the probability a lessee shows up.  0
  /// disables the mechanism (the paper's setting: Amazon does not support
  /// hour reselling, which is why it studies whole-contract sales).
  Rate idle_resale_rate{0.0};
  Fraction idle_resale_probability{1.0};
  /// Ledger implementation (see fleet::LedgerEngine).  kNaive is the
  /// retained reference engine; equivalence tests and the perf harness
  /// run both and assert byte-identical results.
  fleet::LedgerEngine ledger_engine = fleet::LedgerEngine::kOptimized;

  Hour effective_horizon(const workload::DemandTrace& trace) const;

  /// Net (post-fee) income for selling a reservation aged `age` under
  /// this config.
  Money sale_income(Hour age) const;
};

/// A fixed per-hour stream of new reservations (the n_t input).
class ReservationStream {
 public:
  ReservationStream() = default;
  explicit ReservationStream(std::vector<Count> new_reservations);

  /// Runs `purchaser` open-loop against the trace (no selling) and records
  /// its decisions.  `term` is the reservation term the fleet would use
  /// (contract expiry feeds back into the purchaser's active count).
  static ReservationStream generate(const workload::DemandTrace& trace,
                                    purchasing::PurchasePolicy& purchaser, Hour horizon,
                                    Hour term);

  Count at(Hour t) const;
  Hour length() const { return static_cast<Hour>(new_reservations_.size()); }
  Count total() const;
  std::span<const Count> values() const { return new_reservations_; }

 private:
  std::vector<Count> new_reservations_;
};

/// Everything a run produces.
struct SimulationResult {
  fleet::CostBreakdown totals;
  Count reservations_made = 0;
  Count instances_sold = 0;
  Count on_demand_hours = 0;
  /// Final state of every reservation ever booked.
  std::vector<fleet::Reservation> reservations;
  /// Per-hour series; empty unless requested in the config.
  std::vector<fleet::CostBreakdown> hourly;

  Money net_cost() const { return totals.net(); }
};

/// Observer of which reservations worked each hour (offline planner hook).
using WorkObserver = std::function<void(Hour, std::span<const fleet::ReservationId>)>;

/// Open-loop simulation: replay a fixed reservation stream under `seller`.
SimulationResult simulate(const workload::DemandTrace& trace, const ReservationStream& stream,
                          selling::SellPolicy& seller, const SimulationConfig& config,
                          const WorkObserver* observer = nullptr);

/// Closed-loop ablation: the purchaser sees the post-sale fleet and may
/// re-reserve after sales.
SimulationResult simulate_closed_loop(const workload::DemandTrace& trace,
                                      purchasing::PurchasePolicy& purchaser,
                                      selling::SellPolicy& seller,
                                      const SimulationConfig& config);

}  // namespace rimarket::sim
