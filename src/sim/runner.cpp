#include "sim/runner.hpp"

#include <algorithm>
#include <mutex>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "selling/fixed_spot.hpp"

namespace rimarket::sim {

namespace {

std::string sweep_error_message(const std::vector<UserFailure>& failures) {
  RIMARKET_EXPECTS(!failures.empty());
  return common::format("evaluation sweep failed for %zu user(s); first: user %d: %s",
                        failures.size(), failures.front().user_id,
                        failures.front().message.c_str());
}

}  // namespace

SweepError::SweepError(std::vector<UserFailure> failures)
    : std::runtime_error(sweep_error_message(failures)), failures_(std::move(failures)) {}

std::vector<SellerSpec> paper_sellers(Fraction all_selling_fraction) {
  return {
      SellerSpec{SellerKind::kKeepReserved, Fraction{0.0}},
      SellerSpec{SellerKind::kAllSelling, all_selling_fraction},
      SellerSpec{SellerKind::kA3T4, selling::kSpot3T4},
      SellerSpec{SellerKind::kAT2, selling::kSpotT2},
      SellerSpec{SellerKind::kAT4, selling::kSpotT4},
  };
}

std::vector<ScenarioResult> evaluate_user(const workload::User& user,
                                          const EvaluationSpec& spec) {
  RIMARKET_EXPECTS(!spec.sellers.empty());
  // Malformed *input data* throws (and is aggregated per-user by the sweep)
  // rather than aborting: one bad trace must not kill a 300-user batch.
  if (user.trace.length() == 0) {
    throw std::invalid_argument(common::format("user %d has an empty demand trace", user.id));
  }
  // The selling discount is a Fraction, so its [0,1] range is guaranteed by
  // construction — no runtime validation needed here.
  std::vector<ScenarioResult> results;
  results.reserve(spec.purchasers.size() * spec.sellers.size());
  const Hour horizon = spec.sim.effective_horizon(user.trace);
  for (const purchasing::PurchaserKind purchaser_kind : spec.purchasers) {
    // Derive a per-(user, purchaser) seed so stochastic purchasers are
    // reproducible and independent across the sweep.
    std::uint64_t seed_state = spec.seed;
    seed_state ^= static_cast<std::uint64_t>(user.id) * 0x9e3779b97f4a7c15ULL;
    seed_state ^= (static_cast<std::uint64_t>(purchaser_kind) + 1) << 32;
    const std::uint64_t run_seed = common::splitmix64(seed_state);

    const auto purchaser = purchasing::make_purchaser(purchaser_kind, spec.sim.type, run_seed);
    const ReservationStream stream =
        ReservationStream::generate(user.trace, *purchaser, horizon, spec.sim.type.term);

    for (const SellerSpec& seller_spec : spec.sellers) {
      const auto seller =
          make_seller(seller_spec, spec.sim, run_seed, &user.trace, &stream);
      const SimulationResult run = simulate(user.trace, stream, *seller, spec.sim);
      ScenarioResult result;
      result.user_id = user.id;
      result.group = user.group;
      result.purchaser = purchaser_kind;
      result.seller = seller_spec;
      result.net_cost = run.net_cost();
      result.reservations_made = run.reservations_made;
      result.instances_sold = run.instances_sold;
      result.on_demand_hours = run.on_demand_hours;
      results.push_back(result);
    }
  }
  return results;
}

std::vector<ScenarioResult> evaluate(std::span<const workload::User> users,
                                     const EvaluationSpec& spec) {
  std::vector<std::vector<ScenarioResult>> per_user(users.size());
  std::mutex failures_mutex;
  std::vector<UserFailure> failures;
  common::ThreadPool pool(spec.threads);
  common::parallel_for(pool, users.size(), [&](std::size_t index) {
    // Per-user errors are aggregated here instead of thrown through the
    // pool: the pool would surface whichever failure *finished* first,
    // while sorting by user id below keeps the report deterministic.
    try {
      per_user[index] = evaluate_user(users[index], spec);
    } catch (const std::exception& error) {
      const std::lock_guard<std::mutex> lock(failures_mutex);
      failures.push_back(UserFailure{users[index].id, error.what()});
    }
  });
  pool.export_metrics(common::MetricsRegistry::global(), "sim.evaluate");
  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end(),
              [](const UserFailure& a, const UserFailure& b) { return a.user_id < b.user_id; });
    for (const UserFailure& failure : failures) {
      common::log_warn("sweep: user %d failed: %s", failure.user_id, failure.message.c_str());
    }
    throw SweepError(std::move(failures));
  }
  std::vector<ScenarioResult> results;
  results.reserve(users.size() * spec.purchasers.size() * spec.sellers.size());
  for (const auto& chunk : per_user) {
    results.insert(results.end(), chunk.begin(), chunk.end());
  }
  return results;
}

std::vector<ScenarioResult> evaluate(const workload::UserPopulation& population,
                                     const EvaluationSpec& spec) {
  return evaluate(std::span<const workload::User>(population.users()), spec);
}

}  // namespace rimarket::sim
