#include "sim/runner.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/thread_safety.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/seeding.hpp"

namespace rimarket::sim {

namespace {

std::string sweep_error_message(const std::vector<UserFailure>& failures) {
  RIMARKET_EXPECTS(!failures.empty());
  return common::format("evaluation sweep failed for %zu user(s); first: user %d: %s",
                        failures.size(), failures.front().user_id,
                        failures.front().message.c_str());
}

void export_sweep_metrics(const SweepReport& report) {
  // Accumulate, never set(): a multi-sweep process (every multi-figure
  // bench) reports process totals, not whichever sweep happened to finish
  // last.
  common::MetricsRegistry& registry = common::MetricsRegistry::global();
  registry.increment("sweep.retries", static_cast<std::int64_t>(report.retries));
  registry.increment("sweep.quarantined", static_cast<std::int64_t>(report.quarantined.size()));
  registry.increment("sweep.injected_faults",
                     static_cast<std::int64_t>(report.injected_faults));
  registry.add("sweep.virtual_backoff_ms", report.virtual_backoff_ms);
}

}  // namespace

SweepError::SweepError(std::vector<UserFailure> failures)
    : std::runtime_error(sweep_error_message(failures)), failures_(std::move(failures)) {}

std::vector<SellerSpec> paper_sellers(Fraction all_selling_fraction) {
  return {
      SellerSpec{SellerKind::kKeepReserved, Fraction{0.0}},
      SellerSpec{SellerKind::kAllSelling, all_selling_fraction},
      SellerSpec{SellerKind::kA3T4, selling::kSpot3T4},
      SellerSpec{SellerKind::kAT2, selling::kSpotT2},
      SellerSpec{SellerKind::kAT4, selling::kSpotT4},
  };
}

std::vector<ScenarioResult> evaluate_user(const workload::User& user,
                                          const EvaluationSpec& spec) {
  RIMARKET_EXPECTS(!spec.sellers.empty());
  RIMARKET_INJECT(common::fault_injection::kSiteEvaluateUser);
  // Malformed *input data* throws (and is aggregated per-user by the sweep)
  // rather than aborting: one bad trace must not kill a 300-user batch.
  if (user.trace.length() == 0) {
    throw std::invalid_argument(common::format("user %d has an empty demand trace", user.id));
  }
  // The selling discount is a Fraction, so its [0,1] range is guaranteed by
  // construction — no runtime validation needed here.
  std::vector<ScenarioResult> results;
  results.reserve(spec.purchasers.size() * spec.sellers.size());
  const Hour horizon = spec.sim.effective_horizon(user.trace);
  for (const purchasing::PurchaserKind purchaser_kind : spec.purchasers) {
    // Derive a per-(user, purchaser) seed so stochastic purchasers are
    // reproducible and independent across the sweep.  Shared with the batch
    // engine — see sim/seeding.hpp for the pinned contract.
    const std::uint64_t run_seed =
        seeding::per_run_seed(spec.seed, user.id, static_cast<int>(purchaser_kind));

    const auto purchaser = purchasing::make_purchaser(purchaser_kind, spec.sim.type, run_seed);
    const ReservationStream stream =
        ReservationStream::generate(user.trace, *purchaser, horizon, spec.sim.type.term);

    for (const SellerSpec& seller_spec : spec.sellers) {
      RIMARKET_INJECT(common::fault_injection::kSiteRunScenario);
      const auto seller =
          make_seller(seller_spec, spec.sim, run_seed, &user.trace, &stream);
      const SimulationResult run = simulate(user.trace, stream, *seller, spec.sim);
      ScenarioResult result;
      result.user_id = user.id;
      result.group = user.group;
      result.purchaser = purchaser_kind;
      result.seller = seller_spec;
      result.net_cost = run.net_cost();
      result.reservations_made = run.reservations_made;
      result.instances_sold = run.instances_sold;
      result.on_demand_hours = run.on_demand_hours;
      results.push_back(result);
    }
  }
  return results;
}

namespace {

/// Per-user failures recorded by pool workers.  The annotated mutex lets
/// clang's thread-safety analysis prove every cross-thread access to the
/// list holds the lock.
class FailureCollector {
 public:
  void record(UserFailure failure) {
    const common::MutexLock lock(mutex_);
    failures_.push_back(std::move(failure));
  }

  /// Moves the collected failures out; call after the pool has drained.
  std::vector<UserFailure> take() {
    const common::MutexLock lock(mutex_);
    return std::move(failures_);
  }

 private:
  common::Mutex mutex_;
  std::vector<UserFailure> failures_ RIMARKET_GUARDED_BY(mutex_);
};

/// FailurePolicy::kFailFast: one attempt per user, any failure aborts the
/// sweep with a deterministic SweepError and discards the survivors' work
/// (a partial sweep would silently skew every population statistic).
SweepReport evaluate_fail_fast(std::span<const workload::User> users,
                               const EvaluationSpec& spec) {
  std::vector<std::vector<ScenarioResult>> per_user(users.size());
  FailureCollector collector;
  common::ThreadPool pool(spec.threads);
  common::parallel_for(pool, users.size(), [&](std::size_t index) {
    // Per-user errors are aggregated here instead of thrown through the
    // pool: the pool would surface whichever failure *finished* first,
    // while sorting by user id below keeps the report deterministic.
    try {
      per_user[index] = evaluate_user(users[index], spec);
    } catch (const std::exception& error) {
      collector.record(UserFailure{users[index].id, error.what()});
    }
  });
  pool.export_metrics(common::MetricsRegistry::global(), "sim.evaluate");
  SweepReport report;
  export_sweep_metrics(report);
  std::vector<UserFailure> failures = collector.take();
  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end(),
              [](const UserFailure& a, const UserFailure& b) { return a.user_id < b.user_id; });
    for (const UserFailure& failure : failures) {
      common::log_warn("sweep: user %d failed: %s", failure.user_id, failure.message.c_str());
    }
    throw SweepError(std::move(failures));
  }
  report.results.reserve(users.size() * spec.purchasers.size() * spec.sellers.size());
  for (const auto& chunk : per_user) {
    report.results.insert(report.results.end(), chunk.begin(), chunk.end());
  }
  return report;
}

/// FailurePolicy::kQuarantine: bounded retry per user, then give up on that
/// user alone.  All bookkeeping lives in per-index slots, so the outcome is
/// a pure function of (users, spec) regardless of worker scheduling.
SweepReport evaluate_quarantine(std::span<const workload::User> users,
                                const EvaluationSpec& spec) {
  std::vector<std::vector<ScenarioResult>> per_user(users.size());
  std::vector<std::optional<QuarantinedUser>> quarantine_slots(users.size());
  std::vector<std::uint64_t> user_retries(users.size(), 0);
  std::vector<std::uint64_t> user_faults(users.size(), 0);
  std::vector<double> user_backoff_ms(users.size(), 0.0);
  common::ThreadPool pool(spec.threads);
  common::parallel_for(pool, users.size(), [&](std::size_t index) {
    const workload::User& user = users[index];
    QuarantinedUser entry;
    for (int attempt = 1; attempt <= spec.max_attempts; ++attempt) {
      if (attempt > 1) {
        ++user_retries[index];
        // Virtual exponential backoff: accounted, never slept.
        user_backoff_ms[index] +=
            spec.backoff_base_ms * static_cast<double>(1ULL << (attempt - 2));
      }
      // Each attempt is its own chaos scope: the faults it sees depend only
      // on (seed, user id, attempt), so retries genuinely re-roll the fault
      // pattern and the whole sweep replays from spec.seed.
      std::optional<common::fault_injection::ScopedContext> chaos;
      if (spec.chaos_schedule != nullptr) {
        chaos.emplace(*spec.chaos_schedule,
                      seeding::attempt_scope_key(spec.seed, user.id, attempt));
      }
      try {
        per_user[index] = evaluate_user(user, spec);
        if (chaos) {
          user_faults[index] += chaos->faults_fired();
        }
        return;
      } catch (const common::fault_injection::InjectedFault& fault) {
        entry.site = fault.site();
        entry.message = fault.what();
      } catch (const std::exception& error) {
        entry.site.clear();
        entry.message = error.what();
      }
      if (chaos) {
        user_faults[index] += chaos->faults_fired();
      }
    }
    entry.user_id = user.id;
    entry.attempts = spec.max_attempts;
    quarantine_slots[index] = std::move(entry);
  });
  pool.export_metrics(common::MetricsRegistry::global(), "sim.evaluate");
  SweepReport report;
  report.results.reserve(users.size() * spec.purchasers.size() * spec.sellers.size());
  for (std::size_t index = 0; index < users.size(); ++index) {
    report.retries += user_retries[index];
    report.injected_faults += user_faults[index];
    report.virtual_backoff_ms += user_backoff_ms[index];
    if (quarantine_slots[index].has_value()) {
      report.quarantined.push_back(*std::move(quarantine_slots[index]));
    } else {
      report.results.insert(report.results.end(), per_user[index].begin(),
                            per_user[index].end());
    }
  }
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [](const QuarantinedUser& a, const QuarantinedUser& b) {
              return a.user_id < b.user_id;
            });
  for (const QuarantinedUser& entry : report.quarantined) {
    common::log_warn("sweep: user %d quarantined after %d attempt(s)%s%s: %s", entry.user_id,
                     entry.attempts, entry.site.empty() ? "" : " at ", entry.site.c_str(),
                     entry.message.c_str());
  }
  export_sweep_metrics(report);
  return report;
}

}  // namespace

SweepReport evaluate_sweep(std::span<const workload::User> users, const EvaluationSpec& spec) {
  RIMARKET_EXPECTS(spec.max_attempts >= 1);
  RIMARKET_EXPECTS(spec.backoff_base_ms >= 0.0);
  if (spec.failure_policy == FailurePolicy::kFailFast) {
    return evaluate_fail_fast(users, spec);
  }
  return evaluate_quarantine(users, spec);
}

SweepReport evaluate_sweep(const workload::UserPopulation& population,
                           const EvaluationSpec& spec) {
  return evaluate_sweep(std::span<const workload::User>(population.users()), spec);
}

std::vector<ScenarioResult> evaluate(std::span<const workload::User> users,
                                     const EvaluationSpec& spec) {
  return evaluate_sweep(users, spec).results;
}

std::vector<ScenarioResult> evaluate(const workload::UserPopulation& population,
                                     const EvaluationSpec& spec) {
  return evaluate(std::span<const workload::User>(population.users()), spec);
}

}  // namespace rimarket::sim
