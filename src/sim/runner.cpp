#include "sim/runner.hpp"

#include <mutex>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "selling/fixed_spot.hpp"

namespace rimarket::sim {

std::vector<SellerSpec> paper_sellers(double all_selling_fraction) {
  return {
      SellerSpec{SellerKind::kKeepReserved, 0.0},
      SellerSpec{SellerKind::kAllSelling, all_selling_fraction},
      SellerSpec{SellerKind::kA3T4, selling::kSpot3T4},
      SellerSpec{SellerKind::kAT2, selling::kSpotT2},
      SellerSpec{SellerKind::kAT4, selling::kSpotT4},
  };
}

std::vector<ScenarioResult> evaluate_user(const workload::User& user,
                                          const EvaluationSpec& spec) {
  RIMARKET_EXPECTS(!spec.sellers.empty());
  std::vector<ScenarioResult> results;
  results.reserve(spec.purchasers.size() * spec.sellers.size());
  const Hour horizon = spec.sim.effective_horizon(user.trace);
  for (const purchasing::PurchaserKind purchaser_kind : spec.purchasers) {
    // Derive a per-(user, purchaser) seed so stochastic purchasers are
    // reproducible and independent across the sweep.
    std::uint64_t seed_state = spec.seed;
    seed_state ^= static_cast<std::uint64_t>(user.id) * 0x9e3779b97f4a7c15ULL;
    seed_state ^= (static_cast<std::uint64_t>(purchaser_kind) + 1) << 32;
    const std::uint64_t run_seed = common::splitmix64(seed_state);

    const auto purchaser = purchasing::make_purchaser(purchaser_kind, spec.sim.type, run_seed);
    const ReservationStream stream =
        ReservationStream::generate(user.trace, *purchaser, horizon, spec.sim.type.term);

    for (const SellerSpec& seller_spec : spec.sellers) {
      const auto seller =
          make_seller(seller_spec, spec.sim, run_seed, &user.trace, &stream);
      const SimulationResult run = simulate(user.trace, stream, *seller, spec.sim);
      ScenarioResult result;
      result.user_id = user.id;
      result.group = user.group;
      result.purchaser = purchaser_kind;
      result.seller = seller_spec;
      result.net_cost = run.net_cost();
      result.reservations_made = run.reservations_made;
      result.instances_sold = run.instances_sold;
      result.on_demand_hours = run.on_demand_hours;
      results.push_back(result);
    }
  }
  return results;
}

std::vector<ScenarioResult> evaluate(const workload::UserPopulation& population,
                                     const EvaluationSpec& spec) {
  const std::vector<workload::User>& users = population.users();
  std::vector<std::vector<ScenarioResult>> per_user(users.size());
  common::ThreadPool pool(spec.threads);
  common::parallel_for(pool, users.size(), [&](std::size_t index) {
    per_user[index] = evaluate_user(users[index], spec);
  });
  std::vector<ScenarioResult> results;
  results.reserve(users.size() * spec.purchasers.size() * spec.sellers.size());
  for (const auto& chunk : per_user) {
    results.insert(results.end(), chunk.begin(), chunk.end());
  }
  return results;
}

}  // namespace rimarket::sim
