// Multi-type portfolios.
//
// Real accounts reserve several instance types at once.  EC2 reservations
// are per-type (a d2.xlarge contract cannot serve an m4.large demand), so a
// portfolio decomposes into independent per-type simulations; this module
// provides the bookkeeping: run every type under one selling policy
// specification, aggregate the costs, and compare policies across the whole
// portfolio — the view a cost-management console would show an account
// owner.
#pragma once

#include <string>
#include <vector>

#include "purchasing/policy.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace rimarket::sim {

/// One instance type the account uses, with its demand history.
struct PortfolioItem {
  pricing::InstanceType type;
  workload::DemandTrace trace;
};

/// Portfolio-wide economics (applied per item).
struct PortfolioConfig {
  Fraction selling_discount{0.8};
  /// Marketplace fee as a fraction of sale income.
  Fraction service_fee{0.0};
  fleet::ChargePolicy charge_policy = fleet::ChargePolicy::kAllActiveHours;
  /// Reservation-behaviour imitator used to reconstruct each type's
  /// bookings.
  purchasing::PurchaserKind purchaser = purchasing::PurchaserKind::kWangOnline;
  std::uint64_t seed = 1;
};

/// Per-type outcome inside a portfolio run.
struct PortfolioItemResult {
  std::string type_name;
  Money net_cost{0.0};
  Count reservations_made = 0;
  Count instances_sold = 0;
  Count on_demand_hours = 0;
};

struct PortfolioResult {
  std::vector<PortfolioItemResult> items;
  Money total_cost{0.0};
  Count total_reservations = 0;
  Count total_sold = 0;
};

/// Runs every item under the seller spec (fresh policy per type — selling
/// state never leaks across types, mirroring per-type marketplaces).
PortfolioResult run_portfolio(std::span<const PortfolioItem> items,
                              const PortfolioConfig& config, const SellerSpec& seller);

/// One row per seller: total portfolio cost and the ratio to keep-reserved.
struct PortfolioComparison {
  SellerSpec seller;
  Money total_cost{0.0};
  double ratio_to_keep = 0.0;
};

/// Compares seller policies across the portfolio (keep-reserved is always
/// evaluated as the denominator and included as the first row).
std::vector<PortfolioComparison> compare_sellers(std::span<const PortfolioItem> items,
                                                 const PortfolioConfig& config,
                                                 std::span<const SellerSpec> sellers);

}  // namespace rimarket::sim
