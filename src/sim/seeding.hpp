// The sweep's seed-derivation contract, shared verbatim by the per-user
// oracle (sim/runner.cpp) and the columnar batch engine
// (sim/batch_engine.cpp).  Both engines must derive bit-identical seeds for
// every (user, purchaser) run and (user, attempt) chaos scope, or their
// results could never be byte-identical — so the mixing lives here, in one
// place, with its edge cases pinned by tests/sim/seeding_test.cpp.
//
// Negative user ids: `user.id` is an int and the mixers fold it through
// `static_cast<std::uint64_t>(id)`, i.e. the two's-complement bit pattern
// (-1 -> 0xFFFF...FF).  Population-built users always have ids >= 0, but
// hand-built spans may not, and the mapping is total and injective over the
// full int range, so negative ids are *allowed* and simply occupy the high
// end of the key space.  This behavior is part of the contract (golden
// values in the seed-stability test) and must never change: altering it
// would silently re-seed every stochastic purchaser and re-place every
// recorded chaos fault.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace rimarket::sim::seeding {

/// 64-bit golden-ratio constant used as the id mixer (same constant as
/// splitmix64's increment).
inline constexpr std::uint64_t kIdMixer = 0x9e3779b97f4a7c15ULL;

/// Seed for one (user, purchaser) simulation run: stochastic purchasers are
/// reproducible and independent across the sweep.  `purchaser_kind` is the
/// PurchaserKind enumerator value.
inline std::uint64_t per_run_seed(std::uint64_t sweep_seed, int user_id, int purchaser_kind) {
  std::uint64_t state = sweep_seed;
  state ^= static_cast<std::uint64_t>(user_id) * kIdMixer;
  state ^= (static_cast<std::uint64_t>(purchaser_kind) + 1) << 32;
  return common::splitmix64(state);
}

/// Stable scope key for one (user, attempt) unit of work: fault placement
/// must depend only on ids the replay seed controls, never on scheduling.
inline std::uint64_t attempt_scope_key(std::uint64_t sweep_seed, int user_id, int attempt) {
  std::uint64_t state = sweep_seed ^ (static_cast<std::uint64_t>(user_id) * kIdMixer);
  state ^= (static_cast<std::uint64_t>(attempt) + 1) << 40;
  return common::splitmix64(state);
}

}  // namespace rimarket::sim::seeding
