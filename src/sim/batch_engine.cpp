#include "sim/batch_engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/durable_file.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "fleet/accounting.hpp"
#include "purchasing/policy.hpp"
#include "selling/fixed_spot.hpp"
#include "selling/policy.hpp"
#include "sim/seeding.hpp"

namespace rimarket::sim {

namespace fi = common::fault_injection;

namespace {

// ---------------------------------------------------------------------
// Seller decision plans: everything a columnar pass needs to know about
// one seller, precomputed.  The decision age and break-even point are
// derived through the same selling:: helpers the per-user policies use,
// so the beta comparison is the oracle's comparison.

struct SellerPlan {
  enum class Mode {
    kKeep,     ///< never sells; cohorts expire at birth + term
    kSellAll,  ///< sells every cohort whole at the decision age
    kBeta,     ///< A_{fT}: per-member worked-hours vs beta(f) at the age
  };

  SellerSpec spec;
  Mode mode = Mode::kKeep;
  Hour decision_age = 0;     ///< unused for kKeep
  Hours break_even{0.0};     ///< kBeta only
  Money income_per_sale{0.0};  ///< config.sale_income(decision_age)
};

std::optional<Fraction> beta_fraction(SellerKind kind) {
  switch (kind) {
    case SellerKind::kA3T4: return selling::kSpot3T4;
    case SellerKind::kAT2: return selling::kSpotT2;
    case SellerKind::kAT4: return selling::kSpotT4;
    default: return std::nullopt;
  }
}

std::vector<SellerPlan> build_seller_plans(const EvaluationSpec& spec) {
  std::vector<SellerPlan> plans;
  plans.reserve(spec.sellers.size());
  for (const SellerSpec& seller : spec.sellers) {
    SellerPlan plan;
    plan.spec = seller;
    if (seller.kind == SellerKind::kKeepReserved) {
      plan.mode = SellerPlan::Mode::kKeep;
    } else if (seller.kind == SellerKind::kAllSelling) {
      plan.mode = SellerPlan::Mode::kSellAll;
      plan.decision_age = selling::decision_age(spec.sim.type.term, seller.fraction);
      plan.income_per_sale = spec.sim.sale_income(plan.decision_age);
    } else {
      const auto fraction = beta_fraction(seller.kind);
      RIMARKET_EXPECTS(fraction.has_value());  // supported() gates the rest
      plan.mode = SellerPlan::Mode::kBeta;
      plan.decision_age = selling::decision_age(spec.sim.type.term, *fraction);
      plan.break_even =
          spec.sim.type.break_even_hours(*fraction, spec.sim.selling_discount);
      plan.income_per_sale = spec.sim.sale_income(plan.decision_age);
    }
    plans.push_back(plan);
  }
  return plans;
}

// ---------------------------------------------------------------------
// Admission: the chaos/organic-failure behavior of evaluate_user, probed
// per attempt with the exact injection-site sequence of the per-user path
// (kSiteEvaluateUser, then kSiteRunScenario + kSiteRunLoop per scenario).
// A fault fires in the probe iff it would have fired in the oracle's
// attempt — rule decisions are a pure function of (seed, scope key, site,
// per-site hit index) and any firing aborts the attempt — so the batch
// engine's retry / quarantine / fault bookkeeping is bit-identical.

void probe_user_once(const workload::User& user, const EvaluationSpec& spec) {
  RIMARKET_INJECT(fi::kSiteEvaluateUser);
  if (user.trace.length() == 0) {
    throw std::invalid_argument(
        common::format("user %d has an empty demand trace", user.id));
  }
  for (std::size_t p = 0; p < spec.purchasers.size(); ++p) {
    for (std::size_t s = 0; s < spec.sellers.size(); ++s) {
      RIMARKET_INJECT(fi::kSiteRunScenario);
      RIMARKET_INJECT(fi::kSiteRunLoop);
    }
  }
}

struct AdmissionOutcome {
  bool admitted = false;
  std::uint64_t retries = 0;
  std::uint64_t faults = 0;
  double backoff_ms = 0.0;
  std::optional<QuarantinedUser> quarantined;  ///< kQuarantine give-up
  std::optional<UserFailure> failure;          ///< kFailFast failure
};

AdmissionOutcome admit_user(const workload::User& user, const EvaluationSpec& spec) {
  AdmissionOutcome out;
  if (spec.failure_policy == FailurePolicy::kFailFast) {
    try {
      probe_user_once(user, spec);
      out.admitted = true;
    } catch (const std::exception& error) {
      out.failure = UserFailure{user.id, error.what()};
    }
    return out;
  }
  QuarantinedUser entry;
  for (int attempt = 1; attempt <= spec.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++out.retries;
      out.backoff_ms += spec.backoff_base_ms * static_cast<double>(1ULL << (attempt - 2));
    }
    std::optional<fi::ScopedContext> chaos;
    if (spec.chaos_schedule != nullptr) {
      chaos.emplace(*spec.chaos_schedule,
                    seeding::attempt_scope_key(spec.seed, user.id, attempt));
    }
    try {
      probe_user_once(user, spec);
      if (chaos) {
        out.faults += chaos->faults_fired();
      }
      out.admitted = true;
      return out;
    } catch (const fi::InjectedFault& fault) {
      entry.site = fault.site();
      entry.message = fault.what();
    } catch (const std::exception& error) {
      entry.site.clear();
      entry.message = error.what();
    }
    if (chaos) {
      out.faults += chaos->faults_fired();
    }
  }
  entry.user_id = user.id;
  entry.attempts = spec.max_attempts;
  out.quarantined = std::move(entry);
  return out;
}

// ---------------------------------------------------------------------
// Phase A: reservation streams as sparse cohort lists.  Replays the real
// purchaser object (same run_seed, same decide() call sequence) against an
// O(1)-per-hour sliding-window active counter that equals
// ReservationStream::generate's keep-everything ledger: a contract booked
// at s serves hours [s, s + term), so active_count(t) before the hour's
// decision is the sum of bookings with birth in (t - term, t - 1].

struct Cohort {
  Hour birth = 0;
  Count count = 0;
};

void generate_cohorts(const workload::DemandTrace& trace, purchasing::PurchasePolicy& purchaser,
                      Hour horizon, Hour term, std::vector<Cohort>& cohorts) {
  cohorts.clear();
  Count active = 0;
  std::size_t expire_idx = 0;
  for (Hour t = 0; t < horizon; ++t) {
    while (expire_idx < cohorts.size() && cohorts[expire_idx].birth <= t - term) {
      active -= cohorts[expire_idx].count;
      ++expire_idx;
    }
    const Count demand = trace.at(t);
    const Count decided = purchaser.decide(t, demand, active);
    RIMARKET_CHECK_MSG(decided >= 0, "purchase policies must not return negative counts");
    if (decided > 0) {
      cohorts.push_back(Cohort{t, decided});
      active += decided;
    }
  }
}

// ---------------------------------------------------------------------
// Phase B: the columnar kernel.  One pass simulates every admitted user of
// a shard under one (purchaser, seller) pair, hour-major: per hour one
// fused sweep over the shard's slots runs bookkeeping (booking, expiry,
// decision), the Eq. (1) accumulation, and the worked-hours credit with
// the hour's scratch values held in registers.

/// One expiry event: `kept` contracts leave the fleet at `hour`.
struct ExpiryEvent {
  Hour hour = 0;
  Count kept = 0;
};

/// Per-user FIFO with contiguous storage and amortized-O(1) pop-front
/// (prefix compaction), so the worked-hours credit loop always adds over
/// one contiguous range.
template <typename T>
struct ShardFifo {
  std::vector<T> items;
  std::size_t head = 0;

  std::size_t size() const { return items.size() - head; }
  bool empty() const { return head == items.size(); }
  T* data() { return items.data() + head; }
  const T& front() const { return items[head]; }
  void push(const T& value) { items.push_back(value); }
  void pop(std::size_t n) {
    head += n;
    if (head == items.size()) {
      items.clear();
      head = 0;
    } else if (head >= 64 && head * 2 >= items.size()) {
      items.erase(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }
  void clear() {
    items.clear();
    head = 0;
  }
};

/// "No pending event" sentinel for the next_* schedule columns: later than
/// any reachable hour, so the hot loop's compare-against-t is false without
/// a second condition.
constexpr Hour kNever = std::numeric_limits<Hour>::max();

/// Structure-of-arrays state for one (purchaser, seller) pass over a
/// shard.  Hot scalars live in parallel columns; the per-user FIFOs hold
/// the young contracts' worked-hours counters and the kept-cohort expiry
/// schedule.  The next_* columns cache each slot's next scheduled hour
/// (booking / sale decision / expiry) so the common no-event hour costs one
/// flat column load per check instead of a cohort-vector pointer chase.
struct ShardColumns {
  // Static per-slot inputs (set once per shard).
  std::vector<const Count*> trace_data;
  std::vector<Hour> trace_len;
  std::vector<Hour> horizon;
  std::vector<const std::vector<Cohort>*> cohorts;

  // Per-pass flattened cohort views (rebuilt by run_seller_pass).
  std::vector<const Cohort*> cohort_data;
  std::vector<std::size_t> cohort_count;

  // Pass-mutable columns.
  std::vector<Count> active;
  std::vector<std::size_t> book_idx;
  std::vector<std::size_t> decide_idx;
  std::vector<std::size_t> expire_idx;  ///< kKeep: next cohort to expire
  std::vector<Hour> next_book;    ///< birth of cohorts[book_idx], or kNever
  std::vector<Hour> next_decide;  ///< decision hour of cohorts[decide_idx], or kNever
  std::vector<Hour> next_expire;  ///< kKeep: expiry of cohorts[expire_idx];
                                  ///< kBeta: front kept-cohort event; else kNever
  std::vector<Count> young;       ///< kBeta: members currently in `worked`
  std::vector<ShardFifo<Hour>> worked;  ///< kBeta: young members' worked hours
  std::vector<ShardFifo<ExpiryEvent>> events;  ///< kBeta: kept-cohort expiries

  // Accumulators (the four CostBreakdown components kept as independent
  // columns: operator+= adds component-wise, so per-component sums in hour
  // order are the oracle's sums).
  std::vector<double> total_on_demand;
  std::vector<double> total_upfront;
  std::vector<double> total_reserved;
  std::vector<double> total_income;
  std::vector<Count> made;
  std::vector<Count> sold;
  std::vector<Count> on_demand_hours;

  void resize(std::size_t n) {
    trace_data.resize(n);
    trace_len.resize(n);
    horizon.resize(n);
    cohorts.resize(n);
    cohort_data.resize(n);
    cohort_count.resize(n);
    active.resize(n);
    book_idx.resize(n);
    decide_idx.resize(n);
    expire_idx.resize(n);
    next_book.resize(n);
    next_decide.resize(n);
    next_expire.resize(n);
    young.resize(n);
    worked.resize(n);
    events.resize(n);
    total_on_demand.resize(n);
    total_upfront.resize(n);
    total_reserved.resize(n);
    total_income.resize(n);
    made.resize(n);
    sold.resize(n);
    on_demand_hours.resize(n);
  }

  void reset_pass(std::size_t n, const SellerPlan& plan, Hour term) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<Cohort>& slot_cohorts = *cohorts[i];
      cohort_data[i] = slot_cohorts.data();
      cohort_count[i] = slot_cohorts.size();
      active[i] = 0;
      book_idx[i] = 0;
      decide_idx[i] = 0;
      expire_idx[i] = 0;
      next_book[i] = slot_cohorts.empty() ? kNever : slot_cohorts.front().birth;
      next_decide[i] = plan.mode != SellerPlan::Mode::kKeep && !slot_cohorts.empty()
                           ? slot_cohorts.front().birth + plan.decision_age
                           : kNever;
      next_expire[i] = plan.mode == SellerPlan::Mode::kKeep && !slot_cohorts.empty()
                           ? slot_cohorts.front().birth + term
                           : kNever;
      young[i] = 0;
      worked[i].clear();
      events[i].clear();
      total_on_demand[i] = 0.0;
      total_upfront[i] = 0.0;
      total_reserved[i] = 0.0;
      total_income[i] = 0.0;
      made[i] = 0;
      sold[i] = 0;
      on_demand_hours[i] = 0;
    }
  }
};

/// Runs one (purchaser, seller) pass over `n` slots up to `max_horizon`.
/// Templated on the seller mode so the per-slot-per-hour mode tests
/// resolve at compile time — the hot loop is emitted once per mode with
/// the dead stages removed.
template <SellerPlan::Mode kMode>
void run_seller_pass_impl(ShardColumns& cols, std::size_t n, Hour max_horizon,
                          const SellerPlan& plan, const SimulationConfig& config) {
  RIMARKET_EXPECTS(n <= cols.active.size());
  RIMARKET_EXPECTS(max_horizon >= 0);
  const Hour term = config.type.term;
  cols.reset_pass(n, plan, term);
  const double price_on_demand = config.type.on_demand_hourly.value();
  const double price_upfront = config.type.upfront.value();
  const double price_reserved = config.type.reserved_hourly.value();
  const double income_per_sale = plan.income_per_sale.value();
  const bool bill_worked_only =
      config.charge_policy == fleet::ChargePolicy::kWorkedHoursOnly;
  const bool idle_resale = config.idle_resale_rate > Rate{0.0};
  const double idle_rate = config.idle_resale_rate.value();
  const double idle_prob = config.idle_resale_probability.value();

  // Hour-major over the shard, one fused sweep per hour.  Each slot's
  // arithmetic is fully independent (no cross-user accumulator exists), so
  // per-user FP ordering — the parity contract — is unchanged whether the
  // bookkeeping / Eq. (1) / credit stages run as separate column passes or
  // back-to-back per slot.  Fused, the per-hour scratch (demand, booked,
  // served, income) stays in registers instead of round-tripping through
  // four columns, which is most of the kernel's memory traffic.
  for (Hour t = 0; t < max_horizon; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      if (t >= cols.horizon[i]) {
        continue;
      }
      // Stage 1: bookkeeping (booking, expiry, decision, sales) — mirrors
      // run_loop's within-hour order: book n_t, settle expiry, decide+sell.
      const Count demand = t < cols.trace_len[i] ? cols.trace_data[i][t] : 0;
      Count booked = 0;
      if (cols.next_book[i] == t) {
        const Cohort* cohorts = cols.cohort_data[i];
        std::size_t idx = cols.book_idx[i];
        booked = cohorts[idx].count;
        ++idx;
        cols.book_idx[i] = idx;
        cols.next_book[i] = idx < cols.cohort_count[i] ? cohorts[idx].birth : kNever;
        cols.active[i] += booked;
        cols.made[i] += booked;
        if constexpr (kMode == SellerPlan::Mode::kBeta) {
          for (Count m = 0; m < booked; ++m) {
            cols.worked[i].push(0);
          }
          cols.young[i] += booked;
        }
      }
      // Expiry: next_expire covers both flavours (kKeep cohort expiry and
      // kBeta kept-cohort events; kNever for kSellAll, whose cohorts are
      // always sold whole at age f*T < T before any could expire).
      while (cols.next_expire[i] <= t) {
        if constexpr (kMode == SellerPlan::Mode::kKeep) {
          const Cohort* cohorts = cols.cohort_data[i];
          std::size_t idx = cols.expire_idx[i];
          cols.active[i] -= cohorts[idx].count;
          ++idx;
          cols.expire_idx[i] = idx;
          cols.next_expire[i] =
              idx < cols.cohort_count[i] ? cohorts[idx].birth + term : kNever;
        } else {
          cols.active[i] -= cols.events[i].front().kept;
          cols.events[i].pop(1);
          cols.next_expire[i] =
              cols.events[i].empty() ? kNever : cols.events[i].front().hour;
        }
      }
      double hour_income = 0.0;
      if (cols.next_decide[i] == t) {
        const Cohort* cohorts = cols.cohort_data[i];
        std::size_t idx = cols.decide_idx[i];
        const Cohort cohort = cohorts[idx];
        ++idx;
        cols.decide_idx[i] = idx;
        cols.next_decide[i] =
            idx < cols.cohort_count[i] ? cohorts[idx].birth + plan.decision_age : kNever;
        Count sold_now = 0;
        if constexpr (kMode == SellerPlan::Mode::kSellAll) {
          sold_now = cohort.count;
        } else {
          const Hour* member = cols.worked[i].data();
          for (Count m = 0; m < cohort.count; ++m) {
            // The oracle's FixedSpotSelling::should_sell comparison.
            if (Hours{member[m]} < plan.break_even) {
              ++sold_now;
            }
          }
          cols.worked[i].pop(static_cast<std::size_t>(cohort.count));
          cols.young[i] -= cohort.count;
          const Count kept = cohort.count - sold_now;
          if (kept > 0) {
            cols.events[i].push(ExpiryEvent{cohort.birth + term, kept});
            cols.next_expire[i] = cols.events[i].front().hour;
          }
        }
        cols.active[i] -= sold_now;
        cols.sold[i] += sold_now;
        // Sale income accumulated sale by sale, like the oracle's per-id
        // loop — k repeated additions, not one multiply.
        for (Count s = 0; s < sold_now; ++s) {
          hour_income += income_per_sale;
        }
      }

      // Stage 2: the Eq. (1) arithmetic.  Identical expressions to
      // fleet::hourly_cost + run_loop's income lines, so every double
      // matches the oracle bit for bit; the audit checks of the per-user
      // path are value-free and may be skipped (the parity property tests
      // take their place).
      const Count active = cols.active[i];
      const Count served = demand < active ? demand : active;
      const Count on_demand = demand - served;
      cols.on_demand_hours[i] += on_demand;
      const Count billed = bill_worked_only ? served : active;
      cols.total_on_demand[i] += static_cast<double>(on_demand) * price_on_demand;
      cols.total_upfront[i] += static_cast<double>(booked) * price_upfront;
      cols.total_reserved[i] += static_cast<double>(billed) * price_reserved;
      if (idle_resale) {
        const Count idle = active - served;
        hour_income += static_cast<double>(idle) * idle_rate * idle_prob;
      }
      cols.total_income[i] += hour_income;

      // Stage 3 (kBeta only): worked-hours credit.  The ledger serves
      // oldest-first, so the young contracts that worked this hour are the
      // first max(0, served - old) members of the FIFO — one contiguous
      // prefix add.
      if constexpr (kMode == SellerPlan::Mode::kBeta) {
        const Count old_members = active - cols.young[i];
        const Count credit = served - old_members;
        if (credit > 0) {
          Hour* member = cols.worked[i].data();
          for (Count m = 0; m < credit; ++m) {
            ++member[m];
          }
        }
      }
    }
  }
}

void run_seller_pass(ShardColumns& cols, std::size_t n, Hour max_horizon,
                     const SellerPlan& plan, const SimulationConfig& config) {
  switch (plan.mode) {
    case SellerPlan::Mode::kKeep:
      run_seller_pass_impl<SellerPlan::Mode::kKeep>(cols, n, max_horizon, plan, config);
      return;
    case SellerPlan::Mode::kSellAll:
      run_seller_pass_impl<SellerPlan::Mode::kSellAll>(cols, n, max_horizon, plan, config);
      return;
    case SellerPlan::Mode::kBeta:
      run_seller_pass_impl<SellerPlan::Mode::kBeta>(cols, n, max_horizon, plan, config);
      return;
  }
  RIMARKET_UNREACHABLE("unhandled seller mode");
}

// ---------------------------------------------------------------------
// Shard processing.

/// One user's slot in a shard: either a loaded user or its ingestion error
/// (streaming sources only; in-memory spans always load).
struct ShardEntry {
  const workload::User* user = nullptr;
  bool ok = true;
  common::CsvError error;
  int failed_id = 0;
};

struct UserOutcome {
  int user_id = 0;
  AdmissionOutcome admission;
  std::vector<ScenarioResult> results;  ///< admitted users only
};

struct ShardOutcome {
  std::size_t index = 0;
  std::vector<UserOutcome> users;
};

ShardOutcome process_shard(std::size_t shard_index, const std::vector<ShardEntry>& entries,
                           const EvaluationSpec& spec, const std::vector<SellerPlan>& plans) {
  RIMARKET_INJECT(fi::kSiteBatchShardStep);
  ShardOutcome outcome;
  outcome.index = shard_index;
  outcome.users.resize(entries.size());

  // Admission sweep: ingestion errors and the oracle's per-attempt chaos
  // probe, in shard order.
  std::vector<std::size_t> admitted;
  admitted.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    UserOutcome& user_outcome = outcome.users[i];
    if (!entries[i].ok) {
      user_outcome.user_id = entries[i].failed_id;
      if (spec.failure_policy == FailurePolicy::kFailFast) {
        user_outcome.admission.failure =
            UserFailure{entries[i].failed_id, entries[i].error.to_string()};
      } else {
        QuarantinedUser entry;
        entry.user_id = entries[i].failed_id;
        entry.attempts = 1;  // ingestion is not retried
        entry.message = entries[i].error.to_string();
        user_outcome.admission.quarantined = std::move(entry);
      }
      continue;
    }
    const workload::User& user = *entries[i].user;
    user_outcome.user_id = user.id;
    user_outcome.admission = admit_user(user, spec);
    if (user_outcome.admission.admitted) {
      user_outcome.results.reserve(spec.purchasers.size() * spec.sellers.size());
      admitted.push_back(i);
    }
  }
  if (admitted.empty()) {
    return outcome;
  }

  // Shard columns: static inputs set once.
  const std::size_t n = admitted.size();
  ShardColumns cols;
  cols.resize(n);
  Hour max_horizon = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const workload::User& user = *entries[admitted[slot]].user;
    cols.trace_data[slot] = user.trace.values().data();
    cols.trace_len[slot] = user.trace.length();
    cols.horizon[slot] = spec.sim.effective_horizon(user.trace);
    max_horizon = std::max(max_horizon, cols.horizon[slot]);
  }

  std::vector<std::vector<Cohort>> cohorts(n);
  for (const purchasing::PurchaserKind kind : spec.purchasers) {
    // Phase A: replay the real purchasers under the shared seed contract.
    for (std::size_t slot = 0; slot < n; ++slot) {
      const workload::User& user = *entries[admitted[slot]].user;
      const std::uint64_t run_seed =
          seeding::per_run_seed(spec.seed, user.id, static_cast<int>(kind));
      const auto purchaser = purchasing::make_purchaser(kind, spec.sim.type, run_seed);
      generate_cohorts(user.trace, *purchaser, cols.horizon[slot], spec.sim.type.term,
                       cohorts[slot]);
      cols.cohorts[slot] = &cohorts[slot];
    }
    // Phase B: one columnar pass per seller.
    for (const SellerPlan& plan : plans) {
      run_seller_pass(cols, n, max_horizon, plan, spec.sim);
      for (std::size_t slot = 0; slot < n; ++slot) {
        const workload::User& user = *entries[admitted[slot]].user;
        ScenarioResult result;
        result.user_id = user.id;
        result.group = user.group;
        result.purchaser = kind;
        result.seller = plan.spec;
        result.net_cost = fleet::CostBreakdown{Money{cols.total_on_demand[slot]},
                                               Money{cols.total_upfront[slot]},
                                               Money{cols.total_reserved[slot]},
                                               Money{cols.total_income[slot]}}
                              .net();
        result.reservations_made = cols.made[slot];
        result.instances_sold = cols.sold[slot];
        result.on_demand_hours = cols.on_demand_hours[slot];
        outcome.users[admitted[slot]].results.push_back(result);
      }
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------
// Checkpoint format (text, line-based, hexfloat doubles for exact
// round-trip; see DESIGN.md §12):
//
//   rimarket-batch-checkpoint v1
//   fp <16-hex spec fingerprint>
//   S <index> <user count>          -- one completed shard...
//   U <user_id> <admitted> <retries> <faults> <backoff %a>
//   Q <user_id> <attempts> <site> <message>      (escaped tokens)
//   F <user_id> <message>
//   R <group> <purchaser> <seller kind> <fraction %a> <net %a> <made> <sold> <odh>
//   E <index>                        -- ...closed by its end marker
//
// A shard without its E marker (killed mid-write before the rename — not
// actually possible, but cheap to guard) is discarded; any malformed line
// invalidates the whole file and the sweep restarts from scratch.

std::string escape_token(std::string_view text) {
  if (text.empty()) {
    return "\\e";
  }
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape_token(std::string_view token) {
  if (token == "\\e") {
    return std::string();
  }
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\') {
      out += token[i];
      continue;
    }
    if (++i == token.size()) {
      return std::nullopt;
    }
    switch (token[i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      default: return std::nullopt;
    }
  }
  return out;
}

std::string hexfloat(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

// lint-allow(contract-guard): total hash-mixing step, no invalid inputs.
void mix(std::uint64_t& hash, std::uint64_t value) {
  hash ^= value;
  hash = common::splitmix64(hash);
}

// lint-allow(contract-guard): total hash-mixing step, no invalid inputs.
void mix_double(std::uint64_t& hash, double value) {
  mix(hash, std::bit_cast<std::uint64_t>(value));
}

// lint-allow(contract-guard): total hash-mixing step, no invalid inputs.
void mix_string(std::uint64_t& hash, std::string_view text) {
  mix(hash, text.size());
  for (const char c : text) {
    mix(hash, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
}

/// Everything that must match for a checkpoint to be resumable: the spec's
/// economics, seller line-up, seed/failure knobs, the chaos schedule and
/// the shard size.  User identity is verified separately, shard by shard,
/// against the S records.
std::uint64_t spec_fingerprint(const EvaluationSpec& spec, std::size_t shard_size) {
  std::uint64_t hash = 0x5262696d61726b65ULL;  // arbitrary non-zero start
  mix(hash, spec.seed);
  mix(hash, static_cast<std::uint64_t>(spec.failure_policy));
  mix(hash, static_cast<std::uint64_t>(spec.max_attempts));
  mix_double(hash, spec.backoff_base_ms);
  mix(hash, shard_size);
  for (const purchasing::PurchaserKind kind : spec.purchasers) {
    mix(hash, static_cast<std::uint64_t>(kind) + 1);
  }
  for (const SellerSpec& seller : spec.sellers) {
    mix(hash, static_cast<std::uint64_t>(seller.kind) + 1);
    mix_double(hash, seller.fraction.value());
  }
  const SimulationConfig& sim = spec.sim;
  mix_string(hash, sim.type.name);
  mix_double(hash, sim.type.on_demand_hourly.value());
  mix_double(hash, sim.type.upfront.value());
  mix_double(hash, sim.type.reserved_hourly.value());
  mix(hash, static_cast<std::uint64_t>(sim.type.term));
  mix_double(hash, sim.selling_discount.value());
  mix_double(hash, sim.service_fee.value());
  mix(hash, static_cast<std::uint64_t>(sim.charge_policy));
  mix(hash, static_cast<std::uint64_t>(sim.horizon));
  mix_double(hash, sim.idle_resale_rate.value());
  mix_double(hash, sim.idle_resale_probability.value());
  if (spec.chaos_schedule != nullptr) {
    mix(hash, spec.chaos_schedule->seed());
    for (const fi::Rule& rule : spec.chaos_schedule->rules()) {
      mix_string(hash, rule.site_pattern);
      mix(hash, static_cast<std::uint64_t>(rule.kind));
      mix_double(hash, rule.probability);
      mix(hash, rule.nth_hit);
    }
  }
  return hash;
}

// lint-allow(contract-guard): append-only formatter; any ShardOutcome is
// serializable and the loader validates on the way back in.
void serialize_shard(const ShardOutcome& shard, std::string& out) {
  out += common::format("S %zu %zu\n", shard.index, shard.users.size());
  for (const UserOutcome& user : shard.users) {
    out += common::format("U %d %d %llu %llu %s\n", user.user_id,
                          user.admission.admitted ? 1 : 0,
                          static_cast<unsigned long long>(user.admission.retries),
                          static_cast<unsigned long long>(user.admission.faults),
                          hexfloat(user.admission.backoff_ms).c_str());
    if (user.admission.quarantined.has_value()) {
      const QuarantinedUser& entry = *user.admission.quarantined;
      out += common::format("Q %d %d %s %s\n", entry.user_id, entry.attempts,
                            escape_token(entry.site).c_str(),
                            escape_token(entry.message).c_str());
    }
    if (user.admission.failure.has_value()) {
      out += common::format("F %d %s\n", user.admission.failure->user_id,
                            escape_token(user.admission.failure->message).c_str());
    }
    for (const ScenarioResult& result : user.results) {
      out += common::format("R %d %d %d %s %s %lld %lld %lld\n",
                            static_cast<int>(result.group),
                            static_cast<int>(result.purchaser),
                            static_cast<int>(result.seller.kind),
                            hexfloat(result.seller.fraction.value()).c_str(),
                            hexfloat(result.net_cost.value()).c_str(),
                            static_cast<long long>(result.reservations_made),
                            static_cast<long long>(result.instances_sold),
                            static_cast<long long>(result.on_demand_hours));
    }
  }
  out += common::format("E %zu\n", shard.index);
}

bool write_checkpoint(const std::string& path, std::uint64_t fingerprint,
                      const std::deque<ShardOutcome>& shards) {
  try {
    RIMARKET_INJECT(fi::kSiteBatchCheckpointWrite);
    std::string out = "rimarket-batch-checkpoint v1\n";
    out += common::format("fp %016llx\n", static_cast<unsigned long long>(fingerprint));
    for (const ShardOutcome& shard : shards) {
      serialize_shard(shard, out);
    }
    // Durable-file discipline (common/durable_file.hpp): the temporary is
    // written, fsynced, renamed over `path`, and removed on every failure
    // path — the old hand-rolled writer leaked `<path>.tmp` when the write
    // itself failed.
    if (!common::durable::atomic_replace(path, out, common::durable::FsyncMode::kAlways)) {
      common::log_warn("batch sweep: cannot publish checkpoint %s; continuing without",
                       path.c_str());
      return false;
    }
    return true;
  } catch (const std::exception& error) {
    // An injected (or genuinely thrown) checkpoint-write failure degrades
    // the run to "no checkpoint this round", never kills it.
    common::log_warn("batch sweep: checkpoint write failed (%s); continuing without",
                     error.what());
    return false;
  }
}

/// Line-based tokenizer state over the checkpoint text.
struct CheckpointParser {
  std::string_view text;
  std::size_t pos = 0;

  bool next_line(std::vector<std::string_view>& tokens) {
    tokens.clear();
    if (pos >= text.size()) {
      return false;
    }
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    while (!line.empty()) {
      const std::size_t space = line.find(' ');
      if (space == std::string_view::npos) {
        tokens.push_back(line);
        break;
      }
      tokens.push_back(line.substr(0, space));
      line.remove_prefix(space + 1);
    }
    return !tokens.empty();
  }
};

std::optional<long long> parse_ll(std::string_view token) {
  return common::parse_int(token);
}

std::optional<double> parse_hexfloat(std::string_view token) {
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

/// Loads and validates a checkpoint; nullopt (plus a warning) on any
/// mismatch or corruption — the sweep then simply restarts from scratch.
std::optional<std::deque<ShardOutcome>> load_checkpoint(const std::string& path,
                                                        std::uint64_t fingerprint) {
  common::CsvError error;
  const auto contents = common::read_file(path, &error);
  if (!contents) {
    if (error.errno_value != ENOENT) {
      common::log_warn("batch sweep: cannot read checkpoint: %s", error.to_string().c_str());
    }
    return std::nullopt;
  }
  if (RIMARKET_INJECT_PARSE(fi::kSiteBatchCheckpointLoad)) {
    common::log_warn("batch sweep: checkpoint %s unreadable (injected); starting fresh",
                     path.c_str());
    return std::nullopt;
  }
  const auto corrupt = [&path]() -> std::optional<std::deque<ShardOutcome>> {
    common::log_warn("batch sweep: checkpoint %s is corrupt; starting fresh", path.c_str());
    return std::nullopt;
  };
  CheckpointParser parser{*contents};
  std::vector<std::string_view> tokens;
  if (!parser.next_line(tokens) || tokens.size() != 2 ||
      tokens[0] != "rimarket-batch-checkpoint" || tokens[1] != "v1") {
    return corrupt();
  }
  if (!parser.next_line(tokens) || tokens.size() != 2 || tokens[0] != "fp") {
    return corrupt();
  }
  {
    const std::string fp_text(tokens[1]);
    char* end = nullptr;
    const std::uint64_t got = std::strtoull(fp_text.c_str(), &end, 16);
    if (end == fp_text.c_str() || *end != '\0') {
      return corrupt();
    }
    if (got != fingerprint) {
      common::log_warn(
          "batch sweep: checkpoint %s belongs to a different spec; starting fresh",
          path.c_str());
      return std::nullopt;
    }
  }
  std::deque<ShardOutcome> shards;
  std::optional<ShardOutcome> current;
  std::size_t expected_users = 0;
  while (parser.next_line(tokens)) {
    if (tokens[0] == "S") {
      if (current.has_value() || tokens.size() != 3) {
        return corrupt();
      }
      const auto index = parse_ll(tokens[1]);
      const auto count = parse_ll(tokens[2]);
      if (!index || !count || *index < 0 || *count < 0 ||
          static_cast<std::size_t>(*index) != shards.size()) {
        return corrupt();
      }
      current.emplace();
      current->index = static_cast<std::size_t>(*index);
      expected_users = static_cast<std::size_t>(*count);
    } else if (tokens[0] == "U") {
      if (!current || tokens.size() != 6) {
        return corrupt();
      }
      const auto id = parse_ll(tokens[1]);
      const auto admitted = parse_ll(tokens[2]);
      const auto retries = parse_ll(tokens[3]);
      const auto faults = parse_ll(tokens[4]);
      const auto backoff = parse_hexfloat(tokens[5]);
      if (!id || !admitted || !retries || !faults || !backoff ||
          (*admitted != 0 && *admitted != 1)) {
        return corrupt();
      }
      UserOutcome user;
      user.user_id = static_cast<int>(*id);
      user.admission.admitted = *admitted == 1;
      user.admission.retries = static_cast<std::uint64_t>(*retries);
      user.admission.faults = static_cast<std::uint64_t>(*faults);
      user.admission.backoff_ms = *backoff;
      current->users.push_back(std::move(user));
    } else if (tokens[0] == "Q") {
      if (!current || current->users.empty() || tokens.size() != 5) {
        return corrupt();
      }
      const auto id = parse_ll(tokens[1]);
      const auto attempts = parse_ll(tokens[2]);
      const auto site = unescape_token(tokens[3]);
      const auto message = unescape_token(tokens[4]);
      if (!id || !attempts || !site || !message) {
        return corrupt();
      }
      QuarantinedUser entry;
      entry.user_id = static_cast<int>(*id);
      entry.attempts = static_cast<int>(*attempts);
      entry.site = *site;
      entry.message = *message;
      current->users.back().admission.quarantined = std::move(entry);
    } else if (tokens[0] == "F") {
      if (!current || current->users.empty() || tokens.size() != 3) {
        return corrupt();
      }
      const auto id = parse_ll(tokens[1]);
      const auto message = unescape_token(tokens[2]);
      if (!id || !message) {
        return corrupt();
      }
      current->users.back().admission.failure =
          UserFailure{static_cast<int>(*id), *message};
    } else if (tokens[0] == "R") {
      if (!current || current->users.empty() || tokens.size() != 9) {
        return corrupt();
      }
      const auto group = parse_ll(tokens[1]);
      const auto purchaser = parse_ll(tokens[2]);
      const auto seller_kind = parse_ll(tokens[3]);
      const auto fraction = parse_hexfloat(tokens[4]);
      const auto net = parse_hexfloat(tokens[5]);
      const auto made = parse_ll(tokens[6]);
      const auto sold = parse_ll(tokens[7]);
      const auto odh = parse_ll(tokens[8]);
      if (!group || !purchaser || !seller_kind || !fraction || !net || !made || !sold ||
          !odh) {
        return corrupt();
      }
      UserOutcome& user = current->users.back();
      ScenarioResult result;
      result.user_id = user.user_id;
      result.group = static_cast<workload::FluctuationGroup>(*group);
      result.purchaser = static_cast<purchasing::PurchaserKind>(*purchaser);
      result.seller.kind = static_cast<SellerKind>(*seller_kind);
      result.seller.fraction = Fraction{*fraction};
      result.net_cost = Money{*net};
      result.reservations_made = *made;
      result.instances_sold = *sold;
      result.on_demand_hours = *odh;
      user.results.push_back(result);
    } else if (tokens[0] == "E") {
      if (!current || tokens.size() != 2) {
        return corrupt();
      }
      const auto index = parse_ll(tokens[1]);
      if (!index || static_cast<std::size_t>(*index) != current->index ||
          current->users.size() != expected_users) {
        return corrupt();
      }
      shards.push_back(*std::move(current));
      current.reset();
    } else {
      return corrupt();
    }
  }
  // A trailing shard without its E marker is simply not resumed from.
  return shards;
}

// ---------------------------------------------------------------------
// Orchestration.

/// Pulls the next shard's entries.  Returns false at end of input.  The
/// users backing `entries` live in `owned` (streaming) or the caller's
/// span (in-memory).
class ShardFeed {
 public:
  virtual ~ShardFeed() = default;
  virtual bool next(std::vector<ShardEntry>& entries,
                    std::vector<workload::User>& owned) = 0;
};

class SpanShardFeed final : public ShardFeed {
 public:
  SpanShardFeed(std::span<const workload::User> users, std::size_t shard_size)
      : users_(users), shard_size_(shard_size) {}

  bool next(std::vector<ShardEntry>& entries, std::vector<workload::User>& owned) override {
    (void)owned;
    if (position_ >= users_.size()) {
      return false;
    }
    const std::size_t count = std::min(shard_size_, users_.size() - position_);
    entries.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      entries[i] = ShardEntry{};
      entries[i].user = &users_[position_ + i];
    }
    position_ += count;
    return true;
  }

 private:
  std::span<const workload::User> users_;
  std::size_t shard_size_;
  std::size_t position_ = 0;
};

class SourceShardFeed final : public ShardFeed {
 public:
  SourceShardFeed(workload::UserStreamSource& source, std::size_t shard_size)
      : source_(source), shard_size_(shard_size) {}

  bool next(std::vector<ShardEntry>& entries, std::vector<workload::User>& owned) override {
    entries.clear();
    owned.clear();
    owned.reserve(shard_size_);
    workload::StreamedUser unit;
    while (entries.size() < shard_size_ && source_.next(unit)) {
      ShardEntry entry;
      if (unit.ok) {
        owned.push_back(std::move(unit.user));
        // Pointers stay valid: `owned` was reserved to shard_size above.
        entry.user = &owned.back();
      } else {
        entry.ok = false;
        entry.error = unit.error;
        entry.failed_id = unit.user.id;
      }
      entries.push_back(std::move(entry));
    }
    return !entries.empty();
  }

 private:
  workload::UserStreamSource& source_;
  std::size_t shard_size_;
};

void accumulate_sweep_metrics(const SweepReport& report) {
  common::MetricsRegistry& registry = common::MetricsRegistry::global();
  registry.increment("sweep.retries", static_cast<std::int64_t>(report.retries));
  registry.increment("sweep.quarantined", static_cast<std::int64_t>(report.quarantined.size()));
  registry.increment("sweep.injected_faults",
                     static_cast<std::int64_t>(report.injected_faults));
  registry.add("sweep.virtual_backoff_ms", report.virtual_backoff_ms);
}

}  // namespace

// lint-allow(contract-guard): pure predicate over the spec; `why` may be
// null by design and every spec value is a legal question to ask.
bool BatchSweepEngine::supported(const EvaluationSpec& spec, std::string* why) {
  const auto unsupported = [why](std::string message) {
    if (why != nullptr) {
      *why = std::move(message);
    }
    return false;
  };
  for (const SellerSpec& seller : spec.sellers) {
    switch (seller.kind) {
      case SellerKind::kKeepReserved:
      case SellerKind::kAllSelling:
      case SellerKind::kA3T4:
      case SellerKind::kAT2:
      case SellerKind::kAT4:
        break;
      default:
        return unsupported(common::format(
            "seller \"%s\" is outside the batch parity contract (paper line-up only)",
            seller_name(seller).c_str()));
    }
  }
  if (spec.sim.income_model) {
    return unsupported(
        "custom income models are outside the batch parity contract "
        "(their call order is a per-user-loop implementation detail)");
  }
  return true;
}

BatchSweepEngine::BatchSweepEngine(const EvaluationSpec& spec, BatchOptions options)
    : spec_(spec), options_(std::move(options)) {
  std::string why;
  if (!supported(spec_, &why)) {
    throw std::invalid_argument(common::format("batch sweep: %s", why.c_str()));
  }
  RIMARKET_EXPECTS(options_.shard_size >= 1);
  RIMARKET_EXPECTS(options_.checkpoint_every_shards >= 1);
  RIMARKET_EXPECTS(options_.max_shards_per_run == 0 || !options_.checkpoint_path.empty());
  RIMARKET_EXPECTS(spec_.max_attempts >= 1);
  RIMARKET_EXPECTS(spec_.backoff_base_ms >= 0.0);
  RIMARKET_EXPECTS(!spec_.sellers.empty());
  RIMARKET_EXPECTS(spec_.sim.type.valid());
  RIMARKET_EXPECTS(spec_.sim.service_fee < Fraction{1.0});
  RIMARKET_EXPECTS(spec_.sim.idle_resale_rate >= Rate{0.0});
}

namespace {

/// Shared driver for both input shapes: pull shards from `feed`, skip the
/// checkpointed prefix (verifying user ids), process the rest on the pool,
/// checkpoint along the way, and assemble the oracle-ordered report.
BatchSweepOutcome run_batch(const EvaluationSpec& spec, const BatchOptions& options,
                            ShardFeed& feed, std::optional<std::size_t> known_total) {
  RIMARKET_EXPECTS(!spec.sellers.empty());
  RIMARKET_EXPECTS(options.shard_size >= 1);
  const std::vector<SellerPlan> plans = build_seller_plans(spec);
  const std::uint64_t fingerprint = spec_fingerprint(spec, options.shard_size);
  const bool checkpointing = !options.checkpoint_path.empty();

  std::deque<ShardOutcome> done;  // completed shards, in index order
  std::size_t resumed = 0;
  if (checkpointing) {
    if (auto loaded = load_checkpoint(options.checkpoint_path, fingerprint)) {
      done = *std::move(loaded);
      resumed = done.size();
      if (resumed > 0) {
        common::log_info("batch sweep: resuming after %zu checkpointed shard(s)", resumed);
      }
    }
  }

  struct PendingShard {
    std::size_t index = 0;
    std::vector<workload::User> owned;
    std::vector<ShardEntry> entries;
    std::future<ShardOutcome> future;
  };

  // Declared BEFORE the pool: when an exception unwinds this frame, the
  // pool's destructor must join its workers while the PendingShards their
  // tasks reference are still alive.
  std::deque<std::unique_ptr<PendingShard>> in_flight;
  common::ThreadPool pool(spec.threads);
  // Bound in-flight shards so a streaming million-user run holds only a
  // few shards of traces in memory at once.
  const std::size_t window = 2 * pool.thread_count() + 1;
  std::size_t next_index = 0;
  std::size_t processed_this_run = 0;
  bool exhausted = false;
  bool sliced_out = false;

  const auto verify_resumed_shard = [&](const std::vector<ShardEntry>& entries,
                                        const ShardOutcome& recorded) {
    bool matches = entries.size() == recorded.users.size();
    for (std::size_t i = 0; matches && i < entries.size(); ++i) {
      const int id = entries[i].ok ? entries[i].user->id : entries[i].failed_id;
      matches = id == recorded.users[i].user_id;
    }
    if (!matches) {
      throw std::runtime_error(common::format(
          "batch sweep: checkpoint %s does not match the input population at shard %zu",
          options.checkpoint_path.c_str(), recorded.index));
    }
  };

  const auto pull_and_submit = [&]() {
    while (!exhausted && !sliced_out && in_flight.size() < window) {
      if (options.max_shards_per_run > 0 &&
          processed_this_run + in_flight.size() >= options.max_shards_per_run) {
        sliced_out = true;
        return;
      }
      auto pending = std::make_unique<PendingShard>();
      if (!feed.next(pending->entries, pending->owned)) {
        exhausted = true;
        return;
      }
      pending->index = next_index++;
      if (pending->index < resumed) {
        // Already checkpointed: verify identity, drop the work.
        verify_resumed_shard(pending->entries, done[pending->index]);
        continue;
      }
      PendingShard* raw = pending.get();
      pending->future = pool.submit_with_result(
          [raw, &spec, &plans]() { return process_shard(raw->index, raw->entries, spec, plans); });
      in_flight.push_back(std::move(pending));
    }
  };

  pull_and_submit();
  while (!in_flight.empty()) {
    std::unique_ptr<PendingShard> front = std::move(in_flight.front());
    in_flight.pop_front();
    done.push_back(front->future.get());
    front.reset();
    ++processed_this_run;
    if (checkpointing && processed_this_run % options.checkpoint_every_shards == 0) {
      write_checkpoint(options.checkpoint_path, fingerprint, done);
    }
    pull_and_submit();
  }
  pool.export_metrics(common::MetricsRegistry::global(), "sim.batch");

  BatchSweepOutcome outcome;
  outcome.shards_done = done.size();
  outcome.finished = !sliced_out;
  outcome.shards_total =
      outcome.finished ? done.size() : (known_total.has_value() ? *known_total : 0);

  if (!outcome.finished) {
    // Time-sliced out: persist progress and return a partial report.
    write_checkpoint(options.checkpoint_path, fingerprint, done);
  }

  // Assembly, in the oracle's order: users by index, then (purchaser,
  // seller) within each user; quarantine sorted by id; counters summed in
  // user-index order (floating-point order matters for backoff).
  SweepReport& report = outcome.report;
  std::vector<UserFailure> failures;
  for (const ShardOutcome& shard : done) {
    for (const UserOutcome& user : shard.users) {
      report.retries += user.admission.retries;
      report.injected_faults += user.admission.faults;
      report.virtual_backoff_ms += user.admission.backoff_ms;
      if (user.admission.failure.has_value()) {
        failures.push_back(*user.admission.failure);
      } else if (user.admission.quarantined.has_value()) {
        report.quarantined.push_back(*user.admission.quarantined);
      } else {
        report.results.insert(report.results.end(), user.results.begin(), user.results.end());
      }
    }
  }
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [](const QuarantinedUser& a, const QuarantinedUser& b) {
              return a.user_id < b.user_id;
            });
  if (outcome.finished) {
    for (const QuarantinedUser& entry : report.quarantined) {
      common::log_warn("sweep: user %d quarantined after %d attempt(s)%s%s: %s", entry.user_id,
                       entry.attempts, entry.site.empty() ? "" : " at ", entry.site.c_str(),
                       entry.message.c_str());
    }
    accumulate_sweep_metrics(report);
    if (!failures.empty()) {
      std::sort(failures.begin(), failures.end(),
                [](const UserFailure& a, const UserFailure& b) {
                  return a.user_id < b.user_id;
                });
      for (const UserFailure& failure : failures) {
        common::log_warn("sweep: user %d failed: %s", failure.user_id,
                         failure.message.c_str());
      }
      throw SweepError(std::move(failures));
    }
    if (checkpointing) {
      std::remove(options.checkpoint_path.c_str());
    }
  }
  return outcome;
}

}  // namespace

// lint-allow(contract-guard): preconditions were validated by the
// constructor; run_batch re-asserts the load-bearing ones.
BatchSweepOutcome BatchSweepEngine::run(std::span<const workload::User> users) {
  SpanShardFeed feed(users, options_.shard_size);
  const std::size_t total =
      (users.size() + options_.shard_size - 1) / options_.shard_size;
  return run_batch(spec_, options_, feed, total);
}

// lint-allow(contract-guard): preconditions were validated by the
// constructor; run_batch re-asserts the load-bearing ones.
BatchSweepOutcome BatchSweepEngine::run(workload::UserStreamSource& source) {
  SourceShardFeed feed(source, options_.shard_size);
  return run_batch(spec_, options_, feed, std::nullopt);
}

SweepReport evaluate_sweep_batch(std::span<const workload::User> users,
                                 const EvaluationSpec& spec, const BatchOptions& options) {
  RIMARKET_EXPECTS(options.max_shards_per_run == 0);
  BatchSweepEngine engine(spec, options);
  BatchSweepOutcome outcome = engine.run(users);
  RIMARKET_ENSURES(outcome.finished);
  return std::move(outcome.report);
}

}  // namespace rimarket::sim
