#include "sim/simulator.hpp"

#include "common/assert.hpp"
#include "common/fault_injection.hpp"

namespace rimarket::sim {

Hour SimulationConfig::effective_horizon(const workload::DemandTrace& trace) const {
  RIMARKET_EXPECTS(horizon >= 0);
  return horizon > 0 ? horizon : trace.length();
}

Money SimulationConfig::sale_income(Hour age) const {
  const Money gross = income_model ? income_model(type, age, selling_discount)
                                   : type.sale_income(age, selling_discount);
  // Negative income would flip the sign of Eq. (1)'s s_t*a*rp*R term and
  // make "sell" look like a cost; even custom income models must not do it.
  RIMARKET_ENSURES(gross >= Money{0.0});
  // The marketplace fee applies uniformly: custom income models return
  // *gross* income, exactly like the default instant-sale path.
  return gross * service_fee.complement();
}

ReservationStream::ReservationStream(std::vector<Count> new_reservations)
    : new_reservations_(std::move(new_reservations)) {
  for (Count n : new_reservations_) {
    RIMARKET_EXPECTS(n >= 0);
  }
}

ReservationStream ReservationStream::generate(const workload::DemandTrace& trace,
                                              purchasing::PurchasePolicy& purchaser,
                                              Hour horizon, Hour term) {
  RIMARKET_EXPECTS(horizon >= 0);
  RIMARKET_EXPECTS(term >= 1);
  std::vector<Count> stream;
  stream.reserve(static_cast<std::size_t>(horizon));
  // The imitator runs against a keep-everything fleet: the active count it
  // sees is what the user would have without any marketplace activity.
  fleet::ReservationLedger ledger(term);
  for (Hour t = 0; t < horizon; ++t) {
    const Count demand = trace.at(t);
    const Count decided = purchaser.decide(t, demand, ledger.active_count(t));
    RIMARKET_CHECK_MSG(decided >= 0, "purchase policies must not return negative counts");
    for (Count i = 0; i < decided; ++i) {
      ledger.reserve(t);
    }
    ledger.assign(t, demand);
    stream.push_back(decided);
  }
  return ReservationStream(std::move(stream));
}

Count ReservationStream::at(Hour t) const {
  RIMARKET_EXPECTS(t >= 0);
  if (t >= length()) {
    return 0;
  }
  return new_reservations_[static_cast<std::size_t>(t)];
}

Count ReservationStream::total() const {
  Count total = 0;
  for (Count n : new_reservations_) {
    RIMARKET_CHECK_MSG(!__builtin_add_overflow(total, n, &total),
                       "reservation stream total overflows Count");
  }
  return total;
}

namespace {

/// Shared hour loop; `next_reservations` abstracts open- vs closed-loop.
template <typename NextReservations>
SimulationResult run_loop(const workload::DemandTrace& trace, selling::SellPolicy& seller,
                          const SimulationConfig& config, const WorkObserver* observer,
                          NextReservations&& next_reservations) {
  RIMARKET_EXPECTS(config.type.valid());
  // selling_discount, service_fee and idle_resale_probability are Fractions,
  // so their [0,1] range is already guaranteed by construction.
  RIMARKET_EXPECTS(config.service_fee < Fraction{1.0});
  RIMARKET_INJECT(common::fault_injection::kSiteRunLoop);
  RIMARKET_EXPECTS(config.idle_resale_rate >= Rate{0.0});
  const Hour horizon = config.effective_horizon(trace);

  fleet::ReservationLedger ledger(config.type.term, config.ledger_engine);
  fleet::CostLedger costs(config.keep_hourly_series);
  // Hot-loop buffers, hoisted so steady-state hours allocate nothing.
  std::vector<fleet::ReservationId> served;
  std::vector<fleet::ReservationId> to_sell;
  std::vector<fleet::ReservationId>* served_ptr = observer != nullptr ? &served : nullptr;

  for (Hour t = 0; t < horizon; ++t) {
    const Count demand = trace.at(t);
    seller.observe(t, demand);
    const Count booked = next_reservations(t, demand, ledger);
    for (Count i = 0; i < booked; ++i) {
      ledger.reserve(t);
      costs.count_reservation();
    }
    // Sales settle *before* the hour's assignment and accounting: Eq. (1)'s
    // s_t removes the instance from the fleet at the decision spot, so hour
    // t's r_t, reserved-rate charge and idle-resale income all exclude it
    // (see DESIGN.md "Sale timing").  active_count also settles expiry so
    // the policy sees the hour's true fleet.
    const Count active_before_sales = ledger.active_count(t);
    seller.decide(t, ledger, to_sell);
    Money sale_income{0.0};
    for (const fleet::ReservationId id : to_sell) {
      sale_income += config.sale_income(ledger.get(id).age(t));
      ledger.sell(id, t);
      costs.count_sale();
    }
    const auto sold_this_hour = static_cast<Count>(to_sell.size());
    const fleet::AssignmentResult assignment = ledger.assign(t, demand, served_ptr);
    if (observer != nullptr) {
      (*observer)(t, served);
    }
    fleet::CostBreakdown hour = fleet::hourly_cost(
        config.type, assignment.on_demand, booked, assignment.active,
        assignment.served_by_reserved, config.charge_policy);
    hour.sale_income += sale_income;
    if (config.idle_resale_rate > Rate{0.0}) {
      const Count idle = assignment.active - assignment.served_by_reserved;
      hour.sale_income += Money{static_cast<double>(idle) * config.idle_resale_rate.value() *
                                config.idle_resale_probability.value()};
    }
    fleet::audit_hourly_identity(config.type, hour, assignment.on_demand, booked,
                                 assignment.active, assignment.served_by_reserved,
                                 active_before_sales, sold_this_hour, config.charge_policy);
    costs.count_on_demand_hours(assignment.on_demand);
    costs.record(t, hour);
  }

  SimulationResult result;
  result.totals = costs.totals();
  result.reservations_made = costs.reservations_made();
  result.instances_sold = costs.instances_sold();
  result.on_demand_hours = costs.on_demand_hours();
  result.reservations.assign(ledger.all().begin(), ledger.all().end());
  result.hourly = costs.hourly();
  return result;
}

}  // namespace

// lint-allow(contract-guard): thin adapter — every precondition is checked
// centrally at the top of run_loop, shared with the closed-loop variant.
SimulationResult simulate(const workload::DemandTrace& trace, const ReservationStream& stream,
                          selling::SellPolicy& seller, const SimulationConfig& config,
                          const WorkObserver* observer) {
  return run_loop(trace, seller, config, observer,
                  [&stream](Hour t, Count /*demand*/, fleet::ReservationLedger& /*ledger*/) {
                    return stream.at(t);
                  });
}

// lint-allow(contract-guard): thin adapter — every precondition is checked
// centrally at the top of run_loop, shared with the open-loop variant.
SimulationResult simulate_closed_loop(const workload::DemandTrace& trace,
                                      purchasing::PurchasePolicy& purchaser,
                                      selling::SellPolicy& seller,
                                      const SimulationConfig& config) {
  return run_loop(trace, seller, config, nullptr,
                  [&purchaser](Hour t, Count demand, fleet::ReservationLedger& ledger) {
                    return purchaser.decide(t, demand, ledger.active_count(t));
                  });
}

}  // namespace rimarket::sim
