// Scenario descriptors: which selling policy to run, by name.
//
// The experiment layer sweeps (user x purchaser x seller); SellerSpec is
// the serializable description of the seller axis, and make_seller turns a
// spec into a fresh policy instance for one run.
#pragma once

#include <memory>
#include <string>

#include "selling/policy.hpp"
#include "sim/simulator.hpp"

namespace rimarket::sim {

enum class SellerKind {
  kKeepReserved,
  kAllSelling,     ///< sell unconditionally at the spot
  kA3T4,           ///< paper's A_{3T/4}
  kAT2,            ///< paper's A_{T/2}
  kAT4,            ///< paper's A_{T/4}
  kRandomizedSpot, ///< extension: random decision spot per reservation
  kContinuousSpot, ///< extension: arbitrary-spot rule (paper future work)
  kForecastSelling,///< prediction-based baseline (paper Section II contrast)
  kOfflineOptimal, ///< clairvoyant per-instance benchmark
};

struct SellerSpec {
  SellerKind kind = SellerKind::kKeepReserved;
  /// Decision-spot fraction for kAllSelling (the paper pairs All-selling
  /// with each algorithm's spot); ignored for the other kinds.
  Fraction fraction{0.75};
};

/// Display name ("A_{3T/4}", "all-selling@0.75T", ...).
std::string seller_name(const SellerSpec& spec);

/// Builds a fresh policy for one run.  For kOfflineOptimal the trace and
/// reservation stream are required (the plan needs hindsight); the other
/// kinds ignore them.
std::unique_ptr<selling::SellPolicy> make_seller(const SellerSpec& spec,
                                                 const SimulationConfig& config,
                                                 std::uint64_t seed,
                                                 const workload::DemandTrace* trace = nullptr,
                                                 const ReservationStream* stream = nullptr);

/// The decision fraction associated with a paper algorithm kind.
Fraction seller_fraction(const SellerSpec& spec);

}  // namespace rimarket::sim
