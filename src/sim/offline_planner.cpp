#include "sim/offline_planner.hpp"

#include <vector>

#include "common/assert.hpp"
#include "selling/baselines.hpp"
#include "theory/single_instance.hpp"

namespace rimarket::sim {

std::map<fleet::ReservationId, Hour> plan_offline_optimal(const workload::DemandTrace& trace,
                                                          const ReservationStream& stream,
                                                          const SimulationConfig& config) {
  const Hour term = config.type.term;
  // Shadow run: record every reservation's work schedule with no selling.
  std::vector<Hour> starts;
  std::vector<theory::WorkSchedule> schedules;
  const WorkObserver observer = [&](Hour t, std::span<const fleet::ReservationId> served) {
    for (const fleet::ReservationId id : served) {
      const auto index = static_cast<std::size_t>(id);
      RIMARKET_CHECK(index < schedules.size());
      const Hour offset = t - starts[index];
      RIMARKET_CHECK(offset >= 0 && offset < term);
      schedules[index][static_cast<std::size_t>(offset)] = true;
    }
  };
  // Pre-register reservations in stream order so ids line up with the
  // ledger's (ids are assigned sequentially from 0).
  const Hour horizon = config.effective_horizon(trace);
  for (Hour t = 0; t < horizon; ++t) {
    for (Count i = 0; i < stream.at(t); ++i) {
      starts.push_back(t);
      schedules.emplace_back(static_cast<std::size_t>(term), false);
    }
  }
  selling::KeepReservedPolicy keep;
  const SimulationResult shadow = simulate(trace, stream, keep, config, &observer);
  RIMARKET_CHECK_MSG(shadow.reservations.size() == schedules.size(),
                     "stream totals must match the shadow run's bookings");

  theory::SingleInstanceModel model;
  model.type = config.type;
  model.selling_discount = config.selling_discount;
  model.service_fee = config.service_fee;
  model.charge_policy = config.charge_policy;

  std::map<fleet::ReservationId, Hour> plan;
  for (std::size_t index = 0; index < schedules.size(); ++index) {
    const theory::OptimalSale best = theory::optimal_sale(model, schedules[index]);
    if (best.sell_at < term) {
      const Hour when = starts[index] + best.sell_at;
      if (when < horizon) {
        plan[static_cast<fleet::ReservationId>(index)] = when;
      }
    }
  }
  return plan;
}

SimulationResult simulate_offline_optimal(const workload::DemandTrace& trace,
                                          const ReservationStream& stream,
                                          const SimulationConfig& config) {
  selling::PlannedSellingPolicy planned(plan_offline_optimal(trace, stream, config));
  return simulate(trace, stream, planned, config);
}

}  // namespace rimarket::sim
