// Columnar batch sweep engine (ROADMAP item 1: million-user scale).
//
// `evaluate_sweep` walks one user at a time through the full object-model
// stack (ledger, Fenwick trees, policy virtuals) — ~118 ns per simulated
// hour.  The population-scale figures only need each scenario's *totals*,
// and for the paper's seller line-up (keep-reserved, all-selling and the
// A_{fT} family) the per-hour state collapses to a handful of counters per
// user thanks to the prefix-serving invariant (DESIGN.md §12):
//
//   * demand is served oldest-contract-first, so the hour's reserved-served
//     count is min(demand, active) and the worked-hours credit lands on a
//     *prefix* of the not-yet-decided ("young") contracts, oldest first;
//   * a contract is only ever examined once, at its decision age f*T, so
//     contracts older than that need no per-member state at all — just a
//     count and a scheduled expiry;
//   * within a cohort (contracts booked the same hour) the ledger's id
//     order equals booking order, so a FIFO of per-member worked counters
//     reproduces the ledger's credit assignment exactly.
//
// BatchSweepEngine packs that state into contiguous per-shard columns and
// steps all users of a shard hour by hour — a tight loop of integer updates
// and three multiplies, no virtual calls, no allocation.  The per-user path
// stays as the *oracle*, exactly like the kOptimized/kNaive ledger pair:
// property tests force byte-identical reports (exact double equality) on
// randomized populations, in both failure policies, under chaos schedules,
// and across checkpoint/resume cycles.
//
// What the engine reproduces bit-for-bit (same operands, same order):
//   * seeding: sim/seeding.hpp per_run_seed / attempt_scope_key;
//   * reservation streams: the real purchaser objects replayed against an
//     O(1)-per-hour active-window counter that matches
//     ReservationStream::generate's keep-everything ledger;
//   * chaos admission: the exact RIMARKET_INJECT sequence of evaluate_user
//     (kSiteEvaluateUser, then kSiteRunScenario + kSiteRunLoop per
//     scenario) probed per attempt under the same ScopedContext keys, with
//     the oracle's retry / virtual-backoff / quarantine bookkeeping;
//   * accounting: fleet::hourly_cost per hour, accumulated in hour order
//     through CostBreakdown::operator+=, sale income added sale by sale.
//
// Not supported (evaluate_sweep_batch throws std::invalid_argument, see
// supported()): stateful sellers outside the paper line-up
// (randomized/continuous/forecast/offline-optimal) and custom income
// models — their call order is an implementation detail of the per-user
// loop that a columnar engine cannot promise to reproduce.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>

#include "sim/runner.hpp"
#include "workload/streaming.hpp"

namespace rimarket::sim {

/// Knobs of one batch run.
struct BatchOptions {
  /// Users per shard: the unit of parallelism, checkpointing and peak
  /// memory (one shard of traces + columns resident per worker).  The
  /// default keeps a shard's columns + trace window cache-resident; sizes
  /// past ~512 measurably slow the hour sweep (each simulated hour re-walks
  /// every column), and the per-shard setup cost stops paying off below
  /// ~64.
  std::size_t shard_size = 128;
  /// When non-empty, the engine writes a resumable checkpoint here (atomic
  /// tmp-file + rename) and, if the file already exists and matches the
  /// spec fingerprint, skips the completed shard prefix on start.  The
  /// file is deleted when the sweep completes.
  std::string checkpoint_path;
  /// Write a checkpoint after every N completed shards (>= 1).
  std::size_t checkpoint_every_shards = 1;
  /// When > 0, process at most this many *new* shards, checkpoint, and
  /// return with `finished == false` (cooperative time-slicing; also how
  /// the kill/resume property is tested without killing the process).
  /// Requires a checkpoint_path.
  std::size_t max_shards_per_run = 0;
};

/// What a batch run produced.  `report` equals the oracle's SweepReport
/// byte-for-byte only when `finished` is true.
struct BatchSweepOutcome {
  SweepReport report;
  bool finished = true;
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
};

class BatchSweepEngine {
 public:
  /// Validates the spec (throws std::invalid_argument when !supported) and
  /// prepares the per-seller decision plans.
  BatchSweepEngine(const EvaluationSpec& spec, BatchOptions options);

  /// True when the spec's seller line-up and config are within the batch
  /// engine's parity contract; otherwise fills `*why` (when non-null).
  static bool supported(const EvaluationSpec& spec, std::string* why = nullptr);

  /// Runs the sweep over an in-memory population.  Byte-identical to
  /// evaluate_sweep(users, spec) when it returns finished (results,
  /// quarantine, retries, injected_faults, virtual_backoff_ms all equal;
  /// under kFailFast failures throw the same SweepError).
  BatchSweepOutcome run(std::span<const workload::User> users);

  /// Streaming variant: pulls users shard by shard from `source`, so only
  /// one shard of traces is resident per worker.  Ingestion failures
  /// (ok == false units) are quarantined with attempts == 1 under
  /// kQuarantine and join the SweepError under kFailFast.
  BatchSweepOutcome run(workload::UserStreamSource& source);

 private:
  EvaluationSpec spec_;
  BatchOptions options_;
};

/// One-shot convenience: run to completion (no time slicing) and return
/// the report, byte-identical to evaluate_sweep(users, spec).
SweepReport evaluate_sweep_batch(std::span<const workload::User> users,
                                 const EvaluationSpec& spec,
                                 const BatchOptions& options = BatchOptions{});

}  // namespace rimarket::sim
