#include "sim/scenario.hpp"

#include "common/assert.hpp"
#include "common/strings.hpp"
#include "forecast/forecast_selling.hpp"
#include "selling/baselines.hpp"
#include "selling/continuous.hpp"
#include "selling/fixed_spot.hpp"
#include "selling/randomized.hpp"
#include "sim/offline_planner.hpp"

namespace rimarket::sim {

std::string seller_name(const SellerSpec& spec) {
  switch (spec.kind) {
    case SellerKind::kKeepReserved: return "keep-reserved";
    case SellerKind::kAllSelling:
      return common::format("all-selling@%.2fT", spec.fraction.value());
    case SellerKind::kA3T4: return "A_{3T/4}";
    case SellerKind::kAT2: return "A_{T/2}";
    case SellerKind::kAT4: return "A_{T/4}";
    case SellerKind::kRandomizedSpot: return "randomized-spot";
    case SellerKind::kContinuousSpot: return "continuous-spot";
    case SellerKind::kForecastSelling:
      return common::format("forecast@%.2fT", spec.fraction.value());
    case SellerKind::kOfflineOptimal: return "offline-optimal";
  }
  RIMARKET_UNREACHABLE("seller kind");
}

Fraction seller_fraction(const SellerSpec& spec) {
  switch (spec.kind) {
    case SellerKind::kA3T4: return selling::kSpot3T4;
    case SellerKind::kAT2: return selling::kSpotT2;
    case SellerKind::kAT4: return selling::kSpotT4;
    default: return spec.fraction;
  }
}

std::unique_ptr<selling::SellPolicy> make_seller(const SellerSpec& spec,
                                                 const SimulationConfig& config,
                                                 std::uint64_t seed,
                                                 const workload::DemandTrace* trace,
                                                 const ReservationStream* stream) {
  switch (spec.kind) {
    case SellerKind::kKeepReserved:
      return std::make_unique<selling::KeepReservedPolicy>();
    case SellerKind::kAllSelling:
      return std::make_unique<selling::AllSellingPolicy>(config.type, spec.fraction);
    case SellerKind::kA3T4:
      return std::make_unique<selling::FixedSpotSelling>(config.type, selling::kSpot3T4,
                                                         config.selling_discount);
    case SellerKind::kAT2:
      return std::make_unique<selling::FixedSpotSelling>(config.type, selling::kSpotT2,
                                                         config.selling_discount);
    case SellerKind::kAT4:
      return std::make_unique<selling::FixedSpotSelling>(config.type, selling::kSpotT4,
                                                         config.selling_discount);
    case SellerKind::kRandomizedSpot:
      return std::make_unique<selling::RandomizedSpotSelling>(
          selling::RandomizedSpotSelling::paper_spots(config.type, config.selling_discount,
                                                      seed));
    case SellerKind::kContinuousSpot:
      return std::make_unique<selling::ContinuousSelling>(config.type,
                                                          config.selling_discount);
    case SellerKind::kForecastSelling:
      return std::make_unique<forecast::ForecastSelling>(
          config.type, spec.fraction, config.selling_discount,
          forecast::make_forecaster(forecast::ForecasterKind::kEwma));
    case SellerKind::kOfflineOptimal: {
      RIMARKET_EXPECTS(trace != nullptr && stream != nullptr);
      return std::make_unique<selling::PlannedSellingPolicy>(
          plan_offline_optimal(*trace, *stream, config));
    }
  }
  RIMARKET_UNREACHABLE("seller kind");
}

}  // namespace rimarket::sim
