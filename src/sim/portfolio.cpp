#include "sim/portfolio.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rimarket::sim {

namespace {

std::uint64_t item_seed(const PortfolioConfig& config, std::size_t index) {
  std::uint64_t state = config.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return common::splitmix64(state);
}

}  // namespace

PortfolioResult run_portfolio(std::span<const PortfolioItem> items,
                              const PortfolioConfig& config, const SellerSpec& seller) {
  RIMARKET_EXPECTS(!items.empty());
  // selling_discount and service_fee are Fractions: [0,1] by construction.
  RIMARKET_EXPECTS(config.service_fee < Fraction{1.0});
  PortfolioResult result;
  result.items.reserve(items.size());
  for (std::size_t index = 0; index < items.size(); ++index) {
    const PortfolioItem& item = items[index];
    RIMARKET_EXPECTS(item.type.valid());
    SimulationConfig sim_config;
    sim_config.type = item.type;
    sim_config.selling_discount = config.selling_discount;
    sim_config.service_fee = config.service_fee;
    sim_config.charge_policy = config.charge_policy;
    const std::uint64_t seed = item_seed(config, index);
    const auto purchaser = purchasing::make_purchaser(config.purchaser, item.type, seed);
    const auto stream = ReservationStream::generate(item.trace, *purchaser,
                                                    item.trace.length(), item.type.term);
    const auto policy = make_seller(seller, sim_config, seed, &item.trace, &stream);
    const SimulationResult run = simulate(item.trace, stream, *policy, sim_config);

    PortfolioItemResult entry;
    entry.type_name = item.type.name;
    entry.net_cost = run.net_cost();
    entry.reservations_made = run.reservations_made;
    entry.instances_sold = run.instances_sold;
    entry.on_demand_hours = run.on_demand_hours;
    result.total_cost += entry.net_cost;
    result.total_reservations += entry.reservations_made;
    result.total_sold += entry.instances_sold;
    result.items.push_back(std::move(entry));
  }
  RIMARKET_ENSURES(result.items.size() == items.size());
  RIMARKET_ENSURES(result.total_reservations >= 0 && result.total_sold >= 0);
  RIMARKET_ENSURES(result.total_sold <= result.total_reservations);
  return result;
}

std::vector<PortfolioComparison> compare_sellers(std::span<const PortfolioItem> items,
                                                 const PortfolioConfig& config,
                                                 std::span<const SellerSpec> sellers) {
  const SellerSpec keep{SellerKind::kKeepReserved, Fraction{0.0}};
  const PortfolioResult keep_result = run_portfolio(items, config, keep);
  RIMARKET_CHECK_MSG(keep_result.total_cost > Money{0.0},
                     "a portfolio with demand always has positive keep-reserved cost");
  std::vector<PortfolioComparison> rows;
  rows.reserve(sellers.size() + 1);
  rows.push_back(PortfolioComparison{keep, keep_result.total_cost, 1.0});
  for (const SellerSpec& seller : sellers) {
    if (seller.kind == SellerKind::kKeepReserved) {
      continue;  // already the denominator row
    }
    const PortfolioResult result = run_portfolio(items, config, seller);
    rows.push_back(PortfolioComparison{seller, result.total_cost,
                                       result.total_cost / keep_result.total_cost});
  }
  return rows;
}

}  // namespace rimarket::sim
