// Multi-user experiment runner (paper Section VI).
//
// Sweeps user x purchasing-imitator x selling-policy, runs every scenario
// through the open-loop simulator, and returns a flat result table for the
// analysis layer.  Each (user, purchaser) pair generates one reservation
// stream that is replayed identically under every seller, which is what
// makes the keep-reserved normalization of Figs. 3-4 / Table III exact.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "purchasing/policy.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "workload/population.hpp"

namespace rimarket::sim {

/// One (user, purchaser, seller) run's outcome.
struct ScenarioResult {
  int user_id = 0;
  workload::FluctuationGroup group = workload::FluctuationGroup::kStable;
  purchasing::PurchaserKind purchaser = purchasing::PurchaserKind::kAllReserved;
  SellerSpec seller;
  Money net_cost{0.0};
  Count reservations_made = 0;
  Count instances_sold = 0;
  Count on_demand_hours = 0;
};

/// What the sweep does when a user's scenarios fail.
enum class FailurePolicy {
  /// Attempt every user once; if any failed, throw SweepError listing all
  /// of them and discard the survivors' work (today's semantics).
  kFailFast,
  /// Retry each failing user up to EvaluationSpec::max_attempts times
  /// (deterministic virtual backoff — accounted, never slept), then move
  /// the user to the quarantine list and keep the survivors' results.
  kQuarantine,
};

/// Evaluation sweep definition.
struct EvaluationSpec {
  SimulationConfig sim;
  std::vector<purchasing::PurchaserKind> purchasers{
      purchasing::kPaperPurchasers,
      purchasing::kPaperPurchasers + std::size(purchasing::kPaperPurchasers)};
  std::vector<SellerSpec> sellers;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  /// kQuarantine: total tries per user (>= 1) before quarantining.
  int max_attempts = 3;
  /// kQuarantine: virtual backoff before retry k (k >= 2) is
  /// `backoff_base_ms * 2^(k-2)` — summed into SweepReport::
  /// virtual_backoff_ms, never slept, so chaos tests stay wall-clock-fast.
  double backoff_base_ms = 10.0;
  /// Chaos runs only: when set, every attempt of every user executes under
  /// a fault_injection::ScopedContext keyed by (seed, user id, attempt), so
  /// the faults one user sees are independent of worker scheduling.  The
  /// schedule must outlive the sweep.  Ignored (still inert) when the build
  /// compiles injection sites out.
  const common::fault_injection::Schedule* chaos_schedule = nullptr;
};

/// The paper's seller line-up: the three algorithms plus both baselines at
/// a given all-selling spot.
std::vector<SellerSpec> paper_sellers(Fraction all_selling_fraction);

/// One user whose scenarios could not be evaluated.
struct UserFailure {
  int user_id = 0;
  std::string message;
};

/// Thrown by evaluate() when any user's scenarios fail.  Failures are
/// sorted by user id, so the error report is deterministic regardless of
/// worker scheduling; the surviving users' work is discarded (a partial
/// sweep would silently skew every population-level statistic).
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(std::vector<UserFailure> failures);

  const std::vector<UserFailure>& failures() const { return failures_; }

 private:
  std::vector<UserFailure> failures_;
};

/// One user the sweep gave up on under FailurePolicy::kQuarantine.
struct QuarantinedUser {
  int user_id = 0;
  /// Injection site of the last failure when it was an InjectedFault
  /// (chaos runs); empty for organic errors.
  std::string site;
  /// Tries consumed (== EvaluationSpec::max_attempts).
  int attempts = 0;
  /// Last attempt's error message.
  std::string message;
};

/// Outcome of a sweep run with evaluate_sweep().
struct SweepReport {
  /// Survivors' results, ordered by (user, purchaser, seller).
  std::vector<ScenarioResult> results;
  /// Users given up on, sorted by user id (deterministic across thread
  /// counts).  Always empty under kFailFast (failures throw instead).
  std::vector<QuarantinedUser> quarantined;
  /// Retries performed (attempts beyond each user's first).
  std::uint64_t retries = 0;
  /// Faults fired by the chaos schedule inside user scopes.
  std::uint64_t injected_faults = 0;
  /// Total virtual backoff accounted (never slept).
  double virtual_backoff_ms = 0.0;
};

/// Runs the full sweep; results are ordered by (user, purchaser, seller).
/// Every user is attempted; if any fail, throws SweepError listing all of
/// them.  Pool counters land in MetricsRegistry::global() under
/// "sim.evaluate.".  Equivalent to evaluate_sweep(...).results — under
/// kQuarantine prefer evaluate_sweep, which also reports who was dropped.
std::vector<ScenarioResult> evaluate(const workload::UserPopulation& population,
                                     const EvaluationSpec& spec);

/// Same sweep over an explicit user list (sub-populations, tests).
std::vector<ScenarioResult> evaluate(std::span<const workload::User> users,
                                     const EvaluationSpec& spec);

/// Runs the sweep honoring `spec.failure_policy`.  Under kFailFast this is
/// exactly evaluate() (any failure throws SweepError); under kQuarantine it
/// returns survivors plus the quarantine list instead of throwing.  The
/// sweep counters are *accumulated* into MetricsRegistry::global() as
/// "sweep.retries", "sweep.quarantined", "sweep.injected_faults" and
/// "sweep.virtual_backoff_ms" — a process running several sweeps reports
/// process totals.
SweepReport evaluate_sweep(const workload::UserPopulation& population,
                           const EvaluationSpec& spec);
SweepReport evaluate_sweep(std::span<const workload::User> users, const EvaluationSpec& spec);

/// Runs the sweep for a single user (Table II's case study).  Throws
/// std::invalid_argument on malformed input (e.g. an empty trace; the
/// discount range is enforced by the Fraction type at construction).
std::vector<ScenarioResult> evaluate_user(const workload::User& user,
                                          const EvaluationSpec& spec);

}  // namespace rimarket::sim
