// Multi-user experiment runner (paper Section VI).
//
// Sweeps user x purchasing-imitator x selling-policy, runs every scenario
// through the open-loop simulator, and returns a flat result table for the
// analysis layer.  Each (user, purchaser) pair generates one reservation
// stream that is replayed identically under every seller, which is what
// makes the keep-reserved normalization of Figs. 3-4 / Table III exact.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "purchasing/policy.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "workload/population.hpp"

namespace rimarket::sim {

/// One (user, purchaser, seller) run's outcome.
struct ScenarioResult {
  int user_id = 0;
  workload::FluctuationGroup group = workload::FluctuationGroup::kStable;
  purchasing::PurchaserKind purchaser = purchasing::PurchaserKind::kAllReserved;
  SellerSpec seller;
  Money net_cost{0.0};
  Count reservations_made = 0;
  Count instances_sold = 0;
  Count on_demand_hours = 0;
};

/// Evaluation sweep definition.
struct EvaluationSpec {
  SimulationConfig sim;
  std::vector<purchasing::PurchaserKind> purchasers{
      purchasing::kPaperPurchasers,
      purchasing::kPaperPurchasers + std::size(purchasing::kPaperPurchasers)};
  std::vector<SellerSpec> sellers;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// The paper's seller line-up: the three algorithms plus both baselines at
/// a given all-selling spot.
std::vector<SellerSpec> paper_sellers(Fraction all_selling_fraction);

/// One user whose scenarios could not be evaluated.
struct UserFailure {
  int user_id = 0;
  std::string message;
};

/// Thrown by evaluate() when any user's scenarios fail.  Failures are
/// sorted by user id, so the error report is deterministic regardless of
/// worker scheduling; the surviving users' work is discarded (a partial
/// sweep would silently skew every population-level statistic).
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(std::vector<UserFailure> failures);

  const std::vector<UserFailure>& failures() const { return failures_; }

 private:
  std::vector<UserFailure> failures_;
};

/// Runs the full sweep; results are ordered by (user, purchaser, seller).
/// Every user is attempted; if any fail, throws SweepError listing all of
/// them.  Pool counters land in MetricsRegistry::global() under
/// "sim.evaluate.".
std::vector<ScenarioResult> evaluate(const workload::UserPopulation& population,
                                     const EvaluationSpec& spec);

/// Same sweep over an explicit user list (sub-populations, tests).
std::vector<ScenarioResult> evaluate(std::span<const workload::User> users,
                                     const EvaluationSpec& spec);

/// Runs the sweep for a single user (Table II's case study).  Throws
/// std::invalid_argument on malformed input (e.g. an empty trace; the
/// discount range is enforced by the Fraction type at construction).
std::vector<ScenarioResult> evaluate_user(const workload::User& user,
                                          const EvaluationSpec& spec);

}  // namespace rimarket::sim
