// Clairvoyant offline-optimal selling plan (paper Section IV-A).
//
// The paper's benchmark OPT chooses, per reservation and with hindsight,
// the selling time that minimizes that instance's cost.  The plan is built
// from a shadow run: simulate the same (trace, reservation stream) with
// keep-reserved to obtain every reservation's work schedule under the
// least-remaining-period-first assignment, then pick each instance's best
// sell hour with theory::optimal_sale.
//
// The plan prices sales with the paper's analytic income (a * rp * R net of
// the service fee); a custom SimulationConfig::income_model is not
// consulted when planning (the clairvoyant benchmark is defined against
// Eq. (1)'s instant-sale economics).
//
// Like the paper's analysis this optimum is *per instance*: it does not
// model the second-order effect where selling one instance shifts later
// demand onto other instances.  It is the benchmark the competitive ratios
// are stated against, not a full combinatorial optimum (which is
// exponential in fleet size; tests cross-check small cases by brute force).
#pragma once

#include <map>

#include "selling/planned.hpp"
#include "sim/simulator.hpp"

namespace rimarket::sim {

/// Computes the per-instance optimal sell hour for every reservation in
/// the stream; reservations best kept to term are absent from the map.
std::map<fleet::ReservationId, Hour> plan_offline_optimal(const workload::DemandTrace& trace,
                                                          const ReservationStream& stream,
                                                          const SimulationConfig& config);

/// Convenience: plan + replay through PlannedSellingPolicy.
SimulationResult simulate_offline_optimal(const workload::DemandTrace& trace,
                                          const ReservationStream& stream,
                                          const SimulationConfig& config);

}  // namespace rimarket::sim
