#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace rimarket::common {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  long long value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  // strtod accepts more than a CSV cell should: "inf"/"nan" tokens, hex
  // floats ("0x1p3"), and out-of-range values that clamp to +-HUGE_VAL with
  // errno ERANGE.  A corrupt cell like "1e999" or "nan" must be a parse
  // failure, not a "valid" demand value, so only finite decimal numbers
  // that fit a double pass.
  for (const char c : text) {
    if (c == 'x' || c == 'X') {
      return std::nullopt;  // hex-float syntax
    }
  }
  // std::from_chars<double> is not available on all libstdc++ configs at
  // C++20; strtod on a NUL-terminated copy is portable and locale caveats
  // do not apply here (we never set a non-C locale).
  std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") {
    return false;
  }
  return std::nullopt;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += pieces[i];
  }
  return out;
}

}  // namespace rimarket::common
