// Minimal CSV reading/writing for traces and result dumps.
//
// Scope: comma-separated, optional double-quote quoting with "" escapes,
// UNIX or DOS line endings.  This intentionally covers the files rimarket
// itself produces and the simple trace formats it ingests, not full RFC 4180
// (no embedded newlines inside quoted fields).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rimarket::common {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line into fields.
CsvRow parse_csv_line(std::string_view line);

/// Escapes and joins fields into one CSV line (no trailing newline).
std::string make_csv_line(const CsvRow& fields);

/// Parses a whole document; skips blank lines.  If `expect_header` is true
/// the first non-blank line is returned separately in `header`.
/// `header_line`/`row_lines` carry 1-based source line numbers so callers
/// can point diagnostics at the offending line of the original file.
struct CsvDocument {
  CsvRow header;
  std::vector<CsvRow> rows;
  std::size_t header_line = 0;         ///< 0 when no header was parsed
  std::vector<std::size_t> row_lines;  ///< parallel to `rows`
};
CsvDocument parse_csv(std::string_view text, bool expect_header);

/// Actionable diagnosis for a failed read_file/load_csv_file (and the
/// parse-aware loaders built on them): which file, which OS error, which
/// line.  Exactly one of `errno_value` (I/O failure) and `line`
/// (parse-shape failure) is nonzero.
struct CsvError {
  std::string path;      ///< as given by the caller; empty for in-memory text
  int errno_value = 0;   ///< OS errno for I/O failures
  std::size_t line = 0;  ///< 1-based source line for parse-shape failures
  std::string message;   ///< strerror text or shape diagnosis

  /// "path:LINE: message" for parse errors, "path: message (errno N)" for
  /// I/O errors; empty path renders as "<input>".
  std::string to_string() const;
};

/// Reads a file into a string; nullopt if unreadable.
std::optional<std::string> read_file(const std::string& path);

/// As above; on failure also fills `*error` (path + errno + strerror text)
/// when `error` is non-null, so callers can say *why* the read failed.
std::optional<std::string> read_file(const std::string& path, CsvError* error);

/// Writes a string to a file; returns false on failure.
bool write_file(const std::string& path, std::string_view contents);

/// Loads a CSV file; nullopt if unreadable or shape-invalid (see below).
std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header);

/// As above with diagnosis: I/O failures carry errno, and ragged documents
/// (a row whose field count differs from the header's — or the first
/// row's, without a header) are rejected with the offending 1-based line.
std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header,
                                         CsvError* error);

}  // namespace rimarket::common
