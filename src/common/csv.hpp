// Minimal CSV reading/writing for traces and result dumps.
//
// Scope: comma-separated, optional double-quote quoting with "" escapes,
// UNIX or DOS line endings.  This intentionally covers the files rimarket
// itself produces and the simple trace formats it ingests, not full RFC 4180
// (no embedded newlines inside quoted fields).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rimarket::common {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line into fields.
CsvRow parse_csv_line(std::string_view line);

/// Escapes and joins fields into one CSV line (no trailing newline).
std::string make_csv_line(const CsvRow& fields);

/// Parses a whole document; skips blank lines.  If `expect_header` is true
/// the first non-blank line is returned separately in `header`.
struct CsvDocument {
  CsvRow header;
  std::vector<CsvRow> rows;
};
CsvDocument parse_csv(std::string_view text, bool expect_header);

/// Reads a file into a string; nullopt if unreadable.
std::optional<std::string> read_file(const std::string& path);

/// Writes a string to a file; returns false on failure.
bool write_file(const std::string& path, std::string_view contents);

/// Loads a CSV file; nullopt if unreadable.
std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header);

}  // namespace rimarket::common
