#include "common/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>

#include "common/fault_injection.hpp"

namespace rimarket::common::durable {

namespace {

namespace fi = fault_injection;

/// Frame header: little-endian uint32 payload length, uint32 payload CRC.
constexpr std::size_t kHeaderBytes = 8;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_le32(std::uint32_t value, std::string& out) {
  out += static_cast<char>(value & 0xFFu);
  out += static_cast<char>((value >> 8) & 0xFFu);
  out += static_cast<char>((value >> 16) & 0xFFu);
  out += static_cast<char>((value >> 24) & 0xFFu);
}

std::uint32_t get_le32(const unsigned char* bytes) {
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

/// write(2) until `bytes` is fully written; false on any error (EINTR is
/// retried, everything else aborts the write).
bool write_all(int fd, std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads the whole file at `path`; false (with `*missing` set for ENOENT)
/// when it cannot be read.
bool slurp(const std::string& path, std::string& out, bool* missing) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    *missing = errno == ENOENT;
    return false;
  }
  out.clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char byte : bytes) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(byte)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void frame_record(std::string_view payload, std::string& out) {
  put_le32(static_cast<std::uint32_t>(payload.size()), out);
  put_le32(crc32(payload), out);
  out += payload;
}

ReadResult read_records(const std::string& path) {
  ReadResult result;
  std::string contents;
  if (!slurp(path, contents, &result.missing)) {
    return result;
  }
  std::size_t pos = 0;
  while (pos + kHeaderBytes <= contents.size()) {
    const auto* header = reinterpret_cast<const unsigned char*>(contents.data() + pos);
    const std::uint32_t length = get_le32(header);
    const std::uint32_t expected_crc = get_le32(header + 4);
    const std::size_t end = pos + kHeaderBytes + length;
    if (end > contents.size()) {
      break;  // torn tail: the payload never finished reaching the disk
    }
    const std::string_view payload(contents.data() + pos + kHeaderBytes, length);
    if (crc32(payload) != expected_crc) {
      break;  // corrupt record: stop here, keep the prefix
    }
    result.records.push_back(FramedRecord{std::string(payload), end});
    pos = end;
  }
  result.valid_bytes = pos;
  result.truncated_bytes = contents.size() - pos;
  return result;
}

bool truncate_file(const std::string& path, std::size_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool rename_file(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool atomic_replace(const std::string& path, std::string_view contents, FsyncMode mode) {
  RIMARKET_INJECT(fi::kSiteDurableWrite);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  bool ok = write_all(fd, contents);
  if (ok && mode == FsyncMode::kAlways) {
    ok = ::fsync(fd) == 0;
  }
  ok = (::close(fd) == 0) && ok;
  try {
    if (ok) {
      // Second hit of the site: a fault landing between the completed write
      // and the publishing rename, the window the cleanup contract covers.
      RIMARKET_INJECT(fi::kSiteDurableWrite);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    // Both failure branches drop the temporary: a failed replace leaves the
    // previous state file alone and no `.tmp` residue behind.
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

AppendLog::~AppendLog() { close(); }

bool AppendLog::open(const std::string& path, FsyncMode mode) {
  close();
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  mode_ = mode;
  size_ = static_cast<std::size_t>(size);
  broken_ = false;
  return true;
}

void AppendLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
  broken_ = false;
}

bool AppendLog::append(std::string_view payload) {
  if (fd_ < 0 || broken_) {
    return false;
  }
  RIMARKET_INJECT(fi::kSiteDurableWrite);
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame_record(payload, frame);
  bool ok = write_all(fd_, frame);
  if (ok && mode_ == FsyncMode::kAlways) {
    ok = ::fsync(fd_) == 0;
  }
  if (!ok) {
    // Roll back to the pre-append length so the log never carries an
    // interior torn frame.  If even that fails the log is unusable.
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      broken_ = true;
    }
    return false;
  }
  size_ += frame.size();
  return true;
}

bool AppendLog::sync() { return fd_ >= 0 && !broken_ && ::fsync(fd_) == 0; }

bool AppendLog::truncate_to(std::size_t size) {
  if (fd_ < 0 || broken_ || size > size_) {
    return false;
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    broken_ = true;
    return false;
  }
  size_ = size;
  return true;
}

}  // namespace rimarket::common::durable
