#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/float_compare.hpp"

namespace rimarket::common {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const {
  const double sigma = stddev();
  if (near_zero(mean_)) {
    return near_zero(sigma) ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return sigma / mean_;
}

double mean(std::span<const double> values) {
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  return stats.mean();
}

double stddev(std::span<const double> values) {
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  return stats.stddev();
}

double coefficient_of_variation(std::span<const double> values) {
  RunningStats stats;
  for (double v : values) {
    stats.add(v);
  }
  return stats.coefficient_of_variation();
}

double quantile(std::span<const double> values, double q) {
  RIMARKET_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  RIMARKET_EXPECTS(!sorted.empty());
  RIMARKET_EXPECTS(q >= 0.0 && q <= 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  // Clamp the bracket: even if rounding pushed `position` to exactly n-1,
  // `lower` must stay a valid index with `upper` its (possibly equal)
  // right neighbour.
  const auto lower = std::min(static_cast<std::size_t>(position), sorted.size() - 1);
  const auto upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

double fraction_below(std::span<const double> values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  const auto hits = std::count_if(values.begin(), values.end(),
                                  [threshold](double v) { return v < threshold; });
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

double fraction_above(std::span<const double> values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  const auto hits = std::count_if(values.begin(), values.end(),
                                  [threshold](double v) { return v > threshold; });
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

std::vector<double> to_doubles(std::span<const long long> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (long long v : values) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

}  // namespace rimarket::common
