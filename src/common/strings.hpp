// Small string helpers (split/trim/parse/format) shared by CSV, config and
// CLI parsing.  All functions are allocation-conservative and locale-free.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rimarket::common {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Locale-free parse helpers; nullopt on any malformed input (including
/// trailing garbage).
std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);
std::optional<bool> parse_bool(std::string_view text);  // true/false/1/0/yes/no

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view separator);

}  // namespace rimarket::common
