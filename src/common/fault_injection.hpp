// Seeded, deterministic fault injection for chaos testing.
//
// Production code marks failure-prone spots with RIMARKET_INJECT("site");
// in normal builds the macro expands to nothing (zero code, zero data — the
// perf gate is untouched), and in chaos builds
// (-DRIMARKET_ENABLE_FAULT_INJECTION=ON) each marked site consults the
// active Schedule and may throw an InjectedFault, throw std::bad_alloc, or
// report an injected parse error.  Everything a schedule does is a pure
// function of (schedule seed, scope key, site name, per-site hit index), so
// a whole chaos run replays from a single uint64 and fault placement does
// not depend on thread scheduling.  See DESIGN.md "Fault injection".
//
// Determinism model: the executor (sim::evaluate_sweep, tests) activates a
// ScopedContext per unit of work with a scope key derived from stable ids
// (e.g. hash(seed, user id, attempt)).  Hit counters live inside the
// context, so the fault pattern one user sees is independent of how many
// workers run and of what other users do.  A process-global schedule
// fallback exists for code that runs outside any scoped unit (thread-pool
// internals); its hit counters are shared and therefore only deterministic
// under single-threaded use.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rimarket::common::fault_injection {

/// What an armed site does when its rule fires.
enum class FaultKind {
  kThrow,       ///< throw InjectedFault
  kBadAlloc,    ///< throw std::bad_alloc (via the counting allocator when armed)
  kParseError,  ///< parse-aware sites report a malformed-input error; others throw
};

std::string_view fault_kind_name(FaultKind kind);

/// One injection rule.  `site_pattern` is an exact site name or a prefix
/// ending in '*' ("sim.*").  With `nth_hit` > 0 the rule fires exactly on
/// that (1-based) hit of a matching site within one context; with
/// `nth_hit` == 0 every hit fires independently with `probability`.
struct Rule {
  std::string site_pattern;
  FaultKind kind = FaultKind::kThrow;
  double probability = 0.0;
  std::uint64_t nth_hit = 0;

  bool matches(std::string_view site) const;
  bool operator==(const Rule&) const = default;
};

/// An ordered rule list plus the seed that drives probabilistic firing.
/// The first rule matching a site decides that hit; later rules are shadowed.
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::uint64_t seed, std::vector<Rule> rules);

  /// Deterministic randomized schedule over `sites` for chaos sweeps: every
  /// bit of the outcome derives from `seed`.  Always yields >= 1 rule.
  static Schedule random(std::uint64_t seed, std::span<const std::string_view> sites);

  std::uint64_t seed() const { return seed_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Replay diagnostic: seed plus every rule, one line per rule.
  std::string to_string() const;

  bool operator==(const Schedule&) const = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<Rule> rules_;
};

/// Thrown by a fired kThrow (or non-parse-site kParseError) rule.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string site, std::uint64_t hit_index);

  const std::string& site() const { return site_; }
  std::uint64_t hit_index() const { return hit_index_; }

 private:
  std::string site_;
  std::uint64_t hit_index_;
};

/// Activates `schedule` on the current thread for this object's lifetime.
/// Contexts nest (the innermost wins) and each carries its own hit
/// counters, keyed by `scope_key` — the executor's stable id for this unit
/// of work.  The schedule must outlive the context.
class ScopedContext {
 public:
  ScopedContext(const Schedule& schedule, std::uint64_t scope_key);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

  /// Faults fired while this context was innermost.
  std::uint64_t faults_fired() const;

  struct Context;  // implementation detail, defined in fault_injection.cpp

 private:
  Context* context_;
};

/// Installs (or clears, with nullptr) the process-global fallback schedule
/// consulted when no ScopedContext is active on the hitting thread.  Shared
/// hit counters: deterministic only under single-threaded use.  The
/// schedule must outlive its installation.
void set_global_schedule(const Schedule* schedule);

/// Site entry point behind RIMARKET_INJECT.  May throw InjectedFault or
/// std::bad_alloc; no-op when no schedule is active for this thread.
void hit(std::string_view site);

/// Site entry point behind RIMARKET_INJECT_PARSE, for parse-aware sites:
/// returns true when a kParseError rule fires (caller reports a malformed-
/// input diagnostic); kThrow/kBadAlloc rules still throw.
bool hit_parse_error(std::string_view site);

/// Every distinct site name hit so far in this process, sorted.  Chaos
/// tests use this to assert the library's sites are actually wired.
std::vector<std::string> seen_sites();

/// Total faults fired process-wide (all kinds, all contexts).
std::uint64_t fired_total();

/// How kBadAlloc materializes: when a trigger is installed (the counting
/// allocator in common/alloc_hook.hpp provides one), it is invoked and must
/// not return; otherwise std::bad_alloc is thrown directly.
using BadAllocTrigger = void (*)();
void set_bad_alloc_trigger(BadAllocTrigger trigger);

/// Canonical site names wired into the library, kept in sync with the
/// RIMARKET_INJECT call sites (all in .cpp files, so an OFF build contains
/// no trace of them).
inline constexpr std::string_view kSiteCsvReadFile = "csv.read_file";
inline constexpr std::string_view kSiteCsvLoad = "csv.load_csv_file";
inline constexpr std::string_view kSiteTraceFromCsv = "workload.trace.from_csv";
inline constexpr std::string_view kSitePopulationBuild = "workload.population.build";
inline constexpr std::string_view kSiteEvaluateUser = "sim.evaluate_user";
inline constexpr std::string_view kSiteRunScenario = "sim.run_scenario";
inline constexpr std::string_view kSiteRunLoop = "sim.run_loop";
inline constexpr std::string_view kSitePoolSubmit = "thread_pool.submit";
inline constexpr std::string_view kSitePoolTask = "thread_pool.task";
inline constexpr std::string_view kSiteTraceStream = "workload.trace.stream";
inline constexpr std::string_view kSiteBatchShardStep = "sim.batch.shard_step";
inline constexpr std::string_view kSiteBatchCheckpointWrite = "sim.batch.checkpoint_write";
inline constexpr std::string_view kSiteBatchCheckpointLoad = "sim.batch.checkpoint_load";
inline constexpr std::string_view kSiteServeParse = "serve.request.parse";
inline constexpr std::string_view kSiteServeExecute = "serve.request.execute";
inline constexpr std::string_view kSiteDurableWrite = "common.durable.write";
inline constexpr std::string_view kSiteJournalAppend = "serve.journal.append";
inline constexpr std::string_view kSiteJournalFsync = "serve.journal.fsync";
inline constexpr std::string_view kSiteJournalCompact = "serve.journal.compact";
inline constexpr std::string_view kSiteJournalRecover = "serve.journal.recover";

}  // namespace rimarket::common::fault_injection

// The site macros.  Sites live only in .cpp files, so flipping the option
// can never cause an ODR mismatch across translation units.
#if defined(RIMARKET_ENABLE_FAULT_INJECTION)
#define RIMARKET_INJECT(site) ::rimarket::common::fault_injection::hit(site)
#define RIMARKET_INJECT_PARSE(site) ::rimarket::common::fault_injection::hit_parse_error(site)
#else
#define RIMARKET_INJECT(site) static_cast<void>(0)
#define RIMARKET_INJECT_PARSE(site) false
#endif
