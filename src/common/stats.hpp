// Descriptive statistics used by workload classification and result
// aggregation.
//
// The paper classifies users by the coefficient of variation sigma/mu of
// their hourly demand (Fig. 2); `coefficient_of_variation` implements that
// measure.  `RunningStats` uses Welford's algorithm so variances stay
// numerically stable over year-long (8760-sample) traces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rimarket::common {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double value);

  /// Merges another accumulator (parallel aggregation).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  /// Mean of the observed values; 0 when empty.
  double mean() const { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const;
  /// Sample (n-1) variance; 0 when fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// sigma/mu, the paper's demand-fluctuation measure.  Returns +inf for a
  /// zero mean with nonzero variance, and 0 for an all-zero stream.
  double coefficient_of_variation() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sequence; 0 when empty.
double mean(std::span<const double> values);

/// Population standard deviation; 0 when fewer than 2 values.
double stddev(std::span<const double> values);

/// sigma/mu of a sequence (see RunningStats::coefficient_of_variation).
double coefficient_of_variation(std::span<const double> values);

/// Linear-interpolated quantile, q in [0, 1].  Requires non-empty input;
/// the input need not be sorted (a sorted copy is made).
double quantile(std::span<const double> values, double q);

/// Same interpolation over already-sorted input (no copy).  The single
/// implementation shared by quantile() and EmpiricalCdf::quantile(), so
/// endpoint handling (q=0, q=1, one sample) cannot drift between them.
double quantile_sorted(std::span<const double> sorted, double q);

/// Fraction of values strictly below `threshold`; 0 when empty.
double fraction_below(std::span<const double> values, double threshold);

/// Fraction of values strictly above `threshold`; 0 when empty.
double fraction_above(std::span<const double> values, double threshold);

/// Convenience conversion for integer sequences.
std::vector<double> to_doubles(std::span<const long long> values);

}  // namespace rimarket::common
