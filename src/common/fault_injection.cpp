#include "common/fault_injection.hpp"

#include <atomic>
#include <map>
#include <new>
#include <optional>
#include <set>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_safety.hpp"

namespace rimarket::common::fault_injection {

namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// One SplitMix64 step over seed xored with a golden-ratio-spread value:
/// chaining these gives a well-mixed pure hash of any id tuple.
std::uint64_t mix(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t state = seed ^ (value * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

std::atomic<std::uint64_t> g_fired{0};
std::atomic<BadAllocTrigger> g_bad_alloc_trigger{nullptr};

/// Global fallback schedule + process-wide site registry.
struct GlobalState {
  Mutex mutex;
  const Schedule* schedule RIMARKET_GUARDED_BY(mutex) = nullptr;
  std::map<std::string, std::uint64_t, std::less<>> hits RIMARKET_GUARDED_BY(mutex);
  std::set<std::string, std::less<>> seen RIMARKET_GUARDED_BY(mutex);
};

GlobalState& global_state() {
  static GlobalState state;
  return state;
}

}  // namespace

/// Innermost active context of the current thread (see ScopedContext).
struct ScopedContext::Context {
  const Schedule* schedule = nullptr;
  std::uint64_t scope_key = 0;
  /// Per-site hit counters; a handful of sites, so a flat vector beats a map.
  std::vector<std::pair<std::string, std::uint64_t>> hits;
  std::uint64_t fired = 0;
  Context* previous = nullptr;
};

namespace {

thread_local ScopedContext::Context* t_innermost = nullptr;

/// Pure fire decision: nth-hit rules trigger on the exact counter value;
/// probabilistic rules hash (schedule seed, scope key, site, hit, rule) to a
/// uniform draw, so the outcome is independent of thread scheduling.
bool rule_fires(const Rule& rule, std::uint64_t schedule_seed, std::uint64_t scope_key,
                std::uint64_t site_hash, std::uint64_t hit_index, std::size_t rule_index) {
  if (rule.nth_hit > 0) {
    return hit_index == rule.nth_hit;
  }
  if (!(rule.probability > 0.0)) {
    return false;
  }
  std::uint64_t hash = mix(schedule_seed, scope_key);
  hash = mix(hash, site_hash);
  hash = mix(hash, hit_index);
  hash = mix(hash, static_cast<std::uint64_t>(rule_index) + 1);
  const double uniform = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return uniform < rule.probability;
}

struct Decision {
  FaultKind kind = FaultKind::kThrow;
  std::uint64_t hit_index = 0;
};

void record_seen(std::string_view site) {
  GlobalState& global = global_state();
  const MutexLock lock(global.mutex);
  if (global.seen.find(site) == global.seen.end()) {
    global.seen.emplace(site);
  }
}

/// Counts the hit against the active schedule (innermost scoped context,
/// else the global fallback) and decides whether the first matching rule
/// fires.  nullopt = nothing fires at this hit.
std::optional<Decision> decide(std::string_view site) {
  record_seen(site);
  const Schedule* schedule = nullptr;
  std::uint64_t scope_key = 0;
  std::uint64_t hit_index = 0;
  if (ScopedContext::Context* context = t_innermost; context != nullptr) {
    schedule = context->schedule;
    scope_key = context->scope_key;
    auto& hits = context->hits;
    auto it = hits.begin();
    while (it != hits.end() && it->first != site) {
      ++it;
    }
    if (it == hits.end()) {
      hits.emplace_back(std::string(site), 0);
      it = hits.end() - 1;
    }
    hit_index = ++it->second;
  } else {
    GlobalState& global = global_state();
    const MutexLock lock(global.mutex);
    if (global.schedule == nullptr) {
      return std::nullopt;
    }
    schedule = global.schedule;
    scope_key = 0;
    auto it = global.hits.find(site);
    if (it == global.hits.end()) {
      it = global.hits.emplace(std::string(site), 0).first;
    }
    hit_index = ++it->second;
  }
  const std::uint64_t site_hash = fnv1a(site);
  const auto& rules = schedule->rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!rules[i].matches(site)) {
      continue;
    }
    if (rule_fires(rules[i], schedule->seed(), scope_key, site_hash, hit_index, i)) {
      return Decision{rules[i].kind, hit_index};
    }
    return std::nullopt;  // first matching rule decides; later rules are shadowed
  }
  return std::nullopt;
}

void count_fire() {
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (t_innermost != nullptr) {
    ++t_innermost->fired;
  }
}

[[noreturn]] void materialize_throwing(FaultKind kind, std::string_view site,
                                       std::uint64_t hit_index) {
  if (kind == FaultKind::kBadAlloc) {
    if (const BadAllocTrigger trigger = g_bad_alloc_trigger.load(std::memory_order_acquire)) {
      trigger();  // arms the counting allocator and allocates; must not return
    }
    throw std::bad_alloc();
  }
  // kThrow, and kParseError at a site that cannot report parse errors.
  throw InjectedFault(std::string(site), hit_index);
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kBadAlloc:
      return "bad_alloc";
    case FaultKind::kParseError:
      return "parse-error";
  }
  RIMARKET_UNREACHABLE("invalid FaultKind");
}

bool Rule::matches(std::string_view site) const {
  const std::string_view pattern = site_pattern;
  if (!pattern.empty() && pattern.back() == '*') {
    return starts_with(site, pattern.substr(0, pattern.size() - 1));
  }
  return site == pattern;
}

Schedule::Schedule(std::uint64_t seed, std::vector<Rule> rules)
    : seed_(seed), rules_(std::move(rules)) {
  for (const Rule& rule : rules_) {
    RIMARKET_EXPECTS(!rule.site_pattern.empty());
    RIMARKET_EXPECTS(rule.probability >= 0.0 && rule.probability <= 1.0);
  }
}

Schedule Schedule::random(std::uint64_t seed, std::span<const std::string_view> sites) {
  RIMARKET_EXPECTS(!sites.empty());
  Rng rng(seed);
  std::vector<Rule> rules;
  for (const std::string_view site : sites) {
    if (!rng.bernoulli(0.55)) {
      continue;
    }
    Rule rule;
    rule.site_pattern = std::string(site);
    const double kind_draw = rng.uniform01();
    rule.kind = kind_draw < 0.60  ? FaultKind::kThrow
                : kind_draw < 0.85 ? FaultKind::kBadAlloc
                                   : FaultKind::kParseError;
    if (rng.bernoulli(0.5)) {
      rule.nth_hit = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
    } else {
      rule.probability = rng.uniform_real(0.02, 0.35);
    }
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) {
    // Every chaos schedule must be able to do *something*.
    Rule rule;
    rule.site_pattern = std::string(
        sites[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))]);
    rule.kind = FaultKind::kThrow;
    rule.nth_hit = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    rules.push_back(std::move(rule));
  }
  return Schedule(seed, std::move(rules));
}

std::string Schedule::to_string() const {
  std::string out = format("schedule seed=%llu", static_cast<unsigned long long>(seed_));
  for (const Rule& rule : rules_) {
    out += format("\n  site=%s kind=%s", rule.site_pattern.c_str(),
                  std::string(fault_kind_name(rule.kind)).c_str());
    if (rule.nth_hit > 0) {
      out += format(" nth_hit=%llu", static_cast<unsigned long long>(rule.nth_hit));
    } else {
      out += format(" probability=%.4f", rule.probability);
    }
  }
  return out;
}

InjectedFault::InjectedFault(std::string site, std::uint64_t hit_index)
    : std::runtime_error(format("injected fault at %s (hit %llu)", site.c_str(),
                                static_cast<unsigned long long>(hit_index))),
      site_(std::move(site)),
      hit_index_(hit_index) {}

ScopedContext::ScopedContext(const Schedule& schedule, std::uint64_t scope_key)
    : context_(new Context) {
  context_->schedule = &schedule;
  context_->scope_key = scope_key;
  context_->previous = t_innermost;
  t_innermost = context_;
}

ScopedContext::~ScopedContext() {
  // LIFO destruction on the constructing thread is part of the contract.
  RIMARKET_CHECK_MSG(t_innermost == context_, "ScopedContext destroyed out of order");
  t_innermost = context_->previous;
  delete context_;
}

std::uint64_t ScopedContext::faults_fired() const { return context_->fired; }

void set_global_schedule(const Schedule* schedule) {
  GlobalState& global = global_state();
  const MutexLock lock(global.mutex);
  global.schedule = schedule;
  global.hits.clear();  // fresh counters per installation, for replayability
}

void hit(std::string_view site) {
  const std::optional<Decision> decision = decide(site);
  if (!decision) {
    return;
  }
  count_fire();
  materialize_throwing(decision->kind, site, decision->hit_index);
}

bool hit_parse_error(std::string_view site) {
  const std::optional<Decision> decision = decide(site);
  if (!decision) {
    return false;
  }
  count_fire();
  if (decision->kind == FaultKind::kParseError) {
    return true;
  }
  materialize_throwing(decision->kind, site, decision->hit_index);
}

std::vector<std::string> seen_sites() {
  GlobalState& global = global_state();
  const MutexLock lock(global.mutex);
  return {global.seen.begin(), global.seen.end()};
}

std::uint64_t fired_total() { return g_fired.load(std::memory_order_relaxed); }

void set_bad_alloc_trigger(BadAllocTrigger trigger) {
  g_bad_alloc_trigger.store(trigger, std::memory_order_release);
}

}  // namespace rimarket::common::fault_injection
