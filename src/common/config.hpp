// Key=value configuration store.
//
// Experiments are parameterized by flat `key = value` files (comments with
// '#', sections are just dotted key prefixes).  This keeps experiment
// definitions out of the binaries without pulling in a JSON dependency.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace rimarket::common {

/// Flat string->string configuration with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines; '#' starts a comment; blank lines ignored.
  /// Returns nullopt (and no partial state) if any line is malformed.
  static std::optional<Config> parse(std::string_view text);

  /// Loads and parses a file; nullopt if unreadable or malformed.
  static std::optional<Config> load(const std::string& path);

  void set(std::string key, std::string value);

  bool contains(std::string_view key) const;

  /// Raw string access.
  std::optional<std::string> get(std::string_view key) const;

  /// Typed access; nullopt if absent or unparseable.
  std::optional<long long> get_int(std::string_view key) const;
  std::optional<double> get_double(std::string_view key) const;
  std::optional<bool> get_bool(std::string_view key) const;

  /// Typed access with defaults.
  std::string get_or(std::string_view key, std::string_view fallback) const;
  long long get_int_or(std::string_view key, long long fallback) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  /// Serializes back to `key = value` lines in key order.
  std::string to_string() const;

  std::size_t size() const { return values_.size(); }
  const std::map<std::string, std::string, std::less<>>& values() const { return values_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace rimarket::common
