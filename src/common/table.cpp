#include "common/table.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::common {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  RIMARKET_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  RIMARKET_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(format("%.*f", precision, v));
  }
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      // Right-align all but the first (label) column.
      const std::size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c];
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += row[c];
      }
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t width : widths) {
    rule.append(width + 2, '-');
    rule += '|';
  }
  rule += '\n';
  out += rule;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace rimarket::common
