#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

// Thread-local so only the arming thread's allocation fails (see
// fail_next_allocation in the header for why a global trigger is wrong).
thread_local bool t_fail_next = false;

void* counted_alloc(std::size_t size) {
  if (t_fail_next) {
    t_fail_next = false;
    throw std::bad_alloc();  // injected failure: nothing was allocated, so no count
  }
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // operator new must never return nullptr for nonzero sizes.
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

}  // namespace

namespace rimarket::common {

std::uint64_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }

void fail_next_allocation() { t_fail_next = true; }

bool allocation_failure_armed() { return t_fail_next; }

[[noreturn]] void trigger_bad_alloc_now() {
  fail_next_allocation();
  delete new char;  // throws std::bad_alloc out of the armed operator new
  // Unreachable with the hook linked; keep the [[noreturn]] contract anyway.
  throw std::bad_alloc();
}

}  // namespace rimarket::common

// Minimal replaceable-function set: the sized/aligned/nothrow variants all
// funnel through these two in libstdc++'s default implementations we
// replace here.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t /*size*/) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t /*size*/) noexcept { std::free(ptr); }
