#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // operator new must never return nullptr for nonzero sizes.
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

}  // namespace

namespace rimarket::common {

std::uint64_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }

}  // namespace rimarket::common

// Minimal replaceable-function set: the sized/aligned/nothrow variants all
// funnel through these two in libstdc++'s default implementations we
// replace here.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t /*size*/) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t /*size*/) noexcept { std::free(ptr); }
