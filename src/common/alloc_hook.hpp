// Process-wide heap-allocation counter for tests and benchmarks.
//
// Linking the companion rimarket_alloc_hook library replaces the global
// operator new/delete with counting wrappers.  It is deliberately NOT part
// of the main rimarket library: only the hot-loop allocation test and the
// perf harness link it, so production binaries keep the stock allocator.
//
// Counting is process-global and not async-signal-safe, but it is
// thread-safe (a relaxed atomic) and exact: every successful operator new
// bumps the counter once.  Measure with the delta method —
// allocation_count() before and after the region under test — so one-time
// setup (static initializers, gtest machinery) cancels out.
#pragma once

#include <cstdint>

namespace rimarket::common {

/// Total successful global operator new calls since process start.
/// Defined by rimarket_alloc_hook; callers must link that library.
std::uint64_t allocation_count();

/// Arms the *current thread* so that its next heap allocation throws
/// std::bad_alloc out of operator new itself.  Thread-local on purpose:
/// a process-global trigger could be consumed by an unrelated thread's
/// allocation, which would make fault injection nondeterministic.
void fail_next_allocation();

/// True while an arming from fail_next_allocation() is still pending on
/// this thread (i.e. no allocation has happened since).
bool allocation_failure_armed();

/// Arms this thread and immediately allocates, so the std::bad_alloc
/// propagates from a real operator new call.  Matches
/// fault_injection::BadAllocTrigger; chaos tests register it with
/// fault_injection::set_bad_alloc_trigger to make kBadAlloc faults travel
/// through the true allocator failure path.
[[noreturn]] void trigger_bad_alloc_now();

}  // namespace rimarket::common
