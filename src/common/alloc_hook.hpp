// Process-wide heap-allocation counter for tests and benchmarks.
//
// Linking the companion rimarket_alloc_hook library replaces the global
// operator new/delete with counting wrappers.  It is deliberately NOT part
// of the main rimarket library: only the hot-loop allocation test and the
// perf harness link it, so production binaries keep the stock allocator.
//
// Counting is process-global and not async-signal-safe, but it is
// thread-safe (a relaxed atomic) and exact: every successful operator new
// bumps the counter once.  Measure with the delta method —
// allocation_count() before and after the region under test — so one-time
// setup (static initializers, gtest machinery) cancels out.
#pragma once

#include <cstdint>

namespace rimarket::common {

/// Total successful global operator new calls since process start.
/// Defined by rimarket_alloc_hook; callers must link that library.
std::uint64_t allocation_count();

}  // namespace rimarket::common
