#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace rimarket::common {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  RIMARKET_EXPECTS(lo < hi);
  RIMARKET_EXPECTS(bins >= 1);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto index = static_cast<std::size_t>((value - lo_) / width);
  index = std::min(index, counts_.size() - 1);
  ++counts_[index];
}

std::size_t Histogram::count(std::size_t i) const {
  RIMARKET_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  RIMARKET_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  RIMARKET_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = std::max<std::size_t>(1, underflow_);
  peak = std::max(peak, overflow_);
  for (std::size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  auto emit = [&](double low, double high, std::size_t count, const char* tag) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(bar_width) * static_cast<double>(count) / static_cast<double>(peak));
    std::snprintf(line, sizeof line, "  %s[%8.3f, %8.3f) %8zu |", tag, low, high, count);
    out += line;
    out.append(bar, '#');
    out += '\n';
  };
  if (underflow_ > 0) {
    emit(-1.0, lo_, underflow_, "<");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    emit(bin_low(i), bin_high(i), counts_[i], " ");
  }
  if (overflow_ > 0) {
    emit(hi_, hi_, overflow_, ">");
  }
  return out;
}

}  // namespace rimarket::common
