// Contract-checking macros for rimarket.
//
// Following the C++ Core Guidelines (I.6, E.12) we treat precondition and
// invariant violations as programmer errors: they print a diagnostic and
// abort.  The macros are always on (the simulator is not hot enough to
// justify a release-mode escape hatch, and silent corruption of a cost
// ledger is far worse than an abort).
#pragma once

#include <string_view>

namespace rimarket::common {

/// Prints a contract-violation diagnostic to stderr and aborts.
[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, long line,
                                   std::string_view message);

}  // namespace rimarket::common

/// Generic runtime check; `msg` is a short human-readable hint.
#define RIMARKET_CHECK_MSG(cond, msg)                                                 \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::rimarket::common::contract_failure("check", #cond, __FILE__, __LINE__, (msg)); \
    }                                                                                 \
  } while (false)

#define RIMARKET_CHECK(cond) RIMARKET_CHECK_MSG(cond, "")

/// Precondition on function arguments (Core Guidelines I.6).
#define RIMARKET_EXPECTS(cond) \
  do {                                                                                      \
    if (!(cond)) {                                                                          \
      ::rimarket::common::contract_failure("precondition", #cond, __FILE__, __LINE__, ""); \
    }                                                                                       \
  } while (false)

/// Postcondition on results (Core Guidelines I.8).
#define RIMARKET_ENSURES(cond)                                                               \
  do {                                                                                       \
    if (!(cond)) {                                                                           \
      ::rimarket::common::contract_failure("postcondition", #cond, __FILE__, __LINE__, ""); \
    }                                                                                        \
  } while (false)

/// Marks unreachable code paths.
#define RIMARKET_UNREACHABLE(msg)                                                          \
  ::rimarket::common::contract_failure("unreachable", "", __FILE__, __LINE__, (msg))
