#include "common/cdf.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace rimarket::common {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  RIMARKET_EXPECTS(!sorted_.empty());
  return quantile_sorted(sorted_, q);
}

double EmpiricalCdf::min() const {
  RIMARKET_EXPECTS(!sorted_.empty());
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  RIMARKET_EXPECTS(!sorted_.empty());
  return sorted_.back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::sample_curve(std::size_t points) const {
  RIMARKET_EXPECTS(points >= 2);
  std::vector<Point> curve;
  if (sorted_.empty()) {
    return curve;
  }
  curve.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.push_back({x, at(x)});
  }
  return curve;
}

std::string EmpiricalCdf::to_table(std::size_t points, std::string_view x_label) const {
  std::string out;
  out += "  ";
  out += std::string(x_label);
  out += "      F(x)\n";
  char line[96];
  for (const Point& point : sample_curve(points)) {
    std::snprintf(line, sizeof line, "  %10.4f  %6.3f\n", point.x, point.probability);
    out += line;
  }
  return out;
}

}  // namespace rimarket::common
