// Exception-safe fixed-size thread pool for parallel experiment sweeps.
//
// The multi-user evaluation runs 300 users x 4 purchasing imitators x 6
// selling policies; each run is independent, so a task queue with a join
// barrier is all the concurrency machinery needed (Core Guidelines CP.4:
// think in tasks, not threads).  Unlike a bare queue, this pool survives
// throwing tasks: the first exception is captured, the remaining queued
// tasks are cancelled, and the error is rethrown from the wait point — one
// bad trace fails the sweep with a diagnosis instead of deadlocking it or
// terminating the process.  See DESIGN.md "Execution layer".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_safety.hpp"

namespace rimarket::common {

class MetricsRegistry;

/// Counter snapshot of one pool's lifetime activity.
struct ThreadPoolMetrics {
  std::uint64_t tasks_submitted = 0;  ///< accepted by submit()
  std::uint64_t tasks_run = 0;        ///< executed to completion (ok or failed)
  std::uint64_t tasks_failed = 0;     ///< executed and threw
  std::uint64_t tasks_cancelled = 0;  ///< dropped unexecuted after a failure
  std::uint64_t errors_suppressed = 0;  ///< task errors dropped because one was already captured
  std::uint64_t max_queue_depth = 0;  ///< high-water mark of the task queue
  std::uint64_t total_task_nanos = 0; ///< summed wall time inside tasks
};

/// Runs submitted tasks on a fixed set of worker threads.
///
/// Error model: a task may throw.  The first exception is captured; every
/// task still queued at that moment is cancelled (popped without running).
/// `wait_idle()` blocks until the pool drains, then rethrows the captured
/// exception and resets the error state, so the pool is reusable for the
/// next wave.  Tasks that run concurrently with the failing one still
/// complete — cancellation stops *scheduling*, it does not interrupt.
/// Errors those concurrent tasks throw are counted as `errors_suppressed`;
/// when any were dropped in a wave, the rethrown std::exception's message
/// gains a "[N more task error(s) suppressed]" suffix so the loss is
/// visible in the diagnosis (a lone failure rethrows the original object
/// unchanged).
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; pass 0 to use hardware concurrency).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains (or, after a failure, cancels) outstanding tasks, then joins
  /// workers.  A pending captured exception is swallowed here — call
  /// wait_idle() first if you care about it.
  ~ThreadPool();

  /// Enqueues a task.  Thrown exceptions are captured, not fatal.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result.  Exceptions
  /// propagate through the future, not through the pool's error state.
  template <typename F>
  auto submit_with_result(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable callables.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished or been cancelled.
  /// Rethrows the first captured task exception (clearing it, so the pool
  /// is reusable afterwards).
  void wait_idle();

  /// Requests cancellation: queued-but-unstarted tasks are dropped.  Tasks
  /// already running finish normally.  The flag clears at the next
  /// wait_idle() once the pool drains.
  void cancel();

  std::size_t thread_count() const { return workers_.size(); }

  /// Lifetime counters (thread-safe snapshot).
  ThreadPoolMetrics metrics() const;

  /// Writes the counters into `registry` as "<prefix>.tasks_run" etc.,
  /// plus "<prefix>.threads".
  void export_metrics(MetricsRegistry& registry, std::string_view prefix) const;

 private:
  void worker_loop();
  /// Pops, counts and discards every queued task.
  void drop_queued_tasks_locked() RIMARKET_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_ RIMARKET_GUARDED_BY(mutex_);
  std::size_t in_flight_ RIMARKET_GUARDED_BY(mutex_) = 0;
  bool stopping_ RIMARKET_GUARDED_BY(mutex_) = false;
  bool cancelling_ RIMARKET_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ RIMARKET_GUARDED_BY(mutex_);
  /// Errors dropped since the last wait_idle(); drives the rethrow suffix.
  std::uint64_t wave_suppressed_ RIMARKET_GUARDED_BY(mutex_) = 0;
  ThreadPoolMetrics counters_ RIMARKET_GUARDED_BY(mutex_);
};

/// Applies `fn(i)` for i in [0, count) across the pool and waits; rethrows
/// the first exception any iteration threw (remaining chunks cancelled).
///
/// Work is submitted in chunks of `grain` consecutive indices (one
/// std::function allocation per chunk instead of per element); `grain` 0
/// picks a chunk size that gives each worker several chunks to balance
/// load.  If an iteration throws, the rest of its chunk is skipped.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn, std::size_t grain = 0);

}  // namespace rimarket::common
