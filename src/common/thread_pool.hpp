// Fixed-size thread pool for parallel experiment sweeps.
//
// The multi-user evaluation runs 300 users x 4 purchasing imitators x 6
// selling policies; each run is independent, so a simple task queue with a
// join barrier is all the concurrency machinery needed (Core Guidelines
// CP.4: think in tasks, not threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rimarket::common {

/// Runs submitted tasks on a fixed set of worker threads.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; pass 0 to use hardware concurrency).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins workers.
  ~ThreadPool();

  /// Enqueues a task.  Tasks must not throw (the pool aborts on escape).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Applies `fn(i)` for i in [0, count) across the pool and waits.
void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace rimarket::common
