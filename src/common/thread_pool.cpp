#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"

namespace rimarket::common {

namespace {

/// RAII completion marker: decrementing `in_flight_` must happen on every
/// exit path of a popped task (ran, threw, or was cancelled), otherwise
/// wait_idle() blocks forever — the exact bug this pool exists to prevent.
class CompletionGuard {
 public:
  CompletionGuard(Mutex& mutex, std::condition_variable& all_done, std::size_t& in_flight)
      : mutex_(mutex), all_done_(all_done), in_flight_(in_flight) {}

  CompletionGuard(const CompletionGuard&) = delete;
  CompletionGuard& operator=(const CompletionGuard&) = delete;

  ~CompletionGuard() {
    const MutexLock lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) {
      all_done_.notify_all();
    }
  }

 private:
  Mutex& mutex_;
  std::condition_variable& all_done_;
  std::size_t& in_flight_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  RIMARKET_EXPECTS(task != nullptr);
  RIMARKET_INJECT(fault_injection::kSitePoolSubmit);
  {
    const MutexLock lock(mutex_);
    if (stopping_) {
      const std::string message = format(
          "submit() after shutdown (queued=%zu in_flight=%zu run=%llu failed=%llu)",
          tasks_.size(), in_flight_, static_cast<unsigned long long>(counters_.tasks_run),
          static_cast<unsigned long long>(counters_.tasks_failed));
      RIMARKET_CHECK_MSG(false, message);
    }
    tasks_.push(std::move(task));
    ++in_flight_;
    ++counters_.tasks_submitted;
    counters_.max_queue_depth =
        std::max<std::uint64_t>(counters_.max_queue_depth, tasks_.size());
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  std::uint64_t suppressed = 0;
  {
    MutexLock lock(mutex_);
    // Explicit predicate loop (not a wait lambda) so the guarded read of
    // in_flight_ stays inside the annotated scope for -Wthread-safety.
    while (in_flight_ != 0) {
      all_done_.wait(lock.native());
    }
    // Drained: hand the first captured error (if any) to the caller and
    // reset the cancellation latch so the pool is reusable.
    error = std::exchange(first_error_, nullptr);
    suppressed = std::exchange(wave_suppressed_, 0);
    cancelling_ = false;
  }
  if (!error) {
    return;
  }
  if (suppressed > 0) {
    // Concurrent tasks also failed and their errors were dropped; say so in
    // the message.  (A lone failure rethrows the original object unchanged,
    // preserving its dynamic type for callers that catch specifically.)
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& first) {
      throw std::runtime_error(
          format("%s [%llu more task error(s) suppressed]", first.what(),
                 static_cast<unsigned long long>(suppressed)));
    } catch (...) {
      // Not a std::exception: no message to annotate, fall through.
    }
  }
  std::rethrow_exception(error);
}

void ThreadPool::cancel() {
  const MutexLock lock(mutex_);
  cancelling_ = true;
  drop_queued_tasks_locked();
}

void ThreadPool::drop_queued_tasks_locked() {
  while (!tasks_.empty()) {
    tasks_.pop();
    ++counters_.tasks_cancelled;
    --in_flight_;
  }
  if (in_flight_ == 0) {
    all_done_.notify_all();
  }
}

ThreadPoolMetrics ThreadPool::metrics() const {
  const MutexLock lock(mutex_);
  return counters_;
}

void ThreadPool::export_metrics(MetricsRegistry& registry, std::string_view prefix) const {
  const ThreadPoolMetrics snapshot = metrics();
  const std::string base(prefix);
  registry.set(base + ".threads", static_cast<std::int64_t>(thread_count()));
  registry.set(base + ".tasks_submitted", static_cast<std::int64_t>(snapshot.tasks_submitted));
  registry.set(base + ".tasks_run", static_cast<std::int64_t>(snapshot.tasks_run));
  registry.set(base + ".tasks_failed", static_cast<std::int64_t>(snapshot.tasks_failed));
  registry.set(base + ".tasks_cancelled", static_cast<std::int64_t>(snapshot.tasks_cancelled));
  registry.set(base + ".errors_suppressed",
               static_cast<std::int64_t>(snapshot.errors_suppressed));
  registry.set(base + ".max_queue_depth", static_cast<std::int64_t>(snapshot.max_queue_depth));
  registry.set(base + ".total_task_millis",
               static_cast<double>(snapshot.total_task_nanos) / 1e6);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    bool cancelled = false;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) {
        task_available_.wait(lock.native());
      }
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      if (cancelling_) {
        cancelled = true;
        ++counters_.tasks_cancelled;
      }
    }
    const CompletionGuard guard(mutex_, all_done_, in_flight_);
    if (cancelled) {
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
      RIMARKET_INJECT(fault_injection::kSitePoolTask);
      task();
    } catch (...) {
      error = std::current_exception();
    }
    const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    {
      const MutexLock lock(mutex_);
      ++counters_.tasks_run;
      counters_.total_task_nanos += static_cast<std::uint64_t>(nanos);
      if (error) {
        ++counters_.tasks_failed;
        if (!first_error_) {
          first_error_ = error;
        } else {
          ++counters_.errors_suppressed;
          ++wave_suppressed_;
        }
        // Stop scheduling: everything still queued is dropped now; tasks
        // already running on other workers finish normally.
        cancelling_ = true;
        drop_queued_tasks_locked();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  if (grain == 0) {
    // A few chunks per worker balances load without per-element overhead.
    const std::size_t target_chunks = pool.thread_count() * 4;
    grain = std::max<std::size_t>(1, (count + target_chunks - 1) / target_chunks);
  }
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(begin + grain, count);
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace rimarket::common
