#include "common/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "common/thread_safety.hpp"

namespace rimarket::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_output_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buffer[1024];
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  const MutexLock lock(g_output_mutex);
  std::fprintf(stderr, "[rimarket %s] %s\n", level_tag(level), buffer);
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const MutexLock lock(g_output_mutex);
  std::fprintf(stderr, "[rimarket %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

#define RIMARKET_DEFINE_LOG_FN(name, level)   \
  void name(const char* fmt, ...) {           \
    std::va_list args;                        \
    va_start(args, fmt);                      \
    vlog(level, fmt, args);                   \
    va_end(args);                             \
  }

RIMARKET_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
RIMARKET_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
RIMARKET_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
RIMARKET_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef RIMARKET_DEFINE_LOG_FN

}  // namespace rimarket::common
