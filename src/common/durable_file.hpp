// Durable-file primitives: the one audited implementation of "state that
// survives a crash" shared by the serve journal and the batch-engine
// checkpoint writer.
//
// Two disciplines live here:
//
//   * CRC32-framed append logs.  Every record is written as an 8-byte
//     little-endian header (payload length, CRC32 of the payload) followed
//     by the payload, so a reader can always tell a complete record from a
//     torn tail.  `read_records` recovers the longest valid prefix and
//     reports how many trailing bytes it refused — recovery truncates at
//     the first torn or corrupt record instead of failing, which is the
//     contract a write-ahead journal needs after SIGKILL mid-append.
//
//   * Atomic whole-file replacement.  `atomic_replace` writes `path.tmp`,
//     fsyncs, then renames over `path`, and removes the temporary on every
//     failure path — a crash or failure leaves either the old file or the
//     new one, never a half-written state file and never stale `.tmp`
//     residue.
//
// fsync is configurable (FsyncMode) because tests exercise thousands of
// appends where real disk barriers would dominate the runtime; production
// callers keep kAlways.  rimcheck's `state.atomic-write-discipline` rule
// forbids raw std::rename / std::ofstream state writes everywhere else in
// src/, so new persistence code is funneled through this file.  See
// DESIGN.md "Durable files and the snapshot journal".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rimarket::common::durable {

/// Disk-barrier discipline for appends and replacements.
enum class FsyncMode {
  kAlways,  ///< fsync after every append and before every rename
  kNever,   ///< no barriers (tests; data still reaches the file via write())
};

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::string_view bytes);

/// Appends the framed encoding of `payload` (8-byte length+CRC header, then
/// the payload bytes) to `out`.
void frame_record(std::string_view payload, std::string& out);

/// One recovered record plus the file offset just past its frame, so a
/// caller that rejects a record's *content* can truncate to the previous
/// record's end.
struct FramedRecord {
  std::string payload;
  std::size_t end_offset = 0;
};

struct ReadResult {
  /// The longest prefix of records that framed and checksummed correctly.
  std::vector<FramedRecord> records;
  /// Byte length of that valid prefix.
  std::size_t valid_bytes = 0;
  /// Bytes past the valid prefix (a torn header, a payload shorter than its
  /// declared length, or a CRC mismatch); 0 for a clean file.
  std::size_t truncated_bytes = 0;
  /// True when the file does not exist (distinct from an empty file).
  bool missing = false;
};

/// Reads every valid record from `path`, stopping at the first torn or
/// corrupt frame.  Never fails: an unreadable or missing file simply
/// recovers zero records.
ReadResult read_records(const std::string& path);

/// Truncates `path` to exactly `size` bytes.  False on failure.
bool truncate_file(const std::string& path, std::size_t size);

/// Renames `from` to `to` (same filesystem).  False on failure.
bool rename_file(const std::string& from, const std::string& to);

/// Atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// fsyncs it (per `mode`), then renames it over `path`.  The temporary is
/// removed on every failure path, including an injected fault between the
/// write and the rename.  False on failure (the previous `path`, if any, is
/// untouched).
bool atomic_replace(const std::string& path, std::string_view contents, FsyncMode mode);

/// An open append-only log of CRC32-framed records.
///
/// Failure discipline: a failed append rolls the file back to its length
/// before the append (so the log never accumulates an interior torn frame —
/// only a crash can leave one, and only at the tail).  If even the rollback
/// fails, the log marks itself broken and every later append fails, which a
/// write-ahead caller turns into rejected updates rather than silently
/// un-durable ones.
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens (creating if needed) `path` for appending.  False on failure.
  bool open(const std::string& path, FsyncMode mode);
  bool is_open() const { return fd_ >= 0; }
  void close();

  /// Frames and appends `payload`, then applies the fsync discipline.
  /// False on any failure (after rolling the file back, see above).
  bool append(std::string_view payload);

  /// Explicit barrier: fsyncs regardless of mode.  False on failure.
  bool sync();

  /// Rolls the file back to `size` bytes (a prior size_bytes() value) — the
  /// caller's escape hatch when a post-append step fails and the appended
  /// record must not survive.  False on failure, after which the log is
  /// broken (see above).
  bool truncate_to(std::size_t size);

  /// Current file length in bytes (header + payload of every record).
  std::size_t size_bytes() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  FsyncMode mode_ = FsyncMode::kAlways;
  std::size_t size_ = 0;
  bool broken_ = false;
};

}  // namespace rimarket::common::durable
