// Empirical cumulative distribution functions.
//
// The paper's Figs. 3 and 4 plot CDFs of per-user normalized cost; the
// bench harnesses print the same curves as (x, F(x)) series via this class.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace rimarket::common {

/// Immutable empirical CDF over a sample of doubles.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds the CDF from an (unsorted) sample.
  explicit EmpiricalCdf(std::span<const double> sample);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x) = P[X <= x]; 0 for an empty CDF.
  double at(double x) const;

  /// Inverse CDF (linear-interpolated quantile); requires non-empty, q in [0,1].
  double quantile(double q) const;

  double min() const;
  double max() const;

  /// Evaluates the CDF on an evenly spaced grid of `points` x-values
  /// spanning [min, max]; useful for printing plot series.
  struct Point {
    double x;
    double probability;
  };
  std::vector<Point> sample_curve(std::size_t points) const;

  /// Renders an ASCII sparkline-style table of the curve (for bench output).
  std::string to_table(std::size_t points, std::string_view x_label) const;

  /// The underlying sorted sample.
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace rimarket::common
