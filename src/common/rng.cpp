#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rimarket::common {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RIMARKET_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Debiased modulo (Lemire-style rejection would be overkill here; the
  // rejection loop below is exact and simple).
  const std::uint64_t limit = (~static_cast<std::uint64_t>(0)) - (~static_cast<std::uint64_t>(0)) % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  RIMARKET_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  RIMARKET_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
    // Marsaglia polar rejection: only s exactly 0 makes log(s)/s blow up,
    // and uniform01() emits exact dyadic rationals, so the compare below is
    // lint-allow(float-eq): intentionally exact — rejects the one value that divides by 0
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  RIMARKET_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  RIMARKET_EXPECTS(lambda > 0.0);
  double u;
  do {
    u = uniform01();
    // Inverse-CDF rejection: exactly 0 (a value uniform01() can emit) would
    // lint-allow(float-eq): send log() to -inf; the compare must be exact
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

std::int64_t Rng::poisson(double mean) {
  RIMARKET_EXPECTS(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for
    // workload synthesis at high rates.
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  std::int64_t k = 0;
  double product = uniform01();
  while (product > threshold) {
    ++k;
    product *= uniform01();
  }
  return k;
}

double Rng::pareto(double scale, double shape) {
  RIMARKET_EXPECTS(scale > 0.0);
  RIMARKET_EXPECTS(shape > 0.0);
  double u;
  do {
    u = uniform01();
    // Inverse-CDF rejection: pow(0, 1/shape) returns 0 and the division
    // lint-allow(float-eq): blows up on exactly 0; the compare must be exact
  } while (u == 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng(splitmix64(sm));
}

}  // namespace rimarket::common
