// Deterministic random number generation.
//
// Every stochastic component in rimarket (workload synthesis, random
// reservation policy, buyer arrivals, randomized selling) draws from an
// `Rng` seeded from the experiment config, so each experiment is exactly
// reproducible.  The generator is xoshiro256** (public-domain algorithm by
// Blackman & Vigna) seeded through SplitMix64, which gives independent,
// well-mixed streams from small integer seeds.
#pragma once

#include <array>
#include <cstdint>

namespace rimarket::common {

/// SplitMix64 step; used for seeding and as a cheap hash of integers.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator named requirement, so it can be
/// plugged into <random> distributions, but the member helpers below are the
/// preferred interface (they are reproducible across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a small seed (any value is fine, including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Raw 64 random bits.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson-distributed count with mean >= 0 (Knuth for small means,
  /// normal approximation above 64).
  std::int64_t poisson(double mean);

  /// Pareto (Lomax-shifted) sample >= scale, with tail index shape > 0.
  double pareto(double scale, double shape);

  /// Log-normal sample with parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Forks an independent child stream; children with different `salt`
  /// values are decorrelated from each other and from the parent.
  Rng fork(std::uint64_t salt);

 private:
  std::array<std::uint64_t, 4> state_;
  // Cached second variate of the polar method.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace rimarket::common
