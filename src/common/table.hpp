// ASCII table rendering for bench/report output.
//
// The paper-reproduction benches print tables matching the paper's layout
// (Tables I-III); this renderer right-aligns numeric columns and pads to
// column width, producing stable, diff-friendly output.
#pragma once

#include <string>
#include <vector>

namespace rimarket::common {

/// Simple row/column table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column separators and a header rule.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rimarket::common
