// Tiny command-line flag parser for examples and bench binaries.
//
// Accepts `--name=value`, `--name value` and boolean `--name`.  Positional
// arguments are collected in order.  Unknown flags are an error so typos in
// experiment invocations fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rimarket::common {

/// Declarative flag set with typed accessors.
class CliParser {
 public:
  /// Declares a flag with a help string; flags must be declared before parse().
  void add_flag(std::string name, std::string help, std::string default_value = "");

  /// Parses argv; returns false (and sets error()) on unknown/malformed flags.
  bool parse(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool provided(const std::string& name) const;

  std::string get(const std::string& name) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Usage text from the declared flags.
  std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool provided = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace rimarket::common
