#include "common/csv.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace rimarket::common {

CsvRow parse_csv_line(std::string_view line) {
  // Strip a trailing CR from DOS line endings.
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  CsvRow fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string make_csv_line(const CsvRow& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    const std::string& field = fields[i];
    const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out += '"';
    for (char c : field) {
      if (c == '"') {
        out += "\"\"";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  return out;
}

CsvDocument parse_csv(std::string_view text, bool expect_header) {
  CsvDocument doc;
  bool header_pending = expect_header;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (trim(line).empty()) {
      if (end == text.size()) {
        break;
      }
      continue;
    }
    if (header_pending) {
      doc.header = parse_csv_line(line);
      header_pending = false;
    } else {
      doc.rows.push_back(parse_csv_line(line));
    }
    if (end == text.size()) {
      break;
    }
  }
  return doc;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return std::nullopt;
  }
  std::string contents;
  char buffer[1 << 14];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(file);
  return contents;
}

bool write_file(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool ok = written == contents.size() && std::fclose(file) == 0;
  if (!ok && written != contents.size()) {
    std::fclose(file);
  }
  return ok;
}

std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header) {
  const auto contents = read_file(path);
  if (!contents) {
    return std::nullopt;
  }
  return parse_csv(*contents, expect_header);
}

}  // namespace rimarket::common
