#include "common/csv.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.hpp"
#include "common/strings.hpp"

namespace rimarket::common {

CsvRow parse_csv_line(std::string_view line) {
  // Strip a trailing CR from DOS line endings.
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  CsvRow fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string make_csv_line(const CsvRow& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    const std::string& field = fields[i];
    const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out += '"';
    for (char c : field) {
      if (c == '"') {
        out += "\"\"";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  return out;
}

CsvDocument parse_csv(std::string_view text, bool expect_header) {
  CsvDocument doc;
  bool header_pending = expect_header;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (trim(line).empty()) {
      if (end == text.size()) {
        break;
      }
      continue;
    }
    if (header_pending) {
      doc.header = parse_csv_line(line);
      doc.header_line = line_number;
      header_pending = false;
    } else {
      doc.rows.push_back(parse_csv_line(line));
      doc.row_lines.push_back(line_number);
    }
    if (end == text.size()) {
      break;
    }
  }
  return doc;
}

std::string CsvError::to_string() const {
  const char* shown_path = path.empty() ? "<input>" : path.c_str();
  if (line > 0) {
    return format("%s:%zu: %s", shown_path, line, message.c_str());
  }
  if (errno_value != 0) {
    return format("%s: %s (errno %d)", shown_path, message.c_str(), errno_value);
  }
  return format("%s: %s", shown_path, message.c_str());
}

std::optional<std::string> read_file(const std::string& path) {
  return read_file(path, nullptr);
}

namespace {

/// Closes the handle even when reading throws (bad_alloc while growing the
/// contents string leaks the FILE* otherwise — found by -fanalyzer).
struct FileCloser {
  std::FILE* file;
  ~FileCloser() {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};

}  // namespace

std::optional<std::string> read_file(const std::string& path, CsvError* error) {
  if (RIMARKET_INJECT_PARSE(fault_injection::kSiteCsvReadFile)) {
    if (error != nullptr) {
      *error = CsvError{path, 0, 0, "injected read failure"};
    }
    return std::nullopt;
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = CsvError{path, errno, 0, std::strerror(errno)};
    }
    return std::nullopt;
  }
  const FileCloser closer{file};
  std::string contents;
  char buffer[1 << 14];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, got);
  }
  if (std::ferror(file) != 0) {
    if (error != nullptr) {
      *error = CsvError{path, errno, 0, std::strerror(errno)};
    }
    return std::nullopt;
  }
  return contents;
}

bool write_file(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool ok = written == contents.size() && std::fclose(file) == 0;
  if (!ok && written != contents.size()) {
    std::fclose(file);
  }
  return ok;
}

std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header) {
  return load_csv_file(path, expect_header, nullptr);
}

std::optional<CsvDocument> load_csv_file(const std::string& path, bool expect_header,
                                         CsvError* error) {
  const auto contents = read_file(path, error);
  if (!contents) {
    return std::nullopt;
  }
  if (RIMARKET_INJECT_PARSE(fault_injection::kSiteCsvLoad)) {
    if (error != nullptr) {
      *error = CsvError{path, 0, 1, "injected parse error"};
    }
    return std::nullopt;
  }
  CsvDocument doc = parse_csv(*contents, expect_header);
  // Ragged documents are parse-shape errors: every row must be as wide as
  // the header (or the first row, when there is no header).
  const std::size_t expected_width =
      expect_header ? doc.header.size() : (doc.rows.empty() ? 0 : doc.rows.front().size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    if (doc.rows[i].size() != expected_width) {
      if (error != nullptr) {
        *error = CsvError{path, 0, doc.row_lines[i],
                          format("row has %zu field(s), expected %zu", doc.rows[i].size(),
                                 expected_width)};
      }
      return std::nullopt;
    }
  }
  return doc;
}

}  // namespace rimarket::common
