// Fixed-bin histogram for workload and result summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rimarket::common {

/// Histogram over [lo, hi) with equal-width bins plus under/overflow bins.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Count in bin `i` (0-based).
  std::size_t count(std::size_t i) const;

  /// Inclusive lower edge of bin `i`.
  double bin_low(std::size_t i) const;
  /// Exclusive upper edge of bin `i`.
  double bin_high(std::size_t i) const;

  /// ASCII rendering with proportional bars (for bench/demo output).
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rimarket::common
