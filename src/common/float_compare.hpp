// Epsilon-aware floating-point comparisons.
//
// The cost model (paper Eq. (1)) and break-even rules compare dollar
// amounts and fractions that are products of several doubles; exact ==/!=
// on such values is a correctness hazard the domain lint
// (tools/lint.py, rule `float-eq`) rejects outright.  These helpers are
// the sanctioned replacement: a relative tolerance scaled to the operands
// with an absolute floor for comparisons against zero.
#pragma once

#include <algorithm>
#include <cmath>

namespace rimarket::common {

/// Default relative tolerance: ~1e4 ULPs at double precision, far tighter
/// than any economically meaningful dollar difference yet forgiving of the
/// few multiplies the cost pipeline performs.
inline constexpr double kFloatTolerance = 1e-12;

/// True when `value` is indistinguishable from zero at tolerance `abs_tol`.
inline bool near_zero(double value, double abs_tol = kFloatTolerance) {
  return std::fabs(value) <= abs_tol;
}

/// True when `lhs` and `rhs` agree to relative tolerance `rel_tol` (with an
/// absolute floor of the same magnitude so values near zero still compare
/// equal).
inline bool approx_equal(double lhs, double rhs, double rel_tol = kFloatTolerance) {
  // Non-finite values never compare equal: a NaN or infinity in the cost
  // pipeline is a bug to surface, not a value to tolerate.
  if (!std::isfinite(lhs) || !std::isfinite(rhs)) {
    return false;
  }
  const double scale = std::max({1.0, std::fabs(lhs), std::fabs(rhs)});
  return std::fabs(lhs - rhs) <= rel_tol * scale;
}

}  // namespace rimarket::common
