#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rimarket::common {

namespace {

// Distribution binning: log2 domain [kLog2Lo, kLog2Hi) split into kLog2Bins
// equal bins gives 8 bins per octave (relative bin width 2^(1/8) ~ 9%),
// spanning ~2^-10 (1e-3) to 2^44 (1.7e13) — microsecond latencies up to
// hours fit without overflow in either direction.
constexpr double kLog2Lo = -10.0;
constexpr double kLog2Hi = 44.0;
constexpr std::size_t kLog2Bins = 432;

}  // namespace

MetricsRegistry::Distribution::Distribution() : log2_bins(kLog2Lo, kLog2Hi, kLog2Bins) {}

void MetricsRegistry::Distribution::record(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  // Non-positive observations have no log2; they land in the underflow bin
  // together with anything below 2^kLog2Lo.
  log2_bins.add(value > 0.0 ? std::log2(value) : kLog2Lo - 1.0);
}

DistributionSnapshot MetricsRegistry::Distribution::snapshot() const {
  DistributionSnapshot out;
  out.count = count;
  if (count == 0) {
    return out;
  }
  out.mean = sum / static_cast<double>(count);
  out.min = min;
  out.max = max;
  // p99: walk bins until the cumulative count covers the 99th percentile
  // rank, then report the bin's upper edge (a conservative estimate within
  // one bin width), clamped into the exact [min, max] envelope.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(0.99 * static_cast<double>(count)));
  std::uint64_t cumulative = log2_bins.underflow();
  double p99 = min;
  if (cumulative < rank) {
    for (std::size_t i = 0; i < log2_bins.bin_count(); ++i) {
      cumulative += log2_bins.count(i);
      if (cumulative >= rank) {
        p99 = std::exp2(log2_bins.bin_high(i));
        break;
      }
    }
    if (cumulative < rank) {
      p99 = max;  // rank lives in the overflow bin
    }
  }
  out.p99 = std::clamp(p99, min, max);
  return out;
}

void MetricsRegistry::set(std::string_view name, std::int64_t value) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = true;
  slot.as_int = value;
}

void MetricsRegistry::set(std::string_view name, double value) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = false;
  slot.as_double = value;
}

void MetricsRegistry::increment(std::string_view name, std::int64_t delta) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = true;
  slot.as_int += delta;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  if (slot.is_int) {
    // Promote: a fresh slot starts as an int 0; keep any prior int value.
    slot.as_double = static_cast<double>(slot.as_int);
    slot.is_int = false;
  }
  slot.as_double += delta;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const MutexLock lock(mutex_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.emplace(std::string(name), Distribution{}).first;
  }
  it->second.record(value);
}

std::optional<double> MetricsRegistry::get(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second.is_int ? static_cast<double>(it->second.as_int) : it->second.as_double;
}

std::optional<DistributionSnapshot> MetricsRegistry::distribution(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = distributions_.find(name);
  if (it == distributions_.end() || it->second.count == 0) {
    return std::nullopt;
  }
  return it->second.snapshot();
}

std::size_t MetricsRegistry::size() const {
  const MutexLock lock(mutex_);
  return values_.size() + distributions_.size();
}

void MetricsRegistry::clear() {
  const MutexLock lock(mutex_);
  values_.clear();
  distributions_.clear();
}

std::string MetricsRegistry::to_json() const {
  const MutexLock lock(mutex_);
  // Expand distributions into their five keys, then merge with the scalar
  // values into one globally sorted key set.
  std::map<std::string, Value, std::less<>> expanded;
  for (const auto& [name, distribution] : distributions_) {
    const DistributionSnapshot snapshot = distribution.snapshot();
    Value count;
    count.is_int = true;
    count.as_int = static_cast<std::int64_t>(snapshot.count);
    expanded[name + ".count"] = count;
    Value gauge;
    gauge.is_int = false;
    gauge.as_double = snapshot.mean;
    expanded[name + ".mean"] = gauge;
    gauge.as_double = snapshot.min;
    expanded[name + ".min"] = gauge;
    gauge.as_double = snapshot.max;
    expanded[name + ".max"] = gauge;
    gauge.as_double = snapshot.p99;
    expanded[name + ".p99"] = gauge;
  }
  for (const auto& [name, value] : values_) {
    expanded[name] = value;
  }
  std::string out = "{";
  char buffer[64];
  bool first = true;
  for (const auto& [name, value] : expanded) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += name;  // dotted metric names never need JSON escaping
    out += "\":";
    if (value.is_int) {
      std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value.as_int));
    } else {
      std::snprintf(buffer, sizeof buffer, "%.17g", value.as_double);
    }
    out += buffer;
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rimarket::common
