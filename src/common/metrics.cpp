#include "common/metrics.hpp"

#include <cstdio>

namespace rimarket::common {

void MetricsRegistry::set(std::string_view name, std::int64_t value) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = true;
  slot.as_int = value;
}

void MetricsRegistry::set(std::string_view name, double value) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = false;
  slot.as_double = value;
}

void MetricsRegistry::increment(std::string_view name, std::int64_t delta) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  slot.is_int = true;
  slot.as_int += delta;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  const MutexLock lock(mutex_);
  Value& slot = values_[std::string(name)];
  if (slot.is_int) {
    // Promote: a fresh slot starts as an int 0; keep any prior int value.
    slot.as_double = static_cast<double>(slot.as_int);
    slot.is_int = false;
  }
  slot.as_double += delta;
}

std::optional<double> MetricsRegistry::get(std::string_view name) const {
  const MutexLock lock(mutex_);
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second.is_int ? static_cast<double>(it->second.as_int) : it->second.as_double;
}

std::size_t MetricsRegistry::size() const {
  const MutexLock lock(mutex_);
  return values_.size();
}

void MetricsRegistry::clear() {
  const MutexLock lock(mutex_);
  values_.clear();
}

std::string MetricsRegistry::to_json() const {
  const MutexLock lock(mutex_);
  std::string out = "{";
  char buffer[64];
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += name;  // dotted metric names never need JSON escaping
    out += "\":";
    if (value.is_int) {
      std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value.as_int));
    } else {
      std::snprintf(buffer, sizeof buffer, "%.17g", value.as_double);
    }
    out += buffer;
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rimarket::common
