// Clang thread-safety annotations (-Wthread-safety) for the execution layer.
//
// Clang's thread-safety analysis statically proves that every access to a
// RIMARKET_GUARDED_BY member happens with its mutex held — the concurrency
// counterpart of the unit types in common/units.hpp: move the invariant
// into the type system and let the compiler police it.  The macros expand
// to nothing on compilers without the attribute (GCC builds are unaffected;
// the clang CI job compiles with -Werror=thread-safety).
//
// std::mutex and std::lock_guard carry no annotations in libstdc++, so the
// layer also provides drop-in annotated wrappers (Mutex, MutexLock) used by
// common/thread_pool and common/metrics.  Condition-variable waits go
// through MutexLock::native(); write the wait as an explicit predicate
// loop in the annotated scope so the analysis sees the capability held
// around every guarded read.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RIMARKET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RIMARKET_THREAD_ANNOTATION
#define RIMARKET_THREAD_ANNOTATION(x)  // not clang: annotations are no-ops
#endif

#define RIMARKET_CAPABILITY(x) RIMARKET_THREAD_ANNOTATION(capability(x))
#define RIMARKET_SCOPED_CAPABILITY RIMARKET_THREAD_ANNOTATION(scoped_lockable)
#define RIMARKET_GUARDED_BY(x) RIMARKET_THREAD_ANNOTATION(guarded_by(x))
#define RIMARKET_PT_GUARDED_BY(x) RIMARKET_THREAD_ANNOTATION(pt_guarded_by(x))
#define RIMARKET_REQUIRES(...) RIMARKET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RIMARKET_ACQUIRE(...) RIMARKET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RIMARKET_RELEASE(...) RIMARKET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RIMARKET_TRY_ACQUIRE(...) \
  RIMARKET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RIMARKET_EXCLUDES(...) RIMARKET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RIMARKET_RETURN_CAPABILITY(x) RIMARKET_THREAD_ANNOTATION(lock_returned(x))
#define RIMARKET_NO_THREAD_SAFETY_ANALYSIS \
  RIMARKET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rimarket::common {

/// std::mutex with the `capability` annotation clang's analysis needs.
class RIMARKET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RIMARKET_ACQUIRE() { mutex_.lock(); }
  void unlock() RIMARKET_RELEASE() { mutex_.unlock(); }
  bool try_lock() RIMARKET_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped std::mutex, for APIs that need the standard type.
  std::mutex& native_handle() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock over Mutex; SCOPED_CAPABILITY tells the analysis the
/// capability is held from construction to destruction.
class RIMARKET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RIMARKET_ACQUIRE(mutex) : lock_(mutex.native_handle()) {}
  ~MutexLock() RIMARKET_RELEASE() {}  // lock_'s destructor unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for std::condition_variable::wait.  The
  /// wait re-acquires before returning, so the capability is held whenever
  /// annotated code runs.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace rimarket::common
