// Process-wide metrics registry for the experiment pipeline.
//
// The execution layer (thread pool, runner, bench harnesses, the resident
// advisor service) records flat counters and gauges here so every binary can
// end its run with one machine-readable JSON summary line.  Names are dotted
// paths ("sim.evaluate.tasks_run"); values are int64 counters or double
// gauges.  A third kind, distributions, aggregates repeated observations
// (request latencies) into count/mean/min/max/p99 backed by a
// common::Histogram over log2 space; a distribution named "d" expands in the
// JSON dump to "d.count", "d.mean", "d.min", "d.max", "d.p99".  All
// operations are thread-safe: workers update counters while the main thread
// snapshots them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/histogram.hpp"
#include "common/thread_safety.hpp"

namespace rimarket::common {

/// Point-in-time summary of one distribution (see MetricsRegistry::observe).
struct DistributionSnapshot {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Upper edge of the histogram bin holding the 99th percentile, clamped
  /// into [min, max]; exact for count <= 100 tails that land on max.
  double p99 = 0.0;
};

/// Flat name -> value store with a JSON one-line dump.
class MetricsRegistry {
 public:
  /// Sets (or overwrites) an integer counter.
  void set(std::string_view name, std::int64_t value);
  /// Sets (or overwrites) a floating-point gauge.
  void set(std::string_view name, double value);
  /// Adds `delta` to an integer counter, creating it at 0 first.
  void increment(std::string_view name, std::int64_t delta = 1);
  /// Adds `delta` to a floating-point gauge, creating it at 0.0 first.
  /// Multi-run processes accumulate run totals through this instead of
  /// set(), which would silently keep only the last run's value.
  void add(std::string_view name, double delta);

  /// Records one observation into the distribution `name`, creating it on
  /// first use.  Observations are binned at log2 resolution (~9% relative
  /// width), so p99 is an upper-edge estimate while count/mean/min/max are
  /// exact.  Non-positive observations clamp into the lowest bin.
  void observe(std::string_view name, double value);

  /// Reads a value (as double) if present; nullopt otherwise.
  std::optional<double> get(std::string_view name) const;

  /// Snapshot of the distribution `name`; nullopt when absent or empty.
  std::optional<DistributionSnapshot> distribution(std::string_view name) const;

  /// Number of distinct metrics recorded (distributions count once).
  std::size_t size() const;

  /// Drops every metric (used between runs and in tests).
  void clear();

  /// One-line JSON object, keys sorted: {"a.b":1,"c":2.5}.  Integers print
  /// without a decimal point; doubles with enough digits to round-trip.
  /// Distributions contribute their five expanded keys.
  std::string to_json() const;

  /// The process-wide registry used by the runner and bench harnesses.
  static MetricsRegistry& global();

 private:
  struct Value {
    bool is_int = true;
    std::int64_t as_int = 0;
    double as_double = 0.0;
  };

  struct Distribution {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Bin i covers observations in [2^(lo+i*w), 2^(lo+(i+1)*w)).
    Histogram log2_bins;

    Distribution();
    void record(double value);
    DistributionSnapshot snapshot() const;
  };

  mutable Mutex mutex_;
  std::map<std::string, Value, std::less<>> values_ RIMARKET_GUARDED_BY(mutex_);
  std::map<std::string, Distribution, std::less<>> distributions_ RIMARKET_GUARDED_BY(mutex_);
};

}  // namespace rimarket::common
