// Process-wide metrics registry for the experiment pipeline.
//
// The execution layer (thread pool, runner, bench harnesses) records flat
// counters and gauges here so every binary can end its run with one
// machine-readable JSON summary line.  Names are dotted paths
// ("sim.evaluate.tasks_run"); values are int64 counters or double gauges.
// All operations are thread-safe: workers update counters while the main
// thread snapshots them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/thread_safety.hpp"

namespace rimarket::common {

/// Flat name -> value store with a JSON one-line dump.
class MetricsRegistry {
 public:
  /// Sets (or overwrites) an integer counter.
  void set(std::string_view name, std::int64_t value);
  /// Sets (or overwrites) a floating-point gauge.
  void set(std::string_view name, double value);
  /// Adds `delta` to an integer counter, creating it at 0 first.
  void increment(std::string_view name, std::int64_t delta = 1);
  /// Adds `delta` to a floating-point gauge, creating it at 0.0 first.
  /// Multi-run processes accumulate run totals through this instead of
  /// set(), which would silently keep only the last run's value.
  void add(std::string_view name, double delta);

  /// Reads a value (as double) if present; nullopt otherwise.
  std::optional<double> get(std::string_view name) const;

  /// Number of distinct metrics recorded.
  std::size_t size() const;

  /// Drops every metric (used between runs and in tests).
  void clear();

  /// One-line JSON object, keys sorted: {"a.b":1,"c":2.5}.  Integers print
  /// without a decimal point; doubles with enough digits to round-trip.
  std::string to_json() const;

  /// The process-wide registry used by the runner and bench harnesses.
  static MetricsRegistry& global();

 private:
  struct Value {
    bool is_int = true;
    std::int64_t as_int = 0;
    double as_double = 0.0;
  };

  mutable Mutex mutex_;
  std::map<std::string, Value, std::less<>> values_ RIMARKET_GUARDED_BY(mutex_);
};

}  // namespace rimarket::common
