// Leveled logging to stderr.
//
// The simulator is library-first: logging defaults to kWarn so that bench
// and example binaries own their stdout.  Severity is a process-wide atomic
// so multi-threaded experiment runners can log safely.
#pragma once

#include <string_view>

namespace rimarket::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global severity threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, std::string_view message);

/// printf-style logging helpers.
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rimarket::common
