#include "common/cli.hpp"

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::common {

void CliParser::add_flag(std::string name, std::string help, std::string default_value) {
  RIMARKET_EXPECTS(!name.empty());
  flags_[std::move(name)] = Flag{std::move(help), std::move(default_value), false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(body.substr(0, eq));
      value = std::string(body.substr(eq + 1));
      has_value = true;
    } else {
      name = std::string(body);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = format("unknown flag --%s", name.c_str());
      return false;
    }
    if (!has_value) {
      // `--flag value` form, unless the next token is another flag or the
      // flag is boolean-style (declared default true/false).
      const bool next_is_value = i + 1 < argc && !starts_with(argv[i + 1], "--");
      const bool is_boolean = parse_bool(it->second.value).has_value();
      if (next_is_value && !is_boolean) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
    it->second.provided = true;
  }
  return true;
}

bool CliParser::provided(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.provided;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  RIMARKET_EXPECTS(it != flags_.end());
  return it->second.value;
}

long long CliParser::get_int(const std::string& name, long long fallback) const {
  const auto parsed = parse_int(get(name));
  return parsed ? *parsed : fallback;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto parsed = parse_double(get(name));
  return parsed ? *parsed : fallback;
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto parsed = parse_bool(get(name));
  return parsed ? *parsed : fallback;
}

std::string CliParser::help(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += format("  --%-24s %s", name.c_str(), flag.help.c_str());
    if (!flag.value.empty()) {
      out += format(" (default: %s)", flag.value.c_str());
    }
    out += '\n';
  }
  return out;
}

}  // namespace rimarket::common
