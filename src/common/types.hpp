// Fundamental domain types shared across rimarket modules.
#pragma once

#include <cstdint>

namespace rimarket {

/// Discrete simulation time in hours, matching EC2's hourly billing
/// granularity (paper Section III-C defines t = 0, 1, 2, ... in hours).
using Hour = std::int64_t;

/// Number of instances (demand level, fleet size, ...).
using Count = std::int64_t;

/// Hours in one 365-day year — the 1-year reservation term used throughout
/// the paper's evaluation.
inline constexpr Hour kHoursPerYear = 8760;

/// Hours in one day / one week, used by seasonal workload generators.
inline constexpr Hour kHoursPerDay = 24;
inline constexpr Hour kHoursPerWeek = 168;

}  // namespace rimarket
