// Dimension-checked strong types for the paper's cost model (Eq. (1)).
//
// Every quantity in C_t = o_t*p + n_t*R + r_t*alpha*p - s_t*a*rp*R has one
// of three dimensions — money (R, the hourly bills), time (t, T, worked
// hours) or a dimensionless fraction in [0,1] (alpha, a, rp, the 12%
// marketplace fee).  Passing them all as raw double lets a fee land where a
// discount belongs and the compiler stays silent; these wrappers make the
// type system the static analyzer:
//
//   Money      dollars (upfront fees, bills, marketplace income)
//   Rate       dollars per hour (on-demand price p, reserved rate alpha*p)
//   Hours      a duration, possibly fractional (break-even points)
//   Fraction   dimensionless in [0,1]; construction enforces the range
//
// Only dimensionally valid combinations compile:
//
//   Money +- Money            Rate * Hours   -> Money
//   Money * Fraction -> Money Money / Rate   -> Hours
//   Money / Money -> double   Money / Hours  -> Rate
//   Rate * Fraction  -> Rate  Fraction * Fraction -> Fraction
//
// while Money + Hours, Money * Money, Rate + Money, Money + 1.0 ... are
// compile errors (proved by the units.no_dimension_mixing negative-
// compilation ctest).  Plain double multiplies as a dimensionless scalar
// (instance counts enter Eq. (1) that way); the difference from Fraction is
// that a scalar carries no [0,1] contract.
//
// Escape hatch policy: `.value()` is the only way out of a wrapper.  It is
// reserved for I/O and statistics boundaries (CSV/JSON export, quantiles,
// gtest comparisons against literals) — inside the cost pipeline, stay in
// the algebra.  All operations are constexpr and each wrapper is exactly
// one double wide, so the types are zero-overhead (bench.perf_smoke gates
// this against the committed baseline).
//
// Fraction's range contract aborts at runtime and — because a failed
// contract is not a constant expression — refuses to compile in constexpr
// contexts, so `constexpr Fraction f{1.2};` is a build error.
#pragma once

#include <compare>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace rimarket {

/// Dimensionless quantity contracted to [0,1]: the reservation discount
/// alpha, the selling discount a, the remaining-term fraction rp, the
/// marketplace service fee, decision-spot fractions and probabilities.
class Fraction {
 public:
  constexpr Fraction() = default;
  constexpr explicit Fraction(double v) : v_(v) { RIMARKET_EXPECTS(v >= 0.0 && v <= 1.0); }

  constexpr double value() const { return v_; }
  /// 1 - f, the usual "remaining share" (1-alpha, 1-fee, ...).
  constexpr Fraction complement() const { return Fraction{1.0 - v_}; }

  /// Products of [0,1] values stay in [0,1]; sums may not, so there is no
  /// operator+ — leave the algebra via value() when adding bound terms.
  friend constexpr Fraction operator*(Fraction lhs, Fraction rhs) {
    return Fraction{lhs.v_ * rhs.v_};
  }
  friend constexpr auto operator<=>(Fraction lhs, Fraction rhs) = default;

 private:
  double v_ = 0.0;
};

/// A duration in hours, possibly fractional (break-even points beta(f) are
/// generally not integral).  Distinct from the integer `Hour` time index:
/// `Hours` is what participates in arithmetic with rates.
class Hours {
 public:
  constexpr Hours() = default;
  constexpr explicit Hours(double h) : v_(h) {}
  constexpr explicit Hours(Hour h) : v_(static_cast<double>(h)) {}

  constexpr double value() const { return v_; }

  friend constexpr Hours operator+(Hours lhs, Hours rhs) { return Hours{lhs.v_ + rhs.v_}; }
  friend constexpr Hours operator-(Hours lhs, Hours rhs) { return Hours{lhs.v_ - rhs.v_}; }
  friend constexpr Hours operator*(Hours h, double scalar) { return Hours{h.v_ * scalar}; }
  friend constexpr Hours operator*(double scalar, Hours h) { return Hours{scalar * h.v_}; }
  friend constexpr Hours operator*(Hours h, Fraction f) { return Hours{h.v_ * f.value()}; }
  friend constexpr Hours operator*(Fraction f, Hours h) { return Hours{f.value() * h.v_}; }
  friend constexpr double operator/(Hours lhs, Hours rhs) { return lhs.v_ / rhs.v_; }
  friend constexpr auto operator<=>(Hours lhs, Hours rhs) = default;

 private:
  double v_ = 0.0;
};

/// Money in US dollars.  A simulator aggregates at most ~1e7 dollars over a
/// run, so the wrapped IEEE double carries far more than the required
/// precision; all monetary arithmetic stays in one unit (dollars).
class Money {
 public:
  constexpr Money() = default;
  constexpr explicit Money(double dollars) : v_(dollars) {}

  constexpr double value() const { return v_; }

  constexpr Money operator-() const { return Money{-v_}; }
  constexpr Money& operator+=(Money other) {
    v_ += other.v_;
    return *this;
  }
  constexpr Money& operator-=(Money other) {
    v_ -= other.v_;
    return *this;
  }
  friend constexpr Money operator+(Money lhs, Money rhs) { return Money{lhs.v_ + rhs.v_}; }
  friend constexpr Money operator-(Money lhs, Money rhs) { return Money{lhs.v_ - rhs.v_}; }
  /// Scaling by a dimensionless scalar (instance counts in Eq. (1)).
  friend constexpr Money operator*(Money m, double scalar) { return Money{m.v_ * scalar}; }
  friend constexpr Money operator*(double scalar, Money m) { return Money{scalar * m.v_}; }
  friend constexpr Money operator*(Money m, Fraction f) { return Money{m.v_ * f.value()}; }
  friend constexpr Money operator*(Fraction f, Money m) { return Money{f.value() * m.v_}; }
  friend constexpr Money operator/(Money m, double scalar) { return Money{m.v_ / scalar}; }
  /// Ratio of two amounts (competitive ratios, normalization).
  friend constexpr double operator/(Money lhs, Money rhs) { return lhs.v_ / rhs.v_; }
  friend constexpr auto operator<=>(Money lhs, Money rhs) = default;

 private:
  double v_ = 0.0;
};

/// Dollars per hour: the on-demand price p and the reserved rate alpha*p.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(double dollars_per_hour) : v_(dollars_per_hour) {}

  constexpr double value() const { return v_; }

  friend constexpr Rate operator+(Rate lhs, Rate rhs) { return Rate{lhs.v_ + rhs.v_}; }
  friend constexpr Rate operator-(Rate lhs, Rate rhs) { return Rate{lhs.v_ - rhs.v_}; }
  friend constexpr Rate operator*(Rate r, double scalar) { return Rate{r.v_ * scalar}; }
  friend constexpr Rate operator*(double scalar, Rate r) { return Rate{scalar * r.v_}; }
  friend constexpr Rate operator*(Rate r, Fraction f) { return Rate{r.v_ * f.value()}; }
  friend constexpr Rate operator*(Fraction f, Rate r) { return Rate{f.value() * r.v_}; }
  friend constexpr Rate operator/(Rate r, double scalar) { return Rate{r.v_ / scalar}; }
  /// Ratio of two rates (the reservation discount alpha = (alpha*p)/p).
  friend constexpr double operator/(Rate lhs, Rate rhs) { return lhs.v_ / rhs.v_; }
  friend constexpr auto operator<=>(Rate lhs, Rate rhs) = default;

 private:
  double v_ = 0.0;
};

/// Rate x time = money: r_t hours billed at alpha*p.
constexpr Money operator*(Rate rate, Hours hours) { return Money{rate.value() * hours.value()}; }
constexpr Money operator*(Hours hours, Rate rate) { return Money{hours.value() * rate.value()}; }

/// Money / rate = time: the break-even point beta = f*a*R / (p*(1-alpha)).
constexpr Hours operator/(Money money, Rate rate) { return Hours{money.value() / rate.value()}; }

/// Money / time = rate: the effective hourly cost of a contract.
constexpr Rate operator/(Money money, Hours hours) { return Rate{money.value() / hours.value()}; }

}  // namespace rimarket
