#include "common/config.hpp"

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace rimarket::common {

std::optional<Config> Config::parse(std::string_view text) {
  Config config;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(start, end - start);
    const bool last = end == text.size();
    start = end + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (!line.empty()) {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return std::nullopt;
      }
      const std::string_view key = trim(line.substr(0, eq));
      const std::string_view value = trim(line.substr(eq + 1));
      if (key.empty()) {
        return std::nullopt;
      }
      config.set(std::string(key), std::string(value));
    }
    if (last) {
      break;
    }
  }
  return config;
}

std::optional<Config> Config::load(const std::string& path) {
  CsvError error;
  const auto contents = read_file(path, &error);
  if (!contents) {
    log_warn("config: %s", error.to_string().c_str());
    return std::nullopt;
  }
  return parse(*contents);
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<long long> Config::get_int(std::string_view key) const {
  const auto raw = get(key);
  return raw ? parse_int(*raw) : std::nullopt;
}

std::optional<double> Config::get_double(std::string_view key) const {
  const auto raw = get(key);
  return raw ? parse_double(*raw) : std::nullopt;
}

std::optional<bool> Config::get_bool(std::string_view key) const {
  const auto raw = get(key);
  return raw ? parse_bool(*raw) : std::nullopt;
}

std::string Config::get_or(std::string_view key, std::string_view fallback) const {
  const auto raw = get(key);
  return raw ? *raw : std::string(fallback);
}

long long Config::get_int_or(std::string_view key, long long fallback) const {
  const auto value = get_int(key);
  return value ? *value : fallback;
}

double Config::get_double_or(std::string_view key, double fallback) const {
  const auto value = get_double(key);
  return value ? *value : fallback;
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  const auto value = get_bool(key);
  return value ? *value : fallback;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace rimarket::common
