// Paper-layout report formatters.
//
// Each function renders one of the paper's tables/figures as text from the
// evaluation data; the bench binaries are thin wrappers around these so
// the formatting logic is testable.
#pragma once

#include <string>

#include "analysis/normalize.hpp"
#include "analysis/summary.hpp"
#include "pricing/catalog.hpp"
#include "theory/verification.hpp"
#include "workload/population.hpp"

namespace rimarket::analysis {

/// Table I: d2.xlarge payment options.
std::string render_table1();

/// Fig. 2: sigma/mu statistics of each user group (min/mean/max + deciles).
std::string render_fig2(const workload::UserPopulation& population);

/// Fig. 3 companion: per-seller CDF + headline savings numbers over all
/// users, for one algorithm vs its baselines.
std::string render_fig3_panel(std::span<const NormalizedResult> normalized,
                              const sim::SellerSpec& algorithm,
                              const sim::SellerSpec& all_selling);

/// Fig. 4 panel: the three algorithms compared within one group.
std::string render_fig4_panel(std::span<const NormalizedResult> normalized,
                              workload::FluctuationGroup group);

/// Table II: absolute costs of the three algorithms + keep-reserved for
/// one user (the most fluctuating one).
std::string render_table2(std::span<const sim::ScenarioResult> results, int user_id);

/// Table III: average normalized cost per group and overall.
std::string render_table3(std::span<const NormalizedResult> normalized);

/// Theory report: empirical worst-case ratio vs closed-form bound.
std::string render_bounds(std::span<const theory::VerificationResult> results);

}  // namespace rimarket::analysis
