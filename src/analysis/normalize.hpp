// Normalization of sweep results to the keep-reserved baseline.
//
// Every figure and table in the paper's evaluation reports cost normalized
// to Keep-reserved ("All the costs ... were normalized to Keep-reserved").
// The join key is (user, purchaser): both runs replay the identical
// reservation stream, so the ratio isolates the selling decision.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/runner.hpp"

namespace rimarket::analysis {

/// One scenario's cost relative to its keep-reserved twin.
struct NormalizedResult {
  int user_id = 0;
  workload::FluctuationGroup group = workload::FluctuationGroup::kStable;
  purchasing::PurchaserKind purchaser = purchasing::PurchaserKind::kAllReserved;
  sim::SellerSpec seller;
  Money net_cost{0.0};
  Money keep_cost{0.0};
  /// net_cost / keep_cost; < 1 means the selling policy saved money.
  double ratio = 0.0;
};

/// Joins each non-keep scenario with its (user, purchaser) keep-reserved
/// run.  Scenarios whose baseline cost is <= 0 (a user whose trace never
/// triggers a reservation under that purchaser) are dropped — there is
/// nothing to normalize, matching the paper's per-user cost ratios.
std::vector<NormalizedResult> normalize_to_keep(std::span<const sim::ScenarioResult> results);

/// Filters by seller kind (and spot fraction for all-selling).
std::vector<NormalizedResult> select_seller(std::span<const NormalizedResult> normalized,
                                            const sim::SellerSpec& seller);

/// Filters by fluctuation group.
std::vector<NormalizedResult> select_group(std::span<const NormalizedResult> normalized,
                                           workload::FluctuationGroup group);

/// Ratio column of a normalized slice.
std::vector<double> ratios(std::span<const NormalizedResult> normalized);

/// Per-user mean ratio across purchasers for one seller — the paper's
/// "per user" granularity for the CDFs (each user contributes one point).
std::vector<double> per_user_ratios(std::span<const NormalizedResult> normalized,
                                    const sim::SellerSpec& seller);

}  // namespace rimarket::analysis
