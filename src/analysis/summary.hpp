// Aggregations behind the paper's reported numbers.
#pragma once

#include <span>

#include "analysis/normalize.hpp"
#include "common/cdf.hpp"

namespace rimarket::analysis {

/// Headline statistics for one selling policy's per-user ratio sample —
/// the numbers the paper reads off the Fig. 3 CDFs ("more than 60% users
/// reduce their costs", "about 40% users save more than 20% cost", ...).
struct SavingsSummary {
  std::size_t users = 0;
  double mean_ratio = 0.0;
  /// Fraction of users with ratio < 1 (they saved by selling).
  double fraction_saving = 0.0;
  /// Fraction saving more than 20 % (ratio < 0.8).
  double fraction_saving_20 = 0.0;
  /// Fraction saving more than 30 % (ratio < 0.7).
  double fraction_saving_30 = 0.0;
  /// Fraction with ratio > 1 (selling cost them money).
  double fraction_worse = 0.0;
  /// Worst regression: max ratio observed.
  double max_ratio = 0.0;
  /// Best outcome: min ratio observed.
  double min_ratio = 0.0;
};

/// Computes the summary from a per-user ratio sample.
SavingsSummary summarize_ratios(std::span<const double> user_ratios);

/// Mean normalized ratio of one seller within one group (a Table III cell).
double group_average(std::span<const NormalizedResult> normalized,
                     const sim::SellerSpec& seller, workload::FluctuationGroup group);

/// Mean normalized ratio of one seller over all users (Table III "All").
double overall_average(std::span<const NormalizedResult> normalized,
                       const sim::SellerSpec& seller);

/// Empirical CDF of per-user ratios for one seller (a Fig. 3/4 curve).
common::EmpiricalCdf ratio_cdf(std::span<const NormalizedResult> normalized,
                               const sim::SellerSpec& seller);

}  // namespace rimarket::analysis
