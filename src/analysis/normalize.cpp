#include "analysis/normalize.hpp"

#include <map>

#include "common/assert.hpp"

namespace rimarket::analysis {

namespace {

bool same_seller(const sim::SellerSpec& lhs, const sim::SellerSpec& rhs) {
  if (lhs.kind != rhs.kind) {
    return false;
  }
  // For kinds parameterized by their decision spot the fraction is part of
  // the identity; the paper algorithms (kA3T4 & co) imply theirs.
  if (lhs.kind == sim::SellerKind::kAllSelling ||
      lhs.kind == sim::SellerKind::kForecastSelling) {
    return lhs.fraction == rhs.fraction;
  }
  return true;
}

}  // namespace

std::vector<NormalizedResult> normalize_to_keep(std::span<const sim::ScenarioResult> results) {
  // (user, purchaser) -> keep-reserved cost.
  std::map<std::pair<int, purchasing::PurchaserKind>, Money> baseline;
  for (const sim::ScenarioResult& result : results) {
    if (result.seller.kind == sim::SellerKind::kKeepReserved) {
      baseline[{result.user_id, result.purchaser}] = result.net_cost;
    }
  }
  std::vector<NormalizedResult> normalized;
  normalized.reserve(results.size());
  for (const sim::ScenarioResult& result : results) {
    if (result.seller.kind == sim::SellerKind::kKeepReserved) {
      continue;
    }
    const auto it = baseline.find({result.user_id, result.purchaser});
    RIMARKET_CHECK_MSG(it != baseline.end(),
                       "every (user, purchaser) needs a keep-reserved run to normalize to");
    if (it->second <= Money{0.0}) {
      continue;
    }
    NormalizedResult entry;
    entry.user_id = result.user_id;
    entry.group = result.group;
    entry.purchaser = result.purchaser;
    entry.seller = result.seller;
    entry.net_cost = result.net_cost;
    entry.keep_cost = it->second;
    entry.ratio = result.net_cost / it->second;
    normalized.push_back(entry);
  }
  return normalized;
}

std::vector<NormalizedResult> select_seller(std::span<const NormalizedResult> normalized,
                                            const sim::SellerSpec& seller) {
  std::vector<NormalizedResult> out;
  for (const NormalizedResult& entry : normalized) {
    if (same_seller(entry.seller, seller)) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<NormalizedResult> select_group(std::span<const NormalizedResult> normalized,
                                           workload::FluctuationGroup group) {
  std::vector<NormalizedResult> out;
  for (const NormalizedResult& entry : normalized) {
    if (entry.group == group) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<double> ratios(std::span<const NormalizedResult> normalized) {
  std::vector<double> out;
  out.reserve(normalized.size());
  for (const NormalizedResult& entry : normalized) {
    out.push_back(entry.ratio);
  }
  return out;
}

std::vector<double> per_user_ratios(std::span<const NormalizedResult> normalized,
                                    const sim::SellerSpec& seller) {
  std::map<int, std::pair<double, int>> per_user;  // user -> (sum, count)
  for (const NormalizedResult& entry : normalized) {
    if (!same_seller(entry.seller, seller)) {
      continue;
    }
    auto& [sum, count] = per_user[entry.user_id];
    sum += entry.ratio;
    ++count;
  }
  std::vector<double> out;
  out.reserve(per_user.size());
  for (const auto& [user, acc] : per_user) {
    out.push_back(acc.first / static_cast<double>(acc.second));
  }
  return out;
}

}  // namespace rimarket::analysis
