#include "analysis/export.hpp"

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace rimarket::analysis {

namespace {

const char* seller_kind_token(sim::SellerKind kind) {
  switch (kind) {
    case sim::SellerKind::kKeepReserved: return "keep";
    case sim::SellerKind::kAllSelling: return "all";
    case sim::SellerKind::kA3T4: return "a3t4";
    case sim::SellerKind::kAT2: return "at2";
    case sim::SellerKind::kAT4: return "at4";
    case sim::SellerKind::kRandomizedSpot: return "randomized";
    case sim::SellerKind::kContinuousSpot: return "continuous";
    case sim::SellerKind::kForecastSelling: return "forecast";
    case sim::SellerKind::kOfflineOptimal: return "offline";
  }
  return "?";
}

std::optional<sim::SellerKind> seller_kind_from_token(std::string_view token) {
  if (token == "keep") return sim::SellerKind::kKeepReserved;
  if (token == "all") return sim::SellerKind::kAllSelling;
  if (token == "a3t4") return sim::SellerKind::kA3T4;
  if (token == "at2") return sim::SellerKind::kAT2;
  if (token == "at4") return sim::SellerKind::kAT4;
  if (token == "randomized") return sim::SellerKind::kRandomizedSpot;
  if (token == "continuous") return sim::SellerKind::kContinuousSpot;
  if (token == "forecast") return sim::SellerKind::kForecastSelling;
  if (token == "offline") return sim::SellerKind::kOfflineOptimal;
  return std::nullopt;
}

const char* purchaser_token(purchasing::PurchaserKind kind) {
  switch (kind) {
    case purchasing::PurchaserKind::kAllReserved: return "all_reserved";
    case purchasing::PurchaserKind::kAllOnDemand: return "all_on_demand";
    case purchasing::PurchaserKind::kRandomReservation: return "random";
    case purchasing::PurchaserKind::kWangOnline: return "wang";
    case purchasing::PurchaserKind::kWangVariant: return "wang_variant";
  }
  return "?";
}

std::optional<purchasing::PurchaserKind> purchaser_from_token(std::string_view token) {
  if (token == "all_reserved") return purchasing::PurchaserKind::kAllReserved;
  if (token == "all_on_demand") return purchasing::PurchaserKind::kAllOnDemand;
  if (token == "random") return purchasing::PurchaserKind::kRandomReservation;
  if (token == "wang") return purchasing::PurchaserKind::kWangOnline;
  if (token == "wang_variant") return purchasing::PurchaserKind::kWangVariant;
  return std::nullopt;
}

}  // namespace

std::string scenarios_to_csv(std::span<const sim::ScenarioResult> results) {
  std::string out =
      "user,group,purchaser,seller,fraction,net_cost,reservations,sold,on_demand_hours\n";
  for (const sim::ScenarioResult& result : results) {
    out += common::format("%d,%d,%s,%s,%.4f,%.6f,%lld,%lld,%lld\n", result.user_id,
                          workload::group_index(result.group),
                          purchaser_token(result.purchaser),
                          seller_kind_token(result.seller.kind), result.seller.fraction.value(),
                          result.net_cost.value(),
                          static_cast<long long>(result.reservations_made),
                          static_cast<long long>(result.instances_sold),
                          static_cast<long long>(result.on_demand_hours));
  }
  return out;
}

std::string normalized_to_csv(std::span<const NormalizedResult> normalized) {
  std::string out = "user,group,purchaser,seller,fraction,net_cost,keep_cost,ratio\n";
  for (const NormalizedResult& entry : normalized) {
    out += common::format("%d,%d,%s,%s,%.4f,%.6f,%.6f,%.6f\n", entry.user_id,
                          workload::group_index(entry.group),
                          purchaser_token(entry.purchaser),
                          seller_kind_token(entry.seller.kind), entry.seller.fraction.value(),
                          entry.net_cost.value(), entry.keep_cost.value(), entry.ratio);
  }
  return out;
}

std::string cdf_to_csv(const common::EmpiricalCdf& cdf, std::size_t points) {
  std::string out = "x,probability\n";
  for (const common::EmpiricalCdf::Point& point : cdf.sample_curve(points)) {
    out += common::format("%.6f,%.6f\n", point.x, point.probability);
  }
  return out;
}

std::optional<std::vector<sim::ScenarioResult>> scenarios_from_csv(std::string_view text) {
  const common::CsvDocument doc = common::parse_csv(text, /*expect_header=*/true);
  if (doc.header.size() != 9) {
    return std::nullopt;
  }
  std::vector<sim::ScenarioResult> results;
  results.reserve(doc.rows.size());
  for (const common::CsvRow& row : doc.rows) {
    if (row.size() != 9) {
      return std::nullopt;
    }
    const auto user = common::parse_int(row[0]);
    const auto group = common::parse_int(row[1]);
    const auto purchaser = purchaser_from_token(row[2]);
    const auto seller = seller_kind_from_token(row[3]);
    const auto fraction = common::parse_double(row[4]);
    const auto net_cost = common::parse_double(row[5]);
    const auto reservations = common::parse_int(row[6]);
    const auto sold = common::parse_int(row[7]);
    const auto on_demand = common::parse_int(row[8]);
    if (!user || !group || *group < 0 || *group > 2 || !purchaser || !seller || !fraction ||
        *fraction < 0.0 || *fraction > 1.0 || !net_cost || !reservations || !sold ||
        !on_demand) {
      return std::nullopt;
    }
    sim::ScenarioResult result;
    result.user_id = static_cast<int>(*user);
    result.group = static_cast<workload::FluctuationGroup>(*group);
    result.purchaser = *purchaser;
    result.seller = sim::SellerSpec{*seller, Fraction{*fraction}};
    result.net_cost = Money{*net_cost};
    result.reservations_made = *reservations;
    result.instances_sold = *sold;
    result.on_demand_hours = *on_demand;
    results.push_back(result);
  }
  return results;
}

}  // namespace rimarket::analysis
