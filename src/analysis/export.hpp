// CSV export of evaluation results.
//
// The bench binaries print human-readable tables; these exporters produce
// machine-readable CSV so results can be plotted or diffed across runs
// (`scenario` rows = raw sweep output, `normalized` rows = keep-reserved
// ratios, `cdf` rows = one figure curve).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "analysis/normalize.hpp"
#include "common/cdf.hpp"

namespace rimarket::analysis {

/// Raw sweep results: user, group, purchaser, seller, cost, bookings, sales.
std::string scenarios_to_csv(std::span<const sim::ScenarioResult> results);

/// Normalized results: user, group, purchaser, seller, cost, keep, ratio.
std::string normalized_to_csv(std::span<const NormalizedResult> normalized);

/// One CDF curve as (x, probability) rows.
std::string cdf_to_csv(const common::EmpiricalCdf& cdf, std::size_t points);

/// Parses a scenarios CSV back (round-trip of scenarios_to_csv); nullopt on
/// malformed input.  Useful for archiving runs and re-analyzing later.
std::optional<std::vector<sim::ScenarioResult>> scenarios_from_csv(std::string_view text);

}  // namespace rimarket::analysis
