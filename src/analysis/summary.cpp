#include "analysis/summary.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace rimarket::analysis {

SavingsSummary summarize_ratios(std::span<const double> user_ratios) {
  SavingsSummary summary;
  summary.users = user_ratios.size();
  if (user_ratios.empty()) {
    return summary;
  }
  summary.mean_ratio = common::mean(user_ratios);
  summary.fraction_saving = common::fraction_below(user_ratios, 1.0);
  summary.fraction_saving_20 = common::fraction_below(user_ratios, 0.8);
  summary.fraction_saving_30 = common::fraction_below(user_ratios, 0.7);
  summary.fraction_worse = common::fraction_above(user_ratios, 1.0);
  summary.max_ratio = *std::max_element(user_ratios.begin(), user_ratios.end());
  summary.min_ratio = *std::min_element(user_ratios.begin(), user_ratios.end());
  return summary;
}

double group_average(std::span<const NormalizedResult> normalized,
                     const sim::SellerSpec& seller, workload::FluctuationGroup group) {
  const std::vector<NormalizedResult> slice = select_group(normalized, group);
  const std::vector<double> sample = per_user_ratios(slice, seller);
  RIMARKET_CHECK_MSG(!sample.empty(), "group average needs at least one user");
  return common::mean(sample);
}

double overall_average(std::span<const NormalizedResult> normalized,
                       const sim::SellerSpec& seller) {
  const std::vector<double> sample = per_user_ratios(normalized, seller);
  RIMARKET_CHECK_MSG(!sample.empty(), "overall average needs at least one user");
  return common::mean(sample);
}

common::EmpiricalCdf ratio_cdf(std::span<const NormalizedResult> normalized,
                               const sim::SellerSpec& seller) {
  return common::EmpiricalCdf(per_user_ratios(normalized, seller));
}

}  // namespace rimarket::analysis
