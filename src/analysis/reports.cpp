#include "analysis/reports.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace rimarket::analysis {

std::string render_table1() {
  common::TextTable table({"Payment Option", "Upfront", "Monthly", "Effective Hourly"});
  for (const pricing::PaymentQuote& quote : pricing::d2_xlarge_payment_quotes()) {
    std::vector<std::string> row;
    row.push_back(std::string(pricing::payment_option_name(quote.option)));
    if (quote.option == pricing::PaymentOption::kOnDemand) {
      row.push_back("-");
      row.push_back(common::format("$%.2f per Hour", quote.hourly.value()));
      row.push_back("-");
    } else {
      row.push_back(common::format("$%.0f", quote.upfront.value()));
      row.push_back(common::format("$%.2f", quote.monthly.value()));
      row.push_back(common::format("$%.3f", quote.effective_hourly().value()));
    }
    table.add_row(std::move(row));
  }
  std::string out = "Table I — pricing of d2.xlarge (US East (Ohio), Linux), Jan 1 2018\n";
  out += table.render();
  return out;
}

std::string render_fig2(const workload::UserPopulation& population) {
  std::string out = "Fig. 2 — demand-fluctuation statistics (sigma/mu) per user group\n";
  common::TextTable table({"Group", "users", "min", "p25", "median", "p75", "max", "mean"});
  for (const workload::FluctuationGroup group :
       {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
        workload::FluctuationGroup::kHigh}) {
    std::vector<double> cvs;
    for (const workload::User* user : population.group(group)) {
      cvs.push_back(user->cv);
    }
    RIMARKET_CHECK(!cvs.empty());
    table.add_row({std::string(workload::group_name(group)),
                   common::format("%zu", cvs.size()),
                   common::format("%.3f", common::quantile(cvs, 0.0)),
                   common::format("%.3f", common::quantile(cvs, 0.25)),
                   common::format("%.3f", common::quantile(cvs, 0.5)),
                   common::format("%.3f", common::quantile(cvs, 0.75)),
                   common::format("%.3f", common::quantile(cvs, 1.0)),
                   common::format("%.3f", common::mean(cvs))});
  }
  out += table.render();
  return out;
}

namespace {

std::string render_summary_rows(std::span<const NormalizedResult> normalized,
                                std::span<const sim::SellerSpec> sellers) {
  common::TextTable table({"Policy", "mean", "%saving", "%save>20%", "%save>30%", "%worse",
                           "worst", "best"});
  for (const sim::SellerSpec& seller : sellers) {
    const std::vector<double> sample = per_user_ratios(normalized, seller);
    const SavingsSummary summary = summarize_ratios(sample);
    table.add_row({sim::seller_name(seller),
                   common::format("%.4f", summary.mean_ratio),
                   common::format("%.1f%%", 100.0 * summary.fraction_saving),
                   common::format("%.1f%%", 100.0 * summary.fraction_saving_20),
                   common::format("%.1f%%", 100.0 * summary.fraction_saving_30),
                   common::format("%.1f%%", 100.0 * summary.fraction_worse),
                   common::format("%.4f", summary.max_ratio),
                   common::format("%.4f", summary.min_ratio)});
  }
  return table.render();
}

std::string render_cdf_series(std::span<const NormalizedResult> normalized,
                              std::span<const sim::SellerSpec> sellers, std::size_t points) {
  std::string out;
  for (const sim::SellerSpec& seller : sellers) {
    const common::EmpiricalCdf cdf = ratio_cdf(normalized, seller);
    out += common::format("CDF of normalized cost — %s (n=%zu users)\n",
                          sim::seller_name(seller).c_str(), cdf.size());
    if (!cdf.empty()) {
      out += cdf.to_table(points, "ratio");
    }
  }
  return out;
}

}  // namespace

std::string render_fig3_panel(std::span<const NormalizedResult> normalized,
                              const sim::SellerSpec& algorithm,
                              const sim::SellerSpec& all_selling) {
  std::string out = common::format(
      "Fig. 3 panel — %s vs all-selling, all users (normalized to keep-reserved = 1.0)\n",
      sim::seller_name(algorithm).c_str());
  const sim::SellerSpec sellers[] = {algorithm, all_selling};
  out += render_summary_rows(normalized, sellers);
  out += render_cdf_series(normalized, sellers, 13);
  return out;
}

std::string render_fig4_panel(std::span<const NormalizedResult> normalized,
                              workload::FluctuationGroup group) {
  const std::vector<NormalizedResult> slice = select_group(normalized, group);
  std::string out = common::format("Fig. 4 panel — %s\n",
                                   std::string(workload::group_name(group)).c_str());
  const sim::SellerSpec sellers[] = {
      sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}},
      sim::SellerSpec{sim::SellerKind::kAT2, Fraction{0.50}},
      sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}},
  };
  out += render_summary_rows(slice, sellers);
  out += render_cdf_series(slice, sellers, 13);
  return out;
}

std::string render_table2(std::span<const sim::ScenarioResult> results, int user_id) {
  // Average absolute cost per seller across the purchasing imitators for
  // the chosen user.
  const sim::SellerSpec sellers[] = {
      sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}},
      sim::SellerSpec{sim::SellerKind::kAT2, Fraction{0.50}},
      sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}},
      sim::SellerSpec{sim::SellerKind::kKeepReserved, Fraction{0.0}},
  };
  std::string out = common::format(
      "Table II — actual cost of online algorithms for user %d (highly fluctuating demands)\n",
      user_id);
  common::TextTable table({"", "A_{3T/4}", "A_{T/2}", "A_{T/4}", "Keep-Reserved"});
  std::vector<std::string> row{"Cost"};
  for (const sim::SellerSpec& seller : sellers) {
    double sum = 0.0;
    int count = 0;
    for (const sim::ScenarioResult& result : results) {
      const bool match = result.user_id == user_id && result.seller.kind == seller.kind;
      if (match) {
        sum += result.net_cost.value();
        ++count;
      }
    }
    RIMARKET_CHECK_MSG(count > 0, "table II needs the user's runs for every algorithm");
    row.push_back(common::format("%.2e", sum / count));
  }
  table.add_row(std::move(row));
  out += table.render();
  return out;
}

std::string render_table3(std::span<const NormalizedResult> normalized) {
  std::string out =
      "Table III — average cost performance of each algorithm (normalized to keep-reserved)\n";
  common::TextTable table({"", "Group 1", "Group 2", "Group 3", "All users"});
  const sim::SellerSpec sellers[] = {
      sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}},
      sim::SellerSpec{sim::SellerKind::kAT2, Fraction{0.50}},
      sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}},
  };
  for (const sim::SellerSpec& seller : sellers) {
    std::vector<std::string> row{sim::seller_name(seller)};
    for (const workload::FluctuationGroup group :
         {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
          workload::FluctuationGroup::kHigh}) {
      row.push_back(common::format("%.4f", group_average(normalized, seller, group)));
    }
    row.push_back(common::format("%.4f", overall_average(normalized, seller)));
    table.add_row(std::move(row));
  }
  out += table.render();
  return out;
}

std::string render_bounds(std::span<const theory::VerificationResult> results) {
  std::string out =
      "Competitive bounds — empirical worst-case ratio vs closed-form guarantee\n";
  common::TextTable table(
      {"f", "alpha", "a", "theta", "empirical max", "bound", "holds", "worst schedule"});
  for (const theory::VerificationResult& result : results) {
    table.add_row({common::format("%.2f", result.fraction),
                   common::format("%.3f", result.alpha),
                   common::format("%.2f", result.selling_discount),
                   common::format("%.3f", result.theta),
                   common::format("%.4f", result.max_ratio),
                   common::format("%.4f", result.bound),
                   result.holds() ? "yes" : "NO",
                   result.worst_schedule});
  }
  out += table.render();
  return out;
}

}  // namespace rimarket::analysis
