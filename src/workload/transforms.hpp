// Deterministic trace transforms.
//
// Utilities for preparing real traces for the simulator: coarse logs can be
// upsampled to hourly resolution, sub-hourly data downsampled, multi-team
// traces merged (DemandTrace::sum), capacities rescaled or capped.  All
// transforms are pure functions of the input trace.
#pragma once

#include "workload/trace.hpp"

namespace rimarket::workload {

/// Aggregates each window of `factor` hours into one sample using the
/// window maximum — the conservative choice for capacity planning (demand
/// within the hour must still be served).  The tail window may be partial.
DemandTrace downsample_max(const DemandTrace& trace, Hour factor);

/// Aggregates each window of `factor` hours into one sample using the
/// window mean, rounded half-up.
DemandTrace downsample_mean(const DemandTrace& trace, Hour factor);

/// Repeats each sample `factor` times (e.g. daily logs -> hourly grid).
DemandTrace upsample_repeat(const DemandTrace& trace, Hour factor);

/// Multiplies every sample by `factor` (>= 0), rounding half-up — e.g. to
/// express a trace recorded in 4-vCPU units as d2.xlarge counts.
DemandTrace scale(const DemandTrace& trace, double factor);

/// Caps every sample at `cap` (the user's quota or budget ceiling).
DemandTrace clip(const DemandTrace& trace, Count cap);

/// Shifts the trace `hours` later, zero-filling the prefix (align job
/// streams that started at different wall-clock times).
DemandTrace delay(const DemandTrace& trace, Hour hours);

}  // namespace rimarket::workload
