// User-population builder for the paper's evaluation (Section VI-A).
//
// The paper selects 300 users from its datasets: 100 stable (sigma/mu < 1),
// 100 slightly fluctuating (1..3) and 100 highly fluctuating (> 3).  This
// module reproduces that population from the synthetic generators, drawing
// candidate users from a generator mixture and rejection-sampling until the
// trace's measured sigma/mu falls inside the target band — so group
// membership is decided by the measured statistic, exactly like the paper's
// preprocessing, never assumed from generator parameters.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/classify.hpp"
#include "workload/trace.hpp"

namespace rimarket::workload {

/// One evaluation user: a demand trace plus its measured statistics.
struct User {
  int id = 0;
  FluctuationGroup group = FluctuationGroup::kStable;
  double cv = 0.0;  ///< measured sigma/mu
  std::string generator;
  DemandTrace trace;
};

/// Knobs for building the evaluation population.
struct PopulationSpec {
  int users_per_group = 100;
  Hour trace_hours = 2 * kHoursPerYear;
  std::uint64_t seed = 2018;
  /// Give up on one candidate generator after this many rejected draws and
  /// move to the next parameterization (guards termination).
  int max_attempts_per_user = 64;
};

/// The full population, grouped per the paper.
class UserPopulation {
 public:
  /// Builds users_per_group users in each of the three fluctuation groups.
  static UserPopulation build(const PopulationSpec& spec);

  const std::vector<User>& users() const { return users_; }

  /// All users in a given group, in id order.
  std::vector<const User*> group(FluctuationGroup group) const;

  std::size_t size() const { return users_.size(); }

  /// The user with the largest sigma/mu (the paper's Table II case study
  /// picks a highly fluctuating user).
  const User& most_fluctuating() const;

 private:
  std::vector<User> users_;
};

}  // namespace rimarket::workload
