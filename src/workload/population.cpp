#include "workload/population.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "workload/generators.hpp"

namespace rimarket::workload {

namespace {

/// Candidate generator parameterizations per group.  Each user cycles
/// through the list (offset by its index, so the mixture is spread evenly)
/// until one draw lands in the group's sigma/mu band.
std::vector<std::unique_ptr<DemandGenerator>> candidates_for(FluctuationGroup group,
                                                             common::Rng& rng) {
  std::vector<std::unique_ptr<DemandGenerator>> out;
  switch (group) {
    case FluctuationGroup::kStable: {
      const Count base = rng.uniform_int(2, 30);
      out.push_back(std::make_unique<StableGenerator>(base, std::max<Count>(1, base / 6)));
      const double diurnal_base = rng.uniform_real(5.0, 40.0);
      out.push_back(std::make_unique<DiurnalGenerator>(diurnal_base, 0.4 * diurnal_base,
                                                       0.10 * diurnal_base));
      Ec2LogSynthesizer::Params ec2;
      ec2.base = rng.uniform_real(5.0, 30.0);
      ec2.daily_amplitude = rng.uniform_real(0.1, 0.4);
      ec2.weekly_amplitude = rng.uniform_real(0.05, 0.15);
      ec2.noise_stddev = rng.uniform_real(0.05, 0.2);
      out.push_back(std::make_unique<Ec2LogSynthesizer>(ec2));
      if (rng.bernoulli(0.3)) {
        // A minority of users (paper Fig. 3a: ~1% regress): delayed onset
        // with near-full duty keeps sigma/mu below 1 while exposing the
        // sell-then-regret pattern.  A rare long gap (just past the 3T/4
        // spot) makes even the latest algorithm regret its sale.
        DelayedOnsetGenerator::Params onset;
        onset.level = rng.uniform_real(2.0, 10.0);
        onset.duty_after_onset = rng.uniform_real(0.9, 1.0);
        if (rng.bernoulli(0.25)) {
          onset.gap_before_onset = rng.uniform_int(6700, 7800);
          onset.onset = onset.gap_before_onset + rng.uniform_int(300, 900);
        } else {
          onset.gap_before_onset = rng.uniform_int(2600, 4200);
          onset.onset = rng.uniform_int(4500, 6500);
        }
        out.push_back(std::make_unique<DelayedOnsetGenerator>(onset));
      }
      break;
    }
    case FluctuationGroup::kModerate: {
      // Square-wave cv ~= sqrt((1-d)/d): duty in (0.1, 0.5) covers (1, 3).
      const double duty = rng.uniform_real(0.12, 0.45);
      const double on_hours = rng.uniform_real(24.0, 168.0);
      const double off_hours = on_hours * (1.0 - duty) / duty;
      out.push_back(std::make_unique<OnOffGenerator>(rng.uniform_real(2.0, 20.0), on_hours,
                                                     off_hours));
      // Slow regime switches (multi-month busy/quiet phases): demand that
      // *resumes* after a selling spot, the pattern that makes selling
      // regrettable (paper Fig. 3 reports a few regressing users).
      const double slow_duty = rng.uniform_real(0.15, 0.40);
      const double slow_on = rng.uniform_real(1000.0, 2500.0);
      out.push_back(std::make_unique<OnOffGenerator>(
          rng.uniform_real(2.0, 12.0), slow_on, slow_on * (1.0 - slow_duty) / slow_duty));
      GoogleClusterSynthesizer::Params google;
      google.mean_session_hours = rng.uniform_real(24.0, 96.0);
      google.mean_gap_hours = google.mean_session_hours * rng.uniform_real(2.0, 6.0);
      google.scale_pareto_shape = rng.uniform_real(1.2, 2.5);
      out.push_back(std::make_unique<GoogleClusterSynthesizer>(google));
      Ec2LogSynthesizer::Params spiky;
      spiky.base = rng.uniform_real(2.0, 8.0);
      spiky.noise_stddev = rng.uniform_real(0.8, 1.6);
      spiky.burst_probability = 0.01;
      spiky.burst_multiplier = rng.uniform_real(4.0, 10.0);
      out.push_back(std::make_unique<Ec2LogSynthesizer>(spiky));
      if (rng.bernoulli(0.35)) {
        // Later onset, partial duty: sigma/mu lands in (1, 3) and the quiet
        // gap spans the early decision spots (rarely even the 3T/4 one).
        DelayedOnsetGenerator::Params onset;
        onset.level = rng.uniform_real(3.0, 15.0);
        onset.onset = rng.uniform_int(8000, 11500);
        onset.gap_before_onset = rng.bernoulli(0.2) ? rng.uniform_int(6700, 7800)
                                                    : rng.uniform_int(2600, 6200);
        onset.duty_after_onset = rng.uniform_real(0.75, 1.0);
        out.push_back(std::make_unique<DelayedOnsetGenerator>(onset));
      }
      break;
    }
    case FluctuationGroup::kHigh: {
      out.push_back(std::make_unique<BurstyGenerator>(rng.uniform_real(0.0008, 0.003),
                                                      rng.uniform_real(5.0, 30.0),
                                                      rng.uniform_real(6.0, 24.0), 0));
      const double duty = rng.uniform_real(0.01, 0.07);
      const double on_hours = rng.uniform_real(12.0, 72.0);
      const double off_hours = on_hours * (1.0 - duty) / duty;
      out.push_back(std::make_unique<OnOffGenerator>(rng.uniform_real(3.0, 25.0), on_hours,
                                                     off_hours));
      // Rare but *sustained* busy phases (about a quarter long): light use
      // before a decision spot followed by months of demand afterwards is
      // exactly the adversarial case-1 pattern of the proofs.
      const double slow_duty = rng.uniform_real(0.03, 0.08);
      const double slow_on = rng.uniform_real(600.0, 2000.0);
      out.push_back(std::make_unique<OnOffGenerator>(
          rng.uniform_real(4.0, 20.0), slow_on, slow_on * (1.0 - slow_duty) / slow_duty));
      GoogleClusterSynthesizer::Params google;
      google.mean_session_hours = rng.uniform_real(6.0, 24.0);
      google.mean_gap_hours = google.mean_session_hours * rng.uniform_real(20.0, 60.0);
      out.push_back(std::make_unique<GoogleClusterSynthesizer>(google));
      {
        // Quiet gap then a bounded busy window (a months-long campaign):
        // sigma/mu stays just above 3, and the ~1300-1700 busy hours that
        // fall between the T/4 and 3T/4 spots make the *late* spot the
        // winning policy for these users — Table II's extreme case where
        // A_{3T/4} beats the earlier spots.
        DelayedOnsetGenerator::Params onset;
        onset.level = rng.uniform_real(5.0, 20.0);
        onset.onset = rng.uniform_int(8000, 10000);
        onset.gap_before_onset = rng.uniform_int(4200, 4900);
        onset.duty_after_onset = rng.uniform_real(0.60, 0.68);
        onset.busy_window = rng.uniform_int(2400, 2800);
        out.push_back(std::make_unique<DelayedOnsetGenerator>(onset));
      }
      break;
    }
  }
  return out;
}

/// Deterministic square wave with exact duty cycle; last-resort fallback so
/// population construction always terminates with the right group sizes.
DemandTrace square_wave(Hour hours, Hour period, Hour on_hours, Count level) {
  RIMARKET_EXPECTS(period >= 1 && on_hours >= 0 && on_hours <= period);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  for (Hour t = 0; t < hours; ++t) {
    demand.push_back((t % period) < on_hours ? level : 0);
  }
  return DemandTrace(std::move(demand));
}

DemandTrace fallback_trace(FluctuationGroup group, Hour hours) {
  switch (group) {
    case FluctuationGroup::kStable:
      return square_wave(hours, 1, 1, 5);  // constant -> cv = 0
    case FluctuationGroup::kModerate:
      // duty 0.2 -> cv = 2.  Traces shorter than the nominal 120h period
      // would truncate to a different duty cycle (and a different group), so
      // they get a compact wave with the same duty; needs hours >= 3 to
      // keep cv above the stable band.
      return hours >= 120 ? square_wave(hours, 120, 24, 8) : square_wave(hours, 5, 1, 8);
    case FluctuationGroup::kHigh:
      // duty 0.05 -> cv ~= 4.36; compact variant keeps cv > 3 for any
      // hours >= 11 (one spike among n zeros has cv = sqrt(n - 1)).
      return hours >= 480 ? square_wave(hours, 480, 24, 12) : square_wave(hours, 20, 1, 12);
  }
  RIMARKET_UNREACHABLE("group");
}

}  // namespace

UserPopulation UserPopulation::build(const PopulationSpec& spec) {
  RIMARKET_EXPECTS(spec.users_per_group >= 1);
  RIMARKET_EXPECTS(spec.trace_hours >= 1);
  RIMARKET_INJECT(common::fault_injection::kSitePopulationBuild);
  UserPopulation population;
  population.users_.reserve(static_cast<std::size_t>(spec.users_per_group) * kGroupCount);
  common::Rng root(spec.seed);
  int next_id = 0;
  for (const FluctuationGroup group :
       {FluctuationGroup::kStable, FluctuationGroup::kModerate, FluctuationGroup::kHigh}) {
    for (int u = 0; u < spec.users_per_group; ++u) {
      common::Rng rng = root.fork(static_cast<std::uint64_t>(next_id) + 1);
      User user;
      user.id = next_id++;
      user.group = group;
      bool placed = false;
      for (int attempt = 0; attempt < spec.max_attempts_per_user && !placed; ++attempt) {
        auto generators = candidates_for(group, rng);
        // Offset the candidate cycle by the user index so the mixture is
        // spread across the group instead of the first viable generator
        // winning for everyone.
        const auto& generator = generators[static_cast<std::size_t>(attempt + user.id) %
                                           generators.size()];
        DemandTrace candidate = generator->generate(spec.trace_hours, rng);
        const double cv = candidate.coefficient_of_variation();
        if (classify_cv(cv) == group && candidate.total() > 0) {
          user.cv = cv;
          user.generator = generator->describe();
          user.trace = std::move(candidate);
          placed = true;
        }
      }
      if (!placed) {
        common::log_info("population: user %d fell back to deterministic %s trace", user.id,
                         std::string(group_name(group)).c_str());
        user.trace = fallback_trace(group, spec.trace_hours);
        user.cv = user.trace.coefficient_of_variation();
        user.generator = "square-wave fallback";
      }
      RIMARKET_ENSURES(classify_cv(user.cv) == group);
      population.users_.push_back(std::move(user));
    }
  }
  return population;
}

std::vector<const User*> UserPopulation::group(FluctuationGroup group) const {
  std::vector<const User*> out;
  for (const User& user : users_) {
    if (user.group == group) {
      out.push_back(&user);
    }
  }
  return out;
}

const User& UserPopulation::most_fluctuating() const {
  RIMARKET_EXPECTS(!users_.empty());
  const User* best = &users_.front();
  for (const User& user : users_) {
    if (user.cv > best->cv) {
      best = &user;
    }
  }
  return *best;
}

}  // namespace rimarket::workload
