#include "workload/classify.hpp"

namespace rimarket::workload {

FluctuationGroup classify_cv(double cv) {
  if (cv < kStableUpperCv) {
    return FluctuationGroup::kStable;
  }
  if (cv <= kModerateUpperCv) {
    return FluctuationGroup::kModerate;
  }
  return FluctuationGroup::kHigh;
}

FluctuationGroup classify(const DemandTrace& trace) {
  return classify_cv(trace.coefficient_of_variation());
}

std::string_view group_name(FluctuationGroup group) {
  switch (group) {
    case FluctuationGroup::kStable: return "group 1 (stable)";
    case FluctuationGroup::kModerate: return "group 2 (slightly fluctuating)";
    case FluctuationGroup::kHigh: return "group 3 (highly fluctuating)";
  }
  return "?";
}

int group_index(FluctuationGroup group) { return static_cast<int>(group); }

}  // namespace rimarket::workload
