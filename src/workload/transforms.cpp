#include "workload/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rimarket::workload {

DemandTrace downsample_max(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>((trace.length() + factor - 1) / factor));
  for (Hour start = 0; start < trace.length(); start += factor) {
    Count peak = 0;
    for (Hour h = start; h < std::min(trace.length(), start + factor); ++h) {
      peak = std::max(peak, trace.at(h));
    }
    out.push_back(peak);
  }
  return DemandTrace(std::move(out));
}

DemandTrace downsample_mean(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>((trace.length() + factor - 1) / factor));
  for (Hour start = 0; start < trace.length(); start += factor) {
    double sum = 0.0;
    Hour counted = 0;
    for (Hour h = start; h < std::min(trace.length(), start + factor); ++h) {
      sum += static_cast<double>(trace.at(h));
      ++counted;
    }
    out.push_back(static_cast<Count>(sum / static_cast<double>(counted) + 0.5));
  }
  return DemandTrace(std::move(out));
}

DemandTrace upsample_repeat(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(trace.length() * factor));
  for (Hour h = 0; h < trace.length(); ++h) {
    for (Hour k = 0; k < factor; ++k) {
      out.push_back(trace.at(h));
    }
  }
  return DemandTrace(std::move(out));
}

DemandTrace scale(const DemandTrace& trace, double factor) {
  RIMARKET_EXPECTS(factor >= 0.0);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(trace.length()));
  for (Hour h = 0; h < trace.length(); ++h) {
    out.push_back(static_cast<Count>(std::floor(static_cast<double>(trace.at(h)) * factor + 0.5)));
  }
  return DemandTrace(std::move(out));
}

DemandTrace clip(const DemandTrace& trace, Count cap) {
  RIMARKET_EXPECTS(cap >= 0);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(trace.length()));
  for (Hour h = 0; h < trace.length(); ++h) {
    out.push_back(std::min(trace.at(h), cap));
  }
  return DemandTrace(std::move(out));
}

DemandTrace delay(const DemandTrace& trace, Hour hours) {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> out(static_cast<std::size_t>(hours), 0);
  out.reserve(static_cast<std::size_t>(hours + trace.length()));
  for (Hour h = 0; h < trace.length(); ++h) {
    out.push_back(trace.at(h));
  }
  return DemandTrace(std::move(out));
}

}  // namespace rimarket::workload
