#include "workload/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rimarket::workload {

namespace {

/// Output length of an upsample/delay-style transform, with the size
/// arithmetic guarded: at million-user x multi-year scales a careless
/// `length * factor` in the signed Hour domain is UB long before the
/// allocation would fail.  Mirrors the ReservationStream::total() guard.
Hour checked_mul(Hour a, Hour b) {
  Hour out = 0;
  RIMARKET_CHECK_MSG(!__builtin_mul_overflow(a, b, &out),
                     "trace transform output length overflows Hour");
  return out;
}

Hour checked_add(Hour a, Hour b) {
  Hour out = 0;
  RIMARKET_CHECK_MSG(!__builtin_add_overflow(a, b, &out),
                     "trace transform output length overflows Hour");
  return out;
}

/// Number of `factor`-wide windows covering `length` hours.  The naive
/// ceil-division idiom `(length + factor - 1) / factor` overflows when
/// length is near the Hour maximum; this form cannot.
Hour window_count(Hour length, Hour factor) {
  return length / factor + (length % factor != 0 ? 1 : 0);
}

}  // namespace

DemandTrace downsample_max(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(window_count(trace.length(), factor)));
  for (Hour start = 0; start < trace.length();) {
    // Window end computed subtraction-side so `start + factor` never
    // overflows for huge factors (a legal "one window" request).
    const Hour end =
        factor >= trace.length() - start ? trace.length() : start + factor;
    Count peak = 0;
    for (Hour h = start; h < end; ++h) {
      peak = std::max(peak, trace.at(h));
    }
    out.push_back(peak);
    start = end;
  }
  return DemandTrace(std::move(out));
}

DemandTrace downsample_mean(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(window_count(trace.length(), factor)));
  for (Hour start = 0; start < trace.length();) {
    const Hour end =
        factor >= trace.length() - start ? trace.length() : start + factor;
    double sum = 0.0;
    Hour counted = 0;
    for (Hour h = start; h < end; ++h) {
      sum += static_cast<double>(trace.at(h));
      ++counted;
    }
    out.push_back(static_cast<Count>(sum / static_cast<double>(counted) + 0.5));
    start = end;
  }
  return DemandTrace(std::move(out));
}

DemandTrace upsample_repeat(const DemandTrace& trace, Hour factor) {
  RIMARKET_EXPECTS(factor >= 1);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(checked_mul(trace.length(), factor)));
  for (Hour h = 0; h < trace.length(); ++h) {
    for (Hour k = 0; k < factor; ++k) {
      out.push_back(trace.at(h));
    }
  }
  return DemandTrace(std::move(out));
}

DemandTrace scale(const DemandTrace& trace, double factor) {
  RIMARKET_EXPECTS(factor >= 0.0);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(trace.length()));
  // Largest double exactly representable check: casting a value outside
  // [0, Count max] to Count is UB, so reject before the cast instead of
  // returning garbage.  The bound is the first power of two *above* the
  // Count range, which is exactly representable as a double.
  constexpr double kCountLimit = 9223372036854775808.0;  // 2^63
  for (Hour h = 0; h < trace.length(); ++h) {
    const double scaled = std::floor(static_cast<double>(trace.at(h)) * factor + 0.5);
    RIMARKET_CHECK_MSG(scaled < kCountLimit, "scaled demand overflows Count");
    out.push_back(static_cast<Count>(scaled));
  }
  return DemandTrace(std::move(out));
}

DemandTrace clip(const DemandTrace& trace, Count cap) {
  RIMARKET_EXPECTS(cap >= 0);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(trace.length()));
  for (Hour h = 0; h < trace.length(); ++h) {
    out.push_back(std::min(trace.at(h), cap));
  }
  return DemandTrace(std::move(out));
}

DemandTrace delay(const DemandTrace& trace, Hour hours) {
  RIMARKET_EXPECTS(hours >= 0);
  // Guard the total length BEFORE sizing the prefix: the overflow check is
  // useless if the zero-fill allocation already ran with a poisoned size.
  const Hour total = checked_add(hours, trace.length());
  std::vector<Count> out(static_cast<std::size_t>(hours), 0);
  out.reserve(static_cast<std::size_t>(total));
  for (Hour h = 0; h < trace.length(); ++h) {
    out.push_back(trace.at(h));
  }
  return DemandTrace(std::move(out));
}

}  // namespace rimarket::workload
