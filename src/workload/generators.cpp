#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::workload {

namespace {

Count clamp_count(double value) {
  if (value <= 0.0) {
    return 0;
  }
  return static_cast<Count>(value + 0.5);
}

}  // namespace

// ---------------------------------------------------------------- Stable

StableGenerator::StableGenerator(Count base, Count jitter) : base_(base), jitter_(jitter) {
  RIMARKET_EXPECTS(base >= 1);
  RIMARKET_EXPECTS(jitter >= 0 && jitter <= base);
}

DemandTrace StableGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  for (Hour t = 0; t < hours; ++t) {
    const Count offset = jitter_ == 0 ? 0 : rng.uniform_int(-jitter_, jitter_);
    demand.push_back(std::max<Count>(0, base_ + offset));
  }
  return DemandTrace(std::move(demand));
}

std::string StableGenerator::describe() const {
  return common::format("stable(base=%lld, jitter=%lld)", static_cast<long long>(base_),
                        static_cast<long long>(jitter_));
}

// ---------------------------------------------------------------- Diurnal

DiurnalGenerator::DiurnalGenerator(double base, double amplitude, double noise_stddev)
    : base_(base), amplitude_(amplitude), noise_stddev_(noise_stddev) {
  RIMARKET_EXPECTS(base > 0.0);
  RIMARKET_EXPECTS(amplitude >= 0.0 && amplitude <= base);
  RIMARKET_EXPECTS(noise_stddev >= 0.0);
}

DemandTrace DiurnalGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  for (Hour t = 0; t < hours; ++t) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(t % kHoursPerDay) / kHoursPerDay;
    const double level = base_ + amplitude_ * std::sin(phase) + rng.normal(0.0, noise_stddev_);
    demand.push_back(clamp_count(level));
  }
  return DemandTrace(std::move(demand));
}

std::string DiurnalGenerator::describe() const {
  return common::format("diurnal(base=%.2f, amplitude=%.2f, noise=%.2f)", base_, amplitude_,
                        noise_stddev_);
}

// ---------------------------------------------------------------- OnOff

OnOffGenerator::OnOffGenerator(double on_level, double mean_on_hours, double mean_off_hours)
    : on_level_(on_level), mean_on_hours_(mean_on_hours), mean_off_hours_(mean_off_hours) {
  RIMARKET_EXPECTS(on_level >= 1.0);
  RIMARKET_EXPECTS(mean_on_hours >= 1.0);
  RIMARKET_EXPECTS(mean_off_hours >= 1.0);
}

double OnOffGenerator::duty_cycle() const {
  return mean_on_hours_ / (mean_on_hours_ + mean_off_hours_);
}

DemandTrace OnOffGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  bool on = rng.bernoulli(duty_cycle());
  Hour remaining = 0;
  for (Hour t = 0; t < hours; ++t) {
    if (remaining <= 0) {
      on = (t == 0) ? on : !on;
      const double mean_dwell = on ? mean_on_hours_ : mean_off_hours_;
      remaining = std::max<Hour>(1, static_cast<Hour>(rng.exponential(1.0 / mean_dwell) + 0.5));
    }
    demand.push_back(on ? std::max<Count>(1, rng.poisson(on_level_)) : 0);
    --remaining;
  }
  return DemandTrace(std::move(demand));
}

std::string OnOffGenerator::describe() const {
  return common::format("onoff(level=%.1f, on=%.0fh, off=%.0fh, duty=%.2f)", on_level_,
                        mean_on_hours_, mean_off_hours_, duty_cycle());
}

// ---------------------------------------------------------------- Bursty

BurstyGenerator::BurstyGenerator(double burst_probability, double burst_height,
                                 double mean_burst_hours, Count baseline)
    : burst_probability_(burst_probability),
      burst_height_(burst_height),
      mean_burst_hours_(mean_burst_hours),
      baseline_(baseline) {
  RIMARKET_EXPECTS(burst_probability >= 0.0 && burst_probability <= 1.0);
  RIMARKET_EXPECTS(burst_height >= 1.0);
  RIMARKET_EXPECTS(mean_burst_hours >= 1.0);
  RIMARKET_EXPECTS(baseline >= 0);
}

DemandTrace BurstyGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand(static_cast<std::size_t>(hours), baseline_);
  Hour t = 0;
  while (t < hours) {
    if (rng.bernoulli(burst_probability_)) {
      const Hour burst_length =
          std::max<Hour>(1, static_cast<Hour>(rng.exponential(1.0 / mean_burst_hours_) + 0.5));
      const Count height = std::max<Count>(1, rng.poisson(burst_height_));
      for (Hour b = t; b < std::min(hours, t + burst_length); ++b) {
        demand[static_cast<std::size_t>(b)] = baseline_ + height;
      }
      t += burst_length;
    } else {
      ++t;
    }
  }
  return DemandTrace(std::move(demand));
}

std::string BurstyGenerator::describe() const {
  return common::format("bursty(p=%.4f, height=%.1f, len=%.0fh, base=%lld)", burst_probability_,
                        burst_height_, mean_burst_hours_, static_cast<long long>(baseline_));
}

// ---------------------------------------------------------------- Poisson

PoissonGenerator::PoissonGenerator(double mean) : mean_(mean) { RIMARKET_EXPECTS(mean >= 0.0); }

DemandTrace PoissonGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  for (Hour t = 0; t < hours; ++t) {
    demand.push_back(rng.poisson(mean_));
  }
  return DemandTrace(std::move(demand));
}

std::string PoissonGenerator::describe() const {
  return common::format("poisson(mean=%.2f)", mean_);
}

// ---------------------------------------------------------------- RandomWalk

RandomWalkGenerator::RandomWalkGenerator(Count start, double step_probability, Count cap)
    : start_(start), step_probability_(step_probability), cap_(cap) {
  RIMARKET_EXPECTS(start >= 0 && start <= cap);
  RIMARKET_EXPECTS(step_probability >= 0.0 && step_probability <= 1.0);
  RIMARKET_EXPECTS(cap >= 1);
}

DemandTrace RandomWalkGenerator::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  Count level = start_;
  for (Hour t = 0; t < hours; ++t) {
    if (rng.bernoulli(step_probability_)) {
      level += rng.bernoulli(0.5) ? 1 : -1;
      level = std::clamp<Count>(level, 0, cap_);
    }
    demand.push_back(level);
  }
  return DemandTrace(std::move(demand));
}

std::string RandomWalkGenerator::describe() const {
  return common::format("walk(start=%lld, p=%.2f, cap=%lld)", static_cast<long long>(start_),
                        step_probability_, static_cast<long long>(cap_));
}

// ---------------------------------------------------------------- DelayedOnset

DelayedOnsetGenerator::DelayedOnsetGenerator(Params params) : params_(params) {
  RIMARKET_EXPECTS(params.level >= 1.0);
  RIMARKET_EXPECTS(params.spike_hours >= 1);
  RIMARKET_EXPECTS(params.onset >= 0);
  RIMARKET_EXPECTS(params.gap_before_onset >= 0 && params.gap_before_onset <= params.onset);
  RIMARKET_EXPECTS(params.duty_after_onset >= 0.0 && params.duty_after_onset <= 1.0);
  RIMARKET_EXPECTS(params.busy_window >= 0);
}

DemandTrace DelayedOnsetGenerator::generate(Hour hours, common::Rng& rng) const {
  std::vector<Count> demand(static_cast<std::size_t>(hours), 0);
  const auto level = static_cast<Count>(params_.level + 0.5);
  const Hour spike_at = params_.onset - params_.gap_before_onset;
  for (Hour h = spike_at; h < std::min(hours, spike_at + params_.spike_hours); ++h) {
    demand[static_cast<std::size_t>(h)] = level;
  }
  const Hour busy_end =
      params_.busy_window > 0 ? std::min(hours, params_.onset + params_.busy_window) : hours;
  for (Hour h = params_.onset; h < busy_end; ++h) {
    if (h >= 0 && h < hours && rng.bernoulli(params_.duty_after_onset)) {
      demand[static_cast<std::size_t>(h)] = level;
    }
  }
  return DemandTrace(std::move(demand));
}

std::string DelayedOnsetGenerator::describe() const {
  return common::format("delayed-onset(level=%.0f, onset=%lld, gap=%lld, duty=%.2f)",
                        params_.level, static_cast<long long>(params_.onset),
                        static_cast<long long>(params_.gap_before_onset),
                        params_.duty_after_onset);
}

// ---------------------------------------------------------------- Ec2Log

Ec2LogSynthesizer::Ec2LogSynthesizer(Params params) : params_(params) {
  RIMARKET_EXPECTS(params.base > 0.0);
  RIMARKET_EXPECTS(params.ar_coefficient >= 0.0 && params.ar_coefficient < 1.0);
  RIMARKET_EXPECTS(params.daily_amplitude >= 0.0);
  RIMARKET_EXPECTS(params.weekly_amplitude >= 0.0);
  RIMARKET_EXPECTS(params.noise_stddev >= 0.0);
  RIMARKET_EXPECTS(params.burst_probability >= 0.0 && params.burst_probability <= 1.0);
  RIMARKET_EXPECTS(params.burst_multiplier >= 0.0);
}

DemandTrace Ec2LogSynthesizer::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand;
  demand.reserve(static_cast<std::size_t>(hours));
  double ar_state = 0.0;
  Hour burst_remaining = 0;
  for (Hour t = 0; t < hours; ++t) {
    const double daily_phase =
        2.0 * std::numbers::pi * static_cast<double>(t % kHoursPerDay) / kHoursPerDay;
    const double weekly_phase =
        2.0 * std::numbers::pi * static_cast<double>(t % kHoursPerWeek) / kHoursPerWeek;
    ar_state = params_.ar_coefficient * ar_state +
               rng.normal(0.0, params_.noise_stddev * params_.base);
    if (burst_remaining <= 0 && rng.bernoulli(params_.burst_probability)) {
      burst_remaining = rng.uniform_int(2, 12);
    }
    double level = params_.base * (1.0 + params_.daily_amplitude * std::sin(daily_phase) +
                                   params_.weekly_amplitude * std::sin(weekly_phase)) +
                   ar_state;
    if (burst_remaining > 0) {
      level += params_.base * params_.burst_multiplier;
      --burst_remaining;
    }
    demand.push_back(clamp_count(level));
  }
  return DemandTrace(std::move(demand));
}

std::string Ec2LogSynthesizer::describe() const {
  return common::format("ec2log(base=%.1f, daily=%.2f, weekly=%.2f, ar=%.2f)", params_.base,
                        params_.daily_amplitude, params_.weekly_amplitude, params_.ar_coefficient);
}

// ---------------------------------------------------------------- Google

GoogleClusterSynthesizer::GoogleClusterSynthesizer(Params params) : params_(params) {
  RIMARKET_EXPECTS(params.scale_pareto_shape > 0.0);
  RIMARKET_EXPECTS(params.scale_minimum >= 1.0);
  RIMARKET_EXPECTS(params.mean_session_hours >= 1.0);
  RIMARKET_EXPECTS(params.mean_gap_hours >= 1.0);
  RIMARKET_EXPECTS(params.within_session_noise >= 0.0);
}

DemandTrace GoogleClusterSynthesizer::generate(Hour hours, common::Rng& rng) const {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> demand(static_cast<std::size_t>(hours), 0);
  Hour t = 0;
  // Start inside a gap or a session with probability matching duty cycle.
  const double duty =
      params_.mean_session_hours / (params_.mean_session_hours + params_.mean_gap_hours);
  bool in_session = rng.bernoulli(duty);
  while (t < hours) {
    if (in_session) {
      const Hour session_length = std::max<Hour>(
          1, static_cast<Hour>(rng.exponential(1.0 / params_.mean_session_hours) + 0.5));
      // Episode size is heavy tailed: most sessions are small, a few are
      // very large, matching per-user request distributions in cluster
      // traces.  Cap the draw so one user cannot dwarf the experiment.
      const double scale =
          std::min(200.0, rng.pareto(params_.scale_minimum, params_.scale_pareto_shape));
      for (Hour s = t; s < std::min(hours, t + session_length); ++s) {
        const double wobble = rng.normal(1.0, params_.within_session_noise);
        demand[static_cast<std::size_t>(s)] = std::max<Count>(1, clamp_count(scale * wobble));
      }
      t += session_length;
    } else {
      const Hour gap_length = std::max<Hour>(
          1, static_cast<Hour>(rng.exponential(1.0 / params_.mean_gap_hours) + 0.5));
      t += gap_length;
    }
    in_session = !in_session;
  }
  return DemandTrace(std::move(demand));
}

std::string GoogleClusterSynthesizer::describe() const {
  return common::format("google(shape=%.2f, session=%.0fh, gap=%.0fh)",
                        params_.scale_pareto_shape, params_.mean_session_hours,
                        params_.mean_gap_hours);
}

}  // namespace rimarket::workload
