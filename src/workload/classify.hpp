// Demand-fluctuation classification (paper Section VI-A, Fig. 2).
//
// The evaluation groups users by the coefficient of variation sigma/mu of
// their hourly demand: group 1 "stable" (< 1), group 2 "slightly
// fluctuating" (1..3), group 3 "highly fluctuating" (> 3).
#pragma once

#include <string_view>

#include "workload/trace.hpp"

namespace rimarket::workload {

enum class FluctuationGroup {
  kStable = 0,    ///< sigma/mu < 1
  kModerate = 1,  ///< 1 <= sigma/mu <= 3
  kHigh = 2,      ///< sigma/mu > 3
};

inline constexpr int kGroupCount = 3;

/// Group boundaries from the paper.
inline constexpr double kStableUpperCv = 1.0;
inline constexpr double kModerateUpperCv = 3.0;

/// Classifies a coefficient of variation into its paper group.
FluctuationGroup classify_cv(double cv);

/// Classifies a trace by its sigma/mu.
FluctuationGroup classify(const DemandTrace& trace);

/// "group 1 (stable)" style label.
std::string_view group_name(FluctuationGroup group);

/// Index 0..2 matching the paper's group numbering minus one.
int group_index(FluctuationGroup group);

}  // namespace rimarket::workload
