#include "workload/streaming.hpp"

#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "common/strings.hpp"
#include "workload/classify.hpp"
#include "workload/trace_detail.hpp"

namespace rimarket::workload {

void ChunkedTraceParser::feed(std::string_view chunk) {
  RIMARKET_EXPECTS(!finished_);
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t newline = chunk.find('\n', start);
    if (newline == std::string_view::npos) {
      pending_.append(chunk.substr(start));
      return;
    }
    ++line_number_;
    if (pending_.empty()) {
      consume_line(chunk.substr(start, newline - start));
    } else {
      pending_.append(chunk.substr(start, newline - start));
      consume_line(pending_);
      pending_.clear();
    }
    start = newline + 1;
  }
}

void ChunkedTraceParser::consume_line(std::string_view line) {
  // Mirrors common::parse_csv line handling: blank lines (including a lone
  // CR) are skipped, the first non-blank line is the header, and the first
  // invalid row wins — later lines are counted but never examined.
  if (failed_ || common::trim(line).empty()) {
    return;
  }
  if (!header_seen_) {
    header_seen_ = true;
    return;
  }
  const common::CsvRow row = common::parse_csv_line(line);
  std::string message;
  if (!detail::append_trace_row(row, static_cast<Hour>(demand_.size()), demand_, &message)) {
    failed_ = true;
    error_ = common::CsvError{std::string(), 0, line_number_, std::move(message)};
  }
}

std::optional<DemandTrace> ChunkedTraceParser::finish(common::CsvError* error) {
  RIMARKET_EXPECTS(!finished_);
  finished_ = true;
  if (RIMARKET_INJECT_PARSE(common::fault_injection::kSiteTraceStream)) {
    if (error != nullptr) {
      *error = common::CsvError{std::string(), 0, 1, "injected parse error"};
    }
    return std::nullopt;
  }
  if (!pending_.empty()) {
    ++line_number_;
    consume_line(pending_);
    pending_.clear();
  }
  if (failed_) {
    if (error != nullptr) {
      *error = error_;
    }
    return std::nullopt;
  }
  return DemandTrace(std::move(demand_));
}

void ChunkedTraceParser::reset() {
  pending_.clear();
  demand_.clear();
  line_number_ = 0;
  header_seen_ = false;
  finished_ = false;
  failed_ = false;
  error_ = common::CsvError{};
}

namespace {

/// Closes the handle even when a feed() throws (bad_alloc while buffering
/// leaks the FILE* otherwise — found by -fanalyzer).
struct FileCloser {
  std::FILE* file;
  ~FileCloser() {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};

}  // namespace

std::optional<DemandTrace> load_trace_chunked(const std::string& path, common::CsvError* error,
                                              std::size_t chunk_bytes) {
  RIMARKET_EXPECTS(chunk_bytes >= 1);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = common::CsvError{path, errno, 0, std::strerror(errno)};
    }
    return std::nullopt;
  }
  const FileCloser closer{file};
  ChunkedTraceParser parser;
  std::vector<char> buffer(chunk_bytes);
  std::size_t got = 0;
  while ((got = std::fread(buffer.data(), 1, buffer.size(), file)) > 0) {
    parser.feed(std::string_view(buffer.data(), got));
  }
  if (std::ferror(file) != 0) {
    if (error != nullptr) {
      *error = common::CsvError{path, errno, 0, std::strerror(errno)};
    }
    return std::nullopt;
  }
  auto trace = parser.finish(error);
  if (!trace && error != nullptr) {
    error->path = path;
  }
  return trace;
}

bool SpanUserSource::next(StreamedUser& out) {
  if (position_ >= users_.size()) {
    return false;
  }
  out.user = users_[position_++];
  out.ok = true;
  out.error = common::CsvError{};
  return true;
}

namespace {

std::optional<FluctuationGroup> parse_group(std::string_view token) {
  if (token == "stable") {
    return FluctuationGroup::kStable;
  }
  if (token == "moderate") {
    return FluctuationGroup::kModerate;
  }
  if (token == "high") {
    return FluctuationGroup::kHigh;
  }
  return std::nullopt;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

}  // namespace

TraceManifestSource::TraceManifestSource(const std::string& manifest_path,
                                         std::size_t chunk_bytes)
    : manifest_path_(manifest_path),
      manifest_dir_(dirname_of(manifest_path)),
      chunk_bytes_(chunk_bytes) {
  common::CsvError error;
  const auto doc = common::load_csv_file(manifest_path, /*expect_header=*/true, &error);
  if (!doc) {
    throw std::runtime_error(common::format("trace manifest: %s", error.to_string().c_str()));
  }
  if (doc->header != common::CsvRow{"id", "group", "path"}) {
    throw std::runtime_error(
        common::format("trace manifest %s: header must be id,group,path",
                       manifest_path.c_str()));
  }
  rows_.reserve(doc->rows.size());
  for (std::size_t i = 0; i < doc->rows.size(); ++i) {
    const common::CsvRow& row = doc->rows[i];
    ManifestRow entry;
    entry.line = doc->row_lines[i];
    // Ragged rows were rejected by load_csv_file, so row.size() == 3 here.
    const auto id = common::parse_int(row[0]);
    const auto group = parse_group(row[1]);
    if (!id) {
      entry.ok = false;
      entry.error_message = common::format("non-numeric user id \"%s\"", row[0].c_str());
    } else if (!group) {
      entry.id = static_cast<int>(*id);
      entry.ok = false;
      entry.error_message = common::format(
          "unknown group \"%s\" (expected stable, moderate or high)", row[1].c_str());
    } else {
      entry.id = static_cast<int>(*id);
      entry.group = *group;
      entry.path = row[2].empty() || row[2].front() == '/'
                       ? row[2]
                       : manifest_dir_ + "/" + row[2];
    }
    rows_.push_back(std::move(entry));
  }
}

bool TraceManifestSource::next(StreamedUser& out) {
  if (position_ >= rows_.size()) {
    return false;
  }
  const ManifestRow& row = rows_[position_++];
  out = StreamedUser{};
  out.user.id = row.id;
  out.user.group = row.group;
  if (!row.ok) {
    out.ok = false;
    out.error = common::CsvError{manifest_path_, 0, row.line, row.error_message};
    return true;
  }
  common::CsvError error;
  auto trace = load_trace_chunked(row.path, &error, chunk_bytes_);
  if (!trace) {
    out.ok = false;
    out.error = error;
    return true;
  }
  out.user.cv = trace->coefficient_of_variation();
  out.user.generator = "manifest";
  out.user.trace = *std::move(trace);
  return true;
}

}  // namespace rimarket::workload
