// Internal: the per-row validation shared by DemandTrace::from_csv and the
// chunked streaming parser (workload/streaming.hpp).  Both ingestion paths
// call the same function on every parsed `hour,demand` row, so they cannot
// drift: a file is valid chunked iff it is valid whole, with the identical
// diagnosis either way.  Not installed API — include only from workload/*.cpp.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/types.hpp"

namespace rimarket::workload::detail {

/// Validates one parsed CSV row as the `expected`-th trace row and appends
/// its demand value.  On failure returns false and fills `*message` with
/// the same diagnosis DemandTrace::from_csv reports (the caller adds the
/// 1-based line number via CsvError).
bool append_trace_row(const common::CsvRow& row, Hour expected, std::vector<Count>& demand,
                      std::string* message);

}  // namespace rimarket::workload::detail
