// Bounded-memory trace ingestion for population-scale sweeps.
//
// A million-user sweep cannot hold a million multi-year CSV files in memory
// at once.  This module provides the streaming half of the batch engine's
// ingestion path:
//
//   * ChunkedTraceParser — an incremental `hour,demand` CSV parser fed
//     arbitrary byte chunks.  For every input and every chunking it accepts
//     exactly the files DemandTrace::from_csv accepts and reports the same
//     CsvError (same 1-based line, same message): both paths validate each
//     row through workload::detail::append_trace_row, so they cannot drift.
//   * load_trace_chunked — reads a file through a fixed-size buffer
//     (bounded memory regardless of trace length) into a DemandTrace.
//   * UserStreamSource / TraceManifestSource — a pull interface handing
//     users to the batch engine one at a time, so only one shard of traces
//     is ever resident.  TraceManifestSource reads an `id,group,path`
//     manifest CSV and loads each user's trace chunked on demand.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace rimarket::workload {

/// Incremental `hour,demand` CSV parser.  Feed chunks in file order, then
/// call finish() exactly once.  Reusable after reset().
class ChunkedTraceParser {
 public:
  /// Consumes the next chunk of the file.  Chunk boundaries may fall
  /// anywhere, including mid-line, mid-field or between CR and LF.
  void feed(std::string_view chunk);

  /// Flushes the final (unterminated) line and returns the trace, or
  /// nullopt with `*error` filled (when non-null) exactly as
  /// DemandTrace::from_csv would for the concatenation of all chunks.
  /// The parser must be reset() before reuse.
  std::optional<DemandTrace> finish(common::CsvError* error = nullptr);

  /// Returns the parser to its freshly-constructed state.
  void reset();

  /// Hours accepted so far (diagnostics, progress reporting).
  Hour hours_parsed() const { return static_cast<Hour>(demand_.size()); }

 private:
  void consume_line(std::string_view line);

  std::string pending_;        ///< bytes after the last newline seen
  std::vector<Count> demand_;  ///< validated demand values so far
  std::size_t line_number_ = 0;
  bool header_seen_ = false;
  bool finished_ = false;
  bool failed_ = false;
  common::CsvError error_;  ///< first failure wins, like from_csv
};

/// Default read-buffer size for chunked file loading (64 KiB: small enough
/// to keep a shard's working set cache-friendly, large enough that syscall
/// overhead is noise).
inline constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

/// Reads `path` through a `chunk_bytes`-sized buffer into a trace.  Memory
/// is O(chunk + output), never O(file).  On failure fills `*error` (path,
/// errno or 1-based line) when non-null.
std::optional<DemandTrace> load_trace_chunked(const std::string& path,
                                              common::CsvError* error = nullptr,
                                              std::size_t chunk_bytes = kDefaultChunkBytes);

/// One unit pulled from a user stream: either a ready user or the error
/// that kept it from loading (the sweep decides whether that quarantines
/// the user or fails the run — see BatchOptions in sim/batch_engine.hpp).
struct StreamedUser {
  User user;
  bool ok = true;
  common::CsvError error;
};

/// Pull interface feeding users to the batch engine shard by shard.
class UserStreamSource {
 public:
  virtual ~UserStreamSource() = default;

  /// Fills `out` with the next user (or its load error).  Returns false at
  /// end of stream (out is untouched).
  virtual bool next(StreamedUser& out) = 0;

  /// Rewinds to the first user; the stream must replay identically
  /// (checkpoint resume re-reads the already-completed prefix).
  virtual void rewind() = 0;
};

/// In-memory adapter: streams an existing user span (tests, small runs).
class SpanUserSource final : public UserStreamSource {
 public:
  explicit SpanUserSource(std::span<const User> users) : users_(users) {}

  bool next(StreamedUser& out) override;
  void rewind() override { position_ = 0; }

 private:
  std::span<const User> users_;
  std::size_t position_ = 0;
};

/// Streams users from a manifest CSV with header `id,group,path`: one row
/// per user, `group` in {stable, moderate, high} (see workload/classify),
/// `path` a trace CSV readable by load_trace_chunked, resolved relative to
/// the manifest's directory when not absolute.  The manifest itself is
/// loaded eagerly (three small fields per user); traces are loaded chunked,
/// one user at a time, when next() is called — the bounded-memory part.
/// A malformed manifest *row* or unreadable/invalid trace yields a
/// StreamedUser with ok=false; an unreadable manifest file throws
/// std::runtime_error at construction.
class TraceManifestSource final : public UserStreamSource {
 public:
  explicit TraceManifestSource(const std::string& manifest_path,
                               std::size_t chunk_bytes = kDefaultChunkBytes);

  bool next(StreamedUser& out) override;
  void rewind() override { position_ = 0; }

  std::size_t user_count() const { return rows_.size(); }

 private:
  struct ManifestRow {
    int id = 0;
    FluctuationGroup group = FluctuationGroup::kStable;
    std::string path;
    bool ok = true;
    std::string error_message;  ///< when !ok: why the row is unusable
    std::size_t line = 0;       ///< 1-based manifest line
  };

  std::string manifest_path_;
  std::string manifest_dir_;
  std::size_t chunk_bytes_;
  std::vector<ManifestRow> rows_;
  std::size_t position_ = 0;
};

}  // namespace rimarket::workload
