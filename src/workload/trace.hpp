// Hourly demand traces (paper Section III-C: the demand sequence d_t).
//
// A trace is one user's instance demand per hour: d_t instances must be
// provisioned at hour t.  Traces are the only workload interface the
// algorithms see, which is what makes synthetic generators valid stand-ins
// for the paper's EC2 usage logs and Google cluster traces (see DESIGN.md).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rimarket::common {
struct CsvError;
}

namespace rimarket::workload {

/// Immutable-by-convention hourly demand sequence.
class DemandTrace {
 public:
  DemandTrace() = default;

  /// Takes ownership of per-hour demand counts (each >= 0).
  explicit DemandTrace(std::vector<Count> demand);

  /// Number of hours covered.
  Hour length() const { return static_cast<Hour>(demand_.size()); }
  bool empty() const { return demand_.empty(); }

  /// Demand at hour t; hours beyond the recorded range have zero demand
  /// (the user's job has finished — the situation that motivates selling).
  Count at(Hour t) const;

  std::span<const Count> values() const { return demand_; }

  /// Summary statistics.
  double mean() const;
  double stddev() const;
  /// sigma/mu, the paper's fluctuation measure (Fig. 2).
  double coefficient_of_variation() const;
  Count peak() const;
  /// Total demanded instance-hours.
  Count total() const;

  /// Sub-trace [from, from+hours); clamps to the recorded range and
  /// zero-fills past the end.
  DemandTrace slice(Hour from, Hour hours) const;

  /// Element-wise sum of two traces (shorter one zero-extended).
  static DemandTrace sum(const DemandTrace& a, const DemandTrace& b);

  /// CSV round-trip: one `hour,demand` row per hour, with header.
  std::string to_csv() const;
  static std::optional<DemandTrace> from_csv(std::string_view text);

  /// As above; on failure also fills `*error` (1-based line + what was
  /// wrong with it) when `error` is non-null.  The caller owns filling in
  /// CsvError::path — this function only sees in-memory text.
  static std::optional<DemandTrace> from_csv(std::string_view text, common::CsvError* error);

  /// Reads and parses an `hour,demand` CSV file.  Unlike from_csv, this is
  /// the loading layer: on failure `*error` carries the path alongside the
  /// errno (unreadable file) or 1-based line (malformed row), so callers
  /// never patch CsvError::path by hand.
  static std::optional<DemandTrace> load_file(const std::string& path,
                                              common::CsvError* error = nullptr);

 private:
  std::vector<Count> demand_;
};

}  // namespace rimarket::workload
