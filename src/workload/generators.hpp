// Synthetic demand-trace generators.
//
// These stand in for the paper's two datasets (36 EC2 usage log files and
// the Google cluster-usage traces — see DESIGN.md "Substitutions").  The
// paper's evaluation only consumes per-user hourly instance counts grouped
// by fluctuation level sigma/mu, so each generator is designed to cover a
// region of that fluctuation spectrum:
//
//   * StableGenerator / DiurnalGenerator      -> sigma/mu < 1  (group 1)
//   * OnOffGenerator with moderate duty cycle -> 1 < sigma/mu < 3 (group 2)
//   * BurstyGenerator with rare tall spikes   -> sigma/mu > 3  (group 3)
//   * Ec2LogSynthesizer / GoogleClusterSynthesizer -> realistic mixtures
//     spanning all three groups.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace rimarket::workload {

/// Interface for stochastic demand processes.
class DemandGenerator {
 public:
  virtual ~DemandGenerator() = default;

  /// Draws one trace of `hours` samples using `rng`.
  virtual DemandTrace generate(Hour hours, common::Rng& rng) const = 0;

  /// Human-readable description for logs/reports.
  virtual std::string describe() const = 0;
};

/// Near-constant demand: base level plus small integer jitter.
/// sigma/mu ~= jitter / base, so stays well inside group 1.
class StableGenerator final : public DemandGenerator {
 public:
  /// base >= 1; 0 <= jitter <= base.
  StableGenerator(Count base, Count jitter);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  Count base_;
  Count jitter_;
};

/// Smooth day/night pattern: base + amplitude * sin(2*pi*h/24) + noise.
class DiurnalGenerator final : public DemandGenerator {
 public:
  /// base > amplitude >= 0 keeps demand positive before noise.
  DiurnalGenerator(double base, double amplitude, double noise_stddev);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  double base_;
  double amplitude_;
  double noise_stddev_;
};

/// Alternating ON/OFF episodes with geometric dwell times; demand is a
/// Poisson draw around `on_level` while ON, zero while OFF.  A duty cycle d
/// gives sigma/mu ~= sqrt((1-d)/d) for the underlying square wave, so
/// moderate duty cycles land in group 2 and rare-ON processes in group 3.
class OnOffGenerator final : public DemandGenerator {
 public:
  /// on_level >= 1; mean dwell times >= 1 hour.
  OnOffGenerator(double on_level, double mean_on_hours, double mean_off_hours);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

  double duty_cycle() const;

 private:
  double on_level_;
  double mean_on_hours_;
  double mean_off_hours_;
};

/// Mostly-idle demand with rare tall bursts (group 3: sigma/mu > 3).
class BurstyGenerator final : public DemandGenerator {
 public:
  /// burst probability per hour in [0,1]; burst height >= 1; mean burst
  /// length >= 1 hour; baseline level >= 0 between bursts.
  BurstyGenerator(double burst_probability, double burst_height, double mean_burst_hours,
                  Count baseline);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  double burst_probability_;
  double burst_height_;
  double mean_burst_hours_;
  Count baseline_;
};

/// Independent Poisson demand each hour.
class PoissonGenerator final : public DemandGenerator {
 public:
  explicit PoissonGenerator(double mean);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  double mean_;
};

/// Reflected random walk on [0, cap]: moves +-1 with probability step_prob.
class RandomWalkGenerator final : public DemandGenerator {
 public:
  RandomWalkGenerator(Count start, double step_probability, Count cap);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  Count start_;
  double step_probability_;
  Count cap_;
};

/// Delayed-onset workload: a short provisioning spike (which books
/// reservations under the paper's purchasing imitators), a long quiet gap,
/// then sustained demand from `onset` onwards — a service that launches to
/// production months after its capacity was provisioned.  This is the
/// proofs' case-1 pattern (demand resumes *after* the decision spot) and
/// produces the small population of regressing users the paper's Fig. 3
/// reports: an early-spot algorithm sells during the gap and pays on-demand
/// once the load arrives, while A_{3T/4} usually decides after the onset
/// and keeps.
class DelayedOnsetGenerator final : public DemandGenerator {
 public:
  struct Params {
    double level = 5.0;           ///< sustained instance count after onset
    Hour spike_hours = 24;        ///< provisioning spike length
    Hour onset = 9000;            ///< hour the sustained load starts
    Hour gap_before_onset = 4000; ///< spike happens at onset - gap
    double duty_after_onset = 0.9;   ///< busy probability per hour after onset
    Hour busy_window = 0;         ///< 0 = busy to end; else busy [onset, onset+window)
  };
  explicit DelayedOnsetGenerator(Params params);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  Params params_;
};

/// EC2-usage-log stand-in: diurnal + weekly seasonality, AR(1) colored
/// noise and occasional bursts, i.e. the texture of a production web
/// service's instance counts.
class Ec2LogSynthesizer final : public DemandGenerator {
 public:
  struct Params {
    double base = 10.0;             ///< mean instance count
    double daily_amplitude = 0.3;   ///< fraction of base
    double weekly_amplitude = 0.1;  ///< fraction of base
    double ar_coefficient = 0.8;    ///< AR(1) coefficient in [0,1)
    double noise_stddev = 0.2;      ///< fraction of base
    double burst_probability = 0.002;
    double burst_multiplier = 3.0;  ///< burst height as multiple of base
  };
  explicit Ec2LogSynthesizer(Params params);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  Params params_;
};

/// Google-cluster-trace stand-in: a heavy-tailed per-user scale (Pareto)
/// modulated by ON/OFF task episodes — users submit jobs in sessions whose
/// resource requests map to instance counts.
class GoogleClusterSynthesizer final : public DemandGenerator {
 public:
  struct Params {
    double scale_pareto_shape = 1.5;  ///< tail index of per-episode size
    double scale_minimum = 1.0;       ///< smallest episode demand
    double mean_session_hours = 72.0;
    double mean_gap_hours = 48.0;
    double within_session_noise = 0.25;  ///< relative demand noise in session
  };
  explicit GoogleClusterSynthesizer(Params params);
  DemandTrace generate(Hour hours, common::Rng& rng) const override;
  std::string describe() const override;

 private:
  Params params_;
};

}  // namespace rimarket::workload
