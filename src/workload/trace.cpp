#include "workload/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/fault_injection.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "workload/trace_detail.hpp"

namespace rimarket::workload {

namespace detail {

bool append_trace_row(const common::CsvRow& row, Hour expected, std::vector<Count>& demand,
                      std::string* message) {
  if (row.size() != 2) {
    *message = common::format("expected 2 fields (hour,demand), got %zu", row.size());
    return false;
  }
  const auto hour = common::parse_int(row[0]);
  const auto value = common::parse_int(row[1]);
  if (!hour || !value) {
    *message =
        common::format("non-numeric field in row \"%s,%s\"", row[0].c_str(), row[1].c_str());
    return false;
  }
  if (*hour != expected) {
    *message = common::format("hour %lld out of sequence (expected %lld)",
                              static_cast<long long>(*hour), static_cast<long long>(expected));
    return false;
  }
  if (*value < 0) {
    *message = common::format("negative demand %lld", static_cast<long long>(*value));
    return false;
  }
  demand.push_back(*value);
  return true;
}

}  // namespace detail

DemandTrace::DemandTrace(std::vector<Count> demand) : demand_(std::move(demand)) {
  for (Count d : demand_) {
    RIMARKET_EXPECTS(d >= 0);
  }
}

Count DemandTrace::at(Hour t) const {
  RIMARKET_EXPECTS(t >= 0);
  if (t >= length()) {
    return 0;
  }
  return demand_[static_cast<std::size_t>(t)];
}

double DemandTrace::mean() const {
  common::RunningStats stats;
  for (Count d : demand_) {
    stats.add(static_cast<double>(d));
  }
  return stats.mean();
}

double DemandTrace::stddev() const {
  common::RunningStats stats;
  for (Count d : demand_) {
    stats.add(static_cast<double>(d));
  }
  return stats.stddev();
}

double DemandTrace::coefficient_of_variation() const {
  common::RunningStats stats;
  for (Count d : demand_) {
    stats.add(static_cast<double>(d));
  }
  return stats.coefficient_of_variation();
}

Count DemandTrace::peak() const {
  Count peak = 0;
  for (Count d : demand_) {
    peak = std::max(peak, d);
  }
  return peak;
}

Count DemandTrace::total() const {
  Count total = 0;
  for (Count d : demand_) {
    total += d;
  }
  return total;
}

DemandTrace DemandTrace::slice(Hour from, Hour hours) const {
  RIMARKET_EXPECTS(from >= 0);
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(hours));
  for (Hour t = from; t < from + hours; ++t) {
    out.push_back(at(t));
  }
  return DemandTrace(std::move(out));
}

DemandTrace DemandTrace::sum(const DemandTrace& a, const DemandTrace& b) {
  const Hour length = std::max(a.length(), b.length());
  std::vector<Count> out;
  out.reserve(static_cast<std::size_t>(length));
  for (Hour t = 0; t < length; ++t) {
    out.push_back(a.at(t) + b.at(t));
  }
  return DemandTrace(std::move(out));
}

std::string DemandTrace::to_csv() const {
  std::string out = "hour,demand\n";
  for (Hour t = 0; t < length(); ++t) {
    out += common::format("%lld,%lld\n", static_cast<long long>(t),
                          static_cast<long long>(demand_[static_cast<std::size_t>(t)]));
  }
  return out;
}

std::optional<DemandTrace> DemandTrace::from_csv(std::string_view text) {
  return from_csv(text, nullptr);
}

std::optional<DemandTrace> DemandTrace::from_csv(std::string_view text,
                                                 common::CsvError* error) {
  const auto fail = [error](std::size_t line, std::string message) -> std::optional<DemandTrace> {
    if (error != nullptr) {
      *error = common::CsvError{std::string(), 0, line, std::move(message)};
    }
    return std::nullopt;
  };
  if (RIMARKET_INJECT_PARSE(common::fault_injection::kSiteTraceFromCsv)) {
    return fail(1, "injected parse error");
  }
  const common::CsvDocument doc = common::parse_csv(text, /*expect_header=*/true);
  std::vector<Count> demand;
  demand.reserve(doc.rows.size());
  Hour expected = 0;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    std::string message;
    if (!detail::append_trace_row(doc.rows[i], expected, demand, &message)) {
      return fail(doc.row_lines[i], std::move(message));
    }
    ++expected;
  }
  return DemandTrace(std::move(demand));
}

std::optional<DemandTrace> DemandTrace::load_file(const std::string& path,
                                                  common::CsvError* error) {
  const auto contents = common::read_file(path, error);
  if (!contents) {
    return std::nullopt;  // read_file already filled path + errno
  }
  const auto trace = from_csv(*contents, error);
  if (!trace && error != nullptr) {
    error->path = path;  // from_csv only sees text; the loader owns the path
  }
  return trace;
}

}  // namespace rimarket::workload
