// Prediction-based selling baseline.
//
// Where A_{fT} looks *backwards* (observed working time vs beta(f)), this
// policy looks *forwards*: at the same decision spot it forecasts the mean
// demand over the reservation's remaining period, estimates the instance's
// expected future utilization from its rank in the least-remaining-first
// service order, and keeps the contract only when the predicted future
// work justifies it:
//
//     expected future worked hours >= beta_fwd = (1-f)*a*R / (p*(1-alpha))
//
// (the same break-even functional form, over the forward window).  With an
// accurate forecast this is close to the clairvoyant per-instance rule;
// with a misled forecast — exactly what fluctuating demand produces — it
// sells instances whose demand returns, the failure mode the paper cites
// when motivating competitive online analysis over prediction (Section II).
#pragma once

#include <memory>

#include "forecast/forecasters.hpp"
#include "pricing/instance_type.hpp"
#include "selling/policy.hpp"

namespace rimarket::forecast {

class ForecastSelling final : public selling::SellPolicy {
 public:
  /// Decides at fraction `fraction` of the term, like A_{fT}.
  ForecastSelling(const pricing::InstanceType& type, Fraction fraction,
                  Fraction selling_discount, std::unique_ptr<Forecaster> forecaster);

  void observe(Hour now, Count demand) override;
  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override;

  /// Forward break-even hours over the remaining (1-f)*T window.
  Hours forward_break_even_hours() const { return forward_break_even_; }

  /// Expected utilization (in [0,1]) of the instance ranked `rank` in the
  /// service order given a predicted mean demand: the rank-r instance works
  /// when demand exceeds r, approximated by clamp(mean - rank, 0, 1).
  static double expected_utilization(double predicted_mean, Count rank);

 private:
  pricing::InstanceType type_;
  Fraction fraction_;
  Hour decision_age_;
  Hour remaining_hours_;
  Hours forward_break_even_;
  std::unique_ptr<Forecaster> forecaster_;
  bool has_observations_ = false;
  /// Scratch buffer for the hour's due ids, reused across decide() calls.
  std::vector<fleet::ReservationId> due_;
};

}  // namespace rimarket::forecast
