#include "forecast/forecast_selling.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::forecast {

ForecastSelling::ForecastSelling(const pricing::InstanceType& type, Fraction fraction,
                                 Fraction selling_discount,
                                 std::unique_ptr<Forecaster> forecaster)
    : type_(type),
      fraction_(fraction),
      decision_age_(selling::decision_age(type.term, fraction)),
      remaining_hours_(type.term - decision_age_),
      forward_break_even_(type.break_even_hours(fraction.complement(), selling_discount)),
      forecaster_(std::move(forecaster)) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(forecaster_ != nullptr);
}

void ForecastSelling::observe(Hour now, Count demand) {
  (void)now;
  forecaster_->observe(demand);
  has_observations_ = true;
}

double ForecastSelling::expected_utilization(double predicted_mean, Count rank) {
  RIMARKET_EXPECTS(rank >= 0);
  return std::clamp(predicted_mean - static_cast<double>(rank), 0.0, 1.0);
}

void ForecastSelling::decide(Hour now, fleet::ReservationLedger& ledger,
                             std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  to_sell.clear();
  ledger.due_at_age(now, decision_age_, due_);
  if (due_.empty() || !has_observations_) {
    return;
  }
  const double predicted = forecaster_->predict_mean(remaining_hours_);
  for (const fleet::ReservationId id : due_) {
    // Rank = position in the least-remaining-first service order.
    const Count rank = ledger.active_rank(now, id);
    const double expected_worked =
        static_cast<double>(remaining_hours_) * expected_utilization(predicted, rank);
    if (Hours{expected_worked} < forward_break_even_) {
      to_sell.push_back(id);
    }
  }
}

std::string ForecastSelling::name() const {
  return common::format("forecast[%s]@%.2fT", forecaster_->name().c_str(), fraction_.value());
}

}  // namespace rimarket::forecast
