#include "forecast/forecasters.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::forecast {

// ---------------------------------------------------------------- Ewma

EwmaForecaster::EwmaForecaster(double smoothing) : smoothing_(smoothing) {
  RIMARKET_EXPECTS(smoothing > 0.0 && smoothing <= 1.0);
}

void EwmaForecaster::observe(Count demand) {
  RIMARKET_EXPECTS(demand >= 0);
  const auto value = static_cast<double>(demand);
  if (!seeded_) {
    level_ = value;
    seeded_ = true;
    return;
  }
  level_ += smoothing_ * (value - level_);
}

double EwmaForecaster::predict_mean(Hour horizon) const {
  RIMARKET_EXPECTS(horizon >= 1);
  RIMARKET_EXPECTS(seeded_);
  return level_;  // flat extrapolation of the smoothed level
}

std::string EwmaForecaster::name() const {
  return common::format("ewma(%.3f)", smoothing_);
}

// ---------------------------------------------------------------- Seasonal

SeasonalNaiveForecaster::SeasonalNaiveForecaster(Hour period)
    : period_(period),
      phase_sum_(static_cast<std::size_t>(period), 0.0),
      phase_count_(static_cast<std::size_t>(period), 0) {
  RIMARKET_EXPECTS(period >= 1);
}

void SeasonalNaiveForecaster::observe(Count demand) {
  RIMARKET_EXPECTS(demand >= 0);
  const auto phase = static_cast<std::size_t>(observed_ % period_);
  phase_sum_[phase] += static_cast<double>(demand);
  ++phase_count_[phase];
  ++observed_;
}

double SeasonalNaiveForecaster::predict_mean(Hour horizon) const {
  RIMARKET_EXPECTS(horizon >= 1);
  RIMARKET_EXPECTS(observed_ >= 1);
  // Average the per-phase means over the forecast span (flat beyond one
  // full period).
  double total = 0.0;
  Hour counted = 0;
  for (Hour h = 0; h < std::min(horizon, period_); ++h) {
    const auto phase = static_cast<std::size_t>((observed_ + h) % period_);
    if (phase_count_[phase] > 0) {
      total += phase_sum_[phase] / static_cast<double>(phase_count_[phase]);
      ++counted;
    }
  }
  if (counted == 0) {
    return 0.0;
  }
  return total / static_cast<double>(counted);
}

std::string SeasonalNaiveForecaster::name() const {
  return common::format("seasonal(%lld)", static_cast<long long>(period_));
}

// ---------------------------------------------------------------- Holt

HoltForecaster::HoltForecaster(double level_smoothing, double trend_smoothing)
    : level_smoothing_(level_smoothing), trend_smoothing_(trend_smoothing) {
  RIMARKET_EXPECTS(level_smoothing > 0.0 && level_smoothing <= 1.0);
  RIMARKET_EXPECTS(trend_smoothing > 0.0 && trend_smoothing <= 1.0);
}

void HoltForecaster::observe(Count demand) {
  RIMARKET_EXPECTS(demand >= 0);
  const auto value = static_cast<double>(demand);
  if (!seeded_) {
    level_ = value;
    trend_ = 0.0;
    seeded_ = true;
    return;
  }
  const double previous_level = level_;
  level_ = level_smoothing_ * value + (1.0 - level_smoothing_) * (level_ + trend_);
  trend_ = trend_smoothing_ * (level_ - previous_level) + (1.0 - trend_smoothing_) * trend_;
}

double HoltForecaster::predict_mean(Hour horizon) const {
  RIMARKET_EXPECTS(horizon >= 1);
  RIMARKET_EXPECTS(seeded_);
  // Mean of level + trend*k over k = 1..horizon.
  const double mean =
      level_ + trend_ * (static_cast<double>(horizon) + 1.0) / 2.0;
  return std::max(0.0, mean);
}

std::string HoltForecaster::name() const {
  return common::format("holt(%.3f,%.3f)", level_smoothing_, trend_smoothing_);
}

// ---------------------------------------------------------------- Window

WindowMeanForecaster::WindowMeanForecaster(Hour window) : window_(window) {
  RIMARKET_EXPECTS(window >= 1);
  recent_.reserve(static_cast<std::size_t>(window));
}

void WindowMeanForecaster::observe(Count demand) {
  RIMARKET_EXPECTS(demand >= 0);
  if (recent_.size() < static_cast<std::size_t>(window_)) {
    recent_.push_back(demand);
    return;
  }
  recent_[next_] = demand;
  next_ = (next_ + 1) % recent_.size();
}

double WindowMeanForecaster::predict_mean(Hour horizon) const {
  RIMARKET_EXPECTS(horizon >= 1);
  RIMARKET_EXPECTS(!recent_.empty());
  double sum = 0.0;
  for (const Count demand : recent_) {
    sum += static_cast<double>(demand);
  }
  return sum / static_cast<double>(recent_.size());
}

std::string WindowMeanForecaster::name() const {
  return common::format("window-mean(%lld)", static_cast<long long>(window_));
}

std::unique_ptr<Forecaster> make_forecaster(ForecasterKind kind) {
  switch (kind) {
    case ForecasterKind::kEwma:
      return std::make_unique<EwmaForecaster>();
    case ForecasterKind::kSeasonalNaive:
      return std::make_unique<SeasonalNaiveForecaster>();
    case ForecasterKind::kWindowMean:
      return std::make_unique<WindowMeanForecaster>();
    case ForecasterKind::kHolt:
      return std::make_unique<HoltForecaster>();
  }
  RIMARKET_UNREACHABLE("forecaster kind");
}

}  // namespace rimarket::forecast
