// Demand forecasters — the prediction-based alternative the paper argues
// against.
//
// Related work (paper Section II): "there are also great efforts in
// investigating cost-saving strategies relying on historic workloads to
// make long-term predictions of future workloads.  However, such
// predictions have practical limitations ... prediction models generally
// assume that workloads are relatively stable".  To make that comparison
// concrete, this module provides classic lightweight predictors and the
// ForecastSelling policy built on them; the ablation bench shows they match
// the online algorithms on stable users and degrade on fluctuating ones —
// exactly the failure mode the paper cites as motivation for competitive
// online analysis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rimarket::forecast {

/// Streaming one-step-ahead demand forecaster.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Feeds the demand observed this hour.
  virtual void observe(Count demand) = 0;

  /// Predicted mean demand per hour over the next `horizon` hours.
  /// Requires at least one observation.
  virtual double predict_mean(Hour horizon) const = 0;

  virtual std::string name() const = 0;
};

/// Exponentially weighted moving average: prediction = the EWMA level.
class EwmaForecaster final : public Forecaster {
 public:
  /// smoothing in (0, 1]; larger reacts faster.
  explicit EwmaForecaster(double smoothing = 0.05);

  void observe(Count demand) override;
  double predict_mean(Hour horizon) const override;
  std::string name() const override;

  double level() const { return level_; }

 private:
  double smoothing_;
  double level_ = 0.0;
  bool seeded_ = false;
};

/// Seasonal naive: predicts the average of the same hour-of-period over
/// the recorded history (default period: one week).
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(Hour period = kHoursPerWeek);

  void observe(Count demand) override;
  double predict_mean(Hour horizon) const override;
  std::string name() const override;

 private:
  Hour period_;
  Hour observed_ = 0;
  /// Sum and count of observations per phase of the period.
  std::vector<double> phase_sum_;
  std::vector<Count> phase_count_;
};

/// Holt double-exponential smoothing: tracks a level and a linear trend,
/// so ramping workloads (the delayed-onset pattern) are extrapolated
/// instead of flattened.  Forecast mean over h hours = level + trend*(h+1)/2,
/// clamped at zero.
class HoltForecaster final : public Forecaster {
 public:
  /// Both smoothings in (0, 1].
  explicit HoltForecaster(double level_smoothing = 0.05, double trend_smoothing = 0.01);

  void observe(Count demand) override;
  double predict_mean(Hour horizon) const override;
  std::string name() const override;

  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  double level_smoothing_;
  double trend_smoothing_;
  double level_ = 0.0;
  double trend_ = 0.0;
  bool seeded_ = false;
};

/// Sliding-window mean over the last `window` hours.
class WindowMeanForecaster final : public Forecaster {
 public:
  explicit WindowMeanForecaster(Hour window = 4 * kHoursPerWeek);

  void observe(Count demand) override;
  double predict_mean(Hour horizon) const override;
  std::string name() const override;

 private:
  Hour window_;
  std::vector<Count> recent_;  // ring buffer
  std::size_t next_ = 0;
};

enum class ForecasterKind { kEwma, kSeasonalNaive, kWindowMean, kHolt };

std::unique_ptr<Forecaster> make_forecaster(ForecasterKind kind);

}  // namespace rimarket::forecast
