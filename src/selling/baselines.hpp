// Benchmark selling policies from the paper's evaluation (Section VI-B).
#pragma once

#include "pricing/instance_type.hpp"
#include "selling/policy.hpp"

namespace rimarket::selling {

/// Keep-reserved: never sells.  All evaluation costs are normalized to this
/// baseline, so it is the denominator of every figure/table.
class KeepReservedPolicy final : public SellPolicy {
 public:
  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override { return "keep-reserved"; }
};

/// All-selling: sells every reservation unconditionally when it reaches the
/// decision spot, regardless of its utilization.
class AllSellingPolicy final : public SellPolicy {
 public:
  AllSellingPolicy(const pricing::InstanceType& type, Fraction fraction);

  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override;

 private:
  Fraction fraction_;
  Hour decision_age_;
};

}  // namespace rimarket::selling
