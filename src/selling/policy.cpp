#include "selling/policy.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rimarket::selling {

std::vector<fleet::ReservationId> decide_once(SellPolicy& policy, Hour now,
                                              fleet::ReservationLedger& ledger) {
  RIMARKET_EXPECTS(now >= 0);
  std::vector<fleet::ReservationId> to_sell;
  policy.decide(now, ledger, to_sell);
  return to_sell;
}

Hour decision_age(Hour term, Fraction fraction) {
  RIMARKET_EXPECTS(term >= 1);
  RIMARKET_EXPECTS(fraction > Fraction{0.0} && fraction < Fraction{1.0});
  const Hour age = static_cast<Hour>(std::llround(fraction.value() * static_cast<double>(term)));
  RIMARKET_ENSURES(age >= 1 && age < term);
  return age;
}

}  // namespace rimarket::selling
