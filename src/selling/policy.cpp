#include "selling/policy.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rimarket::selling {

Hour decision_age(Hour term, double fraction) {
  RIMARKET_EXPECTS(term >= 1);
  RIMARKET_EXPECTS(fraction > 0.0 && fraction < 1.0);
  const Hour age = static_cast<Hour>(std::llround(fraction * static_cast<double>(term)));
  RIMARKET_ENSURES(age >= 1 && age < term);
  return age;
}

}  // namespace rimarket::selling
