#include "selling/continuous.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rimarket::selling {

ContinuousSelling::ContinuousSelling(const pricing::InstanceType& type, Fraction selling_discount)
    : ContinuousSelling(type, selling_discount, Options{}) {}

ContinuousSelling::ContinuousSelling(const pricing::InstanceType& type,
                                     Fraction selling_discount, Options options)
    : type_(type), selling_discount_(selling_discount), options_(options) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(options.min_fraction > Fraction{0.0} && options.min_fraction < Fraction{1.0});
  RIMARKET_EXPECTS(options.max_fraction >= options.min_fraction &&
                   options.max_fraction < Fraction{1.0});
  RIMARKET_EXPECTS(options.confirmation_hours >= 0);
  window_start_ = decision_age(type.term, options.min_fraction);
  window_end_ = decision_age(type.term, options.max_fraction);
}

Hours ContinuousSelling::break_even_at_age(Hour age) const {
  RIMARKET_EXPECTS(age >= 0 && age <= type_.term);
  const double fraction = static_cast<double>(age) / static_cast<double>(type_.term);
  if (fraction <= 0.0) {
    return Hours{0.0};
  }
  return type_.break_even_hours(Fraction{fraction}, selling_discount_);
}

void ContinuousSelling::decide(Hour now, fleet::ReservationLedger& ledger,
                               std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  to_sell.clear();
  ledger.for_each_active(now, [this, &ledger, &to_sell, now](fleet::ReservationId id) {
    const fleet::Reservation& reservation = ledger.get(id);
    const Hour age = reservation.age(now);
    if (age < window_start_ || age > window_end_) {
      return;
    }
    if (static_cast<std::size_t>(id) >= shortfall_streak_.size()) {
      shortfall_streak_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    const bool below = Hours{reservation.worked_hours} < break_even_at_age(age);
    Hour& streak = shortfall_streak_[static_cast<std::size_t>(id)];
    if (!below) {
      streak = 0;
      return;
    }
    ++streak;
    if (streak > options_.confirmation_hours) {
      to_sell.push_back(id);
      streak = 0;
    }
  });
}

}  // namespace rimarket::selling
