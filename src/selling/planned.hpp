// Plan-driven selling, used to realize the clairvoyant offline optimum.
//
// The paper's benchmark OPT (Section IV-A) picks, per reservation and with
// full knowledge of future demand, the selling time that minimizes that
// instance's cost.  The sim module computes such a plan from a shadow run
// (sim::plan_offline_optimal) and replays it through this policy.
#pragma once

#include <map>

#include "selling/policy.hpp"

namespace rimarket::selling {

/// Sells reservation `id` at exactly the planned hour.  Reservations absent
/// from the plan are kept to term.
class PlannedSellingPolicy final : public SellPolicy {
 public:
  /// `plan` maps reservation id -> hour to sell at.
  explicit PlannedSellingPolicy(std::map<fleet::ReservationId, Hour> plan);

  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override { return "offline-optimal"; }

  const std::map<fleet::ReservationId, Hour>& plan() const { return plan_; }

 private:
  std::map<fleet::ReservationId, Hour> plan_;
  /// Inverse index: hour -> reservations to sell then.
  std::map<Hour, std::vector<fleet::ReservationId>> by_hour_;
};

}  // namespace rimarket::selling
