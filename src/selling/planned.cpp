#include "selling/planned.hpp"

namespace rimarket::selling {

PlannedSellingPolicy::PlannedSellingPolicy(std::map<fleet::ReservationId, Hour> plan)
    : plan_(std::move(plan)) {
  for (const auto& [id, when] : plan_) {
    by_hour_[when].push_back(id);
  }
}

std::vector<fleet::ReservationId> PlannedSellingPolicy::decide(
    Hour now, fleet::ReservationLedger& ledger) {
  const auto it = by_hour_.find(now);
  if (it == by_hour_.end()) {
    return {};
  }
  std::vector<fleet::ReservationId> to_sell;
  to_sell.reserve(it->second.size());
  for (const fleet::ReservationId id : it->second) {
    if (ledger.get(id).active(now)) {
      to_sell.push_back(id);
    }
  }
  return to_sell;
}

}  // namespace rimarket::selling
