#include "selling/planned.hpp"

#include "common/assert.hpp"

namespace rimarket::selling {

PlannedSellingPolicy::PlannedSellingPolicy(std::map<fleet::ReservationId, Hour> plan)
    : plan_(std::move(plan)) {
  for (const auto& [id, when] : plan_) {
    RIMARKET_EXPECTS(id >= 0);
    RIMARKET_EXPECTS(when >= 0);
    by_hour_[when].push_back(id);
  }
}

std::vector<fleet::ReservationId> PlannedSellingPolicy::decide(
    Hour now, fleet::ReservationLedger& ledger) {
  RIMARKET_EXPECTS(now >= 0);
  const auto it = by_hour_.find(now);
  if (it == by_hour_.end()) {
    return {};
  }
  std::vector<fleet::ReservationId> to_sell;
  to_sell.reserve(it->second.size());
  for (const fleet::ReservationId id : it->second) {
    if (ledger.get(id).active(now)) {
      to_sell.push_back(id);
    }
  }
  return to_sell;
}

}  // namespace rimarket::selling
