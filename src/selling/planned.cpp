#include "selling/planned.hpp"

#include "common/assert.hpp"

namespace rimarket::selling {

PlannedSellingPolicy::PlannedSellingPolicy(std::map<fleet::ReservationId, Hour> plan)
    : plan_(std::move(plan)) {
  for (const auto& [id, when] : plan_) {
    RIMARKET_EXPECTS(id >= 0);
    RIMARKET_EXPECTS(when >= 0);
    by_hour_[when].push_back(id);
  }
}

void PlannedSellingPolicy::decide(Hour now, fleet::ReservationLedger& ledger,
                                  std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  to_sell.clear();
  const auto it = by_hour_.find(now);
  if (it == by_hour_.end()) {
    return;
  }
  for (const fleet::ReservationId id : it->second) {
    if (ledger.get(id).active(now)) {
      to_sell.push_back(id);
    }
  }
}

}  // namespace rimarket::selling
