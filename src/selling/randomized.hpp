// Randomized-spot selling — the paper's stated future-work direction
// ("design a randomized online selling algorithm, which guides users in
// selling their reservations at an arbitrary time spot"), built here as an
// extension so the ablation benches can compare it against the fixed-spot
// family.
//
// Each reservation is independently assigned a decision fraction f drawn
// uniformly from a configured set (default {1/4, 1/2, 3/4}); at age f*T the
// standard break-even rule beta(f) is applied.  Randomizing the spot hedges
// between the early-spot policies (bigger compensation, bigger downside)
// and the late-spot ones (safer, smaller savings).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "pricing/instance_type.hpp"
#include "selling/policy.hpp"

namespace rimarket::selling {

class RandomizedSpotSelling final : public SellPolicy {
 public:
  /// `fractions` must be non-empty, each in (0,1); spots are drawn
  /// uniformly.
  RandomizedSpotSelling(const pricing::InstanceType& type, Fraction selling_discount,
                        std::vector<Fraction> fractions, std::uint64_t seed);

  /// Weighted variant: `weights` (same length, non-negative, positive sum)
  /// give each spot's probability — e.g. the minimax mixture from
  /// theory::optimize_spot_distribution.
  RandomizedSpotSelling(const pricing::InstanceType& type, Fraction selling_discount,
                        std::vector<Fraction> fractions, std::vector<double> weights,
                        std::uint64_t seed);

  /// Convenience: the paper's three spots with equal probability.
  static RandomizedSpotSelling paper_spots(const pricing::InstanceType& type,
                                           Fraction selling_discount, std::uint64_t seed);

  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override { return "randomized-spot"; }

 private:
  struct SpotChoice {
    Hour decision_age = 0;
    Hours break_even_hours{0.0};
  };
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

  std::size_t draw_choice();

  /// Decision parameters for each candidate fraction.
  std::vector<SpotChoice> choices_;
  /// Cumulative probability per choice (uniform when constructed without
  /// weights).
  std::vector<double> cumulative_;
  /// Fraction choice per reservation, assigned on first sight, indexed by
  /// id (ids are dense); kUnassigned until drawn.  Grows only when the
  /// fleet does, keeping steady-state decisions allocation-free.
  std::vector<std::size_t> assigned_;
  common::Rng rng_;
};

}  // namespace rimarket::selling
