#include "selling/randomized.hpp"

#include "common/assert.hpp"
#include "selling/fixed_spot.hpp"

namespace rimarket::selling {

RandomizedSpotSelling::RandomizedSpotSelling(const pricing::InstanceType& type,
                                             Fraction selling_discount,
                                             std::vector<Fraction> fractions, std::uint64_t seed)
    : RandomizedSpotSelling(type, selling_discount, fractions,
                            std::vector<double>(fractions.size(),
                                                1.0 / static_cast<double>(fractions.size())),
                            seed) {}

RandomizedSpotSelling::RandomizedSpotSelling(const pricing::InstanceType& type,
                                             Fraction selling_discount,
                                             std::vector<Fraction> fractions,
                                             std::vector<double> weights, std::uint64_t seed)
    : rng_(seed) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(!fractions.empty());
  RIMARKET_EXPECTS(fractions.size() == weights.size());
  choices_.reserve(fractions.size());
  double weight_sum = 0.0;
  for (const double weight : weights) {
    RIMARKET_EXPECTS(weight >= 0.0);
    weight_sum += weight;
  }
  RIMARKET_EXPECTS(weight_sum > 0.0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const Fraction fraction = fractions[i];
    RIMARKET_EXPECTS(fraction > Fraction{0.0} && fraction < Fraction{1.0});
    choices_.push_back(SpotChoice{decision_age(type.term, fraction),
                                  type.break_even_hours(fraction, selling_discount)});
    cumulative += weights[i] / weight_sum;
    cumulative_.push_back(cumulative);
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

RandomizedSpotSelling RandomizedSpotSelling::paper_spots(const pricing::InstanceType& type,
                                                         Fraction selling_discount,
                                                         std::uint64_t seed) {
  RIMARKET_EXPECTS(type.valid());
  return RandomizedSpotSelling(type, selling_discount, {kSpotT4, kSpotT2, kSpot3T4}, seed);
}

std::size_t RandomizedSpotSelling::draw_choice() {
  RIMARKET_EXPECTS(!cumulative_.empty());
  const double u = rng_.uniform01();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

void RandomizedSpotSelling::decide(Hour now, fleet::ReservationLedger& ledger,
                                   std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  to_sell.clear();
  ledger.for_each_active(now, [this, &ledger, &to_sell, now](fleet::ReservationId id) {
    const auto slot = static_cast<std::size_t>(id);
    if (slot >= assigned_.size()) {
      assigned_.resize(slot + 1, kUnassigned);
    }
    if (assigned_[slot] == kUnassigned) {
      assigned_[slot] = draw_choice();
    }
    const SpotChoice& choice = choices_[assigned_[slot]];
    const fleet::Reservation& reservation = ledger.get(id);
    if (reservation.age(now) == choice.decision_age &&
        Hours{reservation.worked_hours} < choice.break_even_hours) {
      to_sell.push_back(id);
    }
  });
}

}  // namespace rimarket::selling
