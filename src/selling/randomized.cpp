#include "selling/randomized.hpp"

#include "common/assert.hpp"
#include "selling/fixed_spot.hpp"

namespace rimarket::selling {

RandomizedSpotSelling::RandomizedSpotSelling(const pricing::InstanceType& type,
                                             double selling_discount,
                                             std::vector<double> fractions, std::uint64_t seed)
    : RandomizedSpotSelling(type, selling_discount, fractions,
                            std::vector<double>(fractions.size(),
                                                1.0 / static_cast<double>(fractions.size())),
                            seed) {}

RandomizedSpotSelling::RandomizedSpotSelling(const pricing::InstanceType& type,
                                             double selling_discount,
                                             std::vector<double> fractions,
                                             std::vector<double> weights, std::uint64_t seed)
    : rng_(seed) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(!fractions.empty());
  RIMARKET_EXPECTS(fractions.size() == weights.size());
  choices_.reserve(fractions.size());
  double weight_sum = 0.0;
  for (const double weight : weights) {
    RIMARKET_EXPECTS(weight >= 0.0);
    weight_sum += weight;
  }
  RIMARKET_EXPECTS(weight_sum > 0.0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double fraction = fractions[i];
    RIMARKET_EXPECTS(fraction > 0.0 && fraction < 1.0);
    choices_.push_back(SpotChoice{decision_age(type.term, fraction),
                                  type.break_even_hours(fraction, selling_discount)});
    cumulative += weights[i] / weight_sum;
    cumulative_.push_back(cumulative);
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

RandomizedSpotSelling RandomizedSpotSelling::paper_spots(const pricing::InstanceType& type,
                                                         double selling_discount,
                                                         std::uint64_t seed) {
  RIMARKET_EXPECTS(type.valid());
  return RandomizedSpotSelling(type, selling_discount, {kSpotT4, kSpotT2, kSpot3T4}, seed);
}

std::size_t RandomizedSpotSelling::draw_choice() {
  RIMARKET_EXPECTS(!cumulative_.empty());
  const double u = rng_.uniform01();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

std::vector<fleet::ReservationId> RandomizedSpotSelling::decide(
    Hour now, fleet::ReservationLedger& ledger) {
  RIMARKET_EXPECTS(now >= 0);
  std::vector<fleet::ReservationId> to_sell;
  for (const fleet::ReservationId id : ledger.active_ids(now)) {
    const auto it = assigned_.find(id);
    const std::size_t choice_index =
        it != assigned_.end() ? it->second : assigned_.emplace(id, draw_choice()).first->second;
    const SpotChoice& choice = choices_[choice_index];
    const fleet::Reservation& reservation = ledger.get(id);
    if (reservation.age(now) == choice.decision_age &&
        static_cast<double>(reservation.worked_hours) < choice.break_even_hours) {
      to_sell.push_back(id);
    }
  }
  return to_sell;
}

}  // namespace rimarket::selling
