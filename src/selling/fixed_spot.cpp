#include "selling/fixed_spot.hpp"

#include "common/assert.hpp"
#include "common/float_compare.hpp"
#include "common/strings.hpp"

namespace rimarket::selling {

FixedSpotSelling::FixedSpotSelling(const pricing::InstanceType& type, Fraction fraction,
                                   Fraction selling_discount)
    : fraction_(fraction),
      break_even_hours_(type.break_even_hours(fraction, selling_discount)),
      decision_age_(decision_age(type.term, fraction)) {
  RIMARKET_EXPECTS(type.valid());
}

bool FixedSpotSelling::should_sell(Hour worked_hours) const {
  RIMARKET_EXPECTS(worked_hours >= 0);
  return Hours{worked_hours} < break_even_hours_;
}

void FixedSpotSelling::decide(Hour now, fleet::ReservationLedger& ledger,
                              std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  to_sell.clear();
  ledger.for_each_due(now, decision_age_, [this, &ledger, &to_sell](fleet::ReservationId id) {
    if (should_sell(ledger.get(id).worked_hours)) {
      to_sell.push_back(id);
    }
  });
}

std::string FixedSpotSelling::name() const {
  if (common::approx_equal(fraction_.value(), kSpot3T4.value())) {
    return "A_{3T/4}";
  }
  if (common::approx_equal(fraction_.value(), kSpotT2.value())) {
    return "A_{T/2}";
  }
  if (common::approx_equal(fraction_.value(), kSpotT4.value())) {
    return "A_{T/4}";
  }
  return common::format("A_{%.3fT}", fraction_.value());
}

FixedSpotSelling make_a_3t4(const pricing::InstanceType& type, Fraction selling_discount) {
  return FixedSpotSelling(type, kSpot3T4, selling_discount);
}

FixedSpotSelling make_a_t2(const pricing::InstanceType& type, Fraction selling_discount) {
  return FixedSpotSelling(type, kSpotT2, selling_discount);
}

FixedSpotSelling make_a_t4(const pricing::InstanceType& type, Fraction selling_discount) {
  return FixedSpotSelling(type, kSpotT4, selling_discount);
}

}  // namespace rimarket::selling
