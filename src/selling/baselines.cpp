#include "selling/baselines.hpp"

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::selling {

void KeepReservedPolicy::decide(Hour now, fleet::ReservationLedger& ledger,
                                std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  (void)ledger;
  to_sell.clear();
}

AllSellingPolicy::AllSellingPolicy(const pricing::InstanceType& type, Fraction fraction)
    : fraction_(fraction), decision_age_(decision_age(type.term, fraction)) {
  RIMARKET_EXPECTS(type.valid());
}

void AllSellingPolicy::decide(Hour now, fleet::ReservationLedger& ledger,
                              std::vector<fleet::ReservationId>& to_sell) {
  RIMARKET_EXPECTS(now >= 0);
  ledger.due_at_age(now, decision_age_, to_sell);
}

std::string AllSellingPolicy::name() const {
  return common::format("all-selling@%.2fT", fraction_.value());
}

}  // namespace rimarket::selling
