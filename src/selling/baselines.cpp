#include "selling/baselines.hpp"

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::selling {

std::vector<fleet::ReservationId> KeepReservedPolicy::decide(Hour now,
                                                             fleet::ReservationLedger& ledger) {
  RIMARKET_EXPECTS(now >= 0);
  (void)ledger;
  return {};
}

AllSellingPolicy::AllSellingPolicy(const pricing::InstanceType& type, double fraction)
    : fraction_(fraction), decision_age_(decision_age(type.term, fraction)) {
  RIMARKET_EXPECTS(type.valid());
}

std::vector<fleet::ReservationId> AllSellingPolicy::decide(Hour now,
                                                           fleet::ReservationLedger& ledger) {
  RIMARKET_EXPECTS(now >= 0);
  return ledger.due_at_age(now, decision_age_);
}

std::string AllSellingPolicy::name() const {
  return common::format("all-selling@%.2fT", fraction_);
}

}  // namespace rimarket::selling
