// The paper's online selling algorithms A_{3T/4}, A_{T/2}, A_{T/4}.
#pragma once

#include "pricing/instance_type.hpp"
#include "selling/policy.hpp"

namespace rimarket::selling {

/// Decision fractions used by the paper.
inline constexpr Fraction kSpot3T4{0.75};
inline constexpr Fraction kSpotT2{0.50};
inline constexpr Fraction kSpotT4{0.25};

/// A_{fT}: when a reservation's age reaches f*T, sell it iff its working
/// time so far is below beta(f) = f*a*R / (p*(1-alpha)) (paper Eq. (9) and
/// Section V).  Guarantees the competitive ratios of Propositions 1-3.
class FixedSpotSelling final : public SellPolicy {
 public:
  /// `fraction` is f in (0,1); `selling_discount` is the user-chosen a.
  FixedSpotSelling(const pricing::InstanceType& type, Fraction fraction,
                   Fraction selling_discount);

  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override;

  /// Break-even working time beta(f) in hours for this configuration.
  Hours break_even_hours() const { return break_even_hours_; }
  /// Age (hours) at which the decision is taken.
  Hour decision_age_hours() const { return decision_age_; }
  Fraction fraction() const { return fraction_; }

  /// The per-instance rule, exposed for advisors and tests: sell iff the
  /// instance worked fewer than beta(f) hours in its first f*T hours.
  bool should_sell(Hour worked_hours) const;

 private:
  Fraction fraction_;
  Hours break_even_hours_;
  Hour decision_age_;
};

/// Paper-named constructors.
FixedSpotSelling make_a_3t4(const pricing::InstanceType& type, Fraction selling_discount);
FixedSpotSelling make_a_t2(const pricing::InstanceType& type, Fraction selling_discount);
FixedSpotSelling make_a_t4(const pricing::InstanceType& type, Fraction selling_discount);

}  // namespace rimarket::selling
