// Arbitrary-spot online selling — the paper's future-work direction,
// deterministic form.
//
// The fixed-spot family checks utilization exactly once.  This policy
// evaluates the same break-even economics *continuously*: at every hour of
// a reservation's life within a decision window [min_fraction*T,
// max_fraction*T], it compares the accumulated working time w(tau) against
// the age-scaled break-even point
//
//     beta(tau/T) = (tau/T) * a * R / (p * (1 - alpha))
//
// and sells at the first hour where the shortfall has persisted for
// `confirmation_hours` consecutive hours.  Rationale:
//   * w(tau) >= beta(tau/T) means utilization so far already justifies the
//     contract relative to reselling the remainder — keep.
//   * the confirmation window keeps one quiet weekend from dumping a
//     well-used reservation (an hourly version of the fixed spot's
//     "average over f*T hours" smoothing);
//   * the window start plays the role the warm-up plays in the fixed-spot
//     proofs: before min_fraction*T there is too little evidence, and
//     beta(~0) ~ 0 would otherwise trigger an immediate sale at birth.
//
// With min_fraction == max_fraction == f and confirmation_hours == 0 the
// policy degenerates to exactly A_{fT} (tested), so it is a strict
// generalization of the paper's algorithms.
#pragma once

#include "pricing/instance_type.hpp"
#include "selling/policy.hpp"

namespace rimarket::selling {

class ContinuousSelling final : public SellPolicy {
 public:
  struct Options {
    /// Start of the decision window as a fraction of the term.
    Fraction min_fraction{0.25};
    /// End of the decision window (inclusive) as a fraction of the term.
    Fraction max_fraction{0.75};
    /// Consecutive below-break-even hours required before selling.
    Hour confirmation_hours = 24;
  };

  /// Constructs with default options (window [T/4, 3T/4], 24h confirmation).
  ContinuousSelling(const pricing::InstanceType& type, Fraction selling_discount);
  ContinuousSelling(const pricing::InstanceType& type, Fraction selling_discount,
                    Options options);

  void decide(Hour now, fleet::ReservationLedger& ledger,
              std::vector<fleet::ReservationId>& to_sell) override;
  std::string name() const override { return "continuous-spot"; }

  /// Age-scaled break-even beta(age/T) in hours.
  Hours break_even_at_age(Hour age) const;

  const Options& options() const { return options_; }

 private:
  pricing::InstanceType type_;
  Fraction selling_discount_;
  Options options_;
  Hour window_start_;
  Hour window_end_;
  /// Consecutive below-break-even hours observed, indexed by reservation
  /// id (ids are dense); grows only when the fleet does, so steady-state
  /// decisions stay allocation-free.
  std::vector<Hour> shortfall_streak_;
};

}  // namespace rimarket::selling
