// Online instance-selling policies — the paper's core contribution.
//
// A selling policy watches the reservation ledger and decides, hour by
// hour, which active reservations to sell on the marketplace.  The paper's
// A_{3T/4}, A_{T/2} and A_{T/4} all follow the same shape (Algorithms 1-2):
// when a reservation reaches a fixed fraction f of its term, compare its
// accumulated working time against the break-even point
//
//     beta(f) = f * a * R / (p * (1 - alpha))
//
// and sell iff it worked less.  `FixedSpotSelling` implements that family
// for any f; baselines and extensions live in sibling headers.
//
// Note on fidelity: the paper's pseudocode reconstructs each instance's
// working time from aggregate (d_t, n_t, r_t) curves, back-patching the
// history arrays after each sale.  Because the ledger assigns demand
// least-remaining-period-first and tracks worked hours *per reservation*,
// the statistic is available directly and the back-patching step is
// unnecessary — the computed working time is identical.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "fleet/ledger.hpp"

namespace rimarket::selling {

/// Hour-by-hour selling decision interface.  Policies are stateful and
/// single-run: construct a fresh instance per simulation.
class SellPolicy {
 public:
  virtual ~SellPolicy() = default;

  /// Called once per hour with the hour's demand, before decide().  The
  /// paper's algorithms reconstruct everything they need from the ledger's
  /// worked-hours counters and ignore this; prediction-based baselines
  /// (forecast::ForecastSelling) use it to learn the demand process.
  virtual void observe(Hour now, Count demand) {
    (void)now;
    (void)demand;
  }

  /// Called once per hour, before demand assignment (a sale at hour t
  /// removes the instance from the fleet at the decision spot, so hour t's
  /// r_t excludes it — Eq. (1) semantics, see DESIGN.md "Sale timing").
  /// Clears `to_sell` and fills it with the ids to sell right now; each
  /// must be active in `ledger`.  The caller owns the buffer (reused
  /// across hours so steady-state decisions allocate nothing) and performs
  /// the sale and income booking itself.
  /// Precondition (enforced by every implementation): `now >= 0`.
  virtual void decide(Hour now, fleet::ReservationLedger& ledger,
                      std::vector<fleet::ReservationId>& to_sell) = 0;

  /// Short name for reports ("A_{3T/4}", "keep-reserved", ...).
  virtual std::string name() const = 0;
};

/// One-shot convenience wrapper (tests, cold paths): returns the decision
/// in a fresh vector instead of a caller-provided buffer.
std::vector<fleet::ReservationId> decide_once(SellPolicy& policy, Hour now,
                                              fleet::ReservationLedger& ledger);

/// Rounds a decision fraction to the discrete decision age in hours.
/// The paper's spots 3T/4, T/2, T/4 divide the 8760-hour year exactly.
Hour decision_age(Hour term, Fraction fraction);

}  // namespace rimarket::selling
