// Online instance-selling policies — the paper's core contribution.
//
// A selling policy watches the reservation ledger and decides, hour by
// hour, which active reservations to sell on the marketplace.  The paper's
// A_{3T/4}, A_{T/2} and A_{T/4} all follow the same shape (Algorithms 1-2):
// when a reservation reaches a fixed fraction f of its term, compare its
// accumulated working time against the break-even point
//
//     beta(f) = f * a * R / (p * (1 - alpha))
//
// and sell iff it worked less.  `FixedSpotSelling` implements that family
// for any f; baselines and extensions live in sibling headers.
//
// Note on fidelity: the paper's pseudocode reconstructs each instance's
// working time from aggregate (d_t, n_t, r_t) curves, back-patching the
// history arrays after each sale.  Because the ledger assigns demand
// least-remaining-period-first and tracks worked hours *per reservation*,
// the statistic is available directly and the back-patching step is
// unnecessary — the computed working time is identical.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "fleet/ledger.hpp"

namespace rimarket::selling {

/// Hour-by-hour selling decision interface.  Policies are stateful and
/// single-run: construct a fresh instance per simulation.
class SellPolicy {
 public:
  virtual ~SellPolicy() = default;

  /// Called once per hour with the hour's demand, before decide().  The
  /// paper's algorithms reconstruct everything they need from the ledger's
  /// worked-hours counters and ignore this; prediction-based baselines
  /// (forecast::ForecastSelling) use it to learn the demand process.
  virtual void observe(Hour now, Count demand) {
    (void)now;
    (void)demand;
  }

  /// Called once per hour, after demand assignment.  Returns the ids of
  /// reservations to sell right now; each must be active in `ledger`.
  /// The caller performs the sale and books the income.
  /// Precondition (enforced by every implementation): `now >= 0`.
  virtual std::vector<fleet::ReservationId> decide(Hour now, fleet::ReservationLedger& ledger) = 0;

  /// Short name for reports ("A_{3T/4}", "keep-reserved", ...).
  virtual std::string name() const = 0;
};

/// Rounds a decision fraction to the discrete decision age in hours.
/// The paper's spots 3T/4, T/2, T/4 divide the 8760-hour year exactly.
Hour decision_age(Hour term, double fraction);

}  // namespace rimarket::selling
