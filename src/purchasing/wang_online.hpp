// Deterministic online reservation in the style of Wang et al.,
// "To Reserve or Not to Reserve: Optimal Online Multi-Instance Acquisition
// in IaaS Clouds" (ICAC 2013) — the paper's third and fourth imitators.
//
// The ICAC'13 algorithm generalizes the classic Bahncard/ski-rental rule to
// multiple instances by tracking, for each demand *level* l (the l-th
// concurrent instance), the on-demand spend accumulated at that level over
// a sliding window of one reservation term.  A reservation saves
// (1-alpha)*p per worked hour at the cost of the upfront R, so a level pays
// for a reservation once it has been served on-demand for
//
//     h* = R / (p * (1 - alpha))
//
// hours within one term.  The deterministic rule reserves for a level the
// moment its windowed on-demand usage reaches gamma * h*; gamma = 1 gives
// the ICAC'13 deterministic algorithm, gamma < 1 gives the paper's "variant
// of the online purchasing algorithm [whose] break-even point is smaller"
// (a more reservation-eager user).
#pragma once

#include <deque>
#include <vector>

#include "purchasing/policy.hpp"

namespace rimarket::purchasing {

class WangOnlinePolicy final : public PurchasePolicy {
 public:
  /// gamma in (0, 1] scales the break-even point h*.
  WangOnlinePolicy(const pricing::InstanceType& type, double gamma);

  Count decide(Hour now, Count demand, Count active_reserved) override;
  std::string name() const override;

  /// The effective break-even hours gamma * h* used by this instance.
  Hour break_even_hours() const { return break_even_hours_; }

 private:
  /// On-demand usage timestamps per demand level, trimmed to the window.
  std::vector<std::deque<Hour>> level_usage_;
  Hour window_;
  Hour break_even_hours_;
  double gamma_;
};

}  // namespace rimarket::purchasing
