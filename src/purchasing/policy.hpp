// Online instance-purchasing policies.
//
// The paper's evaluation needs per-hour reservation decisions (the n_t
// stream) to feed the selling algorithms, and "imitates users' behaviors to
// reserve instances" with four online purchasing algorithms (Section VI-A):
// All-reserved, random reservation, the deterministic online reservation
// algorithm of Wang et al. (ICAC'13), and a variant of it with a smaller
// break-even point.  Each policy here is stateful and single-run: construct
// a fresh instance per simulation.
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::purchasing {

/// Hour-by-hour reservation decision interface.
class PurchasePolicy {
 public:
  virtual ~PurchasePolicy() = default;

  /// Called once per hour, before demand is assigned.  `active_reserved` is
  /// the fleet able to serve this hour; the returned count of new
  /// reservations starts serving immediately (paper: n_t raises r_t from t).
  /// Hours arrive in strictly increasing order.
  virtual Count decide(Hour now, Count demand, Count active_reserved) = 0;

  /// Short name for reports ("all-reserved", "wang-online", ...).
  virtual std::string name() const = 0;
};

/// The four imitators from the paper plus an on-demand-only control.
enum class PurchaserKind {
  kAllReserved,
  kAllOnDemand,
  kRandomReservation,
  kWangOnline,
  kWangVariant,
};

/// All purchaser kinds used by the paper's evaluation, in paper order.
inline constexpr PurchaserKind kPaperPurchasers[] = {
    PurchaserKind::kAllReserved,
    PurchaserKind::kRandomReservation,
    PurchaserKind::kWangOnline,
    PurchaserKind::kWangVariant,
};

/// Factory.  `seed` feeds stochastic policies (random reservation); the
/// instance type provides the break-even economics for the Wang policies.
std::unique_ptr<PurchasePolicy> make_purchaser(PurchaserKind kind,
                                               const pricing::InstanceType& type,
                                               std::uint64_t seed);

std::string purchaser_name(PurchaserKind kind);

}  // namespace rimarket::purchasing
