// All-reserved and all-on-demand purchasing policies.
#pragma once

#include "purchasing/policy.hpp"

namespace rimarket::purchasing {

/// Reserves whenever the active fleet cannot cover demand, so every unit of
/// demand is served by a reservation (the paper's first imitator, modelling
/// users with stable workloads who subscribe for everything).
class AllReservedPolicy final : public PurchasePolicy {
 public:
  Count decide(Hour now, Count demand, Count active_reserved) override;
  std::string name() const override { return "all-reserved"; }
};

/// Never reserves; everything is served on-demand.  Not used by the paper's
/// selling evaluation (there is nothing to sell) but a useful control for
/// purchasing-cost comparisons.
class AllOnDemandPolicy final : public PurchasePolicy {
 public:
  Count decide(Hour now, Count demand, Count active_reserved) override;
  std::string name() const override { return "all-on-demand"; }
};

}  // namespace rimarket::purchasing
