// Header-completeness translation unit for the purchasing interface.
// (The factory implementation lives in wang_online.cpp, where every
// concrete policy is a complete type.)
#include "purchasing/policy.hpp"

namespace rimarket::purchasing {

// PurchasePolicy is an abstract interface; nothing to define here.

}  // namespace rimarket::purchasing
