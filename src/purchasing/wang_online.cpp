#include "purchasing/wang_online.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/float_compare.hpp"
#include "common/strings.hpp"
#include "purchasing/all_reserved.hpp"
#include "purchasing/random_reservation.hpp"

namespace rimarket::purchasing {

WangOnlinePolicy::WangOnlinePolicy(const pricing::InstanceType& type, double gamma)
    : window_(type.term), gamma_(gamma) {
  RIMARKET_EXPECTS(gamma > 0.0 && gamma <= 1.0);
  RIMARKET_EXPECTS(type.valid());
  const double h_star =
      type.upfront.value() / (type.on_demand_hourly.value() * (1.0 - type.alpha().value()));
  break_even_hours_ = std::max<Hour>(1, static_cast<Hour>(std::ceil(gamma * h_star)));
}

Count WangOnlinePolicy::decide(Hour now, Count demand, Count active_reserved) {
  RIMARKET_EXPECTS(now >= 0);
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  const Count uncovered = std::max<Count>(0, demand - active_reserved);
  if (uncovered == 0) {
    return 0;
  }
  if (level_usage_.size() < static_cast<std::size_t>(uncovered)) {
    level_usage_.resize(static_cast<std::size_t>(uncovered));
  }
  Count to_reserve = 0;
  // Level k (0-based) is the k-th concurrent instance above the reserved
  // fleet.  Record this hour's on-demand usage, trim the sliding window and
  // reserve once the level's windowed usage hits the break-even.
  for (Count k = 0; k < uncovered; ++k) {
    auto& usage = level_usage_[static_cast<std::size_t>(k)];
    usage.push_back(now);
    while (!usage.empty() && usage.front() <= now - window_) {
      usage.pop_front();
    }
    if (static_cast<Hour>(usage.size()) >= break_even_hours_) {
      ++to_reserve;
      usage.clear();  // this level is now covered by the new reservation
    }
  }
  return to_reserve;
}

std::string WangOnlinePolicy::name() const {
  return common::approx_equal(gamma_, 1.0) ? "wang-online"
                                           : common::format("wang-variant(%.2f)", gamma_);
}

// Factory lives here so every policy type is a complete type at this point.
std::unique_ptr<PurchasePolicy> make_purchaser(PurchaserKind kind,
                                               const pricing::InstanceType& type,
                                               std::uint64_t seed) {
  switch (kind) {
    case PurchaserKind::kAllReserved:
      return std::make_unique<AllReservedPolicy>();
    case PurchaserKind::kAllOnDemand:
      return std::make_unique<AllOnDemandPolicy>();
    case PurchaserKind::kRandomReservation:
      return std::make_unique<RandomReservationPolicy>(seed);
    case PurchaserKind::kWangOnline:
      return std::make_unique<WangOnlinePolicy>(type, 1.0);
    case PurchaserKind::kWangVariant:
      return std::make_unique<WangOnlinePolicy>(type, 0.5);
  }
  RIMARKET_UNREACHABLE("purchaser kind");
}

std::string purchaser_name(PurchaserKind kind) {
  switch (kind) {
    case PurchaserKind::kAllReserved: return "all-reserved";
    case PurchaserKind::kAllOnDemand: return "all-on-demand";
    case PurchaserKind::kRandomReservation: return "random-reservation";
    case PurchaserKind::kWangOnline: return "wang-online";
    case PurchaserKind::kWangVariant: return "wang-variant";
  }
  RIMARKET_UNREACHABLE("purchaser kind");
}

}  // namespace rimarket::purchasing
