// Random-reservation purchasing (the paper's second imitator).
#pragma once

#include "common/rng.hpp"
#include "purchasing/policy.hpp"

namespace rimarket::purchasing {

/// "Takes a random number that is not greater than the demands' quantity as
/// the targeted number of active reserved instances at each time" (paper
/// Section VI-A): each hour draws target ~ U{0..d_t} and reserves up to it.
class RandomReservationPolicy final : public PurchasePolicy {
 public:
  explicit RandomReservationPolicy(std::uint64_t seed);

  Count decide(Hour now, Count demand, Count active_reserved) override;
  std::string name() const override { return "random-reservation"; }

 private:
  common::Rng rng_;
};

}  // namespace rimarket::purchasing
