#include "purchasing/all_reserved.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::purchasing {

Count AllReservedPolicy::decide(Hour now, Count demand, Count active_reserved) {
  (void)now;
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  return std::max<Count>(0, demand - active_reserved);
}

Count AllOnDemandPolicy::decide(Hour now, Count demand, Count active_reserved) {
  (void)now;
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  return 0;
}

}  // namespace rimarket::purchasing
