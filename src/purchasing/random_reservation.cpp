#include "purchasing/random_reservation.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::purchasing {

RandomReservationPolicy::RandomReservationPolicy(std::uint64_t seed) : rng_(seed) {}

Count RandomReservationPolicy::decide(Hour now, Count demand, Count active_reserved) {
  (void)now;
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  if (demand == 0) {
    return 0;
  }
  const Count target = rng_.uniform_int(0, demand);
  return std::max<Count>(0, target - active_reserved);
}

}  // namespace rimarket::purchasing
