// Marketplace simulator: buyers, matching and seller proceeds.
//
// Realizes the Amazon RI Marketplace rules of Section III-B around the
// order book: buyers arrive stochastically, buy lowest-ask-first, Amazon
// keeps a 12 % service fee, and the seller receives the rest (the paper's
// t2.nano example: a $7.2 sale nets the seller $7.2 * (1 - 0.12) = $6.336).
//
// The online selling algorithms assume a listing sells immediately at the
// chosen discount (that is what Eq. (1)'s income term models); this
// simulator measures how realistic that is for a given discount and buyer
// flow, feeding the discount-choice ablation.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "market/order_book.hpp"

namespace rimarket::market {

struct MarketplaceConfig {
  /// Amazon's cut of each sale — a fraction of the price, not a dollar
  /// amount (the t2.nano example: 0.12 of $7.2, never $0.12 flat).
  Fraction service_fee{0.12};
  /// Mean buyer arrivals per hour (Poisson).
  double buyer_rate_per_hour = 0.5;
  /// Mean instances requested per buyer (shifted-geometric-ish; >= 1).
  double mean_buyer_quantity = 2.0;
  /// Buyers pay at most this fraction of the pro-rated new-contract
  /// upfront; listings priced above it stay in the book.
  Fraction buyer_price_tolerance{1.0};
};

/// One completed sale from the seller's point of view.
struct SaleRecord {
  Listing listing;
  Hour sold_at = 0;
  Money buyer_paid{0.0};
  /// Dollar amount Amazon kept: buyer_paid * config.service_fee.
  Money service_fee{0.0};
  Money seller_proceeds{0.0};
};

/// Discrete-hour marketplace for a single instance type.
class MarketplaceSimulator {
 public:
  MarketplaceSimulator(pricing::InstanceType type, MarketplaceConfig config,
                       std::uint64_t seed);

  /// Lists a reservation with `elapsed` hours used at discount a; returns
  /// the listing id.
  ListingId list(SellerId seller, Hour elapsed, Fraction selling_discount);

  /// Advances one hour: draws buyer arrivals and matches them.  Returns
  /// the sales executed this hour.
  std::vector<SaleRecord> step();

  /// Runs `hours` steps and concatenates the sales.
  std::vector<SaleRecord> run(Hour hours);

  const OrderBook& book() const { return book_; }
  Hour now() const { return now_; }
  const MarketplaceConfig& config() const { return config_; }

  /// Seller proceeds for a sale at `price` under this config.
  Money proceeds(Money price) const;

 private:
  pricing::InstanceType type_;
  MarketplaceConfig config_;
  common::Rng rng_;
  OrderBook book_;
  Hour now_ = 0;
  ListingId next_listing_id_ = 1;
};

}  // namespace rimarket::market
