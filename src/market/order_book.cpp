#include "market/order_book.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::market {

bool OrderBook::add(const Listing& listing) {
  if (!listing.valid()) {
    return false;
  }
  const bool duplicate = std::any_of(queue_.begin(), queue_.end(), [&](const Listing& resting) {
    return resting.id == listing.id;
  });
  if (duplicate) {
    return false;
  }
  queue_.insert(listing);
  return true;
}

bool OrderBook::cancel(ListingId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<Fill> OrderBook::match(Count quantity, Money max_price) {
  RIMARKET_EXPECTS(quantity >= 0);
  std::vector<Fill> fills;
  while (quantity > 0 && !queue_.empty()) {
    const auto best = queue_.begin();
    if (best->ask > max_price) {
      break;
    }
    fills.push_back(Fill{*best, best->ask});
    queue_.erase(best);
    --quantity;
  }
  return fills;
}

std::optional<Money> OrderBook::best_ask() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.begin()->ask;
}

std::vector<Listing> OrderBook::snapshot() const {
  return {queue_.begin(), queue_.end()};
}

}  // namespace rimarket::market
