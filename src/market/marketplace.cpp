#include "market/marketplace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::market {

MarketplaceSimulator::MarketplaceSimulator(pricing::InstanceType type, MarketplaceConfig config,
                                           std::uint64_t seed)
    : type_(std::move(type)), config_(config), rng_(seed) {
  RIMARKET_EXPECTS(type_.valid());
  RIMARKET_EXPECTS(config.service_fee < Fraction{1.0});
  RIMARKET_EXPECTS(config.buyer_rate_per_hour >= 0.0);
  RIMARKET_EXPECTS(config.mean_buyer_quantity >= 1.0);
  RIMARKET_EXPECTS(config.buyer_price_tolerance > Fraction{0.0});
}

ListingId MarketplaceSimulator::list(SellerId seller, Hour elapsed, Fraction selling_discount) {
  const Listing listing =
      make_listing(next_listing_id_++, seller, type_, elapsed, selling_discount, now_);
  const bool accepted = book_.add(listing);
  RIMARKET_CHECK_MSG(accepted, "freshly built listings are always valid and unique");
  return listing.id;
}

Money MarketplaceSimulator::proceeds(Money price) const {
  return price * config_.service_fee.complement();
}

std::vector<SaleRecord> MarketplaceSimulator::step() {
  std::vector<SaleRecord> sales;
  const Count buyers = rng_.poisson(config_.buyer_rate_per_hour);
  for (Count b = 0; b < buyers; ++b) {
    // Quantity: 1 + Poisson(mean-1) keeps the mean while guaranteeing >= 1.
    const Count quantity = 1 + rng_.poisson(config_.mean_buyer_quantity - 1.0);
    // Budget per instance: a buyer never pays more than the pro-rated price
    // of a brand-new contract, scaled by the tolerance knob.
    const Money max_price = config_.buyer_price_tolerance * type_.upfront;
    for (const Fill& fill : book_.match(quantity, max_price)) {
      SaleRecord record;
      record.listing = fill.listing;
      record.sold_at = now_;
      record.buyer_paid = fill.price;
      record.service_fee = fill.price * config_.service_fee;  // fraction -> dollars
      record.seller_proceeds = proceeds(fill.price);
      sales.push_back(record);
    }
  }
  ++now_;
  return sales;
}

std::vector<SaleRecord> MarketplaceSimulator::run(Hour hours) {
  RIMARKET_EXPECTS(hours >= 0);
  std::vector<SaleRecord> sales;
  for (Hour h = 0; h < hours; ++h) {
    std::vector<SaleRecord> hour_sales = step();
    sales.insert(sales.end(), hour_sales.begin(), hour_sales.end());
  }
  return sales;
}

}  // namespace rimarket::market
