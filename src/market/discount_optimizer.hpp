// Choosing the selling discount `a`.
//
// The paper treats `a` as a user-given constant.  With the fill-latency
// response model the seller faces a real trade-off — a deeper discount
// sells faster (the book is price-priority) and loses less pro-rated value
// while waiting, but asks less.  This module scans a discount grid for the
// income-maximizing choice and provides the sim::IncomeModel adapter that
// realizes marketplace income through the response model instead of the
// paper's instant-sale assumption.
#pragma once

#include <functional>

#include "market/response.hpp"

namespace rimarket::market {

/// Result of a discount scan.
struct DiscountChoice {
  Fraction discount{0.0};
  Money expected_income{0.0};
};

/// Scans `steps` evenly spaced discounts in [min_discount, max_discount]
/// and returns the one maximizing the model's expected net income for a
/// reservation with `elapsed` hours used.
DiscountChoice optimal_discount(const DiscountResponseModel& model, Hour elapsed,
                                Fraction service_fee, Fraction min_discount = Fraction{0.05},
                                Fraction max_discount = Fraction{1.0}, int steps = 20);

/// Adapts a response model into a sim::IncomeModel-compatible callable:
/// income(type, age, discount) = model.expected_income(age, discount, 0).
/// Returns *gross* (fee-exclusive) income — sim::SimulationConfig applies
/// its service fee uniformly on top of any income model, so baking the fee
/// in here would double-charge it.  The returned callable owns a copy of
/// the model.
std::function<Money(const pricing::InstanceType&, Hour, Fraction)> make_income_model(
    DiscountResponseModel model);

}  // namespace rimarket::market
