#include "market/discount_optimizer.hpp"

#include "common/assert.hpp"

namespace rimarket::market {

DiscountChoice optimal_discount(const DiscountResponseModel& model, Hour elapsed,
                                Fraction service_fee, Fraction min_discount,
                                Fraction max_discount, int steps) {
  RIMARKET_EXPECTS(min_discount > Fraction{0.0} && min_discount <= max_discount);
  RIMARKET_EXPECTS(steps >= 2);
  DiscountChoice best;
  for (int i = 0; i < steps; ++i) {
    const Fraction discount{min_discount.value() +
                            (max_discount.value() - min_discount.value()) *
                                static_cast<double>(i) / static_cast<double>(steps - 1)};
    const Money income = model.expected_income(elapsed, discount, service_fee);
    if (income > best.expected_income) {
      best.expected_income = income;
      best.discount = discount;
    }
  }
  return best;
}

std::function<Money(const pricing::InstanceType&, Hour, Fraction)> make_income_model(
    DiscountResponseModel model) {
  return [model = std::move(model)](const pricing::InstanceType& /*type*/, Hour age,
                                    Fraction discount) {
    // Gross: the simulator applies SimulationConfig::service_fee uniformly.
    return model.expected_income(age, discount, /*service_fee=*/Fraction{0.0});
  };
}

}  // namespace rimarket::market
