#include "market/discount_optimizer.hpp"

#include "common/assert.hpp"

namespace rimarket::market {

DiscountChoice optimal_discount(const DiscountResponseModel& model, Hour elapsed,
                                double service_fee, double min_discount, double max_discount,
                                int steps) {
  RIMARKET_EXPECTS(min_discount > 0.0 && min_discount <= max_discount);
  RIMARKET_EXPECTS(max_discount <= 1.0);
  RIMARKET_EXPECTS(steps >= 2);
  DiscountChoice best;
  for (int i = 0; i < steps; ++i) {
    const double discount =
        min_discount + (max_discount - min_discount) * static_cast<double>(i) /
                           static_cast<double>(steps - 1);
    const Dollars income = model.expected_income(elapsed, discount, service_fee);
    if (income > best.expected_income) {
      best.expected_income = income;
      best.discount = discount;
    }
  }
  return best;
}

std::function<Dollars(const pricing::InstanceType&, Hour, double)> make_income_model(
    DiscountResponseModel model) {
  return [model = std::move(model)](const pricing::InstanceType& /*type*/, Hour age,
                                    double discount) {
    // Gross: the simulator applies SimulationConfig::service_fee uniformly.
    return model.expected_income(age, discount, /*service_fee=*/0.0);
  };
}

}  // namespace rimarket::market
