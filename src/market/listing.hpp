// Marketplace listings (paper Section III-B).
//
// A seller lists the remaining period of a reserved instance at an asking
// upfront fee.  Amazon caps the ask at the pro-rated original upfront
// (remaining fraction * R) — the paper's t2.nano example: half a cycle left
// means the ask is at most $9 of the original $18 — and sellers typically
// discount below the cap to sell faster.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::market {

using ListingId = std::int64_t;
using SellerId = std::int64_t;

struct Listing {
  ListingId id = 0;
  SellerId seller = 0;
  /// Remaining reservation period being sold, in hours.
  Hour remaining_hours = 0;
  /// Asking upfront fee (dollars).
  Money ask{0.0};
  /// Hour the listing entered the book.
  Hour listed_at = 0;

  bool valid() const { return remaining_hours > 0 && ask >= Money{0.0}; }
};

/// Builds a listing for a reservation with `elapsed` hours used, asking the
/// pro-rated upfront discounted by `selling_discount` (the paper's a).
Listing make_listing(ListingId id, SellerId seller, const pricing::InstanceType& type,
                     Hour elapsed, Fraction selling_discount, Hour now);

/// Amazon's cap: ask must not exceed the pro-rated original upfront.
bool respects_price_cap(const Listing& listing, const pricing::InstanceType& type);

}  // namespace rimarket::market
