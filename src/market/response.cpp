#include "market/response.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rimarket::market {

DiscountResponseModel::DiscountResponseModel(pricing::InstanceType type,
                                             ResponseModelConfig config)
    : type_(std::move(type)), config_(config) {
  RIMARKET_EXPECTS(type_.valid());
  RIMARKET_EXPECTS(config.buyer_rate_per_hour > 0.0);
  RIMARKET_EXPECTS(config.mean_buyer_quantity >= 1.0);
  RIMARKET_EXPECTS(config.depth_density >= 0.0);
}

double DiscountResponseModel::expected_fill_hours(double selling_discount) const {
  RIMARKET_EXPECTS(selling_discount > 0.0 && selling_discount <= 1.0);
  // Listings ahead of ours: those priced below our ask fraction.  Our ask
  // fraction of the cap is exactly the discount a (ask = a * cap).
  const double queue_ahead = config_.depth_density * selling_discount;
  const double drain_rate = config_.buyer_rate_per_hour * config_.mean_buyer_quantity;
  // One extra unit for our own listing.
  return (queue_ahead + 1.0) / drain_rate;
}

double DiscountResponseModel::fill_probability(double selling_discount, Hour hours) const {
  RIMARKET_EXPECTS(hours >= 0);
  const double mean = expected_fill_hours(selling_discount);
  return 1.0 - std::exp(-static_cast<double>(hours) / mean);
}

Dollars DiscountResponseModel::expected_income(Hour elapsed, double selling_discount,
                                               double service_fee) const {
  RIMARKET_EXPECTS(elapsed >= 0 && elapsed < type_.term);
  RIMARKET_EXPECTS(service_fee >= 0.0 && service_fee < 1.0);
  const double wait = expected_fill_hours(selling_discount);
  const Hour effective_elapsed =
      std::min<Hour>(type_.term - 1, elapsed + static_cast<Hour>(wait + 0.5));
  return type_.sale_income(effective_elapsed, selling_discount) * (1.0 - service_fee);
}

}  // namespace rimarket::market
