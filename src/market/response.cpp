#include "market/response.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rimarket::market {

DiscountResponseModel::DiscountResponseModel(pricing::InstanceType type,
                                             ResponseModelConfig config)
    : type_(std::move(type)), config_(config) {
  RIMARKET_EXPECTS(type_.valid());
  RIMARKET_EXPECTS(config.buyer_rate_per_hour > 0.0);
  RIMARKET_EXPECTS(config.mean_buyer_quantity >= 1.0);
  RIMARKET_EXPECTS(config.depth_density >= 0.0);
}

Hours DiscountResponseModel::expected_fill_hours(Fraction selling_discount) const {
  RIMARKET_EXPECTS(selling_discount > Fraction{0.0});
  // Listings ahead of ours: those priced below our ask fraction.  Our ask
  // fraction of the cap is exactly the discount a (ask = a * cap).
  const double queue_ahead = config_.depth_density * selling_discount.value();
  const double drain_rate = config_.buyer_rate_per_hour * config_.mean_buyer_quantity;
  // One extra unit for our own listing.
  return Hours{(queue_ahead + 1.0) / drain_rate};
}

double DiscountResponseModel::fill_probability(Fraction selling_discount, Hour hours) const {
  RIMARKET_EXPECTS(hours >= 0);
  const double mean = expected_fill_hours(selling_discount).value();
  return 1.0 - std::exp(-static_cast<double>(hours) / mean);
}

Money DiscountResponseModel::expected_income(Hour elapsed, Fraction selling_discount,
                                             Fraction service_fee) const {
  RIMARKET_EXPECTS(elapsed >= 0 && elapsed < type_.term);
  RIMARKET_EXPECTS(service_fee < Fraction{1.0});
  const double wait = expected_fill_hours(selling_discount).value();
  const Hour effective_elapsed =
      std::min<Hour>(type_.term - 1, elapsed + static_cast<Hour>(wait + 0.5));
  return Money{type_.sale_income(effective_elapsed, selling_discount).value() *
               (1.0 - service_fee.value())};
}

}  // namespace rimarket::market
