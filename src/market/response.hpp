// Discount -> time-to-fill response model.
//
// The selling algorithms price at discount a and assume an instant sale.
// In a real marketplace a deeper discount sells faster because the book is
// price-priority.  This model summarizes that effect for the discount
// ablation: given the buyer flow and the density of competing listings, it
// estimates the probability a listing fills within h hours and the expected
// income erosion from waiting (the pro-rated cap drops as hours pass).
#pragma once

#include "common/types.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::market {

struct ResponseModelConfig {
  /// Buyers per hour reaching this instance type's book.
  double buyer_rate_per_hour = 0.5;
  /// Mean instances per buyer.
  double mean_buyer_quantity = 2.0;
  /// Competing listings resting at or below price fraction x of the cap,
  /// modeled as depth_density * x listings (a linear book profile).
  double depth_density = 20.0;
};

/// Closed-form (approximate) fill dynamics for one listing.
class DiscountResponseModel {
 public:
  DiscountResponseModel(pricing::InstanceType type, ResponseModelConfig config);

  /// Expected hours until a listing priced at discount `a` reaches the
  /// head of the queue and fills.  Deeper discount -> fewer competitors
  /// ahead -> faster.
  Hours expected_fill_hours(Fraction selling_discount) const;

  /// P(filled within `hours`) assuming exponential service at the rate
  /// implied by expected_fill_hours.
  double fill_probability(Fraction selling_discount, Hour hours) const;

  /// Expected seller income for a reservation with `elapsed` hours used:
  /// ask * (1 - fee) discounted by the pro-ration lost while waiting.
  Money expected_income(Hour elapsed, Fraction selling_discount, Fraction service_fee) const;

 private:
  pricing::InstanceType type_;
  ResponseModelConfig config_;
};

}  // namespace rimarket::market
