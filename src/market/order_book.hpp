// Price-priority order book for one instance type.
//
// The paper: "the marketplace sells the reserved instance with the lowest
// upfront fee at first to the buyer.  If the buyer's request is not
// fulfilled, the marketplace will sell the reserved instance with the next
// lowest upfront fee."  Ties break by listing time (first listed sells
// first).
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "market/listing.hpp"

namespace rimarket::market {

/// One executed purchase.
struct Fill {
  Listing listing;
  /// Price paid by the buyer (the ask).
  Money price{0.0};
};

class OrderBook {
 public:
  /// Inserts a listing; rejects (returns false) invalid listings or
  /// duplicate ids.
  bool add(const Listing& listing);

  /// Removes a listing by id; false if absent.
  bool cancel(ListingId id);

  /// Buys up to `quantity` instances, lowest ask first; returns the fills
  /// (possibly fewer than requested if the book runs dry).  Listings with
  /// ask above `max_price` are not touched.
  std::vector<Fill> match(Count quantity, Money max_price);

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Lowest ask currently in the book.
  std::optional<Money> best_ask() const;

  /// All resting listings, price-priority order.
  std::vector<Listing> snapshot() const;

 private:
  struct PricePriority {
    bool operator()(const Listing& lhs, const Listing& rhs) const {
      if (lhs.ask != rhs.ask) {
        return lhs.ask < rhs.ask;
      }
      if (lhs.listed_at != rhs.listed_at) {
        return lhs.listed_at < rhs.listed_at;
      }
      return lhs.id < rhs.id;
    }
  };
  std::set<Listing, PricePriority> queue_;
};

}  // namespace rimarket::market
