#include "market/listing.hpp"

#include "common/assert.hpp"

namespace rimarket::market {

Listing make_listing(ListingId id, SellerId seller, const pricing::InstanceType& type,
                     Hour elapsed, Fraction selling_discount, Hour now) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(elapsed >= 0 && elapsed < type.term);
  Listing listing;
  listing.id = id;
  listing.seller = seller;
  listing.remaining_hours = type.term - elapsed;
  listing.ask = type.sale_income(elapsed, selling_discount);
  listing.listed_at = now;
  RIMARKET_ENSURES(respects_price_cap(listing, type));
  return listing;
}

bool respects_price_cap(const Listing& listing, const pricing::InstanceType& type) {
  RIMARKET_EXPECTS(type.term > 0);
  const double remaining_fraction =
      static_cast<double>(listing.remaining_hours) / static_cast<double>(type.term);
  return listing.ask.value() <= remaining_fraction * type.upfront.value() + 1e-9;
}

}  // namespace rimarket::market
