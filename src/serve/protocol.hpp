// Wire protocol of the advisor service: one request line in, one response
// line out.
//
//   ADVISE <account> <reservation-id>
//   BREAKEVEN <account> <fraction>
//   SNAPSHOT_UPDATE <account> {"instance":"d2.xlarge","discount":0.8,
//                              "now":5000,"reservations":[[id,start,worked],...],
//                              "version":7}   // optional, see SnapshotPayload
//   METRICS
//   PING
//
// Responses are `OK <json>`, `ERROR {"message":"..."}` or `BUSY` (admission
// gate full; only the asynchronous path emits it).  Parsing is strict and
// total: every malformed input — unknown verb, bad argument, oversized
// line, truncated JSON — becomes a diagnostic string, never an exception,
// so hostile input degrades to per-request errors (the robustness suite
// drives this layer directly).  Validation here is also the contract guard
// for the layers below: fractions reach Fraction{} only after a range
// check, so user input can never trip a unit-type contract abort.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "common/units.hpp"
#include "serve/snapshot.hpp"

namespace rimarket::serve {

/// Requests larger than this are rejected before parsing (`ERROR`, not a
/// truncated read) — the line protocol's only size knob.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

enum class Verb { kAdvise, kBreakeven, kSnapshotUpdate, kMetrics, kPing };

/// Lower-case endpoint name ("advise", ...) — used for latency metric keys.
std::string_view verb_name(Verb verb);

/// The SNAPSHOT_UPDATE payload after validation, ready to become an
/// AccountSnapshot once the instance name is resolved against the catalog.
struct SnapshotPayload {
  std::string instance;
  Fraction selling_discount{0.8};
  Hour now = 0;
  /// Optional explicit version (a positive integer).  0 means "not given":
  /// the service assigns current + 1.  An explicit version lets a client
  /// re-send an update after a crash and distinguish "already applied"
  /// (idempotent OK) from "superseded" (stale ERROR).
  std::uint64_t version = 0;
  std::vector<ReservationState> reservations;  ///< sorted by id, unique
};

/// One parsed request; only the fields for `verb` are meaningful.
struct Request {
  Verb verb = Verb::kPing;
  std::string account;
  fleet::ReservationId reservation = 0;  ///< ADVISE
  Fraction fraction{0.5};                ///< BREAKEVEN, validated into (0,1)
  SnapshotPayload snapshot;              ///< SNAPSHOT_UPDATE
};

/// Parses one request line.  On failure returns nullopt and fills
/// `*message` with the diagnostic the service wraps into an ERROR response.
std::optional<Request> parse_request(std::string_view line, std::string* message);

/// `OK <body>` — `body` must already be JSON.
std::string ok_response(std::string_view body);

/// `ERROR {"message":"<escaped>"}`.
std::string error_response(std::string_view message);

/// `BUSY {"max_pending":N}` — emitted when the admission gate is full.
std::string busy_response(std::size_t max_pending);

}  // namespace rimarket::serve
