// Deterministic open-loop replay of a request trace against the advisor
// service — the load harness behind the serve-smoke CI job.
//
// The driver feeds one request line per trace entry into a fresh
// AdvisorService and collects a latency report.  Two properties make the
// replay reproducible:
//
//   * SNAPSHOT_UPDATE lines are barriers: the driver drains in-flight
//     reads, applies the update synchronously, then resumes.  Every read
//     therefore sees exactly the snapshot version its trace position
//     implies, so responses are identical whatever the worker count.
//   * Arrival pacing (when enabled) draws interarrival gaps from a seeded
//     exponential process — an open-loop Poisson client whose timeline is
//     fixed by the seed, not by service speed.
//
// Latency numbers naturally vary run to run; the report's *structure*
// (endpoints, counts, errors, responses) is deterministic, which is what
// the determinism suite pins.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"

namespace rimarket::common {
struct CsvError;
}

namespace rimarket::common::fault_injection {
class Schedule;
}

namespace rimarket::pricing {
class PricingCatalog;
}

namespace rimarket::serve {

struct ReplayConfig {
  /// Worker threads in the replayed service (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Admission gate capacity.  When the gate fills, the driver drains the
  /// service and retries once, so every trace entry still gets a real
  /// response; the stall is counted in `LatencyReport::gate_stalls`.
  std::size_t max_pending = 1024;
  const pricing::PricingCatalog* catalog = nullptr;
  /// Chaos schedule forwarded to the service (see ServiceConfig).
  const common::fault_injection::Schedule* fault_schedule = nullptr;
  /// Open-loop arrival rate (requests/second); 0 disables pacing and the
  /// driver issues requests back to back (the throughput-bound mode the
  /// tests use).
  double arrivals_per_second = 0.0;
  /// Seed for the arrival process.
  std::uint64_t seed = 1;
  /// Snapshot journal forwarded to the service (see ServiceConfig); empty
  /// replays against a non-durable service.
  std::string journal_path;
};

/// One endpoint's latency distribution in the final report.
struct EndpointLatency {
  std::string endpoint;
  common::DistributionSnapshot latency_us;
};

struct LatencyReport {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  /// Times the driver found the admission gate full and drained the
  /// service before retrying.
  std::uint64_t gate_stalls = 0;
  /// Requests the service's admission gate turned away with BUSY
  /// (serve.busy_rejections; each stall above implies at least one).
  std::uint64_t busy_rejections = 0;
  /// Journal records replayed into the store at service startup
  /// (serve.journal.records_replayed; 0 without --journal).
  std::uint64_t journal_records_replayed = 0;
  /// Corrupt-tail bytes dropped at startup (serve.journal.truncated_bytes).
  std::uint64_t journal_truncated_bytes = 0;
  /// Sorted by endpoint name; only endpoints that served requests appear.
  std::vector<EndpointLatency> endpoints;
  /// One response line per trace entry, in trace order.
  std::vector<std::string> responses;

  /// Machine-readable artifact (sorted keys; excludes `responses`).
  std::string to_json() const;
  /// Human-readable latency table.
  std::string render() const;
};

class ReplayDriver {
 public:
  explicit ReplayDriver(ReplayConfig config = {});

  /// Replays `requests` through a fresh AdvisorService.
  LatencyReport replay(std::span<const std::string> requests) const;

  /// Reads a trace file (one request per line; blank lines and lines
  /// starting with '#' are skipped) and replays it.  On read failure
  /// returns an empty report and fills `*error` when non-null.
  LatencyReport replay_file(const std::string& path,
                            common::CsvError* error = nullptr) const;

 private:
  ReplayConfig config_;
};

/// Spec for the synthetic request trace used by the serve-smoke job and the
/// protocol tests.  Everything is derived from the seed: same spec + seed
/// means the same trace, line for line.
struct RequestTraceSpec {
  std::size_t accounts = 4;
  std::size_t reservations_per_account = 32;
  /// Read requests (ADVISE/BREAKEVEN) after the initial snapshot loads.
  std::size_t requests = 1000;
  /// Snapshot refreshes interleaved among the reads (barriers at replay).
  std::size_t updates = 8;
  std::string instance = "d2.xlarge";
  /// Share of reads that are BREAKEVEN rather than ADVISE.
  Fraction breakeven_share{0.25};
};

std::vector<std::string> generate_request_trace(const RequestTraceSpec& spec,
                                                std::uint64_t seed);

}  // namespace rimarket::serve
