#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "serve/json.hpp"

namespace rimarket::serve {

namespace {

constexpr std::size_t kMaxAccountChars = 64;

bool valid_account(std::string_view name) {
  if (name.empty() || name.size() > kMaxAccountChars) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::optional<Request> fail(std::string* message, std::string diagnostic) {
  *message = std::move(diagnostic);
  return std::nullopt;
}

/// A JSON number that is a non-negative integer fitting Hour; nullopt
/// otherwise (fractional hours and negatives are protocol errors).
std::optional<Hour> as_hour(const JsonValue& value) {
  if (!value.is_number()) {
    return std::nullopt;
  }
  const double v = value.number;
  if (v < 0.0 || v > 9.0e15 || v != std::floor(v)) {
    return std::nullopt;
  }
  return static_cast<Hour>(v);
}

bool parse_snapshot_payload(std::string_view json_text, SnapshotPayload& out,
                            std::string* message) {
  JsonError json_error;
  const auto doc = parse_json(json_text, &json_error);
  if (!doc) {
    *message = "SNAPSHOT_UPDATE payload is not valid JSON (" + json_error.to_string() + ")";
    return false;
  }
  if (!doc->is_object()) {
    *message = "SNAPSHOT_UPDATE payload must be a JSON object";
    return false;
  }
  const JsonValue* instance = doc->find("instance");
  if (instance == nullptr || !instance->is_string() || instance->string.empty()) {
    *message = "SNAPSHOT_UPDATE payload needs a non-empty string \"instance\"";
    return false;
  }
  out.instance = instance->string;
  if (const JsonValue* discount = doc->find("discount"); discount != nullptr) {
    if (!discount->is_number() || discount->number < 0.0 || discount->number > 1.0) {
      *message = "\"discount\" must be a number in [0,1]";
      return false;
    }
    out.selling_discount = Fraction{discount->number};
  }
  const JsonValue* now = doc->find("now");
  if (now == nullptr) {
    *message = "SNAPSHOT_UPDATE payload needs \"now\" (fleet clock in hours)";
    return false;
  }
  const auto now_hour = as_hour(*now);
  if (!now_hour) {
    *message = "\"now\" must be a non-negative integer hour";
    return false;
  }
  out.now = *now_hour;
  if (const JsonValue* version = doc->find("version"); version != nullptr) {
    // Reuse the Hour validation (non-negative integer with a safe-double
    // bound) and then require >= 1: version 0 is reserved for "unversioned".
    const auto parsed = as_hour(*version);
    if (!parsed || *parsed < 1) {
      *message = "\"version\" must be a positive integer";
      return false;
    }
    out.version = static_cast<std::uint64_t>(*parsed);
  }
  const JsonValue* reservations = doc->find("reservations");
  if (reservations == nullptr || !reservations->is_array()) {
    *message = "SNAPSHOT_UPDATE payload needs a \"reservations\" array";
    return false;
  }
  out.reservations.clear();
  out.reservations.reserve(reservations->array.size());
  for (std::size_t i = 0; i < reservations->array.size(); ++i) {
    const JsonValue& row = reservations->array[i];
    if (!row.is_array() || row.array.size() != 3) {
      *message = common::format("reservation %zu must be [id,start,worked_hours]", i);
      return false;
    }
    const auto id = as_hour(row.array[0]);
    const auto start = as_hour(row.array[1]);
    const auto worked = as_hour(row.array[2]);
    if (!id || !start || !worked) {
      *message = common::format("reservation %zu fields must be non-negative integers", i);
      return false;
    }
    if (*start > out.now) {
      *message = common::format("reservation %zu starts at hour %lld, after \"now\" (%lld)", i,
                                static_cast<long long>(*start),
                                static_cast<long long>(out.now));
      return false;
    }
    if (*worked > out.now - *start) {
      *message = common::format(
          "reservation %zu worked %lld hours but is only %lld hours old", i,
          static_cast<long long>(*worked), static_cast<long long>(out.now - *start));
      return false;
    }
    out.reservations.push_back(
        ReservationState{static_cast<fleet::ReservationId>(*id), *start, *worked});
  }
  std::sort(out.reservations.begin(), out.reservations.end(),
            [](const ReservationState& a, const ReservationState& b) { return a.id < b.id; });
  const auto duplicate =
      std::adjacent_find(out.reservations.begin(), out.reservations.end(),
                         [](const ReservationState& a, const ReservationState& b) {
                           return a.id == b.id;
                         });
  if (duplicate != out.reservations.end()) {
    *message = common::format("duplicate reservation id %lld",
                              static_cast<long long>(duplicate->id));
    return false;
  }
  return true;
}

}  // namespace

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kAdvise:
      return "advise";
    case Verb::kBreakeven:
      return "breakeven";
    case Verb::kSnapshotUpdate:
      return "snapshot_update";
    case Verb::kMetrics:
      return "metrics";
    case Verb::kPing:
      return "ping";
  }
  return "ping";
}

std::optional<Request> parse_request(std::string_view line, std::string* message) {
  if (line.size() > kMaxRequestBytes) {
    return fail(message, common::format("request of %zu bytes exceeds the %zu-byte limit",
                                        line.size(), kMaxRequestBytes));
  }
  const std::string_view trimmed = common::trim(line);
  if (trimmed.empty()) {
    return fail(message, "empty request");
  }
  const std::size_t verb_end = trimmed.find(' ');
  const std::string_view verb_token = trimmed.substr(0, verb_end);
  std::string_view rest =
      verb_end == std::string_view::npos ? std::string_view{} : trimmed.substr(verb_end + 1);
  rest = common::trim(rest);

  Request request;
  if (verb_token == "PING" || verb_token == "METRICS") {
    request.verb = verb_token == "PING" ? Verb::kPing : Verb::kMetrics;
    if (!rest.empty()) {
      return fail(message, common::format("%s takes no arguments",
                                          std::string(verb_token).c_str()));
    }
    return request;
  }

  // Reject unknown verbs before looking at arguments, so "NOPE" diagnoses
  // the verb rather than a missing account.
  if (verb_token != "ADVISE" && verb_token != "BREAKEVEN" &&
      verb_token != "SNAPSHOT_UPDATE") {
    return fail(message, common::format("unknown verb \"%s\"",
                                        std::string(verb_token).c_str()));
  }

  // Remaining verbs all start with an account token.
  const std::size_t account_end = rest.find(' ');
  const std::string_view account = rest.substr(0, account_end);
  std::string_view args =
      account_end == std::string_view::npos ? std::string_view{} : rest.substr(account_end + 1);
  args = common::trim(args);
  if (!valid_account(account)) {
    return fail(message,
                "account must be 1-64 characters of [A-Za-z0-9._-]");
  }
  request.account = std::string(account);

  if (verb_token == "ADVISE") {
    request.verb = Verb::kAdvise;
    const auto id = common::parse_int(args);
    if (args.empty() || !id || *id < 0) {
      return fail(message, "ADVISE needs a non-negative integer reservation id");
    }
    request.reservation = *id;
    return request;
  }
  if (verb_token == "BREAKEVEN") {
    request.verb = Verb::kBreakeven;
    const auto fraction = common::parse_double(args);
    if (args.empty() || !fraction || *fraction <= 0.0 || *fraction >= 1.0) {
      return fail(message, "BREAKEVEN needs a decision fraction strictly between 0 and 1");
    }
    request.fraction = Fraction{*fraction};
    return request;
  }
  request.verb = Verb::kSnapshotUpdate;
  if (args.empty()) {
    return fail(message, "SNAPSHOT_UPDATE needs a JSON payload");
  }
  if (!parse_snapshot_payload(args, request.snapshot, message)) {
    return std::nullopt;
  }
  return request;
}

std::string ok_response(std::string_view body) {
  std::string out = "OK ";
  out += body;
  return out;
}

std::string error_response(std::string_view message) {
  return common::format("ERROR {\"message\":\"%s\"}", json_escape(message).c_str());
}

std::string busy_response(std::size_t max_pending) {
  return common::format("BUSY {\"max_pending\":%zu}", max_pending);
}

}  // namespace rimarket::serve
