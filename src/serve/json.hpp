// Minimal strict JSON for the advisor service wire protocol.
//
// SNAPSHOT_UPDATE payloads arrive as one JSON object per request line, and
// the robustness suite feeds the parser truncated, oversized and otherwise
// hostile documents — so this parser is strict (no trailing garbage, no
// unquoted keys, bounded nesting) and every failure carries the byte offset
// where parsing stopped.  It is deliberately small: the protocol needs
// null/bool/number/string/array/object and nothing else (no \u escapes, no
// comments, no NaN/Infinity — common::parse_double already rejects those).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rimarket::serve {

/// One parsed JSON value.  Object members keep document order so parsing is
/// fully deterministic; lookup is linear, which is fine at protocol sizes.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

/// Where and why a parse failed; `offset` is the 0-based byte position.
struct JsonError {
  std::size_t offset = 0;
  std::string message;

  /// "offset N: message" — the protocol's ERROR diagnostic body.
  std::string to_string() const;
};

/// Parses exactly one JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error).  Nesting beyond
/// `kMaxJsonDepth` fails rather than recursing unboundedly on adversarial
/// input.
std::optional<JsonValue> parse_json(std::string_view text, JsonError* error = nullptr);

/// Containers deeper than this are rejected (stack-depth guard).
inline constexpr std::size_t kMaxJsonDepth = 32;

/// `text` with JSON string escaping applied (quotes, backslash, control
/// characters), without the surrounding quotes.
std::string json_escape(std::string_view text);

/// Shortest-ish decimal rendering of a finite double ("%.17g" round-trip).
std::string json_number(double value);

}  // namespace rimarket::serve
