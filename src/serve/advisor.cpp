#include "serve/advisor.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "selling/fixed_spot.hpp"
#include "serve/json.hpp"

namespace rimarket::serve {

std::string_view advice_label(Advice advice) {
  switch (advice) {
    case Advice::kSell:
      return "sell";
    case Advice::kKeep:
      return "keep";
    case Advice::kNoSpotYet:
      return "(no spot yet)";
  }
  return "keep";
}

Advice advise_at_spot(Hour now, Hour start, Hour worked_hours, Hour decision_age,
                      Hours break_even) {
  if (start + decision_age >= now) {
    return Advice::kNoSpotYet;  // decision spot lies beyond the snapshot clock
  }
  const Hour cap = std::min(worked_hours, decision_age);
  return Hours{cap} < break_even ? Advice::kSell : Advice::kKeep;
}

ReservationAdvice advise_reservation(const AccountSnapshot& snapshot,
                                     const ReservationState& state) {
  ReservationAdvice out;
  out.reservation = state.id;
  out.worked_hours = state.worked_hours;
  const std::array<Fraction, kAdvisedFractions> fractions = {
      selling::kSpotT4, selling::kSpotT2, selling::kSpot3T4};
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const selling::FixedSpotSelling policy(snapshot.type, fractions[i],
                                           snapshot.selling_discount);
    PolicyAdvice& cell = out.policies[i];
    cell.fraction = fractions[i];
    cell.decision_age = policy.decision_age_hours();
    cell.break_even = policy.break_even_hours();
    cell.advice = advise_at_spot(snapshot.now, state.start, state.worked_hours,
                                 cell.decision_age, cell.break_even);
  }
  return out;
}

BreakevenAdvice breakeven(const AccountSnapshot& snapshot, Fraction fraction) {
  const selling::FixedSpotSelling policy(snapshot.type, fraction, snapshot.selling_discount);
  BreakevenAdvice out;
  out.fraction = fraction;
  out.decision_age = policy.decision_age_hours();
  out.break_even = policy.break_even_hours();
  return out;
}

std::string ReservationAdvice::to_json() const {
  // Keys sorted; the three spots render as an "advice" object keyed by the
  // fraction so the batch table's columns map one-to-one.
  std::string advice = "{";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (i > 0) {
      advice += ',';
    }
    advice += common::format("\"%.2f\":\"%s\"", policies[i].fraction.value(),
                             std::string(advice_label(policies[i].advice)).c_str());
  }
  advice += '}';
  return common::format("{\"advice\":%s,\"reservation\":%lld,\"worked_hours\":%lld}",
                        advice.c_str(), static_cast<long long>(reservation),
                        static_cast<long long>(worked_hours));
}

std::string BreakevenAdvice::to_json() const {
  return common::format("{\"break_even_hours\":%s,\"decision_age\":%lld,\"fraction\":%s}",
                        json_number(break_even.value()).c_str(),
                        static_cast<long long>(decision_age),
                        json_number(fraction.value()).c_str());
}

}  // namespace rimarket::serve
