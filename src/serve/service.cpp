#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "pricing/catalog.hpp"
#include "serve/advisor.hpp"

namespace rimarket::serve {

namespace {

/// Latency metric key for requests that never parsed into a verb.
constexpr std::string_view kInvalidEndpoint = "invalid";

std::uint64_t chaos_scope_key(std::uint64_t sequence) {
  // Mix the sequence number so rule probabilities see well-spread keys.
  std::uint64_t state = sequence;
  return common::splitmix64(state);
}

}  // namespace

AdmissionGate::AdmissionGate(std::size_t capacity) : capacity_(capacity) {}

bool AdmissionGate::try_enter() {
  const common::MutexLock lock(mutex_);
  if (in_flight_ >= capacity_) {
    return false;
  }
  ++in_flight_;
  return true;
}

void AdmissionGate::leave() {
  const common::MutexLock lock(mutex_);
  if (in_flight_ > 0) {
    --in_flight_;
  }
}

std::size_t AdmissionGate::in_flight() const {
  const common::MutexLock lock(mutex_);
  return in_flight_;
}

AdvisorService::AdvisorService(ServiceConfig config)
    : config_(config),
      catalog_(config.catalog != nullptr ? *config.catalog : pricing::PricingCatalog::builtin()),
      gate_(config.max_pending),
      pool_(config.threads) {
  if (config_.journal_path.empty()) {
    return;
  }
  JournalConfig journal_config;
  journal_config.path = config_.journal_path;
  journal_config.fsync = config_.journal_fsync;
  journal_config.compact_threshold_bytes = config_.journal_compact_bytes;
  RecoveryStats stats;
  bool opened = false;
  {
    const common::MutexLock lock(update_mutex_);
    opened = journal_.open(
        journal_config,
        [this](AccountSnapshot&& snapshot) {
          const std::uint64_t version = snapshot.version;
          return store_.publish_at(std::move(snapshot), version);
        },
        &stats);
  }
  metrics_.set("serve.journal.records_replayed",
               static_cast<std::int64_t>(stats.records_replayed));
  metrics_.set("serve.journal.truncated_bytes",
               static_cast<std::int64_t>(stats.truncated_bytes));
  if (!opened) {
    common::log_warn("serve: journal %s unavailable; updates will not be durable",
                     config_.journal_path.c_str());
  }
}

bool AdvisorService::journal_enabled() const {
  const common::MutexLock lock(update_mutex_);
  return journal_.enabled();
}

std::string AdvisorService::handle_line(std::string_view line) {
  return process(line, next_sequence());
}

AdvisorService::Admit AdvisorService::submit(std::string line,
                                             std::function<void(std::string)> done) {
  if (!gate_.try_enter()) {
    metrics_.increment("serve.busy_rejections");
    return Admit::kBusy;
  }
  // The sequence number is claimed on the submitting thread, so a single
  // driver submitting in trace order gets scheduling-independent chaos keys.
  const std::uint64_t sequence = next_sequence();
  try {
    pool_.submit([this, sequence, line = std::move(line), done = std::move(done)]() mutable {
      // The admission slot is held until delivery finishes (and is released
      // even when `done` throws), so in_flight() covers the whole request.
      struct GateRelease {
        AdmissionGate& gate;
        ~GateRelease() { gate.leave(); }
      } release{gate_};
      std::string response = process(line, sequence);
      if (done) {
        done(std::move(response));
      }
    });
  } catch (...) {
    gate_.leave();  // the task never ran; undo its claim before rethrowing
    throw;
  }
  return Admit::kAccepted;
}

void AdvisorService::wait_idle() { pool_.wait_idle(); }

std::string AdvisorService::process(std::string_view line, std::uint64_t sequence) {
  std::optional<common::fault_injection::ScopedContext> chaos;
  if (config_.fault_schedule != nullptr) {
    chaos.emplace(*config_.fault_schedule, chaos_scope_key(sequence));
  }
  const auto started = std::chrono::steady_clock::now();
  std::string endpoint{kInvalidEndpoint};
  std::string response;
  try {
    std::string diagnostic;
    if (RIMARKET_INJECT_PARSE(common::fault_injection::kSiteServeParse)) {
      response = error_response("injected parse error");
    } else if (const auto request = parse_request(line, &diagnostic)) {
      endpoint = verb_name(request->verb);
      response = execute(*request);
    } else {
      response = error_response(diagnostic);
    }
  } catch (const std::exception& e) {
    response = error_response(e.what());
  } catch (...) {
    response = error_response("unknown error");
  }
  const std::chrono::duration<double, std::micro> elapsed =
      std::chrono::steady_clock::now() - started;
  metrics_.observe(common::format("serve.latency_us.%s", std::string(endpoint).c_str()),
                   elapsed.count());
  metrics_.increment("serve.requests.total");
  if (common::starts_with(response, "ERROR")) {
    metrics_.increment("serve.requests.errors");
  }
  return response;
}

std::string AdvisorService::execute(const Request& request) {
  RIMARKET_INJECT(common::fault_injection::kSiteServeExecute);
  switch (request.verb) {
    case Verb::kPing:
      return ok_response("{\"service\":\"rimarket_serve\"}");
    case Verb::kMetrics:
      return ok_response(metrics_.to_json());
    case Verb::kAdvise: {
      const auto snapshot = store_.lookup(request.account);
      if (snapshot == nullptr) {
        return error_response(
            common::format("unknown account \"%s\"", request.account.c_str()));
      }
      const ReservationState* state = snapshot->find(request.reservation);
      if (state == nullptr) {
        return error_response(common::format("account \"%s\" has no reservation %lld",
                                             request.account.c_str(),
                                             static_cast<long long>(request.reservation)));
      }
      return ok_response(advise_reservation(*snapshot, *state).to_json());
    }
    case Verb::kBreakeven: {
      const auto snapshot = store_.lookup(request.account);
      if (snapshot == nullptr) {
        return error_response(
            common::format("unknown account \"%s\"", request.account.c_str()));
      }
      return ok_response(breakeven(*snapshot, request.fraction).to_json());
    }
    case Verb::kSnapshotUpdate: {
      const auto type = catalog_.find(request.snapshot.instance);
      if (!type) {
        return error_response(common::format("unknown instance type \"%s\"",
                                             request.snapshot.instance.c_str()));
      }
      AccountSnapshot snapshot;
      snapshot.account = request.account;
      snapshot.type = *type;
      snapshot.selling_discount = request.snapshot.selling_discount;
      snapshot.now = request.snapshot.now;
      snapshot.reservations = request.snapshot.reservations;
      const std::size_t count = snapshot.reservations.size();
      const std::uint64_t requested = request.snapshot.version;
      enum class Update { kPublished, kIdempotent, kStale, kJournalFailed };
      Update result = Update::kPublished;
      std::uint64_t version = 0;
      std::uint64_t current = 0;
      std::size_t stored_rows = 0;
      bool compacted = false;
      {
        // One update at a time: the journal append must land before the
        // publication it covers, in publication order.  Response formatting
        // and metrics stay outside the lock.
        const common::MutexLock lock(update_mutex_);
        const auto existing = store_.lookup(request.account);
        current = existing == nullptr ? 0 : existing->version;
        if (requested != 0 && requested == current) {
          result = Update::kIdempotent;
          stored_rows = existing->reservations.size();
        } else if (requested != 0 && requested < current) {
          result = Update::kStale;
        } else {
          version = requested == 0 ? current + 1 : requested;
          snapshot.version = version;
          if (journal_.enabled() && !journal_.append_update(snapshot)) {
            result = Update::kJournalFailed;
          } else {
            store_.publish_at(std::move(snapshot), version);
            if (journal_.should_compact()) {
              compacted = journal_.compact(store_.all());
            }
          }
        }
      }
      if (compacted) {
        metrics_.increment("serve.journal.compactions");
      }
      switch (result) {
        case Update::kPublished:
          return ok_response(common::format(
              "{\"account\":\"%s\",\"reservations\":%zu,\"version\":%llu}",
              request.account.c_str(), count, static_cast<unsigned long long>(version)));
        case Update::kIdempotent:
          return ok_response(common::format(
              "{\"account\":\"%s\",\"idempotent\":true,\"reservations\":%zu,\"version\":%llu}",
              request.account.c_str(), stored_rows,
              static_cast<unsigned long long>(current)));
        case Update::kStale:
          return error_response(common::format(
              "stale snapshot version %llu for account \"%s\"; current version is %llu",
              static_cast<unsigned long long>(requested), request.account.c_str(),
              static_cast<unsigned long long>(current)));
        case Update::kJournalFailed:
          return error_response("journal append failed; update not applied");
      }
      return error_response("unhandled update outcome");
    }
  }
  return error_response("unhandled verb");
}

}  // namespace rimarket::serve
