// The advisor's per-reservation decision rule, shared between the batch
// console (examples/portfolio_advisor) and the resident service.
//
// Both paths answer the same question: at each of the paper's decision
// spots f in {1/4, 1/2, 3/4}, would A_{fT} sell this reservation?  The rule
// is evaluated against a point-in-time snapshot — the final worked-hours
// count capped at the spot width stands in for the exact per-spot counter a
// live run maintains (a conservative approximation, see the batch console's
// header comment).  Keeping the rule here makes the service's answers
// byte-identical to the batch table by construction.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "common/units.hpp"
#include "serve/snapshot.hpp"

namespace rimarket::serve {

/// What A_{fT} says about one reservation at one decision spot.
enum class Advice {
  kSell,      ///< worked below beta(f) at the spot: sell
  kKeep,      ///< worked at least beta(f): keep
  kNoSpotYet, ///< the decision spot lies beyond the snapshot clock
};

/// The exact cell text the batch console prints ("sell", "keep",
/// "(no spot yet)") — the service returns the same strings so the two
/// surfaces can be diffed byte for byte.
std::string_view advice_label(Advice advice);

/// A_{fT}'s verdict plus the numbers behind it.
struct PolicyAdvice {
  Fraction fraction{0.5};
  Hour decision_age = 0;
  Hours break_even{0.0};
  Advice advice = Advice::kKeep;
};

/// Decision fractions are evaluated smallest spot first, matching the batch
/// console's column order A_{T/4}, A_{T/2}, A_{3T/4}.
inline constexpr std::size_t kAdvisedFractions = 3;

/// Advice for one reservation across the paper's three decision spots.
struct ReservationAdvice {
  fleet::ReservationId reservation = 0;
  Hour worked_hours = 0;
  std::array<PolicyAdvice, kAdvisedFractions> policies;

  /// One-line JSON object (sorted keys) for the wire protocol.
  std::string to_json() const;
};

/// Evaluates the A_{fT} family for `state` against `snapshot`'s clock and
/// pricing.  Precondition: `snapshot.type.valid()` (the protocol layer only
/// publishes catalog-backed snapshots).
ReservationAdvice advise_reservation(const AccountSnapshot& snapshot,
                                     const ReservationState& state);

/// A_{fT}'s verdict for one already-constructed policy — the shared kernel:
/// "(no spot yet)" when `start + decision_age >= now`, otherwise sell iff
/// min(worked_hours, decision_age) is below beta(f).
Advice advise_at_spot(Hour now, Hour start, Hour worked_hours, Hour decision_age,
                      Hours break_even);

/// Break-even working time beta(f) and decision age for an arbitrary
/// decision fraction in (0,1) on this snapshot's contract.
struct BreakevenAdvice {
  Fraction fraction{0.5};
  Hour decision_age = 0;
  Hours break_even{0.0};

  /// One-line JSON object (sorted keys) for the wire protocol.
  std::string to_json() const;
};

BreakevenAdvice breakeven(const AccountSnapshot& snapshot, Fraction fraction);

}  // namespace rimarket::serve
