// Write-ahead journal for SNAPSHOT_UPDATE durability.
//
// Every accepted update is appended (account, version, full pricing terms
// and reservation rows) to a CRC32-framed log *before* it is published to
// the SnapshotStore, so an acknowledged update survives SIGKILL: on
// restart the service replays the journal, restores each account at its
// recorded monotonic version, and answers byte-identically to a service
// that never died.  Recovery follows the durable_file contract — the log is
// trusted up to the first torn, corrupt or unparseable record, the file is
// physically truncated there, and everything before that point is replayed;
// a journal that cannot be read at all is moved aside (`<path>.corrupt`) so
// the service always starts.  Size-triggered compaction rewrites the log as
// one checkpoint record per live account via atomic replace.
//
// The journal is not internally synchronized: AdvisorService serializes
// every call under its update mutex, which also fixes the append order to
// equal the publication order.  See DESIGN.md "Durable files and the
// snapshot journal".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable_file.hpp"
#include "serve/snapshot.hpp"

namespace rimarket::serve {

struct JournalConfig {
  /// Journal file; empty disables the journal entirely.
  std::string path;
  /// Barrier discipline for appends and compaction (kNever for tests).
  common::durable::FsyncMode fsync = common::durable::FsyncMode::kAlways;
  /// Compaction trigger: once the log grows past this many bytes, the next
  /// accepted update rewrites it as one record per account.  0 never
  /// compacts.
  std::size_t compact_threshold_bytes = std::size_t{1} << 20;
};

/// What startup recovery found, surfaced as serve.journal.* metrics.
struct RecoveryStats {
  /// Records parsed and published into the store.
  std::uint64_t records_replayed = 0;
  /// Valid records whose version did not advance their account (replay is
  /// idempotent; a compacted-then-appended log can legitimately skip).
  std::uint64_t records_skipped = 0;
  /// Bytes dropped from the tail (torn frame, CRC mismatch, or a framed
  /// record that failed to parse).
  std::uint64_t truncated_bytes = 0;
  /// True when the journal was unreadable and moved aside to
  /// `<path>.corrupt`; the service starts with an empty store.
  bool reset = false;
};

class SnapshotJournal {
 public:
  SnapshotJournal() = default;

  SnapshotJournal(const SnapshotJournal&) = delete;
  SnapshotJournal& operator=(const SnapshotJournal&) = delete;

  /// Applies one recovered snapshot; returns the store's verdict so
  /// recovery can count replayed vs version-skipped records.
  using PublishFn = std::function<PublishOutcome(AccountSnapshot&&)>;

  /// Recovers the journal at `config.path` (replaying every valid record
  /// through `publish`, truncating the tail at the first bad one) and opens
  /// it for appending.  Returns false when the file cannot be opened for
  /// append — the caller should degrade to a non-durable service rather
  /// than refuse to start.  With an empty path the journal stays disabled
  /// and open() trivially succeeds.
  bool open(const JournalConfig& config, const PublishFn& publish, RecoveryStats* stats);

  /// True when appends are being accepted (opened with a non-empty path and
  /// not broken since).
  bool enabled() const { return log_.is_open(); }

  /// Appends one accepted update.  Must happen before the matching publish;
  /// false means the update is not durable and must be rejected.
  bool append_update(const AccountSnapshot& snapshot);

  /// True once the log has outgrown the compaction threshold.
  bool should_compact() const;

  /// Rewrites the journal as one record per snapshot (atomic replace).
  /// Failure degrades: the existing log stays in place and keeps growing.
  bool compact(const std::vector<std::shared_ptr<const AccountSnapshot>>& snapshots);

  std::size_t size_bytes() const { return log_.size_bytes(); }

  /// One journal record payload: a `snap` header line (account, version,
  /// clock, discount and the full pricing terms, all doubles as hexfloat)
  /// plus one `r` line per reservation.  Self-contained on purpose —
  /// recovery does not consult the pricing catalog.
  static std::string serialize_snapshot(const AccountSnapshot& snapshot);

  /// Inverse of serialize_snapshot; false on any malformed field (the
  /// caller treats that record as the start of the corrupt tail).
  static bool parse_snapshot(std::string_view record, AccountSnapshot& out);

 private:
  JournalConfig config_;
  common::durable::AppendLog log_;
};

}  // namespace rimarket::serve
