#include "serve/journal.hpp"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace rimarket::serve {

namespace {

namespace fi = common::fault_injection;

/// Round-trippable double encoding (printf %a); common::parse_double
/// rejects hexfloat by design, so the inverse lives here.
std::string hexfloat(double value) { return common::format("%a", value); }

std::optional<double> parse_hexfloat(std::string_view token) {
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0' || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

/// A token safe to embed in the space-separated record layout.
bool plain_token(const std::string& token) {
  if (token.empty() || token.size() > 256) {
    return false;
  }
  for (const char c : token) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

std::optional<long long> parse_non_negative(std::string_view token) {
  const auto value = common::parse_int(token);
  if (!value || *value < 0) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

bool SnapshotJournal::open(const JournalConfig& config, const PublishFn& publish,
                           RecoveryStats* stats) {
  RecoveryStats local;
  RecoveryStats& out = stats != nullptr ? *stats : local;
  out = RecoveryStats{};
  config_ = config;
  log_.close();
  if (config_.path.empty()) {
    return true;  // journal disabled: nothing to recover, nothing to open
  }
  const common::durable::ReadResult read = common::durable::read_records(config_.path);
  const std::size_t file_bytes = read.valid_bytes + read.truncated_bytes;
  std::size_t keep = read.valid_bytes;
  std::size_t prev_end = 0;
  for (const common::durable::FramedRecord& record : read.records) {
    try {
      RIMARKET_INJECT(fi::kSiteJournalRecover);
      AccountSnapshot snapshot;
      if (!parse_snapshot(record.payload, snapshot)) {
        keep = prev_end;  // CRC-valid but malformed: corrupt from here on
        break;
      }
      if (publish != nullptr &&
          publish(std::move(snapshot)) == PublishOutcome::kPublished) {
        ++out.records_replayed;
      } else {
        ++out.records_skipped;
      }
      prev_end = record.end_offset;
    } catch (...) {
      // An injected (or genuine) replay fault: trust only the records that
      // already replayed, exactly as if this one were unreadable.
      keep = prev_end;
      break;
    }
  }
  out.truncated_bytes = static_cast<std::uint64_t>(file_bytes - keep);
  if (!read.missing && keep < file_bytes &&
      !common::durable::truncate_file(config_.path, keep)) {
    // Cannot cut the corrupt tail off; appending after it would bury every
    // future record behind garbage.  Move the file aside and start fresh —
    // the service must always start.
    common::durable::rename_file(config_.path, config_.path + ".corrupt");
    out.reset = true;
    common::log_warn("journal: %s has an untruncatable corrupt tail; moved aside",
                     config_.path.c_str());
  }
  if (!log_.open(config_.path, config_.fsync)) {
    common::log_warn("journal: cannot open %s for append; updates will not be durable",
                     config_.path.c_str());
    return false;
  }
  return true;
}

bool SnapshotJournal::append_update(const AccountSnapshot& snapshot) {
  if (!log_.is_open()) {
    return false;
  }
  const std::size_t before = log_.size_bytes();
  try {
    RIMARKET_INJECT(fi::kSiteJournalAppend);
    const std::string record = serialize_snapshot(snapshot);
    if (record.empty() || !log_.append(record)) {
      return false;
    }
    RIMARKET_INJECT(fi::kSiteJournalFsync);
    return true;
  } catch (...) {
    // A fault after the bytes were written (the fsync window): roll the log
    // back so a later update cannot end up sharing this record's version
    // with a different payload.
    if (log_.size_bytes() > before && !log_.truncate_to(before)) {
      log_.close();  // cannot trust the tail; stop accepting appends
    }
    return false;
  }
}

bool SnapshotJournal::should_compact() const {
  return log_.is_open() && config_.compact_threshold_bytes != 0 &&
         log_.size_bytes() > config_.compact_threshold_bytes;
}

bool SnapshotJournal::compact(
    const std::vector<std::shared_ptr<const AccountSnapshot>>& snapshots) {
  if (!log_.is_open()) {
    return false;
  }
  try {
    RIMARKET_INJECT(fi::kSiteJournalCompact);
    std::string contents;
    for (const std::shared_ptr<const AccountSnapshot>& snapshot : snapshots) {
      if (snapshot == nullptr) {
        continue;
      }
      const std::string record = serialize_snapshot(*snapshot);
      if (record.empty()) {
        return false;  // never replace a good log with an incomplete one
      }
      common::durable::frame_record(record, contents);
    }
    if (!common::durable::atomic_replace(config_.path, contents, config_.fsync)) {
      return false;  // degraded: the old log is still in place and open
    }
    log_.close();
    if (!log_.open(config_.path, config_.fsync)) {
      common::log_warn(
          "journal: compacted %s but cannot reopen it; updates will not be durable",
          config_.path.c_str());
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

std::string SnapshotJournal::serialize_snapshot(const AccountSnapshot& snapshot) {
  if (!plain_token(snapshot.account) || !plain_token(snapshot.type.name) ||
      snapshot.version == 0) {
    return std::string();
  }
  std::string out = common::format(
      "snap %s %llu %lld %s %s %s %s %lld %s\n", snapshot.account.c_str(),
      static_cast<unsigned long long>(snapshot.version),
      static_cast<long long>(snapshot.now),
      hexfloat(snapshot.selling_discount.value()).c_str(),
      hexfloat(snapshot.type.on_demand_hourly.value()).c_str(),
      hexfloat(snapshot.type.upfront.value()).c_str(),
      hexfloat(snapshot.type.reserved_hourly.value()).c_str(),
      static_cast<long long>(snapshot.type.term), snapshot.type.name.c_str());
  for (const ReservationState& row : snapshot.reservations) {
    out += common::format("r %lld %lld %lld\n", static_cast<long long>(row.id),
                          static_cast<long long>(row.start),
                          static_cast<long long>(row.worked_hours));
  }
  return out;
}

bool SnapshotJournal::parse_snapshot(std::string_view record, AccountSnapshot& out) {
  out = AccountSnapshot{};
  const std::vector<std::string_view> lines = common::split(record, '\n');
  if (lines.empty()) {
    return false;
  }
  const std::vector<std::string_view> header = common::split(lines[0], ' ');
  if (header.size() != 10 || header[0] != "snap") {
    return false;
  }
  const std::string account(header[1]);
  const auto version = parse_non_negative(header[2]);
  const auto now = parse_non_negative(header[3]);
  const auto discount = parse_hexfloat(header[4]);
  const auto on_demand = parse_hexfloat(header[5]);
  const auto upfront = parse_hexfloat(header[6]);
  const auto reserved = parse_hexfloat(header[7]);
  const auto term = parse_non_negative(header[8]);
  const std::string name(header[9]);
  // Every range check below guards a unit-type contract (Fraction/Money/
  // Rate abort on out-of-range), so a crafted journal degrades to "corrupt
  // tail" instead of aborting the service.
  if (!plain_token(account) || !version || *version < 1 || !now || !discount ||
      *discount < 0.0 || *discount > 1.0 || !on_demand || *on_demand < 0.0 ||
      !upfront || *upfront < 0.0 || !reserved || *reserved < 0.0 || !term ||
      !plain_token(name)) {
    return false;
  }
  out.account = account;
  out.version = static_cast<std::uint64_t>(*version);
  out.now = static_cast<Hour>(*now);
  out.selling_discount = Fraction{*discount};
  out.type.name = name;
  out.type.on_demand_hourly = Rate{*on_demand};
  out.type.upfront = Money{*upfront};
  out.type.reserved_hourly = Rate{*reserved};
  out.type.term = static_cast<Hour>(*term);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      continue;  // trailing newline after the last row
    }
    const std::vector<std::string_view> row = common::split(lines[i], ' ');
    if (row.size() != 4 || row[0] != "r") {
      return false;
    }
    const auto id = parse_non_negative(row[1]);
    const auto start = parse_non_negative(row[2]);
    const auto worked = parse_non_negative(row[3]);
    if (!id || !start || !worked || *start > static_cast<long long>(out.now) ||
        *worked > static_cast<long long>(out.now) - *start) {
      return false;
    }
    if (!out.reservations.empty() &&
        static_cast<fleet::ReservationId>(*id) <= out.reservations.back().id) {
      return false;  // rows must be sorted by id and unique (binary search)
    }
    out.reservations.push_back(ReservationState{static_cast<fleet::ReservationId>(*id),
                                                static_cast<Hour>(*start),
                                                static_cast<Hour>(*worked)});
  }
  return true;
}

}  // namespace rimarket::serve
