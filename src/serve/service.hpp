// The resident advisor service: a long-lived request loop answering
// sell/keep questions against live account snapshots.
//
// One `AdvisorService` owns the snapshot table, a metrics registry with
// per-endpoint latency histograms, and a worker pool.  Requests enter
// either synchronously (`handle_line`, the in-process driver used by tests
// and the replay harness) or asynchronously (`submit`, bounded by an
// admission gate that answers `BUSY` instead of queueing without limit).
// Every failure mode — malformed input, unknown account, an injected
// chaos fault — is absorbed into a per-request `ERROR` response: the
// process and all other in-flight requests keep going.  See DESIGN.md
// "Advisor service".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/thread_safety.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"

namespace rimarket::common::fault_injection {
class Schedule;
}

namespace rimarket::pricing {
class PricingCatalog;
}

namespace rimarket::serve {

/// Tuning and wiring for one service instance.
struct ServiceConfig {
  /// Worker threads for the asynchronous path (0 = hardware concurrency).
  std::size_t threads = 1;
  /// Admission gate: submit() answers BUSY once this many requests are
  /// in flight (queued or executing).
  std::size_t max_pending = 64;
  /// Pricing catalog snapshots resolve instance names against; nullptr
  /// means the builtin Jan-2018 catalog.
  const pricing::PricingCatalog* catalog = nullptr;
  /// Chaos only: when set, every request executes under its own
  /// fault-injection ScopedContext keyed by the request sequence number,
  /// so fault placement is independent of thread scheduling (the same
  /// model as sim::evaluate_sweep).  Must outlive the service.
  const common::fault_injection::Schedule* fault_schedule = nullptr;
  /// Write-ahead journal for SNAPSHOT_UPDATE durability: every accepted
  /// update is appended here before publication, and construction replays
  /// the file so the store survives SIGKILL.  Empty disables journaling
  /// (updates live only in memory).
  std::string journal_path;
  /// Disk-barrier discipline for the journal (kNever speeds up tests).
  common::durable::FsyncMode journal_fsync = common::durable::FsyncMode::kAlways;
  /// Journal compaction threshold in bytes (0 never compacts).
  std::size_t journal_compact_bytes = std::size_t{1} << 20;
};

/// Bounded in-flight counter: the service's backpressure primitive,
/// exposed separately so admission behaviour is unit-testable without
/// threads.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t capacity);

  /// Claims a slot; false when `capacity` requests are already in flight.
  bool try_enter();
  /// Releases a slot claimed by try_enter().
  void leave();

  std::size_t in_flight() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable common::Mutex mutex_;
  std::size_t in_flight_ RIMARKET_GUARDED_BY(mutex_) = 0;
};

class AdvisorService {
 public:
  explicit AdvisorService(ServiceConfig config = {});

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Parses and executes one request line, returning the response line.
  /// Total: never throws for any input; failures become ERROR responses.
  std::string handle_line(std::string_view line);

  enum class Admit { kAccepted, kBusy };

  /// Asynchronous entry: runs the request on the worker pool and passes
  /// the response line to `done` (called on a worker thread).  Returns
  /// kBusy — without invoking `done` — when the admission gate is full;
  /// the caller should answer `busy_response()`.
  Admit submit(std::string line, std::function<void(std::string)> done);

  /// Blocks until every accepted request has completed.
  void wait_idle();

  /// The service's counters and latency distributions.
  const common::MetricsRegistry& metrics() const { return metrics_; }
  /// The METRICS response body (also reachable via the METRICS verb).
  std::string metrics_json() const { return metrics_.to_json(); }

  const SnapshotStore& snapshots() const { return store_; }
  const ServiceConfig& config() const { return config_; }

  /// True when a journal was requested, recovered, and is accepting
  /// appends (a configured-but-unopenable journal degrades to false).
  bool journal_enabled() const;

 private:
  /// The whole request path for one line; `sequence` keys the chaos scope.
  std::string process(std::string_view line, std::uint64_t sequence);
  /// Dispatches a parsed request; may throw (process() absorbs it).
  std::string execute(const Request& request);
  std::uint64_t next_sequence() { return sequence_.fetch_add(1, std::memory_order_relaxed); }

  ServiceConfig config_;
  const pricing::PricingCatalog& catalog_;
  SnapshotStore store_;
  common::MetricsRegistry metrics_;
  AdmissionGate gate_;
  common::ThreadPool pool_;
  std::atomic<std::uint64_t> sequence_{0};
  /// Serializes the journal-append → publish pair across updates, which
  /// both protects journal_ and fixes the append order to equal the
  /// publication order (the recovery proof depends on that).  Lock order:
  /// update_mutex_ before SnapshotStore::mutex_, never the reverse.
  mutable common::Mutex update_mutex_;
  SnapshotJournal journal_ RIMARKET_GUARDED_BY(update_mutex_);
};

}  // namespace rimarket::serve
