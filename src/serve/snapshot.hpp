// Copy-on-write account snapshots for the advisor service.
//
// The service answers ADVISE/BREAKEVEN reads against per-account fleet
// snapshots while SNAPSHOT_UPDATE writes arrive concurrently.  Rather than
// lock a mutable fleet for the duration of every request, each account maps
// to an immutable `shared_ptr<const AccountSnapshot>`: readers grab the
// pointer under a brief lock and then compute entirely lock-free, and a
// writer publishes a freshly built snapshot by swapping the pointer — reads
// never block behind an update, and an in-flight ADVISE keeps answering
// against the version it started with.  See DESIGN.md "Advisor service".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "fleet/reservation.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::serve {

/// One reservation's advisor-relevant state: when it was booked and how
/// many hours it has worked so far (the statistic the paper's A_{fT}
/// decision rule consumes).
struct ReservationState {
  fleet::ReservationId id = 0;
  Hour start = 0;
  Hour worked_hours = 0;

  bool operator==(const ReservationState&) const = default;
};

/// Immutable view of one account's fleet at a point in time.  Built by the
/// protocol layer (which validates user input) and published wholesale;
/// nothing mutates a snapshot after publication.
struct AccountSnapshot {
  std::string account;
  pricing::InstanceType type;
  /// The account's marketplace selling discount a.
  Fraction selling_discount{0.8};
  /// The account's clock: hours elapsed on the fleet timeline.  Decision
  /// spots past `now` have not been reached yet.
  Hour now = 0;
  /// Monotonic per-account version, assigned at publication.
  std::uint64_t version = 0;
  /// Sorted by id, ids unique (the protocol layer enforces this).
  std::vector<ReservationState> reservations;

  /// Binary search by id; nullptr when absent.
  const ReservationState* find(fleet::ReservationId id) const;
};

/// The store's verdict on a versioned publication attempt (publish_at).
enum class PublishOutcome {
  kPublished,   ///< the snapshot replaced the slot at a strictly newer version
  kIdempotent,  ///< exact re-publication of the current version; slot untouched
  kStale,       ///< older than the current version; slot untouched
};

/// The service's account table.  Thread-safe; the lock is held only for
/// pointer reads/swaps, never across snapshot construction or advice.
class SnapshotStore {
 public:
  /// The published snapshot for `account`, or nullptr if never published.
  std::shared_ptr<const AccountSnapshot> lookup(std::string_view account) const;

  /// Publishes `snapshot` under `snapshot.account`, replacing any previous
  /// version.  Returns the assigned version (previous + 1, starting at 1).
  std::uint64_t publish(AccountSnapshot snapshot);

  /// Publishes `snapshot` at exactly `version` (which must be >= 1): the
  /// journaled-update path, where the version was fixed *before* the append
  /// and must not be re-assigned here.  Only a strictly newer version
  /// replaces the slot; `version` equal to the current one is the
  /// idempotent re-send of an acknowledged update, anything older is stale.
  PublishOutcome publish_at(AccountSnapshot snapshot, std::uint64_t version);

  /// Number of accounts with a published snapshot.
  std::size_t size() const;

  /// Account names with a published snapshot, sorted.
  std::vector<std::string> accounts() const;

  /// Every published snapshot, ordered by account name — the compaction
  /// checkpoint's source of truth.
  std::vector<std::shared_ptr<const AccountSnapshot>> all() const;

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, std::shared_ptr<const AccountSnapshot>, std::less<>> accounts_
      RIMARKET_GUARDED_BY(mutex_);
};

}  // namespace rimarket::serve
