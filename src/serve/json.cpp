#include "serve/json.hpp"

#include "common/strings.hpp"

namespace rimarket::serve {

namespace {

/// Recursive-descent parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(JsonError* error) {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, 0)) {
      report(error);
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      report(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxJsonDepth) {
      return fail("nesting deeper than 32 levels");
    }
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
      case 'f':
        return parse_keyword(out);
      case 'n':
        return parse_keyword(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_whitespace();
      if (!consume(':')) {
        return fail("expected ':' after object key");
      }
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) {
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.array.push_back(std::move(value));
      skip_whitespace();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        return fail("unexpected end of input in string escape");
      }
      switch (text_[pos_]) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        default:
          return fail("unsupported string escape");
      }
      ++pos_;
    }
    return fail("unexpected end of input in string");
  }

  bool parse_keyword(JsonValue& out) {
    const std::string_view rest = text_.substr(pos_);
    if (common::starts_with(rest, "true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (common::starts_with(rest, "false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (common::starts_with(rest, "null")) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("invalid JSON keyword");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                           c == '+' || c == '-';
      if (!numeric) {
        break;
      }
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    // parse_double enforces the finite-decimal contract (no inf/nan/hex,
    // no ERANGE overflow), which is exactly the JSON number grammar's intent.
    const auto value = common::parse_double(token);
    if (!value) {
      pos_ = start;
      return fail("invalid JSON number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = *value;
    return true;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        return;
      }
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool fail(std::string_view message) {
    // Keep the first (innermost) diagnosis; later frames just unwind.
    if (error_message_.empty()) {
      error_message_ = message;
      error_offset_ = pos_;
    }
    return false;
  }

  void report(JsonError* error) const {
    if (error != nullptr) {
      error->offset = error_offset_;
      error->message = error_message_.empty() ? "invalid JSON" : error_message_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_message_;
  std::size_t error_offset_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::string JsonError::to_string() const {
  return common::format("offset %zu: %s", offset, message.c_str());
}

std::optional<JsonValue> parse_json(std::string_view text, JsonError* error) {
  Parser parser(text);
  return parser.parse(error);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  return common::format("%.17g", value);
}

}  // namespace rimarket::serve
