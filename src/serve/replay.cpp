#include "serve/replay.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "serve/service.hpp"

namespace rimarket::serve {

namespace {

/// Every latency metric key the service can emit, sorted.
constexpr std::array<std::string_view, 6> kEndpoints = {
    "advise", "breakeven", "invalid", "metrics", "ping", "snapshot_update"};

bool is_snapshot_update(std::string_view line) {
  return common::starts_with(common::trim(line), "SNAPSHOT_UPDATE");
}

}  // namespace

ReplayDriver::ReplayDriver(ReplayConfig config) : config_(config) {}

LatencyReport ReplayDriver::replay(std::span<const std::string> requests) const {
  ServiceConfig service_config;
  service_config.threads = config_.threads;
  service_config.max_pending = config_.max_pending;
  service_config.catalog = config_.catalog;
  service_config.fault_schedule = config_.fault_schedule;
  service_config.journal_path = config_.journal_path;
  AdvisorService service(service_config);

  LatencyReport report;
  report.requests = requests.size();
  report.responses.resize(requests.size());

  common::Rng arrivals(config_.seed);
  const bool paced = config_.arrivals_per_second > 0.0;
  auto next_arrival = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (paced) {
      next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              arrivals.exponential(config_.arrivals_per_second)));
      std::this_thread::sleep_until(next_arrival);
    }
    const std::string& line = requests[i];
    if (is_snapshot_update(line)) {
      // Barrier: updates apply between fully drained read waves, so every
      // read sees the snapshot version its trace position implies.
      service.wait_idle();
      report.responses[i] = service.handle_line(line);
      continue;
    }
    // The callback writes its own pre-sized slot; slots are distinct
    // objects, so concurrent completions never touch the same memory.
    std::string* slot = &report.responses[i];
    auto deliver = [slot](std::string response) { *slot = std::move(response); };
    if (service.submit(line, deliver) == AdvisorService::Admit::kBusy) {
      ++report.gate_stalls;
      service.wait_idle();  // drain, then the gate has room for one more
      if (service.submit(line, deliver) == AdvisorService::Admit::kBusy) {
        report.responses[i] = busy_response(service.config().max_pending);
      }
    }
  }
  service.wait_idle();

  for (const std::string& response : report.responses) {
    if (common::starts_with(response, "ERROR")) {
      ++report.errors;
    }
  }
  for (const std::string_view endpoint : kEndpoints) {
    const auto distribution = service.metrics().distribution(
        common::format("serve.latency_us.%s", std::string(endpoint).c_str()));
    if (distribution) {
      report.endpoints.push_back(EndpointLatency{std::string(endpoint), *distribution});
    }
  }
  const auto counter = [&service](std::string_view name) -> std::uint64_t {
    const auto value = service.metrics().get(name);
    return value ? static_cast<std::uint64_t>(*value) : 0;
  };
  report.busy_rejections = counter("serve.busy_rejections");
  report.journal_records_replayed = counter("serve.journal.records_replayed");
  report.journal_truncated_bytes = counter("serve.journal.truncated_bytes");
  return report;
}

LatencyReport ReplayDriver::replay_file(const std::string& path,
                                        common::CsvError* error) const {
  const auto contents = common::read_file(path, error);
  if (!contents) {
    return LatencyReport{};
  }
  std::vector<std::string> lines;
  for (const std::string_view raw : common::split(*contents, '\n')) {
    const std::string_view line = common::trim(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    lines.emplace_back(line);
  }
  return replay(lines);
}

std::string LatencyReport::to_json() const {
  std::string endpoints_json = "{";
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const EndpointLatency& e = endpoints[i];
    if (i > 0) {
      endpoints_json += ',';
    }
    endpoints_json += common::format(
        "\"%s\":{\"count\":%llu,\"max\":%.3f,\"mean\":%.3f,\"min\":%.3f,\"p99\":%.3f}",
        e.endpoint.c_str(), static_cast<unsigned long long>(e.latency_us.count),
        e.latency_us.max, e.latency_us.mean, e.latency_us.min, e.latency_us.p99);
  }
  endpoints_json += '}';
  return common::format(
      "{\"busy_rejections\":%llu,\"endpoints\":%s,\"errors\":%llu,\"gate_stalls\":%llu,"
      "\"journal\":{\"records_replayed\":%llu,\"truncated_bytes\":%llu},"
      "\"requests\":%llu}",
      static_cast<unsigned long long>(busy_rejections), endpoints_json.c_str(),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(gate_stalls),
      static_cast<unsigned long long>(journal_records_replayed),
      static_cast<unsigned long long>(journal_truncated_bytes),
      static_cast<unsigned long long>(requests));
}

std::string LatencyReport::render() const {
  common::TextTable table({"endpoint", "count", "mean_us", "min_us", "max_us", "p99_us"});
  for (const EndpointLatency& e : endpoints) {
    table.add_row({e.endpoint,
                   common::format("%llu", static_cast<unsigned long long>(e.latency_us.count)),
                   common::format("%.1f", e.latency_us.mean),
                   common::format("%.1f", e.latency_us.min),
                   common::format("%.1f", e.latency_us.max),
                   common::format("%.1f", e.latency_us.p99)});
  }
  return table.render() +
         common::format("requests %llu, errors %llu, gate stalls %llu, busy %llu\n",
                        static_cast<unsigned long long>(requests),
                        static_cast<unsigned long long>(errors),
                        static_cast<unsigned long long>(gate_stalls),
                        static_cast<unsigned long long>(busy_rejections)) +
         common::format("journal: %llu records replayed, %llu bytes truncated\n",
                        static_cast<unsigned long long>(journal_records_replayed),
                        static_cast<unsigned long long>(journal_truncated_bytes));
}

std::vector<std::string> generate_request_trace(const RequestTraceSpec& spec,
                                                std::uint64_t seed) {
  common::Rng rng(seed);
  // A trace needs at least one account and one reservation to aim reads at.
  const auto accounts = static_cast<std::int64_t>(std::max<std::size_t>(1, spec.accounts));
  const auto per_account =
      static_cast<std::int64_t>(std::max<std::size_t>(1, spec.reservations_per_account));
  std::vector<std::string> lines;
  lines.reserve(spec.accounts + spec.requests + spec.updates);
  const auto account_name = [](std::size_t i) { return common::format("acct-%zu", i); };
  const auto snapshot_line = [&](std::size_t i) {
    // Fleet clock landing in the second half of a 1-year term, so all
    // three decision spots are reachable for old-enough reservations.
    const Hour now = 4000 + rng.uniform_int(0, 4000);
    std::string rows;
    for (std::int64_t j = 0; j < per_account; ++j) {
      const Hour start = rng.uniform_int(0, now);
      const Hour worked = rng.uniform_int(0, now - start);
      rows += common::format("%s[%lld,%lld,%lld]", j == 0 ? "" : ",",
                             static_cast<long long>(j), static_cast<long long>(start),
                             static_cast<long long>(worked));
    }
    return common::format(
        "SNAPSHOT_UPDATE %s "
        "{\"instance\":\"%s\",\"discount\":0.8,\"now\":%lld,\"reservations\":[%s]}",
        account_name(i).c_str(), spec.instance.c_str(), static_cast<long long>(now),
        rows.c_str());
  };
  for (std::size_t i = 0; i < static_cast<std::size_t>(accounts); ++i) {
    lines.push_back(snapshot_line(i));
  }
  const std::size_t stride =
      spec.updates == 0 ? 0
                        : std::max<std::size_t>(std::size_t{1},
                                                spec.requests / (spec.updates + 1));
  std::size_t refreshes = 0;
  for (std::size_t r = 0; r < spec.requests; ++r) {
    if (stride != 0 && refreshes < spec.updates && r > 0 && r % stride == 0) {
      lines.push_back(snapshot_line(
          static_cast<std::size_t>(rng.uniform_int(0, accounts - 1))));
      ++refreshes;
    }
    const std::string account =
        account_name(static_cast<std::size_t>(rng.uniform_int(0, accounts - 1)));
    if (rng.uniform01() < spec.breakeven_share.value()) {
      lines.push_back(common::format("BREAKEVEN %s %.4f", account.c_str(),
                                     rng.uniform_real(0.05, 0.95)));
    } else {
      const auto id = rng.uniform_int(0, per_account - 1);
      lines.push_back(
          common::format("ADVISE %s %lld", account.c_str(), static_cast<long long>(id)));
    }
  }
  return lines;
}

}  // namespace rimarket::serve
