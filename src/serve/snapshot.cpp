#include "serve/snapshot.hpp"

#include <algorithm>

namespace rimarket::serve {

const ReservationState* AccountSnapshot::find(fleet::ReservationId id) const {
  const auto it = std::lower_bound(
      reservations.begin(), reservations.end(), id,
      [](const ReservationState& state, fleet::ReservationId key) { return state.id < key; });
  if (it == reservations.end() || it->id != id) {
    return nullptr;
  }
  return &*it;
}

std::shared_ptr<const AccountSnapshot> SnapshotStore::lookup(std::string_view account) const {
  const common::MutexLock lock(mutex_);
  const auto it = accounts_.find(account);
  if (it == accounts_.end()) {
    return nullptr;
  }
  return it->second;
}

std::uint64_t SnapshotStore::publish(AccountSnapshot snapshot) {
  auto shared = std::make_shared<AccountSnapshot>(std::move(snapshot));
  const common::MutexLock lock(mutex_);
  auto& slot = accounts_[shared->account];
  shared->version = (slot == nullptr ? 0 : slot->version) + 1;
  const std::uint64_t version = shared->version;
  slot = std::move(shared);
  return version;
}

PublishOutcome SnapshotStore::publish_at(AccountSnapshot snapshot, std::uint64_t version) {
  snapshot.version = version;
  auto shared = std::make_shared<const AccountSnapshot>(std::move(snapshot));
  const common::MutexLock lock(mutex_);
  // find-then-insert rather than operator[]: a stale or idempotent attempt
  // must not plant an empty slot for an account that was never published.
  const auto it = accounts_.find(shared->account);
  const std::uint64_t current = it == accounts_.end() ? 0 : it->second->version;
  if (version == current && current != 0) {
    return PublishOutcome::kIdempotent;
  }
  if (version <= current) {
    return PublishOutcome::kStale;
  }
  if (it == accounts_.end()) {
    const std::string account = shared->account;
    accounts_.emplace(account, std::move(shared));
  } else {
    it->second = std::move(shared);
  }
  return PublishOutcome::kPublished;
}

std::size_t SnapshotStore::size() const {
  const common::MutexLock lock(mutex_);
  return accounts_.size();
}

std::vector<std::string> SnapshotStore::accounts() const {
  const common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(accounts_.size());
  for (const auto& [name, snapshot] : accounts_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::shared_ptr<const AccountSnapshot>> SnapshotStore::all() const {
  const common::MutexLock lock(mutex_);
  std::vector<std::shared_ptr<const AccountSnapshot>> snapshots;
  snapshots.reserve(accounts_.size());
  for (const auto& [name, snapshot] : accounts_) {
    snapshots.push_back(snapshot);
  }
  return snapshots;
}

}  // namespace rimarket::serve
