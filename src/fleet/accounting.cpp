#include "fleet/accounting.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/float_compare.hpp"

namespace rimarket::fleet {

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& other) {
  on_demand += other.on_demand;
  upfront += other.upfront;
  reserved_hourly += other.reserved_hourly;
  sale_income += other.sale_income;
  return *this;
}

CostBreakdown operator+(CostBreakdown lhs, const CostBreakdown& rhs) {
  lhs += rhs;
  return lhs;
}

CostLedger::CostLedger(bool keep_hourly_series) : keep_hourly_series_(keep_hourly_series) {}

void CostLedger::record(Hour t, const CostBreakdown& hour_cost) {
  RIMARKET_EXPECTS(t >= 0);
  RIMARKET_EXPECTS(std::isfinite(hour_cost.net().value()));
  totals_ += hour_cost;
  if (keep_hourly_series_) {
    if (hourly_.size() <= static_cast<std::size_t>(t)) {
      hourly_.resize(static_cast<std::size_t>(t) + 1);
    }
    hourly_[static_cast<std::size_t>(t)] += hour_cost;
  }
}

CostBreakdown hourly_cost(const pricing::InstanceType& type, Count on_demand,
                          Count new_reservations, Count active_reserved, Count worked_reserved,
                          ChargePolicy policy) {
  RIMARKET_EXPECTS(on_demand >= 0);
  RIMARKET_EXPECTS(new_reservations >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  RIMARKET_EXPECTS(worked_reserved >= 0 && worked_reserved <= active_reserved);
  CostBreakdown cost;
  cost.on_demand = Money{static_cast<double>(on_demand) * type.on_demand_hourly.value()};
  cost.upfront = Money{static_cast<double>(new_reservations) * type.upfront.value()};
  const Count billed =
      policy == ChargePolicy::kAllActiveHours ? active_reserved : worked_reserved;
  cost.reserved_hourly = Money{static_cast<double>(billed) * type.reserved_hourly.value()};
  return cost;
}

void audit_hourly_identity(const pricing::InstanceType& type, const CostBreakdown& hour,
                           Count on_demand, Count new_reservations, Count active_reserved,
                           Count worked_reserved, Count active_before_sales,
                           Count sold_this_hour, ChargePolicy policy) {
  RIMARKET_EXPECTS(on_demand >= 0);
  RIMARKET_EXPECTS(new_reservations >= 0);
  RIMARKET_EXPECTS(active_reserved >= 0);
  RIMARKET_EXPECTS(worked_reserved >= 0 && worked_reserved <= active_reserved);
  RIMARKET_EXPECTS(active_before_sales >= 0);
  RIMARKET_EXPECTS(sold_this_hour >= 0 && sold_this_hour <= active_before_sales);
  RIMARKET_CHECK_MSG(hour.on_demand >= Money{0.0} && hour.upfront >= Money{0.0} &&
                         hour.reserved_hourly >= Money{0.0},
                     "cost components are non-negative by construction");
  RIMARKET_CHECK_MSG(std::isfinite(hour.net().value()), "hourly cost must stay finite");
  // Sale timing (Eq. (1)): s_t removes the instance at the decision spot,
  // so the billed r_t must be the pre-sale fleet minus this hour's sales.
  RIMARKET_CHECK_MSG(active_reserved == active_before_sales - sold_this_hour,
                     "instances sold at hour t must be excluded from hour t's r_t");
  RIMARKET_CHECK_MSG(hour.sale_income >= Money{0.0} && std::isfinite(hour.sale_income.value()),
                     "sale income must be finite and non-negative");
  // Eq. (1) spend recomputed through alpha(): r_t * (alpha * p) rather than
  // hourly_cost's r_t * reserved_hourly, so an invariant drift in either
  // derivation trips the audit.
  const Count billed =
      policy == ChargePolicy::kAllActiveHours ? active_reserved : worked_reserved;
  const double expected =
      static_cast<double>(on_demand) * type.on_demand_hourly.value() +
      static_cast<double>(new_reservations) * type.upfront.value() +
      static_cast<double>(billed) * type.alpha().value() * type.on_demand_hourly.value();
  const double actual = hour.on_demand.value() + hour.upfront.value() +
                        hour.reserved_hourly.value();
  RIMARKET_CHECK_MSG(common::approx_equal(actual, expected, 1e-9),
                     "hourly spend must match the Eq. (1) recomputation");
}

}  // namespace rimarket::fleet
