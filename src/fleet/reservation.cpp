#include "fleet/reservation.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::fleet {

ReservationState Reservation::state(Hour now) const {
  if (sold && now >= sold_at) {
    return ReservationState::kSold;
  }
  if (now >= end()) {
    return ReservationState::kExpired;
  }
  return ReservationState::kActive;
}

Hour Reservation::remaining(Hour now) const {
  if (sold && now >= sold_at) {
    return 0;
  }
  return std::max<Hour>(0, end() - std::max(now, start));
}

double Reservation::remaining_fraction(Hour now) const {
  RIMARKET_EXPECTS(term > 0);
  const double fraction = static_cast<double>(remaining(now)) / static_cast<double>(term);
  // Eq. (1)'s rp term: the marketplace can never price more than the whole
  // contract or less than nothing.
  RIMARKET_ENSURES(fraction >= 0.0 && fraction <= 1.0);
  return fraction;
}

}  // namespace rimarket::fleet
