#include "fleet/reservation.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::fleet {

ReservationState Reservation::state(Hour now) const {
  if (sold && now >= sold_at) {
    return ReservationState::kSold;
  }
  if (now >= end()) {
    return ReservationState::kExpired;
  }
  return ReservationState::kActive;
}

Hour Reservation::remaining(Hour now) const {
  if (sold && now >= sold_at) {
    return 0;
  }
  return std::max<Hour>(0, end() - std::max(now, start));
}

double Reservation::remaining_fraction(Hour now) const {
  RIMARKET_EXPECTS(term > 0);
  return static_cast<double>(remaining(now)) / static_cast<double>(term);
}

}  // namespace rimarket::fleet
