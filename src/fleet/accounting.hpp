// Cost accounting per the paper's Eq. (1):
//
//   C_t = o_t*p + n_t*R + r_t*alpha*p - s_t*a*rp*R
//
// Two charging conventions exist in the paper (see DESIGN.md "Cost-model
// variants"): Eq. (1) bills every active reserved hour, while the
// competitive analysis bills only worked hours.  `ChargePolicy` selects
// between them; the trace evaluation uses kAllActiveHours.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::fleet {

enum class ChargePolicy {
  /// r_t * alpha * p — every active reserved hour accrues the discounted
  /// rate (paper Eq. (1); matches partial-upfront billing).
  kAllActiveHours,
  /// alpha * p only for hours the instance served demand (the convention
  /// of the paper's competitive analysis, Eqs. (4)-(50)).
  kWorkedHoursOnly,
};

/// One hour's (or one run's) cost components; negative sale income is kept
/// separate so reports can show gross spend and marketplace offsets.
struct CostBreakdown {
  Money on_demand{0.0};        ///< o_t * p
  Money upfront{0.0};          ///< n_t * R
  Money reserved_hourly{0.0};  ///< r_t * alpha * p (or worked hours only)
  Money sale_income{0.0};      ///< s_t * a * rp * R (subtracted)

  /// Net cost: spend minus marketplace income (paper Eq. (1)).
  Money net() const { return on_demand + upfront + reserved_hourly - sale_income; }

  CostBreakdown& operator+=(const CostBreakdown& other);
};

CostBreakdown operator+(CostBreakdown lhs, const CostBreakdown& rhs);

/// Accumulates per-hour breakdowns plus event counters over a run.
class CostLedger {
 public:
  explicit CostLedger(bool keep_hourly_series = false);

  /// Records one simulated hour.
  void record(Hour t, const CostBreakdown& hour_cost);

  /// Event counters (for reports and invariant checks).
  void count_reservation() { ++reservations_made_; }
  void count_sale() { ++instances_sold_; }
  void count_on_demand_hours(Count hours) { on_demand_hours_ += hours; }

  const CostBreakdown& totals() const { return totals_; }
  Money net_cost() const { return totals_.net(); }

  Count reservations_made() const { return reservations_made_; }
  Count instances_sold() const { return instances_sold_; }
  Count on_demand_hours() const { return on_demand_hours_; }

  /// Hourly series (empty unless enabled at construction).
  const std::vector<CostBreakdown>& hourly() const { return hourly_; }

 private:
  CostBreakdown totals_;
  Count reservations_made_ = 0;
  Count instances_sold_ = 0;
  Count on_demand_hours_ = 0;
  bool keep_hourly_series_;
  std::vector<CostBreakdown> hourly_;
};

/// Cost of one hour given the assignment outcome, prices and charge policy.
CostBreakdown hourly_cost(const pricing::InstanceType& type, Count on_demand,
                          Count new_reservations, Count active_reserved, Count worked_reserved,
                          ChargePolicy policy);

/// Debug audit of the ledger's statically-checkable invariants: recomputes
/// the hour's spend straight from Eq. (1) — o_t*p + n_t*R + r_t*(alpha*p) with
/// r_t the billed reserved hours under `policy` — through the alpha() identity
/// (a different arithmetic path than hourly_cost) and aborts if `hour`
/// diverges beyond floating-point tolerance or any component is negative or
/// non-finite.  Also cross-checks the sale-timing semantics: an instance
/// sold this hour leaves the fleet at the decision spot, so
/// `active_reserved` (the r_t that was billed) must equal
/// `active_before_sales - sold_this_hour`, and the hour's sale income must
/// be finite and non-negative.  Cheap enough to stay on in every build;
/// called by the simulator for every simulated hour.
void audit_hourly_identity(const pricing::InstanceType& type, const CostBreakdown& hour,
                           Count on_demand, Count new_reservations, Count active_reserved,
                           Count worked_reserved, Count active_before_sales,
                           Count sold_this_hour, ChargePolicy policy);

}  // namespace rimarket::fleet
