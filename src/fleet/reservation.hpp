// A single reserved-instance contract and its lifecycle.
//
// State machine: Active from `start` until either it is sold on the
// marketplace (Sold, at `sold_at`) or the term runs out (Expired).  The
// ledger tracks how many hours the instance actually served demand
// (`worked_hours`) — the statistic the paper's selling rule compares against
// the break-even point beta.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rimarket::fleet {

using ReservationId = std::int64_t;

enum class ReservationState {
  kActive,
  kSold,
  kExpired,
};

struct Reservation {
  ReservationId id = 0;
  /// Hour the contract began (upfront fee paid here).
  Hour start = 0;
  /// Contract length in hours.
  Hour term = 0;
  /// Hours this instance actually served one unit of demand so far.
  Hour worked_hours = 0;
  /// Hour the instance was sold; meaningful only when sold.
  Hour sold_at = -1;
  bool sold = false;

  /// End of the contract (exclusive).
  Hour end() const { return start + term; }

  /// Lifecycle state as of hour `now`.
  ReservationState state(Hour now) const;

  /// True when the contract can serve demand at hour `now`.
  bool active(Hour now) const { return state(now) == ReservationState::kActive; }

  /// Hours since the contract began (>= 0 only after start).
  Hour age(Hour now) const { return now - start; }

  /// Hours of contract left after `now` (0 when past end or sold).
  Hour remaining(Hour now) const;

  /// Remaining fraction of the term at hour `now` — the `rp` of paper
  /// Eq. (1)'s sale credit `a·rp·R`.  Postcondition (RIMARKET_ENSURES):
  /// the result is in [0, 1].
  double remaining_fraction(Hour now) const;
};

}  // namespace rimarket::fleet
