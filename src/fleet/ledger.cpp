#include "fleet/ledger.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::fleet {

ReservationLedger::ReservationLedger(Hour term) : term_(term) { RIMARKET_EXPECTS(term >= 1); }

ReservationId ReservationLedger::reserve(Hour now) {
  RIMARKET_EXPECTS(now >= 0);
  RIMARKET_EXPECTS(now >= last_time_);
  last_time_ = now;
  const auto id = static_cast<ReservationId>(reservations_.size());
  reservations_.push_back(Reservation{id, now, term_, 0, -1, false});
  active_.push_back(id);
  return id;
}

void ReservationLedger::expire_until(Hour now) {
  while (!active_.empty()) {
    const Reservation& front = reservations_[static_cast<std::size_t>(active_.front())];
    if (front.end() <= now) {
      active_.pop_front();
    } else {
      break;
    }
  }
}

AssignmentResult ReservationLedger::assign(Hour now, Count demand,
                                           std::vector<ReservationId>* served) {
  RIMARKET_EXPECTS(now >= 0);
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(now >= last_time_);
  last_time_ = now;
  expire_until(now);
  if (served != nullptr) {
    served->clear();
  }
  AssignmentResult result;
  result.active = static_cast<Count>(active_.size());
  Count assigned = 0;
  for (const ReservationId id : active_) {
    if (assigned >= demand) {
      break;
    }
    Reservation& reservation = reservations_[static_cast<std::size_t>(id)];
    ++reservation.worked_hours;
    // Paper invariant w <= elapsed: a contract serving the hour starting at
    // `now` has worked at most age+1 whole hours since it began.
    RIMARKET_ENSURES(reservation.worked_hours <= reservation.age(now) + 1);
    ++assigned;
    if (served != nullptr) {
      served->push_back(id);
    }
  }
  result.served_by_reserved = assigned;
  result.on_demand = demand - assigned;
  RIMARKET_ENSURES(result.on_demand >= 0);
  RIMARKET_ENSURES(result.served_by_reserved + result.on_demand == demand);
  return result;
}

Count ReservationLedger::active_count(Hour now) {
  expire_until(now);
  return static_cast<Count>(active_.size());
}

std::vector<ReservationId> ReservationLedger::due_at_age(Hour now, Hour age) const {
  RIMARKET_EXPECTS(age >= 0);
  std::vector<ReservationId> due;
  for (const ReservationId id : active_) {
    const Reservation& reservation = reservations_[static_cast<std::size_t>(id)];
    if (reservation.age(now) == age) {
      due.push_back(id);
    }
  }
  return due;
}

void ReservationLedger::sell(ReservationId id, Hour now) {
  RIMARKET_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < reservations_.size());
  Reservation& reservation = reservations_[static_cast<std::size_t>(id)];
  RIMARKET_EXPECTS(reservation.active(now));
  reservation.sold = true;
  reservation.sold_at = now;
  const auto it = std::find(active_.begin(), active_.end(), id);
  RIMARKET_CHECK_MSG(it != active_.end(), "sold reservation must be in the active set");
  active_.erase(it);
}

const Reservation& ReservationLedger::get(ReservationId id) const {
  RIMARKET_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < reservations_.size());
  return reservations_[static_cast<std::size_t>(id)];
}

std::vector<ReservationId> ReservationLedger::active_ids(Hour now) {
  expire_until(now);
  return {active_.begin(), active_.end()};
}

}  // namespace rimarket::fleet
