#include "fleet/ledger.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace rimarket::fleet {

namespace {
constexpr Hour kNeverExpires = std::numeric_limits<Hour>::max();
}  // namespace

ReservationLedger::ReservationLedger(Hour term, LedgerEngine engine)
    : term_(term), engine_(engine), next_expiry_(kNeverExpires) {
  RIMARKET_EXPECTS(term >= 1);
  if (engine_ == LedgerEngine::kOptimized) {
    // The credit difference array stays one slot larger than the fleet so
    // a range-add ending at the last id still has room for its -1 marker.
    credit_.push_back_zero();
  }
}

ReservationId ReservationLedger::reserve(Hour now) {
  RIMARKET_EXPECTS(now >= 0);
  RIMARKET_EXPECTS(now >= last_time_);
  last_time_ = now;
  const auto id = static_cast<ReservationId>(reservations_.size());
  reservations_.push_back(Reservation{id, now, term_, 0, -1, false});
  if (engine_ == LedgerEngine::kNaive) {
    active_.push_back(id);
    return id;
  }
  const auto slot = static_cast<std::size_t>(id);
  active_set_.push_back_zero();
  active_set_.add(slot, 1);
  credit_.push_back_zero();
  // A newborn id can owe no credit: every past prefix range-add [0..b] has
  // b < id, so its +1 at 0 and -1 at b+1 <= id cancel out in prefix(id).
  credit_flushed_.push_back(credit_.prefix(slot));
  RIMARKET_ENSURES(credit_flushed_.back() == 0);
  next_.push_back(kNoneId);
  prev_.push_back(tail_);
  if (tail_ == kNoneId) {
    head_ = id;
    next_expiry_ = reservations_[slot].end();
  } else {
    next_[static_cast<std::size_t>(tail_)] = id;
  }
  tail_ = id;
  ++active_size_;
  return id;
}

void ReservationLedger::expire_until(Hour now) {
  if (engine_ == LedgerEngine::kNaive) {
    while (!active_.empty()) {
      const Reservation& front = reservations_[static_cast<std::size_t>(active_.front())];
      if (front.end() <= now) {
        active_.pop_front();
      } else {
        break;
      }
    }
    return;
  }
  if (now < next_expiry_) {
    return;  // amortized O(1): the cursor says nothing can have expired
  }
  while (head_ != kNoneId && reservations_[static_cast<std::size_t>(head_)].end() <= now) {
    const ReservationId id = head_;
    retire_credit(id);
    active_set_.add(static_cast<std::size_t>(id), -1);
    unlink(id);
    --active_size_;
  }
  next_expiry_ =
      head_ == kNoneId ? kNeverExpires : reservations_[static_cast<std::size_t>(head_)].end();
}

void ReservationLedger::flush_credit(ReservationId id) const {
  if (engine_ == LedgerEngine::kNaive) {
    return;  // the naive engine writes worked_hours eagerly
  }
  const auto slot = static_cast<std::size_t>(id);
  const std::int64_t flushed = credit_flushed_[slot];
  if (flushed == kCreditFrozen) {
    return;
  }
  const std::int64_t accrued = credit_.prefix(slot);
  if (accrued != flushed) {
    reservations_[slot].worked_hours += accrued - flushed;
    credit_flushed_[slot] = accrued;
  }
}

void ReservationLedger::retire_credit(ReservationId id) {
  flush_credit(id);
  // Frozen: later prefix range-adds may sweep over this id's position, but
  // a contract out of the active set earns no further working time.
  credit_flushed_[static_cast<std::size_t>(id)] = kCreditFrozen;
}

void ReservationLedger::unlink(ReservationId id) {
  const auto slot = static_cast<std::size_t>(id);
  const ReservationId before = prev_[slot];
  const ReservationId after = next_[slot];
  if (before != kNoneId) {
    next_[static_cast<std::size_t>(before)] = after;
  } else {
    head_ = after;
  }
  if (after != kNoneId) {
    prev_[static_cast<std::size_t>(after)] = before;
  } else {
    tail_ = before;
  }
  next_[slot] = kNoneId;
  prev_[slot] = kNoneId;
}

AssignmentResult ReservationLedger::assign(Hour now, Count demand,
                                           std::vector<ReservationId>* served) {
  RIMARKET_EXPECTS(now >= 0);
  RIMARKET_EXPECTS(demand >= 0);
  RIMARKET_EXPECTS(now >= last_time_);
  last_time_ = now;
  expire_until(now);
  if (served != nullptr) {
    served->clear();
  }
  AssignmentResult result;
  if (engine_ == LedgerEngine::kNaive) {
    result.active = static_cast<Count>(active_.size());
    Count assigned = 0;
    for (const ReservationId id : active_) {
      if (assigned >= demand) {
        break;
      }
      Reservation& reservation = reservations_[static_cast<std::size_t>(id)];
      ++reservation.worked_hours;
      // Paper invariant w <= elapsed: a contract serving the hour starting
      // at `now` has worked at most age+1 whole hours since it began.
      RIMARKET_ENSURES(reservation.worked_hours <= reservation.age(now) + 1);
      ++assigned;
      if (served != nullptr) {
        served->push_back(id);
      }
    }
    result.served_by_reserved = assigned;
    result.on_demand = demand - assigned;
    RIMARKET_ENSURES(result.on_demand >= 0);
    RIMARKET_ENSURES(result.served_by_reserved + result.on_demand == demand);
    return result;
  }
  result.active = active_size_;
  const Count k = std::min(demand, active_size_);
  if (k > 0) {
    // Prefix-serving invariant (DESIGN.md): the k servers are exactly the
    // k smallest active ids, i.e. every active id in [0, boundary] where
    // boundary is the k-th active id.  One lazy range-add on the credit
    // difference array replaces k individual worked_hours writes.
    const std::size_t boundary = active_set_.select(k);
    credit_.add(0, 1);
    credit_.add(boundary + 1, -1);
    if (served != nullptr) {
      ReservationId id = head_;
      for (Count i = 0; i < k; ++i) {
        served->push_back(id);
        id = next_[static_cast<std::size_t>(id)];
      }
    }
    // Paper invariant w <= elapsed, spot-checked on the most-senior server
    // each hour (the naive engine checks every server eagerly; randomized
    // equivalence tests cover the rest).
    flush_credit(head_);
    const Reservation& senior = reservations_[static_cast<std::size_t>(head_)];
    RIMARKET_ENSURES(senior.worked_hours <= senior.age(now) + 1);
  }
  result.served_by_reserved = k;
  result.on_demand = demand - k;
  RIMARKET_ENSURES(result.on_demand >= 0);
  RIMARKET_ENSURES(result.served_by_reserved + result.on_demand == demand);
  return result;
}

Count ReservationLedger::active_count(Hour now) {
  expire_until(now);
  return engine_ == LedgerEngine::kNaive ? static_cast<Count>(active_.size()) : active_size_;
}

void ReservationLedger::due_at_age(Hour now, Hour age, std::vector<ReservationId>& out) const {
  out.clear();
  for_each_due(now, age, [&out](ReservationId id) { out.push_back(id); });
}

std::vector<ReservationId> ReservationLedger::due_at_age(Hour now, Hour age) const {
  std::vector<ReservationId> due;
  due_at_age(now, age, due);
  return due;
}

void ReservationLedger::sell(ReservationId id, Hour now) {
  RIMARKET_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < reservations_.size());
  Reservation& reservation = reservations_[static_cast<std::size_t>(id)];
  RIMARKET_EXPECTS(reservation.active(now));
  if (engine_ == LedgerEngine::kNaive) {
    reservation.sold = true;
    reservation.sold_at = now;
    const auto it = std::find(active_.begin(), active_.end(), id);
    RIMARKET_CHECK_MSG(it != active_.end(), "sold reservation must be in the active set");
    active_.erase(it);
    return;
  }
  retire_credit(id);
  reservation.sold = true;
  reservation.sold_at = now;
  active_set_.add(static_cast<std::size_t>(id), -1);
  const bool was_head = head_ == id;
  unlink(id);
  --active_size_;
  if (was_head) {
    next_expiry_ = head_ == kNoneId ? kNeverExpires
                                    : reservations_[static_cast<std::size_t>(head_)].end();
  }
}

const Reservation& ReservationLedger::get(ReservationId id) const {
  RIMARKET_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < reservations_.size());
  flush_credit(id);
  return reservations_[static_cast<std::size_t>(id)];
}

std::span<const Reservation> ReservationLedger::all() const {
  if (engine_ == LedgerEngine::kOptimized) {
    // Only contracts still in the active list can hold unflushed credit;
    // retired ones were flushed (and frozen) on the way out.
    for (ReservationId id = head_; id != kNoneId; id = next_[static_cast<std::size_t>(id)]) {
      flush_credit(id);
    }
  }
  return reservations_;
}

void ReservationLedger::active_ids(Hour now, std::vector<ReservationId>& out) {
  out.clear();
  for_each_active(now, [&out](ReservationId id) { out.push_back(id); });
}

std::vector<ReservationId> ReservationLedger::active_ids(Hour now) {
  std::vector<ReservationId> ids;
  active_ids(now, ids);
  return ids;
}

Count ReservationLedger::active_rank(Hour now, ReservationId id) {
  RIMARKET_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < reservations_.size());
  expire_until(now);
  RIMARKET_EXPECTS(reservations_[static_cast<std::size_t>(id)].active(now));
  if (engine_ == LedgerEngine::kNaive) {
    const auto it = std::find(active_.begin(), active_.end(), id);
    RIMARKET_CHECK_MSG(it != active_.end(), "active contracts are in the active set");
    return static_cast<Count>(it - active_.begin());
  }
  return static_cast<Count>(active_set_.prefix(static_cast<std::size_t>(id)) - 1);
}

}  // namespace rimarket::fleet
