// Growable Fenwick (binary-indexed) tree over int64 counters.
//
// Backs the optimized ReservationLedger engine twice over:
//   * a 0/1 "active set" tree indexed by reservation id, giving O(log n)
//     rank (how many active ids <= id) and select (the k-th active id) —
//     the two queries the prefix-serving invariant turns demand assignment
//     into;
//   * a difference-array "credit" tree carrying lazy range-adds of worked
//     hours over id prefixes, point-queried at flush time.
//
// Unlike the textbook fixed-size tree, this one grows append-only in
// O(log n) per element: the new internal node's value is derived from
// existing prefix sums (the appended element is zero, so
// tree[j] = prefix(j-1) - prefix(j - lowbit(j))), never a rebuild.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rimarket::fleet {

class FenwickTree {
 public:
  /// Starts empty; grow with push_back_zero().
  FenwickTree() : tree_(1, 0) {}

  /// Number of elements (0-based external indices are [0, size())).
  std::size_t size() const { return tree_.size() - 1; }

  /// Appends a zero element in O(log n) without rebuilding: the new
  /// internal node covers (j - lowbit(j), j] and the appended value is 0,
  /// so its sum is prefix(j-1) - prefix(j - lowbit(j)).
  void push_back_zero() {
    const std::size_t j = tree_.size();
    tree_.push_back(prefix_internal(j - 1) - prefix_internal(j - lowbit(j)));
  }

  /// Adds `delta` to the element at `index`.
  void add(std::size_t index, std::int64_t delta) {
    RIMARKET_EXPECTS(index < size());
    for (std::size_t j = index + 1; j < tree_.size(); j += lowbit(j)) {
      tree_[j] += delta;
    }
  }

  /// Sum of elements [0..index], inclusive.
  std::int64_t prefix(std::size_t index) const {
    RIMARKET_EXPECTS(index < size());
    return prefix_internal(index + 1);
  }

  /// Sum of every element.
  std::int64_t total() const { return prefix_internal(size()); }

  /// Smallest 0-based index i with prefix(i) >= k, by binary lifting.
  /// Requires 1 <= k <= total() and every element non-negative (the 0/1
  /// active-set use); O(log n).
  std::size_t select(std::int64_t k) const {
    RIMARKET_EXPECTS(k >= 1 && k <= total());
    std::size_t pos = 0;
    std::int64_t remaining = k;
    for (std::size_t bit = std::bit_floor(size()); bit > 0; bit >>= 1) {
      const std::size_t next = pos + bit;
      if (next < tree_.size() && tree_[next] < remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    RIMARKET_ENSURES(pos < size());
    return pos;
  }

 private:
  static std::size_t lowbit(std::size_t j) { return j & (~j + 1); }

  /// Sum of the first `count` elements (prefix over 1-based node indices).
  std::int64_t prefix_internal(std::size_t count) const {
    std::int64_t sum = 0;
    for (std::size_t j = count; j > 0; j -= lowbit(j)) {
      sum += tree_[j];
    }
    return sum;
  }

  /// 1-based internal nodes; tree_[0] is a sentinel and stays unused.
  std::vector<std::int64_t> tree_;
};

}  // namespace rimarket::fleet
