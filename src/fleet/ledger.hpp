// Reservation ledger: the active fleet and its demand-assignment rule.
//
// Implements the paper's "working sequence" (Section IV-B): when demand
// arrives, reserved instances with the *least remaining period* serve
// first, which both raises per-instance utilization and makes the
// working-time statistic of older instances meaningful at their decision
// spot.  Because every contract in one ledger has the same term, remaining
// period order equals contract start order, so the active set is kept in
// insertion order and assignment is O(active).
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "fleet/reservation.hpp"

namespace rimarket::fleet {

/// Result of assigning one hour's demand to the fleet.
struct AssignmentResult {
  /// Instances served by active reservations this hour.
  Count served_by_reserved = 0;
  /// Demand that had to go to on-demand instances (o_t in the paper).
  Count on_demand = 0;
  /// Reservations active this hour (r_t in the paper).
  Count active = 0;
};

/// Owns all reservations of one user for one instance type.
class ReservationLedger {
 public:
  /// All contracts booked through this ledger share `term` hours.
  explicit ReservationLedger(Hour term);

  Hour term() const { return term_; }

  /// Books a new contract starting at `now`; returns its id.
  /// Time must not go backwards across calls.
  ReservationId reserve(Hour now);

  /// Serves `demand` units at hour `now`: expires old contracts, assigns
  /// least-remaining-period-first and bumps each server's worked_hours.
  /// When `served` is non-null it is cleared and filled with the ids that
  /// worked this hour (used by the clairvoyant offline planner).
  /// Postcondition (RIMARKET_ENSURES): a reservation's working time never
  /// exceeds its elapsed contract time (w <= elapsed, the invariant the
  /// paper's break-even comparison w < beta(f) relies on).
  AssignmentResult assign(Hour now, Count demand,
                          std::vector<ReservationId>* served = nullptr);

  /// Number of contracts able to serve at `now` (after expiry).
  Count active_count(Hour now);

  /// Ids of contracts whose age is exactly `age` at hour `now` — the
  /// contracts due for an A_{f} selling decision this hour, oldest first.
  std::vector<ReservationId> due_at_age(Hour now, Hour age) const;

  /// Marks a contract sold at hour `now`.  The contract must be active.
  void sell(ReservationId id, Hour now);

  const Reservation& get(ReservationId id) const;

  /// Every contract ever booked (including sold/expired), id order.
  std::span<const Reservation> all() const { return reservations_; }

  /// Ids currently in the active window, least remaining period first.
  std::vector<ReservationId> active_ids(Hour now);

 private:
  void expire_until(Hour now);

  Hour term_;
  Hour last_time_ = -1;
  std::vector<Reservation> reservations_;
  /// Active contract ids in start order == least-remaining-first order.
  std::deque<ReservationId> active_;
};

}  // namespace rimarket::fleet
