// Reservation ledger: the active fleet and its demand-assignment rule.
//
// Implements the paper's "working sequence" (Section IV-B): when demand
// arrives, reserved instances with the *least remaining period* serve
// first, which both raises per-instance utilization and makes the
// working-time statistic of older instances meaningful at their decision
// spot.  Because every contract in one ledger has the same term, remaining
// period order equals contract start order equals id order, so the served
// set each hour is a *prefix* of the active set (see DESIGN.md "The
// prefix-serving invariant").
//
// Two interchangeable engines back the same interface:
//   * kOptimized (default) exploits the prefix invariant: an intrusive
//     doubly-linked list over ids gives O(1) sell and amortized O(1)
//     expiry (driven by a precomputed expiry cursor), a Fenwick tree over
//     the active-id set gives O(log n) rank/select, and worked-hours
//     updates become one lazy O(log n) range-add per hour instead of
//     O(served) individual writes, flushed on demand.
//   * kNaive is the original deque-based reference implementation, kept
//     verbatim so randomized equivalence tests (and the perf harness) can
//     assert the optimized engine is byte-identical.
//
// The ledger is single-threaded; "const" on readers is logical constness
// (a read may flush pending lazy worked-hours credit into the reservation
// records).
#pragma once

#include <algorithm>
#include <deque>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "fleet/fenwick.hpp"
#include "fleet/reservation.hpp"

namespace rimarket::fleet {

/// Result of assigning one hour's demand to the fleet.
struct AssignmentResult {
  /// Instances served by active reservations this hour.
  Count served_by_reserved = 0;
  /// Demand that had to go to on-demand instances (o_t in the paper).
  Count on_demand = 0;
  /// Reservations active this hour (r_t in the paper).
  Count active = 0;
};

/// Implementation backing a ReservationLedger (see the file header).
enum class LedgerEngine {
  kOptimized,
  kNaive,
};

/// Owns all reservations of one user for one instance type.
class ReservationLedger {
 public:
  /// All contracts booked through this ledger share `term` hours.
  explicit ReservationLedger(Hour term, LedgerEngine engine = LedgerEngine::kOptimized);

  Hour term() const { return term_; }
  LedgerEngine engine() const { return engine_; }

  /// Books a new contract starting at `now`; returns its id.
  /// Time must not go backwards across calls.
  ReservationId reserve(Hour now);

  /// Serves `demand` units at hour `now`: expires old contracts, assigns
  /// least-remaining-period-first and credits each server's worked_hours.
  /// When `served` is non-null it is cleared and filled with the ids that
  /// worked this hour (used by the clairvoyant offline planner).
  /// Postcondition (RIMARKET_ENSURES): a reservation's working time never
  /// exceeds its elapsed contract time (w <= elapsed, the invariant the
  /// paper's break-even comparison w < beta(f) relies on).
  AssignmentResult assign(Hour now, Count demand,
                          std::vector<ReservationId>* served = nullptr);

  /// Number of contracts able to serve at `now` (after expiry).
  Count active_count(Hour now);

  /// Visits the ids of contracts whose age is exactly `age` at hour `now`
  /// — the contracts due for an A_{f} selling decision this hour, oldest
  /// first.  Allocation-free; `age` must be in [0, term) (older contracts
  /// have expired, negative ages are unborn).
  template <typename Visitor>
  void for_each_due(Hour now, Hour age, Visitor&& visit) const {
    RIMARKET_EXPECTS(now >= 0);
    RIMARKET_EXPECTS(age >= 0 && age < term_);
    if (engine_ == LedgerEngine::kNaive) {
      for (const ReservationId id : active_) {
        if (reservations_[static_cast<std::size_t>(id)].age(now) == age) {
          visit(id);
        }
      }
      return;
    }
    // Contracts due at `age` all started at now - age; reservations_ is
    // start-sorted, so they form one contiguous id range.
    const Hour target = now - age;
    auto it = std::partition_point(
        reservations_.begin(), reservations_.end(),
        [target](const Reservation& reservation) { return reservation.start < target; });
    for (; it != reservations_.end() && it->start == target; ++it) {
      if (!it->sold) {
        visit(it->id);
      }
    }
  }

  /// Buffer-reusing variant: clears `out` and fills it with the due ids.
  void due_at_age(Hour now, Hour age, std::vector<ReservationId>& out) const;

  /// Allocating convenience wrapper (tests, cold paths).
  std::vector<ReservationId> due_at_age(Hour now, Hour age) const;

  /// Marks a contract sold at hour `now`.  The contract must be active.
  /// O(1) on the optimized engine, O(active) on the naive one.
  void sell(ReservationId id, Hour now);

  /// Reads one contract; flushes its pending worked-hours credit first.
  const Reservation& get(ReservationId id) const;

  /// Every contract ever booked (including sold/expired), id order, with
  /// all pending worked-hours credit flushed.
  std::span<const Reservation> all() const;

  /// Visits every active id at `now`, least remaining period first.
  /// Allocation-free.
  template <typename Visitor>
  void for_each_active(Hour now, Visitor&& visit) {
    RIMARKET_EXPECTS(now >= 0);
    expire_until(now);
    if (engine_ == LedgerEngine::kNaive) {
      for (const ReservationId id : active_) {
        visit(id);
      }
      return;
    }
    for (ReservationId id = head_; id != kNoneId; id = next_[static_cast<std::size_t>(id)]) {
      visit(id);
    }
  }

  /// Buffer-reusing variant: clears `out` and fills it with the active ids
  /// in service order.
  void active_ids(Hour now, std::vector<ReservationId>& out);

  /// Allocating convenience wrapper (tests, cold paths).
  std::vector<ReservationId> active_ids(Hour now);

  /// 0-based position of active contract `id` in the least-remaining-first
  /// service order at `now` (rank-aware policies).  O(log n) optimized,
  /// O(active) naive.
  Count active_rank(Hour now, ReservationId id);

 private:
  static constexpr ReservationId kNoneId = -1;
  static constexpr std::int64_t kCreditFrozen = -1;

  void expire_until(Hour now);
  /// Materializes pending lazy credit into reservations_[id].worked_hours.
  void flush_credit(ReservationId id) const;
  /// Flushes and then permanently freezes a contract leaving the active
  /// set (sold or expired): later range credits must not touch it.
  void retire_credit(ReservationId id);
  void unlink(ReservationId id);

  Hour term_;
  LedgerEngine engine_;
  Hour last_time_ = -1;
  /// Mutable: const readers flush lazy worked-hours credit (see file doc).
  mutable std::vector<Reservation> reservations_;

  // --- kNaive state -----------------------------------------------------
  /// Active contract ids in start order == least-remaining-first order.
  std::deque<ReservationId> active_;

  // --- kOptimized state -------------------------------------------------
  /// Intrusive doubly-linked list over ids (start order).  kNoneId ends.
  std::vector<ReservationId> next_;
  std::vector<ReservationId> prev_;
  ReservationId head_ = kNoneId;
  ReservationId tail_ = kNoneId;
  Count active_size_ = 0;
  /// End hour of the oldest active contract; expiry fast-path cursor.
  Hour next_expiry_ = 0;
  /// 0/1 per id: membership in the active set (rank/select queries).
  FenwickTree active_set_;
  /// Difference array: point query = worked-hours credit accrued at that
  /// id position by the per-hour prefix range-adds.
  FenwickTree credit_;
  /// Credit already flushed per id; kCreditFrozen once retired.  Mutable
  /// for the same reason as reservations_.
  mutable std::vector<std::int64_t> credit_flushed_;
};

}  // namespace rimarket::fleet
