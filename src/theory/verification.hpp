// Bound-verification harness.
//
// Sweeps families of single-instance schedules (the proofs' adversarial
// cases, utilization scans and random schedules) and records the largest
// empirical competitive ratio of each online algorithm, to be compared
// against the closed-form guarantee.  Used by the property tests and by
// bench_theory_bounds.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "theory/adversary.hpp"
#include "theory/ratios.hpp"
#include "theory/single_instance.hpp"

namespace rimarket::theory {

/// One verification run's outcome for a single (algorithm, instance) pair.
/// A report-only struct: fields are plain doubles (stats boundary).
struct VerificationResult {
  double fraction = 0.0;       ///< decision spot f
  double alpha = 0.0;          ///< lint-allow(units-in-api): report-only echo
  double selling_discount = 0.0;  // lint-allow(units-in-api): report-only echo
  double theta = 0.0;          ///< p*T/R of the instance
  double max_ratio = 0.0;      ///< worst empirical ratio observed
  double bound = 0.0;          ///< closed-form guarantee at theta_max = 4
  std::string worst_schedule;  ///< description of the maximizing schedule
  bool holds() const { return max_ratio <= bound + 1e-9; }
};

/// Sweep parameters.
struct VerificationSpec {
  /// Number of epsilon grid points for the adversarial scans.
  int epsilon_steps = 32;
  /// Number of pre-spot utilization grid points.
  int utilization_steps = 16;
  /// Random schedules per density level.
  int random_schedules = 32;
  std::uint64_t seed = 7;
};

/// Scans adversarial and random schedules for A_{fT} on `type` and returns
/// the worst ratio found together with the theoretical bound.
VerificationResult verify_bound(const pricing::InstanceType& type, Fraction fraction,
                                Fraction selling_discount, const VerificationSpec& spec);

/// Verifies all three paper algorithms on every instance in a list.
std::vector<VerificationResult> verify_catalog(std::span<const pricing::InstanceType> types,
                                               Fraction selling_discount,
                                               const VerificationSpec& spec);

}  // namespace rimarket::theory
