// Closed-form competitive ratios (paper Propositions 1, 2a/2b, 3a/3b).
//
// For a decision spot at fraction f of the term, with reservation discount
// alpha, selling discount a and theta_max the supremum of theta = p*T/R
// over the instance family (the paper measures theta in (1,4) for standard
// Linux US-East 1-yr RIs), the two case bounds are
//
//   primary(f)   = 1 + 4*(1-f)*(1-alpha) * (theta_max/4) - (1-f)*a
//                  (Eqs. (22)/(37)/(46) evaluated at theta = theta_max)
//   secondary(f) = 1 / (1 - (1-f)*a)
//                  (Eqs. (31)/(41)/(50))
//
// which specialize to the paper's published values:
//   f = 3/4: 2 -   alpha -   a/4   and 4/(4-a)
//   f = 1/2: 3 - 2*alpha -   a/2   and 2/(2-a)
//   f = 1/4: 4 - 3*alpha - 3*a/4   and 4/(4-3a)
//
// The guaranteed ratio is the larger of the two cases; the paper expresses
// the same fact through the case condition alpha + a/4 + secondary/k <=
// (k+1)/k with k = 4*(1-f).
#pragma once

#include "common/units.hpp"

namespace rimarket::theory {

/// Both case bounds and the overall guarantee for one configuration.
struct CompetitiveBound {
  /// Case-1 bound (instance sold at the spot, demand resumes afterwards).
  double primary = 0.0;
  /// Case-2 bound (instance kept at the spot, demand stops afterwards).
  double secondary = 0.0;
  /// Overall guarantee: max(primary, secondary).
  double guaranteed = 0.0;
  /// The paper's case condition (true -> the primary bound dominates, i.e.
  /// the algorithm is primary-competitive).
  bool primary_dominates = false;
};

/// General bound for a decision spot at fraction f in (0,1).
/// Requires alpha in [0,1), a in [0,1], theta_max > 0, and
/// (1-f)*a < 1 so the secondary bound is finite.  The resulting ratios are
/// dimensionless, so the bound fields stay plain double.
CompetitiveBound competitive_bound(Fraction fraction, Fraction alpha, Fraction a,
                                   double theta_max = 4.0);

/// Paper-named specializations (Propositions 1-3).
CompetitiveBound bound_a3t4(Fraction alpha, Fraction a, double theta_max = 4.0);
CompetitiveBound bound_at2(Fraction alpha, Fraction a, double theta_max = 4.0);
CompetitiveBound bound_at4(Fraction alpha, Fraction a, double theta_max = 4.0);

/// The headline formulas, exactly as printed in the paper.
double ratio_a3t4(Fraction alpha, Fraction a);  ///< 2 - alpha - a/4
double ratio_at2(Fraction alpha, Fraction a);   ///< 3 - 2*alpha - a/2
double ratio_at4(Fraction alpha, Fraction a);   ///< 4 - 3*alpha - 3*a/4

}  // namespace rimarket::theory
