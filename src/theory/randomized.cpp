#include "theory/randomized.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "selling/policy.hpp"

namespace rimarket::theory {

namespace {

Fraction min_fraction(std::span<const Fraction> fractions) {
  RIMARKET_EXPECTS(!fractions.empty());
  return *std::min_element(fractions.begin(), fractions.end());
}

}  // namespace

Money randomized_expected_cost(const SingleInstanceModel& model, const WorkSchedule& worked,
                               std::span<const Fraction> fractions) {
  RIMARKET_EXPECTS(!fractions.empty());
  Money total{0.0};
  for (const Fraction fraction : fractions) {
    total += model.online_cost(worked, fraction);
  }
  return total / static_cast<double>(fractions.size());
}

double randomized_empirical_ratio(const SingleInstanceModel& model, const WorkSchedule& worked,
                                  std::span<const Fraction> fractions) {
  const Hour window =
      selling::decision_age(model.type.term, min_fraction(fractions));
  const OptimalSale opt = optimal_sale(model, worked, window);
  RIMARKET_CHECK_MSG(opt.cost > Money{0.0}, "optimum includes the upfront fee");
  return randomized_expected_cost(model, worked, fractions) / opt.cost;
}

RandomizedVerification verify_randomized(const pricing::InstanceType& type,
                                         Fraction selling_discount,
                                         std::span<const Fraction> fractions,
                                         const VerificationSpec& spec) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(!fractions.empty());
  SingleInstanceModel model;
  model.type = type;
  model.selling_discount = selling_discount;
  model.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;

  const Hour window = selling::decision_age(type.term, min_fraction(fractions));

  RandomizedVerification result;
  result.deterministic_max_ratios.assign(fractions.size(), 0.0);

  auto consider = [&](const WorkSchedule& schedule) {
    const OptimalSale opt = optimal_sale(model, schedule, window);
    RIMARKET_CHECK(opt.cost > Money{0.0});
    double expected = 0.0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      const Money cost = model.online_cost(schedule, fractions[i]);
      expected += cost.value();
      result.deterministic_max_ratios[i] =
          std::max(result.deterministic_max_ratios[i], cost / opt.cost);
    }
    expected /= static_cast<double>(fractions.size());
    result.randomized_max_ratio =
        std::max(result.randomized_max_ratio, expected / opt.cost.value());
  };

  // The same adversarial families as the deterministic verification,
  // scanned per member fraction (an adversary may target any of them).
  for (const Fraction target : fractions) {
    for (int step = 0; step < spec.epsilon_steps; ++step) {
      const double epsilon = target.value() + (1.0 - target.value()) *
                                                  static_cast<double>(step) /
                                                  static_cast<double>(spec.epsilon_steps - 1);
      consider(case1_schedule(type, target, epsilon));
      consider(case2_schedule(type, target, epsilon));
    }
    for (int u = 0; u < spec.utilization_steps; ++u) {
      const double utilization =
          static_cast<double>(u) / static_cast<double>(spec.utilization_steps - 1);
      for (int step = 0; step < spec.epsilon_steps; ++step) {
        const double epsilon = target.value() + (1.0 - target.value()) *
                                                    static_cast<double>(step) /
                                                    static_cast<double>(spec.epsilon_steps - 1);
        consider(utilization_schedule(type, target, utilization, epsilon));
      }
    }
  }
  common::Rng rng(spec.seed);
  for (const double density : {0.02, 0.1, 0.3, 0.5, 0.8}) {
    for (int i = 0; i < spec.random_schedules; ++i) {
      consider(random_schedule(type, density, rng));
    }
  }

  result.best_deterministic = *std::min_element(result.deterministic_max_ratios.begin(),
                                                result.deterministic_max_ratios.end());
  result.worst_deterministic = *std::max_element(result.deterministic_max_ratios.begin(),
                                                 result.deterministic_max_ratios.end());
  return result;
}

Money weighted_expected_cost(const SingleInstanceModel& model, const WorkSchedule& worked,
                             std::span<const Fraction> fractions,
                             std::span<const double> weights) {
  RIMARKET_EXPECTS(fractions.size() == weights.size());
  RIMARKET_EXPECTS(!fractions.empty());
  double weight_sum = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    RIMARKET_EXPECTS(weights[i] >= 0.0);
    weight_sum += weights[i];
    total += weights[i] * model.online_cost(worked, fractions[i]).value();
  }
  RIMARKET_EXPECTS(weight_sum > 0.99 && weight_sum < 1.01);
  return Money{total / weight_sum};
}

namespace {

/// Per-schedule, per-spot cost/OPT ratio matrix from the adversarial scan.
std::vector<std::vector<double>> ratio_matrix(const pricing::InstanceType& type,
                                              Fraction selling_discount,
                                              std::span<const Fraction> fractions,
                                              const VerificationSpec& spec) {
  SingleInstanceModel model;
  model.type = type;
  model.selling_discount = selling_discount;
  model.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;
  const Hour window = selling::decision_age(type.term, min_fraction(fractions));

  std::vector<std::vector<double>> rows;
  auto consider = [&](const WorkSchedule& schedule) {
    const OptimalSale opt = optimal_sale(model, schedule, window);
    RIMARKET_CHECK(opt.cost > Money{0.0});
    std::vector<double> row;
    row.reserve(fractions.size());
    for (const Fraction fraction : fractions) {
      row.push_back(model.online_cost(schedule, fraction) / opt.cost);
    }
    rows.push_back(std::move(row));
  };
  for (const Fraction target : fractions) {
    for (int step = 0; step < spec.epsilon_steps; ++step) {
      const double epsilon = target.value() + (1.0 - target.value()) *
                                                  static_cast<double>(step) /
                                                  static_cast<double>(spec.epsilon_steps - 1);
      consider(case1_schedule(type, target, epsilon));
      consider(case2_schedule(type, target, epsilon));
    }
    for (int u = 0; u < spec.utilization_steps; ++u) {
      const double utilization =
          static_cast<double>(u) / static_cast<double>(spec.utilization_steps - 1);
      for (int step = 0; step < spec.epsilon_steps; ++step) {
        const double epsilon = target.value() + (1.0 - target.value()) *
                                                    static_cast<double>(step) /
                                                    static_cast<double>(spec.epsilon_steps - 1);
        consider(utilization_schedule(type, target, utilization, epsilon));
      }
    }
  }
  common::Rng rng(spec.seed);
  for (const double density : {0.02, 0.1, 0.3, 0.5, 0.8}) {
    for (int i = 0; i < spec.random_schedules; ++i) {
      consider(random_schedule(type, density, rng));
    }
  }
  return rows;
}

/// max over schedules of the mixture's expected ratio.
double worst_ratio(const std::vector<std::vector<double>>& matrix,
                   std::span<const double> weights) {
  double worst = 0.0;
  for (const auto& row : matrix) {
    double expected = 0.0;
    for (std::size_t j = 0; j < weights.size(); ++j) {
      expected += weights[j] * row[j];
    }
    worst = std::max(worst, expected);
  }
  return worst;
}

/// Enumerates simplex points with the given step and keeps the best.
void scan_simplex(const std::vector<std::vector<double>>& matrix, std::size_t dims,
                  double step, const std::vector<double>& center, double radius,
                  std::vector<double>& best, double& best_value) {
  std::vector<double> point(dims, 0.0);
  // Recursive enumeration of w on the simplex grid within `radius` of
  // `center` (center empty -> whole simplex).
  auto recurse = [&](auto&& self, std::size_t index, double remaining) -> void {
    if (index + 1 == dims) {
      point[index] = remaining;
      if (!center.empty() && std::abs(point[index] - center[index]) > radius) {
        return;
      }
      const double value = worst_ratio(matrix, point);
      if (value < best_value) {
        best_value = value;
        best = point;
      }
      return;
    }
    for (double w = 0.0; w <= remaining + 1e-12; w += step) {
      if (!center.empty() && std::abs(w - center[index]) > radius) {
        continue;
      }
      point[index] = std::min(w, remaining);
      self(self, index + 1, remaining - point[index]);
    }
  };
  recurse(recurse, 0, 1.0);
}

}  // namespace

SpotDistribution optimize_spot_distribution(const pricing::InstanceType& type,
                                            Fraction selling_discount,
                                            std::span<const Fraction> fractions,
                                            const VerificationSpec& spec, int iterations) {
  RIMARKET_EXPECTS(!fractions.empty());
  RIMARKET_EXPECTS(iterations >= 1);
  (void)iterations;  // grid resolution is fixed; kept for API stability
  const auto matrix = ratio_matrix(type, selling_discount, fractions, spec);

  SpotDistribution result;
  result.fractions.assign(fractions.begin(), fractions.end());
  const std::size_t dims = fractions.size();

  const std::vector<double> uniform(dims, 1.0 / static_cast<double>(dims));
  result.uniform_ratio = worst_ratio(matrix, uniform);

  std::vector<double> best = uniform;
  double best_value = result.uniform_ratio;
  // Coarse scan of the whole simplex, then a fine scan around the winner.
  scan_simplex(matrix, dims, 0.02, /*center=*/{}, /*radius=*/0.0, best, best_value);
  scan_simplex(matrix, dims, 0.002, best, 0.03, best, best_value);

  result.weights = std::move(best);
  result.minimax_ratio = best_value;
  RIMARKET_ENSURES(result.minimax_ratio <= result.uniform_ratio + 1e-12);
  return result;
}

}  // namespace rimarket::theory
