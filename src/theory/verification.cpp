#include "theory/verification.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rimarket::theory {

VerificationResult verify_bound(const pricing::InstanceType& type, Fraction fraction,
                                Fraction selling_discount, const VerificationSpec& spec) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(spec.epsilon_steps >= 2);
  RIMARKET_EXPECTS(spec.utilization_steps >= 2);
  RIMARKET_EXPECTS(spec.random_schedules >= 0);

  SingleInstanceModel model;
  model.type = type;
  model.selling_discount = selling_discount;
  model.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;

  VerificationResult result;
  result.fraction = fraction.value();
  result.alpha = type.alpha().value();
  result.selling_discount = selling_discount.value();
  result.theta = type.theta();
  // The paper evaluates the bound at the family statistic theta_max = 4
  // (valid for standard 1-yr Linux US-East).  Instances outside that family
  // (e.g. 3-year contracts) can have larger theta, so take the instance's
  // own value when it exceeds the paper's ceiling.
  result.bound = competitive_bound(fraction, type.alpha(), selling_discount,
                                   std::max(4.0, type.theta()))
                     .guaranteed;

  auto consider = [&](const WorkSchedule& schedule, std::string description) {
    const double ratio = empirical_ratio(model, schedule, fraction);
    if (ratio > result.max_ratio) {
      result.max_ratio = ratio;
      result.worst_schedule = std::move(description);
    }
  };

  // The two proof cases, scanned over epsilon in [f, 1].
  for (int step = 0; step < spec.epsilon_steps; ++step) {
    const double epsilon =
        fraction.value() + (1.0 - fraction.value()) * static_cast<double>(step) /
                               static_cast<double>(spec.epsilon_steps - 1);
    consider(case1_schedule(type, fraction, epsilon),
             common::format("case1(eps=%.3f)", epsilon));
    consider(case2_schedule(type, fraction, epsilon),
             common::format("case2(eps=%.3f)", epsilon));
  }

  // Utilization scan: cross the break-even point from both sides.
  for (int u = 0; u < spec.utilization_steps; ++u) {
    const double utilization =
        static_cast<double>(u) / static_cast<double>(spec.utilization_steps - 1);
    for (int step = 0; step < spec.epsilon_steps; ++step) {
      const double epsilon =
          fraction.value() + (1.0 - fraction.value()) * static_cast<double>(step) /
                                 static_cast<double>(spec.epsilon_steps - 1);
      consider(utilization_schedule(type, fraction, utilization, epsilon),
               common::format("util(u=%.2f, eps=%.3f)", utilization, epsilon));
    }
  }

  // Random schedules across densities.
  common::Rng rng(spec.seed);
  for (const double density : {0.02, 0.1, 0.3, 0.5, 0.8}) {
    for (int i = 0; i < spec.random_schedules; ++i) {
      consider(random_schedule(type, density, rng),
               common::format("random(density=%.2f, i=%d)", density, i));
    }
  }
  for (const double duty : {0.05, 0.2, 0.5}) {
    for (int i = 0; i < spec.random_schedules; ++i) {
      consider(random_episode_schedule(type, duty, 48.0, rng),
               common::format("episodes(duty=%.2f, i=%d)", duty, i));
    }
  }
  return result;
}

std::vector<VerificationResult> verify_catalog(std::span<const pricing::InstanceType> types,
                                               Fraction selling_discount,
                                               const VerificationSpec& spec) {
  std::vector<VerificationResult> results;
  results.reserve(types.size() * 3);
  for (const pricing::InstanceType& type : types) {
    for (const Fraction fraction : {Fraction{0.25}, Fraction{0.5}, Fraction{0.75}}) {
      results.push_back(verify_bound(type, fraction, selling_discount, spec));
    }
  }
  return results;
}

}  // namespace rimarket::theory
