// Per-instance analytic cost model (paper Section IV).
//
// The competitive analysis reasons about one reservation in isolation: its
// term-long work schedule (does it serve demand at hour h?), the hour it is
// sold, and the resulting cost
//
//   C = R + alpha*p*(billed hours before the sale)
//         - a*R*(T - t_sell)/T
//         + p*(worked hours at/after the sale, now served on-demand)
//
// with "billed hours" following the chosen ChargePolicy (the analysis bills
// worked hours only; Eq. (1) bills every held hour).  This module computes
// the online algorithms' per-instance cost, the clairvoyant optimum over
// all sell times, and the empirical competitive ratio between them.
#pragma once


#include <vector>

#include "common/types.hpp"
#include "fleet/accounting.hpp"
#include "pricing/instance_type.hpp"

namespace rimarket::theory {

/// One reservation's work schedule: worked[h] is true when the instance
/// serves one unit of demand in hour h of its life, h in [0, T).
using WorkSchedule = std::vector<bool>;

/// Economics of a single-instance scenario.
struct SingleInstanceModel {
  pricing::InstanceType type;
  /// Seller's price discount a in [0,1].
  Fraction selling_discount{0.8};
  /// Marketplace service fee, as a fraction of the sale income (0 reproduces
  /// the paper's Eq. (1); Amazon charges 0.12).
  Fraction service_fee{0.0};
  fleet::ChargePolicy charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;

  /// Net income from selling at hour `sell_at` of the instance's life.
  Money sale_income(Hour sell_at) const;

  /// Cost when the instance is sold at `sell_at` (demand at/after that hour
  /// goes to on-demand).  Pass sell_at == type.term for "never sold".
  Money cost_with_sale(const WorkSchedule& worked, Hour sell_at) const;

  /// Cost of the paper's A_{fT} rule on this schedule: at hour f*T sell iff
  /// hours worked in [0, f*T) are below beta(f).
  Money online_cost(const WorkSchedule& worked, Fraction fraction) const;

  /// Whether A_{fT} sells this schedule.
  bool online_sells(const WorkSchedule& worked, Fraction fraction) const;
};

/// Clairvoyant optimum for one schedule.
struct OptimalSale {
  /// Best hour to sell; type.term means "keep to the end".
  Hour sell_at = 0;
  Money cost{0.0};
  bool sells() const { return sell_at >= 0; }
};

/// Scans every sell hour in [earliest_sell, T] (T = keep) and returns the
/// cheapest.  O(T) via prefix sums.
///
/// The window matters: the paper's competitive analysis restricts the
/// offline benchmark's selling moment to epsilon in [f, 1] ("we decide
/// whether to sell it or not at the time spot 3T/4, so we have epsilon in
/// [3/4, 1]", Section IV-C).  An unrestricted clairvoyant may sell earlier
/// (e.g. a never-used instance is best sold at hour 0) and can beat the
/// online algorithm by more than the published ratios — pass
/// earliest_sell = 0 for that stronger benchmark, or the decision spot for
/// the benchmark the propositions are stated against.
OptimalSale optimal_sale(const SingleInstanceModel& model, const WorkSchedule& worked,
                         Hour earliest_sell = 0);

/// online_cost / paper-benchmark optimal cost for the given spot fraction
/// (the optimum's window starts at the decision spot, per Section IV-C).
/// Always >= 1 up to rounding, since the windowed optimum can reproduce
/// both of the online rule's outcomes.
double empirical_ratio(const SingleInstanceModel& model, const WorkSchedule& worked,
                       Fraction fraction);

}  // namespace rimarket::theory
