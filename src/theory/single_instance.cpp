#include "theory/single_instance.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "selling/policy.hpp"

namespace rimarket::theory {

namespace {

/// prefix[h] = worked hours in [0, h).
std::vector<Hour> worked_prefix(const WorkSchedule& worked) {
  std::vector<Hour> prefix(worked.size() + 1, 0);
  for (std::size_t h = 0; h < worked.size(); ++h) {
    prefix[h + 1] = prefix[h] + (worked[h] ? 1 : 0);
  }
  return prefix;
}

}  // namespace

Money SingleInstanceModel::sale_income(Hour sell_at) const {
  RIMARKET_EXPECTS(sell_at >= 0 && sell_at <= type.term);
  return type.sale_income(sell_at, selling_discount) * service_fee.complement();
}

Money SingleInstanceModel::cost_with_sale(const WorkSchedule& worked, Hour sell_at) const {
  RIMARKET_EXPECTS(static_cast<Hour>(worked.size()) == type.term);
  RIMARKET_EXPECTS(sell_at >= 0 && sell_at <= type.term);
  Hour worked_before = 0;
  Hour worked_after = 0;
  for (Hour h = 0; h < type.term; ++h) {
    if (worked[static_cast<std::size_t>(h)]) {
      (h < sell_at ? worked_before : worked_after) += 1;
    }
  }
  const Hour billed_before =
      charge_policy == fleet::ChargePolicy::kAllActiveHours ? sell_at : worked_before;
  double cost = type.upfront.value() +
                static_cast<double>(billed_before) * type.reserved_hourly.value() +
                static_cast<double>(worked_after) * type.on_demand_hourly.value();
  if (sell_at < type.term) {
    cost -= sale_income(sell_at).value();
  }
  return Money{cost};
}

bool SingleInstanceModel::online_sells(const WorkSchedule& worked, Fraction fraction) const {
  RIMARKET_EXPECTS(static_cast<Hour>(worked.size()) == type.term);
  const Hour spot = selling::decision_age(type.term, fraction);
  Hour worked_before = 0;
  for (Hour h = 0; h < spot; ++h) {
    if (worked[static_cast<std::size_t>(h)]) {
      ++worked_before;
    }
  }
  const Hours beta = type.break_even_hours(fraction, selling_discount);
  return Hours{worked_before} < beta;
}

Money SingleInstanceModel::online_cost(const WorkSchedule& worked, Fraction fraction) const {
  const Hour spot = selling::decision_age(type.term, fraction);
  const Hour sell_at = online_sells(worked, fraction) ? spot : type.term;
  return cost_with_sale(worked, sell_at);
}

OptimalSale optimal_sale(const SingleInstanceModel& model, const WorkSchedule& worked,
                         Hour earliest_sell) {
  const Hour term = model.type.term;
  RIMARKET_EXPECTS(static_cast<Hour>(worked.size()) == term);
  RIMARKET_EXPECTS(earliest_sell >= 0 && earliest_sell <= term);
  const std::vector<Hour> prefix = worked_prefix(worked);
  const Hour total_worked = prefix.back();
  OptimalSale best;
  best.sell_at = term;
  best.cost = model.cost_with_sale(worked, term);
  // cost(t) is evaluated for every candidate sale hour t via the prefix
  // sums (cost_with_sale itself is O(T); recomputing it T times would be
  // O(T^2) over a year-long term).
  for (Hour t = earliest_sell; t < term; ++t) {
    const Hour worked_before = prefix[static_cast<std::size_t>(t)];
    const Hour worked_after = total_worked - worked_before;
    const Hour billed_before =
        model.charge_policy == fleet::ChargePolicy::kAllActiveHours ? t : worked_before;
    const Money cost{model.type.upfront.value() +
                     static_cast<double>(billed_before) * model.type.reserved_hourly.value() +
                     static_cast<double>(worked_after) * model.type.on_demand_hourly.value() -
                     model.sale_income(t).value()};
    if (cost < best.cost) {
      best.cost = cost;
      best.sell_at = t;
    }
  }
  return best;
}

double empirical_ratio(const SingleInstanceModel& model, const WorkSchedule& worked,
                       Fraction fraction) {
  const Money online = model.online_cost(worked, fraction);
  const Hour spot = selling::decision_age(model.type.term, fraction);
  const OptimalSale opt = optimal_sale(model, worked, /*earliest_sell=*/spot);
  RIMARKET_CHECK_MSG(opt.cost > Money{0.0},
                     "per-instance optimum includes the upfront fee, so > 0");
  return online / opt.cost;
}

}  // namespace rimarket::theory
