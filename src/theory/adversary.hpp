// Adversarial work schedules realizing the proofs' worst cases.
//
// The competitive analysis (Section IV-C) splits on the online decision:
//
//   Case 1 (x0 < beta, the instance is sold at f*T): the gap to OPT grows
//   with epsilon and peaks at epsilon = 1 — demand resumes right after the
//   spot and persists to the end of the term.
//
//   Case 2 (x0 > beta, the instance is kept): the gap peaks at epsilon = f —
//   the instance was busy before the spot and demand stops immediately
//   after it, so OPT would have sold at the spot.
//
// These constructors build exactly those schedules, parameterized so sweeps
// can scan epsilon and the pre-spot utilization.
#pragma once

#include "common/rng.hpp"
#include "theory/single_instance.hpp"

namespace rimarket::theory {

/// Case-1 worst case: idle before the spot (forcing a sale), then fully
/// busy from f*T to epsilon*T.  epsilon in [f, 1].
WorkSchedule case1_schedule(const pricing::InstanceType& type, Fraction fraction, double epsilon);

/// Case-2 worst case: fully busy before the spot (forcing a keep), idle
/// afterwards except busy again on [f*T, epsilon*T).  epsilon = f gives the
/// proof's extreme (no demand at all after the spot).
WorkSchedule case2_schedule(const pricing::InstanceType& type, Fraction fraction, double epsilon);

/// Schedule busy on [0, epsilon*T) with the given utilization before the
/// spot — a knob for scanning both sides of the break-even point.
/// `pre_spot_utilization` in [0,1] selects how many of the first f*T hours
/// are worked (spread evenly).
WorkSchedule utilization_schedule(const pricing::InstanceType& type, Fraction fraction,
                                  double pre_spot_utilization, double epsilon);

/// Random schedule: each hour worked independently with probability
/// `density`; useful for property tests that the bound holds off the
/// adversarial manifold too.
WorkSchedule random_schedule(const pricing::InstanceType& type, double density,
                             common::Rng& rng);

/// Random ON/OFF schedule with geometric dwell times (busy/idle episodes).
WorkSchedule random_episode_schedule(const pricing::InstanceType& type, double duty_cycle,
                                     double mean_episode_hours, common::Rng& rng);

}  // namespace rimarket::theory
