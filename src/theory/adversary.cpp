#include "theory/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "selling/policy.hpp"

namespace rimarket::theory {

namespace {

Hour spot_hour(const pricing::InstanceType& type, Fraction fraction) {
  return selling::decision_age(type.term, fraction);
}

Hour epsilon_hour(const pricing::InstanceType& type, double epsilon) {
  RIMARKET_EXPECTS(epsilon >= 0.0 && epsilon <= 1.0);
  return static_cast<Hour>(std::llround(epsilon * static_cast<double>(type.term)));
}

}  // namespace

WorkSchedule case1_schedule(const pricing::InstanceType& type, Fraction fraction, double epsilon) {
  RIMARKET_EXPECTS(type.valid());
  const Hour spot = spot_hour(type, fraction);
  const Hour until = epsilon_hour(type, epsilon);
  RIMARKET_EXPECTS(until >= spot);
  WorkSchedule worked(static_cast<std::size_t>(type.term), false);
  for (Hour h = spot; h < until; ++h) {
    worked[static_cast<std::size_t>(h)] = true;
  }
  return worked;
}

WorkSchedule case2_schedule(const pricing::InstanceType& type, Fraction fraction, double epsilon) {
  RIMARKET_EXPECTS(type.valid());
  const Hour spot = spot_hour(type, fraction);
  const Hour until = epsilon_hour(type, epsilon);
  RIMARKET_EXPECTS(until >= spot);
  WorkSchedule worked(static_cast<std::size_t>(type.term), false);
  for (Hour h = 0; h < until; ++h) {
    worked[static_cast<std::size_t>(h)] = true;
  }
  return worked;
}

WorkSchedule utilization_schedule(const pricing::InstanceType& type, Fraction fraction,
                                  double pre_spot_utilization, double epsilon) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(pre_spot_utilization >= 0.0 && pre_spot_utilization <= 1.0);
  const Hour spot = spot_hour(type, fraction);
  const Hour until = epsilon_hour(type, epsilon);
  WorkSchedule worked(static_cast<std::size_t>(type.term), false);
  // Spread `pre_spot_utilization * spot` worked hours evenly over [0, spot).
  const auto target = static_cast<Hour>(
      std::llround(pre_spot_utilization * static_cast<double>(spot)));
  if (target > 0) {
    const double stride = static_cast<double>(spot) / static_cast<double>(target);
    for (Hour k = 0; k < target; ++k) {
      const auto h = static_cast<Hour>(std::floor(static_cast<double>(k) * stride));
      worked[static_cast<std::size_t>(std::min(h, spot - 1))] = true;
    }
  }
  for (Hour h = spot; h < until; ++h) {
    worked[static_cast<std::size_t>(h)] = true;
  }
  return worked;
}

WorkSchedule random_schedule(const pricing::InstanceType& type, double density,
                             common::Rng& rng) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(density >= 0.0 && density <= 1.0);
  WorkSchedule worked(static_cast<std::size_t>(type.term), false);
  for (auto&& hour : worked) {
    hour = rng.bernoulli(density);
  }
  return worked;
}

WorkSchedule random_episode_schedule(const pricing::InstanceType& type, double duty_cycle,
                                     double mean_episode_hours, common::Rng& rng) {
  RIMARKET_EXPECTS(type.valid());
  RIMARKET_EXPECTS(duty_cycle > 0.0 && duty_cycle < 1.0);
  RIMARKET_EXPECTS(mean_episode_hours >= 1.0);
  WorkSchedule worked(static_cast<std::size_t>(type.term), false);
  const double mean_on = mean_episode_hours;
  const double mean_off = mean_episode_hours * (1.0 - duty_cycle) / duty_cycle;
  bool on = rng.bernoulli(duty_cycle);
  Hour h = 0;
  while (h < type.term) {
    const double mean_dwell = on ? mean_on : mean_off;
    const Hour dwell =
        std::max<Hour>(1, static_cast<Hour>(rng.exponential(1.0 / mean_dwell) + 0.5));
    if (on) {
      for (Hour k = h; k < std::min(type.term, h + dwell); ++k) {
        worked[static_cast<std::size_t>(k)] = true;
      }
    }
    h += dwell;
    on = !on;
  }
  return worked;
}

}  // namespace rimarket::theory
