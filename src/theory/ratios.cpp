#include "theory/ratios.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::theory {

CompetitiveBound competitive_bound(double fraction, double alpha, double a, double theta_max) {
  RIMARKET_EXPECTS(fraction > 0.0 && fraction < 1.0);
  RIMARKET_EXPECTS(alpha >= 0.0 && alpha < 1.0);
  RIMARKET_EXPECTS(a >= 0.0 && a <= 1.0);
  RIMARKET_EXPECTS(theta_max > 0.0);
  const double tail = 1.0 - fraction;  // (1-f), the remaining fraction at the spot
  RIMARKET_EXPECTS(tail * a < 1.0);
  CompetitiveBound bound;
  bound.primary = 1.0 + tail * theta_max * (1.0 - alpha) - tail * a;
  bound.secondary = 1.0 / (1.0 - tail * a);
  bound.guaranteed = std::max(bound.primary, bound.secondary);
  bound.primary_dominates = bound.primary >= bound.secondary;
  return bound;
}

CompetitiveBound bound_a3t4(double alpha, double a, double theta_max) {
  return competitive_bound(0.75, alpha, a, theta_max);
}

CompetitiveBound bound_at2(double alpha, double a, double theta_max) {
  return competitive_bound(0.50, alpha, a, theta_max);
}

CompetitiveBound bound_at4(double alpha, double a, double theta_max) {
  return competitive_bound(0.25, alpha, a, theta_max);
}

double ratio_a3t4(double alpha, double a) { return 2.0 - alpha - a / 4.0; }

double ratio_at2(double alpha, double a) { return 3.0 - 2.0 * alpha - a / 2.0; }

double ratio_at4(double alpha, double a) { return 4.0 - 3.0 * alpha - 3.0 * a / 4.0; }

}  // namespace rimarket::theory
