#include "theory/ratios.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rimarket::theory {

CompetitiveBound competitive_bound(Fraction fraction, Fraction alpha, Fraction a,
                                   double theta_max) {
  RIMARKET_EXPECTS(fraction > Fraction{0.0} && fraction < Fraction{1.0});
  RIMARKET_EXPECTS(alpha < Fraction{1.0});
  RIMARKET_EXPECTS(theta_max > 0.0);
  const double tail = 1.0 - fraction.value();  // (1-f), the remaining fraction at the spot
  RIMARKET_EXPECTS(tail * a.value() < 1.0);
  CompetitiveBound bound;
  bound.primary = 1.0 + tail * theta_max * (1.0 - alpha.value()) - tail * a.value();
  bound.secondary = 1.0 / (1.0 - tail * a.value());
  bound.guaranteed = std::max(bound.primary, bound.secondary);
  bound.primary_dominates = bound.primary >= bound.secondary;
  return bound;
}

CompetitiveBound bound_a3t4(Fraction alpha, Fraction a, double theta_max) {
  return competitive_bound(Fraction{0.75}, alpha, a, theta_max);
}

CompetitiveBound bound_at2(Fraction alpha, Fraction a, double theta_max) {
  return competitive_bound(Fraction{0.50}, alpha, a, theta_max);
}

CompetitiveBound bound_at4(Fraction alpha, Fraction a, double theta_max) {
  return competitive_bound(Fraction{0.25}, alpha, a, theta_max);
}

double ratio_a3t4(Fraction alpha, Fraction a) {
  return 2.0 - alpha.value() - a.value() / 4.0;
}

double ratio_at2(Fraction alpha, Fraction a) {
  return 3.0 - 2.0 * alpha.value() - a.value() / 2.0;
}

double ratio_at4(Fraction alpha, Fraction a) {
  return 4.0 - 3.0 * alpha.value() - 3.0 * a.value() / 4.0;
}

}  // namespace rimarket::theory
