// Expected competitive performance of the randomized-spot algorithm.
//
// The paper's future work: "we speculate that the randomized online selling
// algorithm will achieve a better possible competitive ratio."  For the
// spot-randomizing policy (pick f uniformly from a set F, then run A_{fT})
// the relevant quantity is the worst case over schedules of the *expected*
// cost ratio
//
//     max_schedule  E_{f~F}[ C_{A_fT}(schedule) ] / C_OPT(schedule)
//
// — the standard oblivious-adversary measure.  This module computes the
// expectation in closed form (a finite mixture of the deterministic
// per-spot costs) and scans the same adversarial schedule families the
// deterministic verification uses, so the speculation can be tested: the
// randomized worst case should undercut the worst deterministic member and
// can undercut even the best one (the adversary can no longer aim at a
// single spot).
//
// Benchmark convention: C_OPT restricts the sale moment to [min(F)*T, T] —
// the weakest of the per-spot restrictions the paper's analysis uses, i.e.
// the strongest admissible adversary's benchmark.
#pragma once

#include <span>
#include <vector>

#include "theory/single_instance.hpp"
#include "theory/verification.hpp"

namespace rimarket::theory {

/// E_{f~uniform(fractions)}[ C_{A_fT}(worked) ].
Money randomized_expected_cost(const SingleInstanceModel& model, const WorkSchedule& worked,
                               std::span<const Fraction> fractions);

/// Expected-cost ratio against the windowed optimum (window from min(F)).
double randomized_empirical_ratio(const SingleInstanceModel& model, const WorkSchedule& worked,
                                  std::span<const Fraction> fractions);

/// Outcome of an adversarial scan for the randomized policy on one type.
struct RandomizedVerification {
  /// Worst expected ratio of the randomized policy.
  double randomized_max_ratio = 0.0;
  /// Worst ratio of each deterministic member on the same schedule family,
  /// indexed like `fractions`.
  std::vector<double> deterministic_max_ratios;
  /// min over members of their worst ratios (the best single spot).
  double best_deterministic = 0.0;
  /// max over members (the worst single spot).
  double worst_deterministic = 0.0;
};

/// Scans the adversarial families (both proof cases, utilization grid and
/// random schedules) and reports the randomized-vs-deterministic worst
/// cases.  All ratios use the common [min(F)*T, T] OPT window so they are
/// directly comparable.
RandomizedVerification verify_randomized(const pricing::InstanceType& type,
                                         Fraction selling_discount,
                                         std::span<const Fraction> fractions,
                                         const VerificationSpec& spec);

// ----------------------------------------------------------------------
// Optimizing the mixing distribution (the paper's open question).
//
// A randomized spot policy is a probability vector w over candidate
// fractions; its oblivious-adversary ratio is
//
//     r(w) = max_schedule  sum_i w_i * C_{A_{f_i}}(schedule) / C_OPT(schedule)
//
// Because r is a max of linear functions of w it is convex, so the best
// mixture solves a small minimax.  optimize_spot_distribution builds the
// per-schedule per-spot ratio matrix from the adversarial scan and solves
// the minimax by multiplicative-weights regret matching — exact enough for
// the 2-4 spot designs of interest and dependency-free.

/// E_{f~w}[cost] with explicit weights (must sum to ~1).
Money weighted_expected_cost(const SingleInstanceModel& model, const WorkSchedule& worked,
                             std::span<const Fraction> fractions,
                             std::span<const double> weights);

struct SpotDistribution {
  std::vector<Fraction> fractions;
  std::vector<double> weights;     ///< optimal mixture, sums to 1
  double minimax_ratio = 0.0;      ///< r(w*) over the scanned schedules
  double uniform_ratio = 0.0;      ///< r(uniform) on the same schedules
};

/// Finds the mixture over `fractions` minimizing the worst expected ratio
/// over the adversarial schedule families.  `iterations` controls the
/// multiplicative-weights solve.
SpotDistribution optimize_spot_distribution(const pricing::InstanceType& type,
                                            Fraction selling_discount,
                                            std::span<const Fraction> fractions,
                                            const VerificationSpec& spec,
                                            int iterations = 400);

}  // namespace rimarket::theory
