# Static-analysis gate: clang-tidy, clang-format, cppcheck and the domain
# lint (tools/lint.py), wired as build options and standalone targets.
#
#   RIMARKET_ENABLE_CLANG_TIDY=ON   run clang-tidy on every TU as it compiles
#   cmake --build build --target tidy          batch clang-tidy over compile_commands.json
#   cmake --build build --target lint          tools/lint.py, all rules
#   cmake --build build --target format        rewrite the tree in-place
#   cmake --build build --target format-check  clang-format --dry-run -Werror
#   cmake --build build --target cppcheck      warning/performance/portability scan
#
# Tools are looked up at configure time; a missing tool downgrades its target
# to a FATAL_ERROR stub naming the package to install, so `--target tidy` is
# always defined but never silently succeeds without analyzing anything.

# clang-tidy batch runs and IDEs both need the compilation database.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

option(RIMARKET_ENABLE_CLANG_TIDY
  "Run clang-tidy (with the repo .clang-tidy, warnings as errors) on every compile" OFF)

find_program(RIMARKET_CLANG_TIDY_EXE NAMES clang-tidy
  clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15)
find_program(RIMARKET_RUN_CLANG_TIDY_EXE NAMES run-clang-tidy
  run-clang-tidy-20 run-clang-tidy-19 run-clang-tidy-18 run-clang-tidy-17
  run-clang-tidy-16 run-clang-tidy-15)
find_program(RIMARKET_CLANG_FORMAT_EXE NAMES clang-format
  clang-format-20 clang-format-19 clang-format-18 clang-format-17 clang-format-16
  clang-format-15)
find_program(RIMARKET_CPPCHECK_EXE NAMES cppcheck)
find_package(Python3 COMPONENTS Interpreter QUIET)

if(RIMARKET_ENABLE_CLANG_TIDY)
  if(NOT RIMARKET_CLANG_TIDY_EXE)
    message(FATAL_ERROR "RIMARKET_ENABLE_CLANG_TIDY=ON but clang-tidy was not found; "
      "install clang-tidy (apt: clang-tidy) or configure with the option OFF")
  endif()
  set(CMAKE_CXX_CLANG_TIDY "${RIMARKET_CLANG_TIDY_EXE};--warnings-as-errors=*")
  message(STATUS "clang-tidy enabled on every compile: ${RIMARKET_CLANG_TIDY_EXE}")
endif()

# Helper: a target that fails loudly when its tool is absent.
function(rimarket_missing_tool_target NAME TOOL HINT)
  add_custom_target(${NAME}
    COMMAND ${CMAKE_COMMAND} -E echo "target '${NAME}' needs ${TOOL} (${HINT})"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "${TOOL} not found at configure time"
    VERBATIM)
endfunction()

# The file set every analysis target agrees on: tracked C++ sources.
file(GLOB_RECURSE RIMARKET_ANALYSIS_SOURCES
  ${CMAKE_SOURCE_DIR}/src/*.cpp ${CMAKE_SOURCE_DIR}/src/*.hpp
  ${CMAKE_SOURCE_DIR}/bench/*.cpp ${CMAKE_SOURCE_DIR}/bench/*.hpp
  ${CMAKE_SOURCE_DIR}/examples/*.cpp
  ${CMAKE_SOURCE_DIR}/tests/*.cpp)

# ---- tidy ------------------------------------------------------------
if(RIMARKET_CLANG_TIDY_EXE AND RIMARKET_RUN_CLANG_TIDY_EXE)
  add_custom_target(tidy
    COMMAND ${RIMARKET_RUN_CLANG_TIDY_EXE}
      -clang-tidy-binary ${RIMARKET_CLANG_TIDY_EXE}
      -p ${CMAKE_BINARY_DIR}
      -warnings-as-errors=*
      -quiet
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy (curated checks, warnings as errors) over compile_commands.json"
    VERBATIM)
elseif(RIMARKET_CLANG_TIDY_EXE)
  # No run-clang-tidy wrapper: invoke clang-tidy directly over the sources.
  add_custom_target(tidy
    COMMAND ${RIMARKET_CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR} --warnings-as-errors=*
      ${RIMARKET_ANALYSIS_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy (curated checks, warnings as errors)"
    VERBATIM)
else()
  rimarket_missing_tool_target(tidy clang-tidy "apt install clang-tidy")
endif()

# ---- format / format-check ------------------------------------------
if(RIMARKET_CLANG_FORMAT_EXE)
  add_custom_target(format
    COMMAND ${RIMARKET_CLANG_FORMAT_EXE} -i ${RIMARKET_ANALYSIS_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format: rewriting the tree in-place"
    VERBATIM)
  add_custom_target(format-check
    COMMAND ${RIMARKET_CLANG_FORMAT_EXE} --dry-run -Werror ${RIMARKET_ANALYSIS_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format: verifying the tree (no rewrites)"
    VERBATIM)
else()
  rimarket_missing_tool_target(format clang-format "apt install clang-format")
  rimarket_missing_tool_target(format-check clang-format "apt install clang-format")
endif()

# ---- cppcheck --------------------------------------------------------
if(RIMARKET_CPPCHECK_EXE)
  add_custom_target(cppcheck
    COMMAND ${RIMARKET_CPPCHECK_EXE}
      --enable=warning,performance,portability
      --error-exitcode=1
      --inline-suppr
      --suppressions-list=${CMAKE_SOURCE_DIR}/.cppcheck-suppressions
      --std=c++20
      --language=c++
      -I ${CMAKE_SOURCE_DIR}/src
      ${CMAKE_SOURCE_DIR}/src
    COMMENT "cppcheck: warning/performance/portability scan of src/"
    VERBATIM)
else()
  rimarket_missing_tool_target(cppcheck cppcheck "apt install cppcheck")
endif()

# ---- domain lint -----------------------------------------------------
if(Python3_Interpreter_FOUND)
  add_custom_target(lint
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/lint.py
      --root ${CMAKE_SOURCE_DIR}
    COMMENT "tools/lint.py: project-specific rules (all enabled)"
    VERBATIM)
else()
  rimarket_missing_tool_target(lint python3 "apt install python3")
endif()
