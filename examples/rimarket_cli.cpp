// rimarket_cli — command-line front end to the whole library.
//
// Subcommands:
//   catalog                         list the builtin pricing catalog
//   bounds                          competitive guarantees + verification
//   simulate                        one (trace, purchaser, seller) run
//   population                      build & export the evaluation users
//   evaluate                        run the paper sweep, export CSV
//
// Run `rimarket_cli <subcommand> --help` equivalent: any bad flag prints
// usage for that subcommand.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/export.hpp"
#include "analysis/normalize.hpp"
#include "analysis/reports.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "pricing/catalog.hpp"
#include "sim/offline_planner.hpp"
#include "sim/runner.hpp"
#include "theory/verification.hpp"
#include "workload/population.hpp"

using namespace rimarket;

namespace {

// sysexits(3)-style exit codes, one per failure class, so scripts (and the
// CLI error-path test) can tell misuse from bad data from a missing file.
// User input must never reach a contract abort — everything is validated
// here with a usage diagnostic first.
constexpr int kExitUsage = 64;       ///< EX_USAGE: bad flags or flag values
constexpr int kExitDataError = 65;   ///< EX_DATAERR: malformed input data
constexpr int kExitNoInput = 66;     ///< EX_NOINPUT: missing/unreadable input file
constexpr int kExitSoftware = 70;    ///< EX_SOFTWARE: evaluation sweep failed
constexpr int kExitCantCreate = 73;  ///< EX_CANTCREAT: cannot write an output file

/// Validates an integer flag range with a usage diagnostic (CLI flags are
/// user data: they get an exit code, never a contract abort).
std::optional<long long> parse_int_flag(const common::CliParser& cli, const char* flag,
                                        long long fallback, long long min_value,
                                        long long max_value) {
  const long long value = cli.get_int(flag, fallback);
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "--%s must be in [%lld, %lld] (got %lld)\n", flag, min_value,
                 max_value, value);
    return std::nullopt;
  }
  return value;
}

int cmd_catalog(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("csv", "emit machine-readable CSV", "false");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help("rimarket_cli catalog").c_str());
    return kExitUsage;
  }
  const pricing::PricingCatalog& catalog = pricing::PricingCatalog::builtin();
  if (cli.get_bool("csv", false)) {
    std::printf("name,on_demand,upfront,reserved,term,alpha,theta\n");
    for (const pricing::InstanceType& type : catalog.types()) {
      std::printf("%s,%.4f,%.2f,%.4f,%lld,%.4f,%.4f\n", type.name.c_str(),
                  type.on_demand_hourly.value(), type.upfront.value(),
                  type.reserved_hourly.value(), static_cast<long long>(type.term),
                  type.alpha().value(), type.theta());
    }
    return 0;
  }
  std::printf("%-14s %12s %10s %12s %8s %8s\n", "instance", "on-demand/h", "upfront",
              "reserved/h", "alpha", "theta");
  for (const pricing::InstanceType& type : catalog.types()) {
    std::printf("%-14s %12.4f %10.0f %12.4f %8.3f %8.3f\n", type.name.c_str(),
                type.on_demand_hourly.value(), type.upfront.value(),
                type.reserved_hourly.value(), type.alpha().value(), type.theta());
  }
  return 0;
}

// CLI flags are user data, not programmer state: validate the [0, 1] range
// here with a usage-style diagnostic instead of tripping the Fraction
// contract abort that guards library-internal call sites.
std::optional<Fraction> parse_fraction_flag(const common::CliParser& cli, const char* flag,
                                            double fallback) {
  const double value = cli.get_double(flag, fallback);
  if (!(value >= 0.0 && value <= 1.0)) {
    std::fprintf(stderr, "--%s must be in [0, 1] (got %g)\n", flag, value);
    return std::nullopt;
  }
  return Fraction{value};
}

int cmd_bounds(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("instance", "catalog instance type", "d2.xlarge");
  cli.add_flag("discount", "selling discount a", "0.8");
  cli.add_flag("verify", "run the adversarial verification sweep", "true");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help("rimarket_cli bounds").c_str());
    return kExitUsage;
  }
  const auto type = pricing::PricingCatalog::builtin().find(cli.get("instance"));
  if (!type) {
    std::fprintf(stderr, "unknown instance type %s\n", cli.get("instance").c_str());
    return kExitUsage;
  }
  const auto a = parse_fraction_flag(cli, "discount", 0.8);
  if (!a) {
    return kExitUsage;
  }
  std::printf("%s: alpha=%.3f theta=%.3f, selling discount a=%.2f\n", type->name.c_str(),
              type->alpha().value(), type->theta(), a->value());
  std::printf("%-10s %12s %14s %14s %12s\n", "algorithm", "spot (h)", "beta (h)",
              "guarantee", "case");
  for (const double fraction : {0.75, 0.5, 0.25}) {
    const auto bound =
        theory::competitive_bound(Fraction{fraction}, type->alpha(), *a);
    std::printf("A_{%.2fT}  %12lld %14.1f %14.4f %12s\n", fraction,
                static_cast<long long>(
                    static_cast<double>(type->term) * fraction),
                type->break_even_hours(Fraction{fraction}, *a).value(), bound.guaranteed,
                bound.primary_dominates ? "primary" : "secondary");
  }
  if (cli.get_bool("verify", true)) {
    theory::VerificationSpec spec;
    std::vector<theory::VerificationResult> results;
    for (const double fraction : {0.75, 0.5, 0.25}) {
      results.push_back(theory::verify_bound(*type, Fraction{fraction}, *a, spec));
    }
    std::printf("\n%s", analysis::render_bounds(results).c_str());
  }
  return 0;
}

/// Loads a demand trace, printing the CsvError detail (errno or offending
/// line) on failure and reporting which exit code the failure deserves.
std::optional<workload::DemandTrace> load_trace(const std::string& path, int& exit_code) {
  common::CsvError error;
  auto trace = workload::DemandTrace::load_file(path, &error);
  if (!trace) {
    if (error.errno_value != 0) {
      std::fprintf(stderr, "cannot read trace: %s\n", error.to_string().c_str());
      exit_code = kExitNoInput;
    } else {
      std::fprintf(stderr, "not an `hour,demand` CSV: %s\n", error.to_string().c_str());
      exit_code = kExitDataError;
    }
  }
  return trace;
}

std::optional<purchasing::PurchaserKind> parse_purchaser(const std::string& name) {
  for (const auto kind :
       {purchasing::PurchaserKind::kAllReserved, purchasing::PurchaserKind::kAllOnDemand,
        purchasing::PurchaserKind::kRandomReservation, purchasing::PurchaserKind::kWangOnline,
        purchasing::PurchaserKind::kWangVariant}) {
    if (purchasing::purchaser_name(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<sim::SellerSpec> parse_seller(const std::string& name, Fraction fraction) {
  if (name == "keep") return sim::SellerSpec{sim::SellerKind::kKeepReserved, fraction};
  if (name == "all-selling") return sim::SellerSpec{sim::SellerKind::kAllSelling, fraction};
  if (name == "a3t4") return sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}};
  if (name == "at2") return sim::SellerSpec{sim::SellerKind::kAT2, Fraction{0.50}};
  if (name == "at4") return sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}};
  if (name == "randomized") return sim::SellerSpec{sim::SellerKind::kRandomizedSpot, fraction};
  if (name == "continuous") return sim::SellerSpec{sim::SellerKind::kContinuousSpot, fraction};
  if (name == "offline") return sim::SellerSpec{sim::SellerKind::kOfflineOptimal, fraction};
  return std::nullopt;
}

int cmd_simulate(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("trace", "demand trace CSV (hour,demand); required", "");
  cli.add_flag("instance", "catalog instance type", "d2.xlarge");
  cli.add_flag("purchaser",
               "all-reserved | all-on-demand | random-reservation | wang-online | wang-variant",
               "wang-online");
  cli.add_flag("seller",
               "keep | all-selling | a3t4 | at2 | at4 | randomized | continuous | offline",
               "a3t4");
  cli.add_flag("fraction", "spot fraction for all-selling/randomized", "0.75");
  cli.add_flag("discount", "selling discount a", "0.8");
  cli.add_flag("fee", "marketplace service fee", "0.0");
  cli.add_flag("worked-only", "bill only worked reserved hours", "false");
  cli.add_flag("seed", "seed for stochastic policies", "1");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("rimarket_cli simulate").c_str());
    return kExitUsage;
  }
  if (cli.get("trace").empty()) {
    std::fprintf(stderr, "--trace is required\n%s", cli.help("rimarket_cli simulate").c_str());
    return kExitUsage;
  }
  int load_error = kExitNoInput;
  const auto trace = load_trace(cli.get("trace"), load_error);
  if (!trace) {
    return load_error;
  }
  const auto type = pricing::PricingCatalog::builtin().find(cli.get("instance"));
  if (!type) {
    std::fprintf(stderr, "unknown instance type %s\n", cli.get("instance").c_str());
    return kExitUsage;
  }
  const auto purchaser_kind = parse_purchaser(cli.get("purchaser"));
  if (!purchaser_kind) {
    std::fprintf(stderr, "unknown purchaser %s\n", cli.get("purchaser").c_str());
    return kExitUsage;
  }
  const auto spot_fraction = parse_fraction_flag(cli, "fraction", 0.75);
  const auto discount = parse_fraction_flag(cli, "discount", 0.8);
  const auto fee = parse_fraction_flag(cli, "fee", 0.0);
  if (!spot_fraction || !discount || !fee) {
    return kExitUsage;
  }
  const auto seller_spec = parse_seller(cli.get("seller"), *spot_fraction);
  if (!seller_spec) {
    std::fprintf(stderr, "unknown seller %s\n", cli.get("seller").c_str());
    return kExitUsage;
  }

  sim::SimulationConfig config;
  config.type = *type;
  config.selling_discount = *discount;
  config.service_fee = *fee;
  config.charge_policy = cli.get_bool("worked-only", false)
                             ? fleet::ChargePolicy::kWorkedHoursOnly
                             : fleet::ChargePolicy::kAllActiveHours;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const auto purchaser = purchasing::make_purchaser(*purchaser_kind, *type, seed);
  const auto stream =
      sim::ReservationStream::generate(*trace, *purchaser, trace->length(), type->term);
  const auto seller = sim::make_seller(*seller_spec, config, seed, &*trace, &stream);
  const sim::SimulationResult result = sim::simulate(*trace, stream, *seller, config);

  std::printf("trace: %lld hours, mean demand %.2f, sigma/mu %.2f\n",
              static_cast<long long>(trace->length()), trace->mean(),
              trace->coefficient_of_variation());
  std::printf("purchaser %s booked %lld reservations; seller %s sold %lld\n",
              purchaser->name().c_str(), static_cast<long long>(result.reservations_made),
              sim::seller_name(*seller_spec).c_str(),
              static_cast<long long>(result.instances_sold));
  std::printf("cost breakdown:\n");
  std::printf("  on-demand        %12.2f  (%lld instance-hours)\n", result.totals.on_demand.value(),
              static_cast<long long>(result.on_demand_hours));
  std::printf("  upfront fees     %12.2f\n", result.totals.upfront.value());
  std::printf("  reserved hourly  %12.2f\n", result.totals.reserved_hourly.value());
  std::printf("  sale income      %12.2f\n", result.totals.sale_income.value());
  std::printf("  net cost         %12.2f\n", result.net_cost().value());
  return 0;
}

int cmd_population(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("users", "users per fluctuation group", "10");
  cli.add_flag("hours", "trace length in hours", "17520");
  cli.add_flag("seed", "population seed", "2018");
  cli.add_flag("out", "directory to write user_<id>.csv traces + index.csv", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("rimarket_cli population").c_str());
    return kExitUsage;
  }
  const auto users = parse_int_flag(cli, "users", 10, 1, 10000);
  const auto hours = parse_int_flag(cli, "hours", 17520, 24, 1000000);
  const auto seed = parse_int_flag(cli, "seed", 2018, 0, INT64_MAX);
  if (!users || !hours || !seed) {
    return kExitUsage;
  }
  workload::PopulationSpec spec;
  spec.users_per_group = static_cast<int>(*users);
  spec.trace_hours = *hours;
  spec.seed = static_cast<std::uint64_t>(*seed);
  const auto population = workload::UserPopulation::build(spec);
  std::printf("%s", analysis::render_fig2(population).c_str());

  const std::string out_dir = cli.get("out");
  if (!out_dir.empty()) {
    std::string index = "user,group,cv,generator,trace_file\n";
    for (const workload::User& user : population.users()) {
      const std::string file = common::format("user_%03d.csv", user.id);
      if (!common::write_file(out_dir + "/" + file, user.trace.to_csv())) {
        std::fprintf(stderr, "cannot write %s/%s (does the directory exist?)\n",
                     out_dir.c_str(), file.c_str());
        return kExitCantCreate;
      }
      index += common::make_csv_line({std::to_string(user.id),
                                      std::to_string(workload::group_index(user.group)),
                                      common::format("%.4f", user.cv), user.generator, file});
      index += '\n';
    }
    if (!common::write_file(out_dir + "/index.csv", index)) {
      std::fprintf(stderr, "cannot write %s/index.csv\n", out_dir.c_str());
      return kExitCantCreate;
    }
    std::printf("\nwrote %zu traces + index.csv to %s/\n", population.size(), out_dir.c_str());
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("users", "users per fluctuation group", "25");
  cli.add_flag("hours", "trace length in hours", "17520");
  cli.add_flag("discount", "selling discount a", "0.8");
  cli.add_flag("instance", "catalog instance type", "d2.xlarge");
  cli.add_flag("seed", "seed", "2018");
  cli.add_flag("threads", "worker threads (0 = hardware)", "0");
  cli.add_flag("metrics", "print the execution-layer METRICS JSON line", "false");
  cli.add_flag("out", "write raw scenario results CSV here", "");
  cli.add_flag("normalized-out", "write normalized ratios CSV here", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("rimarket_cli evaluate").c_str());
    return kExitUsage;
  }
  const auto type = pricing::PricingCatalog::builtin().find(cli.get("instance"));
  if (!type) {
    std::fprintf(stderr, "unknown instance type %s\n", cli.get("instance").c_str());
    return kExitUsage;
  }
  const auto users = parse_int_flag(cli, "users", 25, 1, 10000);
  const auto hours = parse_int_flag(cli, "hours", 17520, 24, 1000000);
  const auto seed = parse_int_flag(cli, "seed", 2018, 0, INT64_MAX);
  const auto threads = parse_int_flag(cli, "threads", 0, 0, 4096);
  const auto discount = parse_fraction_flag(cli, "discount", 0.8);
  if (!users || !hours || !seed || !threads || !discount) {
    return kExitUsage;
  }
  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = static_cast<int>(*users);
  pop_spec.trace_hours = *hours;
  pop_spec.seed = static_cast<std::uint64_t>(*seed);
  const auto population = workload::UserPopulation::build(pop_spec);

  sim::EvaluationSpec spec;
  spec.sim.type = *type;
  spec.sim.selling_discount = *discount;
  spec.seed = pop_spec.seed;
  spec.threads = static_cast<std::size_t>(*threads);
  spec.sellers = sim::paper_sellers(Fraction{0.75});
  std::vector<sim::ScenarioResult> results;
  try {
    results = sim::evaluate(population, spec);
  } catch (const sim::SweepError& error) {
    std::fprintf(stderr, "%s\n", error.what());
    for (const sim::UserFailure& failure : error.failures()) {
      std::fprintf(stderr, "  user %d: %s\n", failure.user_id, failure.message.c_str());
    }
    return kExitSoftware;
  }
  const auto normalized = analysis::normalize_to_keep(results);

  std::printf("%s\n", analysis::render_table3(normalized).c_str());
  if (cli.get_bool("metrics", false)) {
    std::printf("METRICS %s\n", common::MetricsRegistry::global().to_json().c_str());
  }
  if (!cli.get("out").empty()) {
    if (!common::write_file(cli.get("out"), analysis::scenarios_to_csv(results))) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("out").c_str());
      return kExitCantCreate;
    }
    std::printf("wrote %zu scenario rows to %s\n", results.size(), cli.get("out").c_str());
  }
  if (!cli.get("normalized-out").empty()) {
    if (!common::write_file(cli.get("normalized-out"),
                            analysis::normalized_to_csv(normalized))) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("normalized-out").c_str());
      return kExitCantCreate;
    }
    std::printf("wrote %zu normalized rows to %s\n", normalized.size(),
                cli.get("normalized-out").c_str());
  }
  return 0;
}

void print_usage() {
  std::printf(
      "rimarket_cli — reserved-instance trading toolkit\n"
      "usage: rimarket_cli <subcommand> [flags]\n\n"
      "subcommands:\n"
      "  catalog      list the builtin pricing catalog (--csv)\n"
      "  bounds       competitive guarantees + adversarial verification\n"
      "  simulate     run one (trace, purchaser, seller) simulation\n"
      "  population   build the evaluation user population (--out exports traces)\n"
      "  evaluate     run the paper sweep; --out/--normalized-out export CSV\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return kExitUsage;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses only its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "catalog") {
    return cmd_catalog(sub_argc, sub_argv);
  }
  if (command == "bounds") {
    return cmd_bounds(sub_argc, sub_argv);
  }
  if (command == "simulate") {
    return cmd_simulate(sub_argc, sub_argv);
  }
  if (command == "population") {
    return cmd_population(sub_argc, sub_argv);
  }
  if (command == "evaluate") {
    return cmd_evaluate(sub_argc, sub_argv);
  }
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage();
    return 0;
  }
  std::fprintf(stderr, "unknown subcommand %s\n\n", command.c_str());
  print_usage();
  return kExitUsage;
}
