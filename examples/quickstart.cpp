// Quickstart: should I sell my reserved instance?
//
// One d2.xlarge (the paper's running example) was reserved a while ago and
// the workload has been light.  This walks the core API end to end:
//   1. look the instance type up in the pricing catalog,
//   2. replay the usage history into a reservation ledger,
//   3. ask each of the paper's online algorithms for its decision,
//   4. simulate a year of the demand process under each policy and compare
//      against keep-reserved.
//
// Run: ./quickstart [--discount=0.8] [--busy-fraction=0.15]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "pricing/catalog.hpp"
#include "selling/baselines.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("discount", "selling discount a in [0,1]", "0.8");
  cli.add_flag("busy-fraction", "fraction of hours the instance is busy", "0.15");
  cli.add_flag("seed", "random seed", "42");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help("quickstart").c_str());
    return 1;
  }
  const double discount = cli.get_double("discount", 0.8);
  const double busy_fraction = cli.get_double("busy-fraction", 0.15);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // 1. Pricing: the paper's example instance.
  const pricing::InstanceType d2 = pricing::PricingCatalog::builtin().require("d2.xlarge");
  std::printf("Instance: %s  (R=$%.0f upfront, $%.2f/h on-demand, alpha=%.2f, theta=%.2f)\n",
              d2.name.c_str(), d2.upfront.value(), d2.on_demand_hourly.value(),
              d2.alpha().value(), d2.theta());

  // 2. A sparse workload: the instance is busy only `busy_fraction` of the
  //    time — the situation that motivates the marketplace.
  common::Rng rng(seed);
  workload::OnOffGenerator generator(1.0, 24.0, 24.0 * (1.0 - busy_fraction) / busy_fraction);
  const workload::DemandTrace trace = generator.generate(d2.term, rng);
  std::printf("Workload: busy %.0f%% of hours (sigma/mu = %.2f)\n\n",
              100.0 * trace.mean(), trace.coefficient_of_variation());

  // 3. The per-decision view: break-even working hours at each spot.
  std::printf("%-10s %16s %18s\n", "algorithm", "decision hour", "break-even (hours)");
  for (const double fraction : {0.25, 0.5, 0.75}) {
    const selling::FixedSpotSelling policy(d2, Fraction{fraction}, Fraction{discount});
    std::printf("A_{%.2fT}   %16lld %18.1f\n", fraction,
                static_cast<long long>(policy.decision_age_hours()),
                policy.break_even_hours().value());
  }

  // 4. Simulate one reserved instance under each policy for a full term.
  const sim::ReservationStream stream{std::vector<Count>{1}};
  sim::SimulationConfig config;
  config.type = d2;
  config.selling_discount = Fraction{discount};

  selling::KeepReservedPolicy keep;
  const double keep_cost = sim::simulate(trace, stream, keep, config).net_cost().value();
  std::printf("\n%-12s %12s %10s %6s\n", "policy", "cost ($)", "vs keep", "sold?");
  std::printf("%-12s %12.2f %10s %6s\n", "keep", keep_cost, "1.000", "-");
  for (const double fraction : {0.75, 0.5, 0.25}) {
    selling::FixedSpotSelling policy(d2, Fraction{fraction}, Fraction{discount});
    const sim::SimulationResult result = sim::simulate(trace, stream, policy, config);
    std::printf("%-12s %12.2f %10.3f %6s\n", policy.name().c_str(), result.net_cost().value(),
                result.net_cost().value() / keep_cost, result.instances_sold > 0 ? "yes" : "no");
  }
  std::printf(
      "\nA ratio below 1.000 means selling through the marketplace beats holding the"
      "\nreservation for this workload.\n");
  return 0;
}
