// Marketplace session: list RIs at different discounts and watch them trade.
//
// Demonstrates the marketplace substrate: sellers list the remaining period
// of their reservations at different discounts, buyers arrive stochastically
// and always lift the lowest ask (Amazon's matching rule), Amazon takes its
// 12% fee.  Shows why a deeper discount sells faster, the effect the paper's
// `a` parameter abstracts.
//
// Run: ./marketplace_sim [--hours=336] [--buyer-rate=0.3] [--seed=11]
#include <cstdio>
#include <map>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "market/marketplace.hpp"
#include "market/response.hpp"
#include "pricing/catalog.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("hours", "trading hours to simulate", "336");
  cli.add_flag("buyer-rate", "mean buyer arrivals per hour", "0.3");
  cli.add_flag("seed", "random seed", "11");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("marketplace_sim").c_str());
    return 1;
  }
  const Hour hours = cli.get_int("hours", 336);
  const pricing::InstanceType type = pricing::PricingCatalog::builtin().require("m4.large");

  market::MarketplaceConfig config;
  config.buyer_rate_per_hour = cli.get_double("buyer-rate", 0.3);
  config.mean_buyer_quantity = 1.5;
  market::MarketplaceSimulator marketplace(type, config,
                                           static_cast<std::uint64_t>(cli.get_int("seed", 11)));

  // Ten sellers list half-used m4.large contracts at staggered discounts.
  std::map<market::ListingId, double> discount_of;
  std::printf("Listings (m4.large, half the term remaining, cap $%.2f):\n",
              type.prorated_upfront(type.term / 2).value());
  for (int i = 0; i < 10; ++i) {
    const double discount = 0.5 + 0.05 * i;  // 0.50 .. 0.95
    const market::ListingId id =
        marketplace.list(/*seller=*/i, /*elapsed=*/type.term / 2, Fraction{discount});
    discount_of[id] = discount;
    std::printf("  seller %d lists at a=%.2f -> ask $%.2f\n", i, discount,
                type.sale_income(type.term / 2, Fraction{discount}).value());
  }

  std::printf("\nTrading for %lld hours (buyers ~ Poisson %.2f/h)...\n\n",
              static_cast<long long>(hours), config.buyer_rate_per_hour);
  std::printf("%6s %7s %10s %10s %10s %10s\n", "hour", "seller", "discount", "paid",
              "fee(12%)", "proceeds");
  for (Hour h = 0; h < hours; ++h) {
    for (const market::SaleRecord& sale : marketplace.step()) {
      std::printf("%6lld %7lld %10.2f %10.2f %10.2f %10.2f\n",
                  static_cast<long long>(sale.sold_at),
                  static_cast<long long>(sale.listing.seller),
                  discount_of[sale.listing.id], sale.buyer_paid.value(),
                  sale.service_fee.value(), sale.seller_proceeds.value());
    }
  }
  std::printf("\n%zu listings still resting in the book", marketplace.book().depth());
  if (const auto best = marketplace.book().best_ask()) {
    std::printf(" (best ask $%.2f)", best->value());
  }
  std::printf(".\n\n");

  // The closed-form view the selling algorithms can consume.
  market::ResponseModelConfig response_config;
  response_config.buyer_rate_per_hour = config.buyer_rate_per_hour;
  response_config.mean_buyer_quantity = config.mean_buyer_quantity;
  const market::DiscountResponseModel response(type, response_config);
  std::printf("Modelled fill dynamics (queue-ahead approximation):\n");
  std::printf("%10s %18s %22s\n", "discount", "E[hours to fill]", "P[filled in 1 week]");
  for (const double discount : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    std::printf("%10.2f %18.1f %22.3f\n", discount,
                response.expected_fill_hours(Fraction{discount}),
                response.fill_probability(Fraction{discount}, kHoursPerWeek));
  }
  return 0;
}
