// Portfolio advisor: sell/keep recommendations for a fleet of RIs.
//
// Feeds a demand history (a CSV `hour,demand` trace, or a synthetic one)
// through the purchasing imitator to reconstruct a plausible reservation
// portfolio, then reports, per reservation, what each paper algorithm
// would do at its decision spot and what the clairvoyant optimum would
// have done — the "advisor console" a cost-management tool would show.
//
// Run: ./portfolio_advisor [--trace=path.csv] [--instance=d2.xlarge]
//                          [--discount=0.8] [--seed=7]
//
// An explicit --trace that cannot be loaded is fatal (sysexits 66 for a
// missing/unreadable file, 65 for a malformed one); the synthetic fallback
// only covers the no-flag case.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "pricing/catalog.hpp"
#include "selling/baselines.hpp"
#include "selling/fixed_spot.hpp"
#include "serve/advisor.hpp"
#include "sim/offline_planner.hpp"
#include "sim/portfolio.hpp"
#include "sim/simulator.hpp"
#include "purchasing/wang_online.hpp"
#include "workload/generators.hpp"

using namespace rimarket;

namespace {

// sysexits(3)-style exit codes, matching rimarket_cli.
constexpr int kExitUsage = 64;      ///< EX_USAGE: bad flags or flag values
constexpr int kExitDataError = 65;  ///< EX_DATAERR: malformed trace CSV
constexpr int kExitNoInput = 66;    ///< EX_NOINPUT: missing/unreadable trace file

workload::DemandTrace synthesize_trace(Hour hours, std::uint64_t seed) {
  common::Rng rng(seed);
  // A web-service-like trace with persistent base load: the cost-aware
  // purchaser reserves the stable levels, and the seasonal/noisy excess is
  // what the selling algorithms then evaluate.
  workload::Ec2LogSynthesizer::Params params;
  params.base = 8.0;
  params.daily_amplitude = 0.45;
  params.noise_stddev = 0.35;
  params.burst_probability = 0.004;
  params.burst_multiplier = 2.0;
  return workload::Ec2LogSynthesizer(params).generate(hours, rng);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("trace", "CSV demand trace (hour,demand)", "");
  cli.add_flag("instance", "instance type name from the catalog", "d2.xlarge");
  cli.add_flag("discount", "selling discount a in [0,1]", "0.8");
  cli.add_flag("seed", "random seed for the synthetic trace", "7");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("portfolio_advisor").c_str());
    return kExitUsage;
  }
  const auto maybe_type = pricing::PricingCatalog::builtin().find(cli.get("instance"));
  if (!maybe_type) {
    std::fprintf(stderr, "unknown instance type %s\n", cli.get("instance").c_str());
    return kExitUsage;
  }
  const pricing::InstanceType type = *maybe_type;
  const double discount = cli.get_double("discount", 0.8);
  if (discount < 0.0 || discount > 1.0) {
    std::fprintf(stderr, "--discount must be in [0,1] (got %g)\n", discount);
    return kExitUsage;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const Hour horizon = 2 * type.term;
  workload::DemandTrace trace;
  if (const std::string trace_path = cli.get("trace"); !trace_path.empty()) {
    common::CsvError error;
    const auto loaded = workload::DemandTrace::load_file(trace_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "%s\n", error.to_string().c_str());
      return error.errno_value != 0 ? kExitNoInput : kExitDataError;
    }
    trace = *loaded;
  } else {
    trace = synthesize_trace(horizon, seed);
  }
  std::printf("Demand trace: %lld hours, mean %.2f, sigma/mu %.2f, peak %lld\n",
              static_cast<long long>(trace.length()), trace.mean(),
              trace.coefficient_of_variation(), static_cast<long long>(trace.peak()));

  // Reconstruct the portfolio with the Wang et al. online purchaser — the
  // behaviour of a cost-aware user.
  purchasing::WangOnlinePolicy purchaser(type, 1.0);
  const auto stream = sim::ReservationStream::generate(trace, purchaser, horizon, type.term);
  std::printf("Reconstructed portfolio: %lld reservations of %s over %lld hours\n\n",
              static_cast<long long>(stream.total()), type.name.c_str(),
              static_cast<long long>(horizon));
  if (stream.total() == 0) {
    std::printf("No reservations are economical for this trace; nothing to advise.\n");
    return 0;
  }

  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{discount};
  config.horizon = horizon;

  // Clairvoyant plan for reference.
  const auto plan = sim::plan_offline_optimal(trace, stream, config);

  // Shadow run to extract per-reservation utilization at each spot.
  selling::KeepReservedPolicy keep;
  const sim::SimulationResult shadow = sim::simulate(trace, stream, keep, config);

  common::TextTable table({"reservation", "booked@", "worked h", "A_{T/4}", "A_{T/2}",
                           "A_{3T/4}", "hindsight"});
  // The per-spot verdicts come from the same serve::advise_reservation the
  // resident service answers ADVISE with (utilization at each spot is the
  // final worked-hours count capped at the spot width — see that header),
  // so this table and the service are byte-identical by construction.
  serve::AccountSnapshot snapshot;
  snapshot.account = "local";
  snapshot.type = type;
  snapshot.selling_discount = Fraction{discount};
  snapshot.now = horizon;
  for (const fleet::Reservation& reservation : shadow.reservations) {
    const serve::ReservationAdvice advice = serve::advise_reservation(
        snapshot,
        serve::ReservationState{reservation.id, reservation.start, reservation.worked_hours});
    const auto cell = [&advice](std::size_t spot) {
      return std::string(serve::advice_label(advice.policies[spot].advice));
    };
    const auto it = plan.find(reservation.id);
    table.add_row({common::format("#%lld", static_cast<long long>(reservation.id)),
                   common::format("%lld", static_cast<long long>(reservation.start)),
                   common::format("%lld", static_cast<long long>(reservation.worked_hours)),
                   cell(0), cell(1), cell(2),
                   it == plan.end()
                       ? std::string("keep")
                       : common::format("sell@%lld", static_cast<long long>(it->second))});
  }
  std::printf("%s", table.render().c_str());

  // Bottom line: cost of each policy on this portfolio.
  std::printf("\n%-14s %14s %10s\n", "policy", "cost ($)", "vs keep");
  const double keep_cost = shadow.net_cost().value();
  std::printf("%-14s %14.2f %10.3f\n", "keep-reserved", keep_cost, 1.0);
  for (const double fraction : {0.25, 0.5, 0.75}) {
    selling::FixedSpotSelling policy(type, Fraction{fraction}, Fraction{discount});
    const double cost = sim::simulate(trace, stream, policy, config).net_cost().value();
    std::printf("%-14s %14.2f %10.3f\n", policy.name().c_str(), cost, cost / keep_cost);
  }
  const double optimal_cost =
      sim::simulate_offline_optimal(trace, stream, config).net_cost().value();
  std::printf("%-14s %14.2f %10.3f\n", "hindsight-opt", optimal_cost,
              optimal_cost / keep_cost);

  // Account view: the same decision across a multi-type portfolio (EC2
  // reservations are per-type, so types simulate independently).
  std::printf("\nAccount-wide view (this trace on %s + two synthetic siblings):\n",
              type.name.c_str());
  common::Rng sibling_rng(seed + 1);
  std::vector<sim::PortfolioItem> portfolio;
  portfolio.push_back({type, trace});
  workload::DiurnalGenerator web(12.0, 5.0, 1.5);
  portfolio.push_back({pricing::PricingCatalog::builtin().require("m4.large"),
                       web.generate(horizon, sibling_rng)});
  workload::OnOffGenerator batch(3.0, 36.0, 240.0);
  portfolio.push_back({pricing::PricingCatalog::builtin().require("c4.xlarge"),
                       batch.generate(horizon, sibling_rng)});
  sim::PortfolioConfig portfolio_config;
  portfolio_config.selling_discount = Fraction{discount};
  portfolio_config.purchaser = purchasing::PurchaserKind::kAllReserved;  // conservative account
  portfolio_config.seed = seed;
  const std::vector<sim::SellerSpec> sellers = {
      {sim::SellerKind::kAT4, Fraction{0.25}},
      {sim::SellerKind::kAT2, Fraction{0.50}},
      {sim::SellerKind::kA3T4, Fraction{0.75}},
  };
  std::printf("%-14s %14s %10s\n", "policy", "total ($)", "vs keep");
  for (const auto& row : sim::compare_sellers(portfolio, portfolio_config, sellers)) {
    std::printf("%-14s %14.2f %10.3f\n", sim::seller_name(row.seller).c_str(),
                row.total_cost.value(), row.ratio_to_keep);
  }
  return 0;
}
