// Trace explorer: generate, classify and visualize the synthetic workloads.
//
// Shows the workload substrate that stands in for the paper's EC2 usage
// logs and Google cluster traces: every generator, its sigma/mu statistic,
// the paper's fluctuation group, and an ASCII demand histogram.  Also
// exports one trace to CSV so other tools (and portfolio_advisor --trace)
// can consume it.
//
// Run: ./trace_explorer [--hours=8760] [--seed=3] [--export=trace.csv]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "workload/classify.hpp"
#include "workload/generators.hpp"
#include "workload/population.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("hours", "trace length in hours", "8760");
  cli.add_flag("seed", "random seed", "3");
  cli.add_flag("export", "write the last trace to this CSV path", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help("trace_explorer").c_str());
    return 1;
  }
  const Hour hours = cli.get_int("hours", kHoursPerYear);
  common::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));

  std::vector<std::unique_ptr<workload::DemandGenerator>> generators;
  generators.push_back(std::make_unique<workload::StableGenerator>(12, 2));
  generators.push_back(std::make_unique<workload::DiurnalGenerator>(20.0, 8.0, 2.0));
  generators.push_back(std::make_unique<workload::OnOffGenerator>(6.0, 48.0, 144.0));
  generators.push_back(std::make_unique<workload::BurstyGenerator>(0.002, 15.0, 12.0, 0));
  generators.push_back(std::make_unique<workload::PoissonGenerator>(4.0));
  generators.push_back(std::make_unique<workload::RandomWalkGenerator>(5, 0.3, 25));
  generators.push_back(
      std::make_unique<workload::Ec2LogSynthesizer>(workload::Ec2LogSynthesizer::Params{}));
  generators.push_back(std::make_unique<workload::GoogleClusterSynthesizer>(
      workload::GoogleClusterSynthesizer::Params{}));

  workload::DemandTrace last;
  for (const auto& generator : generators) {
    common::Rng fork = rng.fork(static_cast<std::uint64_t>(&generator - generators.data()));
    const workload::DemandTrace trace = generator->generate(hours, fork);
    std::printf("== %s\n", generator->describe().c_str());
    std::printf("   mean %.2f  sigma %.2f  sigma/mu %.2f  peak %lld  -> %s\n",
                trace.mean(), trace.stddev(), trace.coefficient_of_variation(),
                static_cast<long long>(trace.peak()),
                std::string(workload::group_name(workload::classify(trace))).c_str());
    const double peak = std::max<double>(1.0, static_cast<double>(trace.peak()));
    common::Histogram histogram(0.0, peak + 1.0, 8);
    for (Hour t = 0; t < trace.length(); ++t) {
      histogram.add(static_cast<double>(trace.at(t)));
    }
    std::printf("%s\n", histogram.render(32).c_str());
    last = trace;
  }

  // The paper's population, in miniature.
  workload::PopulationSpec spec;
  spec.users_per_group = 10;
  spec.trace_hours = hours;
  spec.seed = 2018;
  const auto population = workload::UserPopulation::build(spec);
  std::printf("== population (10 users per paper group)\n");
  for (const auto group :
       {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
        workload::FluctuationGroup::kHigh}) {
    std::printf("   %-34s:", std::string(workload::group_name(group)).c_str());
    for (const workload::User* user : population.group(group)) {
      std::printf(" %.2f", user->cv);
    }
    std::printf("\n");
  }

  const std::string export_path = cli.get("export");
  if (!export_path.empty()) {
    if (common::write_file(export_path, last.to_csv())) {
      std::printf("\nexported the last trace to %s\n", export_path.c_str());
    } else {
      std::fprintf(stderr, "\nfailed to write %s\n", export_path.c_str());
      return 1;
    }
  }
  return 0;
}
