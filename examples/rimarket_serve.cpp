// rimarket_serve — the resident advisor service.
//
// Three modes:
//
//   (default)            line protocol on stdin/stdout: one request per
//                        line (ADVISE/BREAKEVEN/SNAPSHOT_UPDATE/METRICS/
//                        PING), one response line each, until EOF.
//   --generate=N         print a deterministic synthetic request trace of
//                        N reads (plus snapshot loads/refreshes) and exit.
//   --replay=path        replay a request-trace file through the service
//                        and print the per-endpoint latency report;
//                        --report=path additionally writes the JSON
//                        artifact the serve-smoke CI job archives.
//
// `--journal=path` (stdin and replay modes) makes SNAPSHOT_UPDATE durable:
// accepted updates are journaled before they are acknowledged, and startup
// replays the file, so a SIGKILLed service restarted on the same journal
// answers exactly as if it never died (tools/serve_crash_drill.py proves
// this).  If the journal cannot be opened the process exits with
// EX_CANTCREAT rather than silently running non-durable.
//
// Example:
//   ./rimarket_serve --generate=10000 --seed=42 > trace.txt
//   ./rimarket_serve --replay=trace.txt --threads=4 --report=latency.json
//   ./rimarket_serve --journal=serve.journal < requests.txt
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"

using namespace rimarket;

namespace {

// sysexits(3)-style exit codes (same scheme as rimarket_cli): user input
// gets a diagnostic and an exit code, never a contract abort.
constexpr int kExitUsage = 64;       ///< EX_USAGE: bad flags or flag values
constexpr int kExitNoInput = 66;     ///< EX_NOINPUT: missing/unreadable trace file
constexpr int kExitCantCreate = 73;  ///< EX_CANTCREAT: cannot write the report file

int run_stdin_loop(std::size_t threads, const std::string& journal_path) {
  serve::ServiceConfig config;
  config.threads = threads;
  config.journal_path = journal_path;
  serve::AdvisorService service(config);
  if (!journal_path.empty() && !service.journal_enabled()) {
    std::fprintf(stderr, "cannot open journal %s\n", journal_path.c_str());
    return kExitCantCreate;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string response = service.handle_line(line);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("generate", "print a synthetic trace of this many read requests", "");
  cli.add_flag("replay", "request-trace file to replay", "");
  cli.add_flag("report", "write the replay report JSON here", "");
  cli.add_flag("threads", "worker threads (0 = hardware)", "1");
  cli.add_flag("rate", "open-loop arrivals/sec for --replay (0 = back-to-back)", "0");
  cli.add_flag("seed", "seed for trace generation / arrival pacing", "1");
  cli.add_flag("accounts", "accounts in the generated trace", "4");
  cli.add_flag("reservations", "reservations per generated account", "32");
  cli.add_flag("updates", "snapshot refreshes interleaved in the generated trace", "8");
  cli.add_flag("journal", "snapshot journal file (durable SNAPSHOT_UPDATE + crash recovery)",
               "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help("rimarket_serve").c_str());
    return kExitUsage;
  }
  const long long threads = cli.get_int("threads", 1);
  const long long seed = cli.get_int("seed", 1);
  const double rate = cli.get_double("rate", 0.0);
  if (threads < 0 || threads > 256 || seed < 0 || rate < 0.0 || rate > 1.0e6) {
    std::fprintf(stderr, "--threads in [0,256], --seed >= 0, --rate in [0,1e6]\n");
    return kExitUsage;
  }

  if (!cli.get("generate").empty()) {
    const auto requests = common::parse_int(cli.get("generate"));
    const long long accounts = cli.get_int("accounts", 4);
    const long long reservations = cli.get_int("reservations", 32);
    const long long updates = cli.get_int("updates", 8);
    if (!requests || *requests < 0 || accounts < 1 || accounts > 1000 || reservations < 1 ||
        reservations > 100000 || updates < 0 || updates > 100000) {
      std::fprintf(stderr,
                   "--generate needs a request count >= 0 (with --accounts in [1,1000], "
                   "--reservations in [1,1e5], --updates in [0,1e5])\n");
      return kExitUsage;
    }
    serve::RequestTraceSpec spec;
    spec.accounts = static_cast<std::size_t>(accounts);
    spec.reservations_per_account = static_cast<std::size_t>(reservations);
    spec.requests = static_cast<std::size_t>(*requests);
    spec.updates = static_cast<std::size_t>(updates);
    for (const std::string& line :
         serve::generate_request_trace(spec, static_cast<std::uint64_t>(seed))) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  if (!cli.get("replay").empty()) {
    serve::ReplayConfig config;
    config.threads = static_cast<std::size_t>(threads);
    config.arrivals_per_second = rate;
    config.seed = static_cast<std::uint64_t>(seed);
    config.journal_path = cli.get("journal");
    common::CsvError error;
    const serve::ReplayDriver driver(config);
    const serve::LatencyReport report = driver.replay_file(cli.get("replay"), &error);
    if (report.requests == 0 && error.errno_value != 0) {
      std::fprintf(stderr, "%s\n", error.to_string().c_str());
      return kExitNoInput;
    }
    std::printf("%s", report.render().c_str());
    const std::string report_path = cli.get("report");
    if (!report_path.empty() && !common::write_file(report_path, report.to_json() + "\n")) {
      std::fprintf(stderr, "cannot write report to %s\n", report_path.c_str());
      return kExitCantCreate;
    }
    return 0;
  }

  return run_stdin_loop(static_cast<std::size_t>(threads), cli.get("journal"));
}
