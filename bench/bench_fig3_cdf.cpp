// Fig. 3: per-algorithm cost CDFs over all users, vs All-selling and
// Keep-reserved (the normalization baseline = 1.0).
//
// Paper headline numbers this reproduces in shape:
//   (a) A_{3T/4}: >60% of users save; ~1% regress, worst regression < 1%.
//   (b) A_{T/2}:  >70% save, ~40% save more than 20%; ~3% regress.
//   (c) A_{T/4}:  >75% save, >40% save more than 30%; ~5% regress.
#include <cstdio>

#include "analysis/reports.hpp"
#include "bench_common.hpp"
#include "selling/fixed_spot.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv, "bench_fig3_cdf");
  bench::print_banner(options, "Fig. 3 — cost CDFs of the online selling algorithms");
  const bench::PaperEvaluation evaluation = bench::run_paper_evaluation(options);

  const struct {
    const char* panel;
    sim::SellerSpec algorithm;
    sim::SellerSpec all_selling;
  } panels[] = {
      {"(a)", {sim::SellerKind::kA3T4, selling::kSpot3T4},
       {sim::SellerKind::kAllSelling, selling::kSpot3T4}},
      {"(b)", {sim::SellerKind::kAT2, selling::kSpotT2},
       {sim::SellerKind::kAllSelling, selling::kSpotT2}},
      {"(c)", {sim::SellerKind::kAT4, selling::kSpotT4},
       {sim::SellerKind::kAllSelling, selling::kSpotT4}},
  };
  for (const auto& panel : panels) {
    std::printf("--- Fig. 3%s ---\n", panel.panel);
    std::printf("%s\n",
                analysis::render_fig3_panel(evaluation.normalized, panel.algorithm,
                                            panel.all_selling)
                    .c_str());
  }
  bench::print_metrics_summary();
  return 0;
}
