#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/metrics.hpp"
#include "pricing/catalog.hpp"
#include "selling/fixed_spot.hpp"

namespace rimarket::bench {

BenchOptions parse_options(int argc, char** argv, const char* program) {
  common::CliParser cli;
  cli.add_flag("users", "users per fluctuation group", "100");
  cli.add_flag("hours", "trace length in hours", "17520");
  cli.add_flag("discount", "selling discount a in [0,1]", "0.8");
  cli.add_flag("instance", "catalog instance type", "d2.xlarge");
  cli.add_flag("seed", "population/experiment seed", "2018");
  cli.add_flag("threads", "worker threads (0 = hardware)", "0");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.help(program).c_str());
    std::exit(1);
  }
  BenchOptions options;
  options.users_per_group = static_cast<int>(cli.get_int("users", 100));
  options.trace_hours = cli.get_int("hours", 2 * kHoursPerYear);
  options.selling_discount = cli.get_double("discount", 0.8);
  options.instance = cli.get("instance");
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2018));
  options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  if (!pricing::PricingCatalog::builtin().find(options.instance)) {
    std::fprintf(stderr, "unknown instance type %s\n", options.instance.c_str());
    std::exit(1);
  }
  return options;
}

PaperEvaluation run_paper_evaluation(const BenchOptions& options) {
  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = options.users_per_group;
  pop_spec.trace_hours = options.trace_hours;
  pop_spec.seed = options.seed;

  PaperEvaluation evaluation;
  evaluation.population = workload::UserPopulation::build(pop_spec);

  evaluation.spec.sim.type = pricing::PricingCatalog::builtin().require(options.instance);
  evaluation.spec.sim.selling_discount = Fraction{options.selling_discount};
  evaluation.spec.sim.charge_policy = options.charge_policy;
  evaluation.spec.seed = options.seed;
  evaluation.spec.threads = options.threads;
  evaluation.spec.sellers = {
      sim::SellerSpec{sim::SellerKind::kKeepReserved, Fraction{0.0}},
      sim::SellerSpec{sim::SellerKind::kAllSelling, selling::kSpot3T4},
      sim::SellerSpec{sim::SellerKind::kAllSelling, selling::kSpotT2},
      sim::SellerSpec{sim::SellerKind::kAllSelling, selling::kSpotT4},
      sim::SellerSpec{sim::SellerKind::kA3T4, selling::kSpot3T4},
      sim::SellerSpec{sim::SellerKind::kAT2, selling::kSpotT2},
      sim::SellerSpec{sim::SellerKind::kAT4, selling::kSpotT4},
  };
  const auto sweep_start = std::chrono::steady_clock::now();
  try {
    evaluation.results = sim::evaluate(evaluation.population, evaluation.spec);
  } catch (const sim::SweepError& error) {
    // Same convention as parse_options: benches report bad runs on stderr
    // and exit instead of leaking the exception to std::terminate.
    std::fprintf(stderr, "%s\n", error.what());
    for (const sim::UserFailure& failure : error.failures()) {
      std::fprintf(stderr, "  user %d: %s\n", failure.user_id, failure.message.c_str());
    }
    std::exit(1);
  }
  const auto sweep_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - sweep_start)
                                .count();
  evaluation.normalized = analysis::normalize_to_keep(evaluation.results);

  common::MetricsRegistry& metrics = common::MetricsRegistry::global();
  metrics.set("bench.users", static_cast<std::int64_t>(evaluation.population.size()));
  metrics.set("bench.scenarios", static_cast<std::int64_t>(evaluation.results.size()));
  metrics.set("bench.sweep_millis", static_cast<std::int64_t>(sweep_millis));
  return evaluation;
}

void print_banner(const BenchOptions& options, const char* what) {
  std::printf("=== %s ===\n", what);
  std::printf(
      "instance=%s  a=%.2f  users=%dx3  trace=%lldh  seed=%llu\n"
      "(paper: d2.xlarge Linux US-East, 1-yr term; costs normalized to keep-reserved)\n\n",
      options.instance.c_str(), options.selling_discount, options.users_per_group,
      static_cast<long long>(options.trace_hours),
      static_cast<unsigned long long>(options.seed));
}

void print_metrics_summary() {
  std::printf("\nMETRICS %s\n", common::MetricsRegistry::global().to_json().c_str());
}

}  // namespace rimarket::bench
