// Ablation: prediction-based selling vs the paper's online algorithms.
//
// Paper Section II motivates competitive online analysis over long-term
// workload prediction: "prediction models generally assume that workloads
// are relatively stable, which is not always the true situation in
// practice.  Thus in some situations the prediction model as well as the
// corresponding cost-saving strategies may perform poorly."
//
// This bench makes that argument quantitative: a forward-looking
// EWMA-forecast seller (same decision spot, same break-even economics as
// A_{3T/4}, but judging the *predicted* future instead of the observed
// past) is compared per fluctuation group.  Expected shape: competitive on
// the stable group, increasingly worse-tailed as fluctuation grows.
#include <cstdio>

#include "analysis/summary.hpp"
#include "bench_common.hpp"
#include "pricing/catalog.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv, "bench_ablation_forecast");
  if (options.users_per_group == 100) {
    options.users_per_group = 50;
  }
  bench::print_banner(options, "Ablation — prediction-based selling vs online algorithms");

  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = options.users_per_group;
  pop_spec.trace_hours = options.trace_hours;
  pop_spec.seed = options.seed;
  const auto population = workload::UserPopulation::build(pop_spec);

  sim::EvaluationSpec spec;
  spec.sim.type = pricing::PricingCatalog::builtin().require(options.instance);
  spec.sim.selling_discount = Fraction{options.selling_discount};
  spec.seed = options.seed;
  spec.sellers = {
      sim::SellerSpec{sim::SellerKind::kKeepReserved, Fraction{0.0}},
      sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}},
      sim::SellerSpec{sim::SellerKind::kForecastSelling, Fraction{0.75}},
      sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}},
      sim::SellerSpec{sim::SellerKind::kForecastSelling, Fraction{0.25}},
  };
  const auto results = sim::evaluate(population, spec);
  const auto normalized = analysis::normalize_to_keep(results);

  const sim::SellerSpec pairs[][2] = {
      {{sim::SellerKind::kA3T4, Fraction{0.75}}, {sim::SellerKind::kForecastSelling, Fraction{0.75}}},
      {{sim::SellerKind::kAT4, Fraction{0.25}}, {sim::SellerKind::kForecastSelling, Fraction{0.25}}},
  };
  for (const auto& pair : pairs) {
    std::printf("--- decision spot %.2fT ---\n", pair[0].fraction);
    std::printf("%-22s %-10s %10s %10s %10s %10s\n", "policy", "group", "mean", "%saving",
                "%worse", "worst");
    for (const auto& seller : pair) {
      for (const auto group :
           {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
            workload::FluctuationGroup::kHigh}) {
        const auto slice = analysis::select_group(normalized, group);
        const auto sample = analysis::per_user_ratios(slice, seller);
        const auto summary = analysis::summarize_ratios(sample);
        std::printf("%-22s group %-4d %10.4f %9.1f%% %9.1f%% %10.4f\n",
                    sim::seller_name(seller).c_str(), workload::group_index(group) + 1,
                    summary.mean_ratio, 100.0 * summary.fraction_saving,
                    100.0 * summary.fraction_worse, summary.max_ratio);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "reading: the forecast policy inherits the online rule's economics but bets on\n"
      "extrapolated demand; the gap between its worst-case column and the online\n"
      "algorithm's, growing with the fluctuation group, is the paper's Section II\n"
      "argument in numbers.\n");
  bench::print_metrics_summary();
  return 0;
}
