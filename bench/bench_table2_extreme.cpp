// Table II: actual cost of the online algorithms for a user whose demands
// are highly fluctuating (the extreme case).
//
// Paper values (d2.xlarge): A_{3T/4} 9.36e4 < A_{T/2} 9.40e4 < A_{T/4}
// 9.45e4 < Keep-reserved 9.58e4 — for the most bursty user the *latest*
// decision spot is the safest, reversing the average-case ordering of
// Table III.  This bench prints the same row for the most fluctuating user
// in the synthetic population, plus the per-group extreme cases.
#include <cstdio>
#include <map>

#include "analysis/reports.hpp"
#include "bench_common.hpp"

using namespace rimarket;

namespace {

constexpr sim::SellerKind kAlgorithms[3] = {sim::SellerKind::kA3T4, sim::SellerKind::kAT2,
                                            sim::SellerKind::kAT4};

/// Per-(user, purchaser) scenario costs of the three algorithms.
struct ScenarioCosts {
  int user_id = 0;
  purchasing::PurchaserKind purchaser = purchasing::PurchaserKind::kAllReserved;
  double cost[3] = {0.0, 0.0, 0.0};
  double keep = 0.0;
  bool complete = false;
};

std::vector<ScenarioCosts> group3_scenarios(const bench::PaperEvaluation& evaluation) {
  std::map<std::pair<int, purchasing::PurchaserKind>, ScenarioCosts> scenarios;
  for (const auto& result : evaluation.results) {
    if (result.group != workload::FluctuationGroup::kHigh) {
      continue;
    }
    auto& entry = scenarios[{result.user_id, result.purchaser}];
    entry.user_id = result.user_id;
    entry.purchaser = result.purchaser;
    if (result.seller.kind == sim::SellerKind::kKeepReserved) {
      entry.keep = result.net_cost.value();
    }
    for (int k = 0; k < 3; ++k) {
      if (result.seller.kind == kAlgorithms[k]) {
        entry.cost[k] = result.net_cost.value();
      }
    }
  }
  std::vector<ScenarioCosts> out;
  for (auto& [key, entry] : scenarios) {
    entry.complete = true;
    out.push_back(entry);
  }
  return out;
}

/// Winner counts across group-3 (user, purchaser) scenarios: which
/// algorithm has the lowest absolute cost.  (The paper's Table II is one
/// such scenario, not an average across imitators.)
void print_winner_counts(const std::vector<ScenarioCosts>& scenarios) {
  int wins[3] = {0, 0, 0};
  int scored = 0;
  for (const ScenarioCosts& scenario : scenarios) {
    int best = 0;
    bool tie = true;
    for (int k = 1; k < 3; ++k) {
      if (scenario.cost[k] != scenario.cost[best]) {
        tie = false;
      }
      if (scenario.cost[k] < scenario.cost[best]) {
        best = k;
      }
    }
    if (tie) {
      continue;  // no reservations sold under any policy: nothing to rank
    }
    ++wins[best];
    ++scored;
  }
  std::printf("winner count across %d group-3 (user x imitator) scenarios:\n", scored);
  std::printf("  A_{3T/4}: %d   A_{T/2}: %d   A_{T/4}: %d\n", wins[0], wins[1], wins[2]);
}

void run_one_convention(const bench::BenchOptions& options, const char* label) {
  std::printf("--- %s ---\n", label);
  const bench::PaperEvaluation evaluation = bench::run_paper_evaluation(options);
  const workload::User& extreme = evaluation.population.most_fluctuating();
  std::printf("most fluctuating user: id=%d  sigma/mu=%.2f  generator=%s\n\n", extreme.id,
              extreme.cv, extreme.generator.c_str());
  std::printf("%s\n", analysis::render_table2(evaluation.results, extreme.id).c_str());

  const std::vector<ScenarioCosts> scenarios = group3_scenarios(evaluation);
  print_winner_counts(scenarios);

  // The paper's extreme case: the scenario where the latest spot wins by
  // the largest margin over the earlier spots.
  const ScenarioCosts* showcase = nullptr;
  double best_margin = 0.0;
  for (const ScenarioCosts& scenario : scenarios) {
    const double margin =
        std::min(scenario.cost[1], scenario.cost[2]) - scenario.cost[0];
    if (margin > best_margin) {
      best_margin = margin;
      showcase = &scenario;
    }
  }
  if (showcase != nullptr) {
    std::printf(
        "\nextreme case (user %d under %s): the latest spot is the safest, as in the\n"
        "paper's Table II:\n",
        showcase->user_id, purchasing::purchaser_name(showcase->purchaser).c_str());
    std::printf("  A_{3T/4}=%.2e  A_{T/2}=%.2e  A_{T/4}=%.2e  Keep-Reserved=%.2e\n",
                showcase->cost[0], showcase->cost[1], showcase->cost[2], showcase->keep);
  } else {
    std::printf("\nno group-3 scenario favors the latest spot under this billing convention\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv, "bench_table2_extreme");
  bench::print_banner(options, "Table II — actual cost for a highly fluctuating user");

  // Paper shape: A_{3T/4} 9.36e4 < A_{T/2} 9.40e4 < A_{T/4} 9.45e4 < Keep
  // 9.58e4 — the *latest* spot wins in the extreme case.  Under Eq. (1)'s
  // all-active billing idle reservations keep accruing hourly fees, which
  // rewards early selling; the reversal the paper reports emerges under the
  // worked-hours billing convention its analysis uses (both shown).
  run_one_convention(options, "Eq. (1) billing: every active reserved hour accrues alpha*p");
  options.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;
  run_one_convention(options, "analysis billing: only worked hours accrue alpha*p");
  bench::print_metrics_summary();
  return 0;
}
