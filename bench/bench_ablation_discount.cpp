// Ablation: how the selling discount `a` and the marketplace service fee
// shape the savings.
//
// The paper fixes a (the seller's price cut) and books gross income per
// Eq. (1).  This ablation sweeps a in {0.2..1.0} with and without Amazon's
// 12% fee, and adds the fill-latency model's view of the income trade-off —
// quantifying the design choice the paper leaves to the seller.
#include <cstdio>

#include "analysis/summary.hpp"
#include "bench_common.hpp"
#include "market/response.hpp"
#include "pricing/catalog.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv, "bench_ablation_discount");
  // The sweep multiplies run count by 10; keep the default population small.
  if (options.users_per_group == 100) {
    options.users_per_group = 25;
  }
  bench::print_banner(options, "Ablation — selling discount a and service fee");

  std::printf("%-8s %-6s %12s %12s %12s\n", "a", "fee", "A_{3T/4}", "A_{T/2}", "A_{T/4}");
  for (const double discount : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (const double fee : {0.0, 0.12}) {
      bench::BenchOptions point = options;
      point.selling_discount = discount;
      bench::PaperEvaluation evaluation = [&] {
        workload::PopulationSpec pop_spec;
        pop_spec.users_per_group = point.users_per_group;
        pop_spec.trace_hours = point.trace_hours;
        pop_spec.seed = point.seed;
        bench::PaperEvaluation out;
        out.population = workload::UserPopulation::build(pop_spec);
        out.spec.sim.type = pricing::PricingCatalog::builtin().require(point.instance);
        out.spec.sim.selling_discount = Fraction{discount};
        out.spec.sim.service_fee = Fraction{fee};
        out.spec.seed = point.seed;
        out.spec.sellers = sim::paper_sellers(Fraction{0.75});
        out.results = sim::evaluate(out.population, out.spec);
        out.normalized = analysis::normalize_to_keep(out.results);
        return out;
      }();
      std::printf("%-8.2f %-6.2f", discount, fee);
      for (const auto kind :
           {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
        std::printf(" %12.4f",
                    analysis::overall_average(evaluation.normalized, {kind, Fraction{0.75}}));
      }
      std::printf("\n");
    }
  }

  std::printf("\nfill-latency view (marketplace model, m4.large, half term elapsed):\n");
  std::printf("%-8s %16s %18s\n", "a", "E[fill hours]", "E[income] net fee");
  const pricing::InstanceType m4 = pricing::PricingCatalog::builtin().require("m4.large");
  const market::DiscountResponseModel response(m4, market::ResponseModelConfig{});
  for (const double discount : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::printf("%-8.2f %16.1f %18.2f\n", discount, response.expected_fill_hours(Fraction{discount}),
                response.expected_income(m4.term / 2, Fraction{discount}, Fraction{0.12}).value());
  }
  std::printf(
      "\nreading: lower a sells faster and loses less pro-ration but asks less; the\n"
      "paper's instant-sale assumption is the fee=0 row.\n");
  bench::print_metrics_summary();
  return 0;
}
