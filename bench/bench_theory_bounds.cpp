// Propositions 1-3: competitive-ratio guarantees, verified empirically.
//
// For every instance in the catalog and each decision spot, sweeps the
// proofs' adversarial schedules plus random ones and reports the largest
// observed per-instance ratio next to the closed-form bound — the
// executable counterpart of the paper's theory section.
#include <cstdio>

#include "analysis/reports.hpp"
#include "bench_common.hpp"
#include "common/cli.hpp"
#include "pricing/catalog.hpp"
#include "theory/randomized.hpp"
#include "theory/verification.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  common::CliParser cli;
  cli.add_flag("discount", "selling discount a in [0,1]", "0.8");
  cli.add_flag("epsilon-steps", "epsilon grid points", "24");
  cli.add_flag("random", "random schedules per density", "16");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.help("bench_theory_bounds").c_str());
    return 1;
  }
  const double discount = cli.get_double("discount", 0.8);

  std::printf("=== Propositions 1-3 — competitive bounds, empirical verification ===\n");
  std::printf("benchmark: paper OPT (sell moment restricted to [f, 1]); worked-hours billing\n\n");

  std::printf("closed-form guarantees at a=%.2f (theta_max=4):\n", discount);
  std::printf("  %-10s %-22s %-14s\n", "spot", "primary (Props 1/2a/3a)", "secondary");
  for (const double fraction : {0.75, 0.5, 0.25}) {
    const auto bound = theory::competitive_bound(Fraction{fraction}, Fraction{0.25}, Fraction{discount});
    std::printf("  f=%-8.2f %-22.4f %-14.4f (alpha=0.25)\n", fraction, bound.primary,
                bound.secondary);
  }
  std::printf("\n");

  theory::VerificationSpec spec;
  spec.epsilon_steps = static_cast<int>(cli.get_int("epsilon-steps", 24));
  spec.random_schedules = static_cast<int>(cli.get_int("random", 16));
  const auto results =
      theory::verify_catalog(pricing::PricingCatalog::builtin().types(), Fraction{discount}, spec);
  std::printf("%s\n", analysis::render_bounds(results).c_str());

  int violations = 0;
  double tightest_gap = 1e9;
  for (const auto& result : results) {
    violations += result.holds() ? 0 : 1;
    tightest_gap = std::min(tightest_gap, result.bound - result.max_ratio);
  }
  std::printf("%zu configurations checked, %d violations, tightest slack %.4f\n\n",
              results.size(), violations, tightest_gap);

  // The paper's future-work speculation: randomizing the decision spot
  // improves the worst case.  Expected-cost ratios against the shared
  // [T/4, T]-windowed optimum (oblivious adversary):
  std::printf("randomized spot (uniform over {T/4, T/2, 3T/4}), d2.xlarge:\n");
  const Fraction spots[] = {Fraction{0.25}, Fraction{0.5}, Fraction{0.75}};
  const theory::RandomizedVerification randomized = theory::verify_randomized(
      pricing::PricingCatalog::builtin().require("d2.xlarge"), Fraction{discount}, spots, spec);
  std::printf("  worst deterministic member : %.4f\n", randomized.worst_deterministic);
  std::printf("  best deterministic member  : %.4f\n", randomized.best_deterministic);
  std::printf("  randomized expected ratio  : %.4f\n", randomized.randomized_max_ratio);
  std::printf("  per member (T/4, T/2, 3T/4): %.4f  %.4f  %.4f\n",
              randomized.deterministic_max_ratios[0], randomized.deterministic_max_ratios[1],
              randomized.deterministic_max_ratios[2]);

  // Going further than the paper's speculation: the minimax mixture over
  // the three spots (theory::optimize_spot_distribution).
  const theory::SpotDistribution best = theory::optimize_spot_distribution(
      pricing::PricingCatalog::builtin().require("d2.xlarge"), Fraction{discount}, spots, spec);
  std::printf("  optimized mixture          : ratio %.4f with weights (%.3f, %.3f, %.3f)\n",
              best.minimax_ratio, best.weights[0], best.weights[1], best.weights[2]);
  bench::print_metrics_summary();
  return violations == 0 ? 0 : 1;
}
