// Shared setup for the paper-reproduction bench binaries.
//
// Every figure/table bench runs the same pipeline — build the 300-user
// population, imitate reservation behaviour with the four purchasing
// algorithms, sweep the selling policies, normalize to keep-reserved — and
// then formats its own slice.  This header provides that pipeline plus the
// common command-line knobs (--users, --hours, --discount, --seed) so a
// fast smoke run (`--users=10`) and the full reproduction share one code
// path.
#pragma once

#include <string>
#include <vector>

#include "analysis/normalize.hpp"
#include "common/cli.hpp"
#include "sim/runner.hpp"
#include "workload/population.hpp"

namespace rimarket::bench {

struct BenchOptions {
  int users_per_group = 100;       // the paper's population
  Hour trace_hours = 2 * kHoursPerYear;
  double selling_discount = 0.8;   // paper example: 20% off the cap
  std::string instance = "d2.xlarge";
  std::uint64_t seed = 2018;
  std::size_t threads = 0;
  /// Eq. (1) all-active billing by default; see DESIGN.md cost-model notes.
  fleet::ChargePolicy charge_policy = fleet::ChargePolicy::kAllActiveHours;
};

/// Parses the common flags; exits with usage on error.
BenchOptions parse_options(int argc, char** argv, const char* program);

struct PaperEvaluation {
  workload::UserPopulation population;
  sim::EvaluationSpec spec;
  std::vector<sim::ScenarioResult> results;
  std::vector<analysis::NormalizedResult> normalized;
};

/// Runs the full sweep: all paper sellers (keep, the three algorithms, and
/// all-selling at each of the three spots) x the four purchasing imitators.
PaperEvaluation run_paper_evaluation(const BenchOptions& options);

/// Banner with the configuration, printed at the top of every bench.
void print_banner(const BenchOptions& options, const char* what);

/// One machine-readable line at the end of every bench:
///   METRICS {"sim.evaluate.tasks_run":300,...}
/// drawn from MetricsRegistry::global() (sweep pool counters, timings).
void print_metrics_summary();

}  // namespace rimarket::bench
