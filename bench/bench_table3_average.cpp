// Table III: average cost performance of each algorithm per user group,
// normalized to Keep-reserved.
//
// Paper values for reference (shape to match: every cell < 1; earlier
// decision spots save more; group 2 is the best group for every algorithm):
//
//              Group 1   Group 2   Group 3   All users
//   A_{3T/4}   0.9387    0.9154    0.9300    0.9279
//   A_{T/2}    0.8797    0.8329    0.8966    0.8643
//   A_{T/4}    0.8199    0.7583    0.8620    0.8032
#include <cstdio>

#include "analysis/reports.hpp"
#include "bench_common.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, "bench_table3_average");
  bench::print_banner(options, "Table III — average normalized cost per group");
  const bench::PaperEvaluation evaluation = bench::run_paper_evaluation(options);

  std::printf("%s\n", analysis::render_table3(evaluation.normalized).c_str());

  std::printf("paper reported (for shape comparison):\n");
  std::printf("            Group 1   Group 2   Group 3   All users\n");
  std::printf("  A_{3T/4}  0.9387    0.9154    0.9300    0.9279\n");
  std::printf("  A_{T/2}   0.8797    0.8329    0.8966    0.8643\n");
  std::printf("  A_{T/4}   0.8199    0.7583    0.8620    0.8032\n\n");

  // Per-purchaser breakdown (how much the reservation-behaviour imitator
  // matters) — an extension beyond the paper's aggregate table.
  std::printf("per-purchasing-imitator average normalized cost (all users):\n");
  std::printf("%-20s %10s %10s %10s\n", "purchaser", "A_{3T/4}", "A_{T/2}", "A_{T/4}");
  for (const auto purchaser : purchasing::kPaperPurchasers) {
    std::vector<analysis::NormalizedResult> slice;
    for (const auto& entry : evaluation.normalized) {
      if (entry.purchaser == purchaser) {
        slice.push_back(entry);
      }
    }
    std::printf("%-20s", purchasing::purchaser_name(purchaser).c_str());
    for (const auto kind :
         {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
      std::printf(" %10.4f", analysis::overall_average(slice, {kind, Fraction{0.75}}));
    }
    std::printf("\n");
  }
  bench::print_metrics_summary();
  return 0;
}
