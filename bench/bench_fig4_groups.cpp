// Fig. 4: the three online algorithms compared within each fluctuation
// group.
//
// Paper shape: with stable (a) and slightly fluctuating (b) demands the
// earlier-spot algorithms save more (A_{T/4} best); with highly fluctuating
// demands (c) A_{T/4} still wins on average but carries the most downside,
// and in the extreme case (Table II) A_{3T/4} is the safest.
#include <cstdio>

#include "analysis/reports.hpp"
#include "bench_common.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv, "bench_fig4_groups");
  bench::print_banner(options, "Fig. 4 — algorithms compared per fluctuation group");
  const bench::PaperEvaluation evaluation = bench::run_paper_evaluation(options);

  const struct {
    const char* panel;
    workload::FluctuationGroup group;
  } panels[] = {
      {"(a)", workload::FluctuationGroup::kStable},
      {"(b)", workload::FluctuationGroup::kModerate},
      {"(c)", workload::FluctuationGroup::kHigh},
  };
  for (const auto& panel : panels) {
    std::printf("--- Fig. 4%s ---\n", panel.panel);
    std::printf("%s\n", analysis::render_fig4_panel(evaluation.normalized, panel.group).c_str());
  }
  bench::print_metrics_summary();
  return 0;
}
