// Table I: pricing of the d2.xlarge instance (US East (Ohio), Linux).
//
// Reproduces the paper's pricing table from the embedded catalog, plus the
// catalog-wide statistics (alpha < 0.36, theta in (1,4]) the competitive
// analysis relies on.
#include <cstdio>

#include "analysis/reports.hpp"
#include "bench_common.hpp"
#include "pricing/catalog.hpp"

using namespace rimarket;

int main() {
  std::printf("%s\n", analysis::render_table1().c_str());

  const pricing::PricingCatalog& catalog = pricing::PricingCatalog::builtin();
  const auto stats = catalog.statistics();
  std::printf("Catalog statistics over %zu standard Linux US-East 1-yr instances:\n",
              catalog.size());
  std::printf("  alpha (reservation discount): %.3f .. %.3f   (paper: alpha < 0.36)\n",
              stats.min_alpha, stats.max_alpha);
  std::printf("  theta = p*T/R:                %.3f .. %.3f   (paper: theta in (1,4))\n\n",
              stats.min_theta, stats.max_theta);

  std::printf("%-14s %12s %10s %12s %8s %8s\n", "instance", "on-demand/h", "upfront",
              "reserved/h", "alpha", "theta");
  for (const pricing::InstanceType& type : catalog.types()) {
    std::printf("%-14s %12.4f %10.0f %12.4f %8.3f %8.3f\n", type.name.c_str(),
                type.on_demand_hourly, type.upfront, type.reserved_hourly, type.alpha(),
                type.theta());
  }
  bench::print_metrics_summary();
  return 0;
}
