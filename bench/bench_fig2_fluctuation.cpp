// Fig. 2: demand-fluctuation statistics (sigma/mu) of the three user groups.
//
// The paper classifies 300 users into stable (sigma/mu < 1), slightly
// fluctuating (1..3) and highly fluctuating (> 3) groups of 100 each; this
// bench rebuilds that population from the synthetic trace generators and
// prints the per-group statistics and the sigma/mu histogram.
#include <cstdio>
#include <map>

#include "analysis/reports.hpp"
#include "bench_common.hpp"
#include "common/histogram.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::parse_options(argc, argv, "bench_fig2_fluctuation");
  bench::print_banner(options, "Fig. 2 — demand fluctuation per user group");

  workload::PopulationSpec spec;
  spec.users_per_group = options.users_per_group;
  spec.trace_hours = options.trace_hours;
  spec.seed = options.seed;
  const auto population = workload::UserPopulation::build(spec);

  std::printf("%s\n", analysis::render_fig2(population).c_str());

  std::printf("sigma/mu histogram over all %zu users:\n", population.size());
  common::Histogram histogram(0.0, 8.0, 16);
  for (const workload::User& user : population.users()) {
    histogram.add(user.cv);
  }
  std::printf("%s\n", histogram.render(40).c_str());

  std::printf("generator mixture in use:\n");
  for (const auto group :
       {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
        workload::FluctuationGroup::kHigh}) {
    std::map<std::string, int> mixture;
    for (const workload::User* user : population.group(group)) {
      // Family name = text up to the first '('.
      const std::string& description = user->generator;
      ++mixture[description.substr(0, description.find('('))];
    }
    std::printf("  %-34s:", std::string(workload::group_name(group)).c_str());
    for (const auto& [family, count] : mixture) {
      std::printf(" %s x%d", family.c_str(), count);
    }
    std::printf("\n");
  }
  bench::print_metrics_summary();
  return 0;
}
