// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// paths.  Not a paper figure — a performance regression net for the
// library itself.
//
// Two modes:
//   * default: the google-benchmark suite below;
//   * --smoke [--out=BENCH_perf.json]: the tracked perf-regression
//     harness.  Runs a Fig. 3-style fleet sweep through both ledger
//     engines on identical inputs, asserts the results are byte-identical,
//     and emits a JSON report (ns per simulated hour, hour-steps/sec,
//     steady-state allocations, speedup vs the naive engine).  The
//     speedup is a same-machine ratio, so CI can gate on it without
//     hardware-specific thresholds — see tools/bench_check.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/alloc_hook.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "fleet/ledger.hpp"
#include "pricing/catalog.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/offline_planner.hpp"
#include "sim/simulator.hpp"
#include "theory/adversary.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rimarket;

const pricing::InstanceType& d2() {
  return pricing::PricingCatalog::builtin().require("d2.xlarge");
}

workload::DemandTrace bench_trace(Hour hours) {
  common::Rng rng(99);
  workload::Ec2LogSynthesizer::Params params;
  params.base = 20.0;
  return workload::Ec2LogSynthesizer(params).generate(hours, rng);
}

void BM_LedgerAssign(benchmark::State& state) {
  const auto fleet_size = static_cast<Count>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    fleet::ReservationLedger ledger(kHoursPerYear);
    for (Count i = 0; i < fleet_size; ++i) {
      ledger.reserve(0);
    }
    state.ResumeTiming();
    for (Hour t = 0; t < 1000; ++t) {
      benchmark::DoNotOptimize(ledger.assign(t, fleet_size / 2));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LedgerAssign)->Arg(8)->Arg(64)->Arg(256);

void BM_TraceGeneration(benchmark::State& state) {
  common::Rng rng(7);
  workload::GoogleClusterSynthesizer generator(workload::GoogleClusterSynthesizer::Params{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(8760)->Arg(17520);

void BM_SimulateYear(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kWangOnline, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    selling::FixedSpotSelling seller(d2(), Fraction{0.75}, Fraction{0.8});
    benchmark::DoNotOptimize(sim::simulate(trace, stream, seller, config));
  }
  state.SetItemsProcessed(state.iterations() * trace.length());
}
BENCHMARK(BM_SimulateYear);

void BM_OfflinePlan(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kAllReserved, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::plan_offline_optimal(trace, stream, config));
  }
}
BENCHMARK(BM_OfflinePlan);

void BM_OptimalSale(benchmark::State& state) {
  theory::SingleInstanceModel model;
  model.type = d2();
  model.selling_discount = Fraction{0.8};
  common::Rng rng(3);
  const theory::WorkSchedule schedule = theory::random_schedule(d2(), 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory::optimal_sale(model, schedule));
  }
}
BENCHMARK(BM_OptimalSale);

// Scheduling overhead of the execution layer itself: per-element submission
// vs chunked parallel_for over a trivial body.  The chunked variant should
// win by an order of magnitude at high element counts.
void BM_ParallelForPerElement(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
                 /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_per_element");
}
BENCHMARK(BM_ParallelForPerElement)->Arg(1 << 10)->Arg(1 << 14);

void BM_ParallelForChunked(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_chunked");
}
BENCHMARK(BM_ParallelForChunked)->Arg(1 << 10)->Arg(1 << 14);

// ---------------------------------------------------------------------
// --smoke: the tracked perf-regression harness.

/// One deterministic fleet workload of the Fig. 3 sweep shape: a synthetic
/// demand trace plus a fixed reservation stream (bulk buy at t=0, renewal
/// at the term boundary, staggered singles in between so expiries and ids
/// interleave).
struct SmokeWorkload {
  Count fleet = 0;
  workload::DemandTrace trace{std::vector<Count>{}};
  sim::ReservationStream stream;
};

SmokeWorkload make_smoke_workload(Count fleet, Hour hours, std::uint64_t seed) {
  SmokeWorkload workload;
  workload.fleet = fleet;
  common::Rng rng(seed);
  workload::Ec2LogSynthesizer::Params params;
  params.base = 0.7 * static_cast<double>(fleet);
  workload.trace = workload::Ec2LogSynthesizer(params).generate(hours, rng);
  std::vector<Count> bookings(static_cast<std::size_t>(hours), 0);
  bookings[0] = fleet;
  if (d2().term < hours) {
    bookings[static_cast<std::size_t>(d2().term)] = fleet;
  }
  for (Hour t = 97; t < hours; t += 97) {
    bookings[static_cast<std::size_t>(t)] += 1;
  }
  workload.stream = sim::ReservationStream(std::move(bookings));
  return workload;
}

sim::SimulationConfig smoke_config(fleet::LedgerEngine engine) {
  sim::SimulationConfig config;
  config.type = d2();
  config.selling_discount = Fraction{0.8};
  config.service_fee = Fraction{0.12};
  config.ledger_engine = engine;
  return config;
}

/// Runs every workload through `engine` once; returns wall seconds and
/// fills `results` (one SimulationResult per workload).
double run_engine_pass(const std::vector<SmokeWorkload>& workloads, fleet::LedgerEngine engine,
                       std::vector<sim::SimulationResult>* results) {
  const sim::SimulationConfig config = smoke_config(engine);
  results->clear();
  const auto begin = std::chrono::steady_clock::now();
  for (const SmokeWorkload& workload : workloads) {
    selling::FixedSpotSelling seller(config.type, Fraction{0.75}, Fraction{0.8});
    results->push_back(sim::simulate(workload.trace, workload.stream, seller, config));
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

bool results_identical(const std::vector<sim::SimulationResult>& a,
                       const std::vector<sim::SimulationResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact double equality on purpose: the engines must take the same
    // arithmetic path, not just land close.
    if (a[i].totals.on_demand != b[i].totals.on_demand ||
        a[i].totals.upfront != b[i].totals.upfront ||
        a[i].totals.reserved_hourly != b[i].totals.reserved_hourly ||
        a[i].totals.sale_income != b[i].totals.sale_income ||
        a[i].reservations_made != b[i].reservations_made ||
        a[i].instances_sold != b[i].instances_sold ||
        a[i].on_demand_hours != b[i].on_demand_hours ||
        a[i].reservations.size() != b[i].reservations.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[i].reservations.size(); ++r) {
      const fleet::Reservation& ra = a[i].reservations[r];
      const fleet::Reservation& rb = b[i].reservations[r];
      if (ra.start != rb.start || ra.worked_hours != rb.worked_hours || ra.sold != rb.sold ||
          ra.sold_at != rb.sold_at) {
        return false;
      }
    }
  }
  return true;
}

/// Steady-state allocations per simulated hour by the delta method: the
/// same bulk-booked fleet over H and 2H hours; the extra hours must not
/// allocate (hot-loop buffers are hoisted), so the expected value is 0.
double steady_state_allocs_per_hour() {
  const auto run = [](Hour hours) {
    common::Rng rng(7);
    workload::Ec2LogSynthesizer::Params params;
    params.base = 40.0;
    const workload::DemandTrace trace = workload::Ec2LogSynthesizer(params).generate(hours, rng);
    std::vector<Count> bookings(static_cast<std::size_t>(hours), 0);
    bookings[0] = 64;
    const sim::ReservationStream stream{std::move(bookings)};
    selling::FixedSpotSelling seller(d2(), Fraction{0.75}, Fraction{0.8});
    const sim::SimulationConfig config = smoke_config(fleet::LedgerEngine::kOptimized);
    const std::uint64_t before = common::allocation_count();
    benchmark::DoNotOptimize(sim::simulate(trace, stream, seller, config));
    return common::allocation_count() - before;
  };
  constexpr Hour kWindow = 1000;
  run(kWindow);  // warm-up
  const std::uint64_t short_run = run(kWindow);
  const std::uint64_t long_run = run(2 * kWindow);
  return static_cast<double>(long_run - short_run) / static_cast<double>(kWindow);
}

int run_smoke(const std::string& out_path) {
  // Fig. 3 sweep shape: a spread of fleet sizes over a two-year horizon.
  // Seeds are fixed; the emitted numbers are machine-dependent but the
  // optimized/naive *ratio* is stable enough to gate on.
  const Hour hours = 2 * kHoursPerYear;
  std::vector<SmokeWorkload> workloads;
  workloads.push_back(make_smoke_workload(64, hours, 11));
  workloads.push_back(make_smoke_workload(512, hours, 22));
  workloads.push_back(make_smoke_workload(2048, hours, 33));
  Hour total_hours = 0;
  for (const SmokeWorkload& workload : workloads) {
    total_hours += workload.trace.length();
  }

  std::vector<sim::SimulationResult> optimized;
  std::vector<sim::SimulationResult> naive;
  // Warm both paths once, then take the best of three timed passes each.
  run_engine_pass(workloads, fleet::LedgerEngine::kOptimized, &optimized);
  run_engine_pass(workloads, fleet::LedgerEngine::kNaive, &naive);
  double optimized_seconds = 1e100;
  double naive_seconds = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    optimized_seconds = std::min(
        optimized_seconds, run_engine_pass(workloads, fleet::LedgerEngine::kOptimized, &optimized));
    naive_seconds =
        std::min(naive_seconds, run_engine_pass(workloads, fleet::LedgerEngine::kNaive, &naive));
  }

  const bool identical = results_identical(optimized, naive);
  const double allocs_per_hour = steady_state_allocs_per_hour();
  const double ns_per_hour_step =
      optimized_seconds * 1e9 / static_cast<double>(total_hours);
  const double hour_steps_per_sec = static_cast<double>(total_hours) / optimized_seconds;
  const double speedup = naive_seconds / optimized_seconds;

  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"workload\": \"fig3-style fleet sweep: 64/512/2048 contracts, 2y horizon\",\n";
  json += common::format("  \"simulated_hours\": %lld,\n",
                         static_cast<long long>(total_hours));
  json += common::format("  \"optimized_seconds\": %.6f,\n", optimized_seconds);
  json += common::format("  \"naive_seconds\": %.6f,\n", naive_seconds);
  json += common::format("  \"ns_per_hour_step\": %.2f,\n", ns_per_hour_step);
  json += common::format("  \"hour_steps_per_sec\": %.0f,\n", hour_steps_per_sec);
  json += common::format("  \"steady_state_allocs_per_hour\": %.4f,\n", allocs_per_hour);
  json += common::format("  \"speedup_vs_naive\": %.2f,\n", speedup);
  json += common::format("  \"results_identical\": %s\n", identical ? "true" : "false");
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!out_path.empty()) {
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: optimized and naive ledger engines diverged\n");
    return 1;
  }
  if (allocs_per_hour != 0.0) {
    std::fprintf(stderr, "FAIL: steady-state hours allocate (%.4f allocs/hour)\n",
                 allocs_per_hour);
    return 1;
  }
  return 0;
}

}  // namespace

// Custom main (instead of benchmark_main) so the run ends with the same
// machine-readable METRICS line as the figure/table benches.
int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (smoke) {
    return run_smoke(out_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nMETRICS %s\n", common::MetricsRegistry::global().to_json().c_str());
  return 0;
}
