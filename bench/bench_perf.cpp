// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// paths.  Not a paper figure — a performance regression net for the
// library itself.
//
// Three modes:
//   * default: the google-benchmark suite below;
//   * --smoke [--out=BENCH_perf.json]: the tracked perf-regression
//     harness.  Runs a Fig. 3-style fleet sweep through both ledger
//     engines on identical inputs, asserts the results are byte-identical,
//     and emits a JSON report (ns per simulated hour, hour-steps/sec,
//     steady-state allocations, speedup vs the naive engine).  The
//     speedup is a same-machine ratio, so CI can gate on it without
//     hardware-specific thresholds — see tools/bench_check.py;
//   * --batch [--users=N] [--out=BENCH_batch.json]: the batch-engine
//     harness.  Runs the same N-user sweep (default 100k) through the
//     per-user oracle (evaluate_sweep) and the columnar BatchSweepEngine,
//     asserts the reports are byte-identical, and emits hour-steps/sec
//     plus speedup_vs_per_user — again a same-machine ratio for the
//     tools/bench_check.py gate (>=5x acceptance floor).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/alloc_hook.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "fleet/ledger.hpp"
#include "pricing/catalog.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/batch_engine.hpp"
#include "sim/offline_planner.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "theory/adversary.hpp"
#include "workload/generators.hpp"
#include "workload/population.hpp"

namespace {

using namespace rimarket;

const pricing::InstanceType& d2() {
  return pricing::PricingCatalog::builtin().require("d2.xlarge");
}

workload::DemandTrace bench_trace(Hour hours) {
  common::Rng rng(99);
  workload::Ec2LogSynthesizer::Params params;
  params.base = 20.0;
  return workload::Ec2LogSynthesizer(params).generate(hours, rng);
}

void BM_LedgerAssign(benchmark::State& state) {
  const auto fleet_size = static_cast<Count>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    fleet::ReservationLedger ledger(kHoursPerYear);
    for (Count i = 0; i < fleet_size; ++i) {
      ledger.reserve(0);
    }
    state.ResumeTiming();
    for (Hour t = 0; t < 1000; ++t) {
      benchmark::DoNotOptimize(ledger.assign(t, fleet_size / 2));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LedgerAssign)->Arg(8)->Arg(64)->Arg(256);

void BM_TraceGeneration(benchmark::State& state) {
  common::Rng rng(7);
  workload::GoogleClusterSynthesizer generator(workload::GoogleClusterSynthesizer::Params{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(8760)->Arg(17520);

void BM_SimulateYear(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kWangOnline, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    selling::FixedSpotSelling seller(d2(), Fraction{0.75}, Fraction{0.8});
    benchmark::DoNotOptimize(sim::simulate(trace, stream, seller, config));
  }
  state.SetItemsProcessed(state.iterations() * trace.length());
}
BENCHMARK(BM_SimulateYear);

void BM_OfflinePlan(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kAllReserved, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::plan_offline_optimal(trace, stream, config));
  }
}
BENCHMARK(BM_OfflinePlan);

void BM_OptimalSale(benchmark::State& state) {
  theory::SingleInstanceModel model;
  model.type = d2();
  model.selling_discount = Fraction{0.8};
  common::Rng rng(3);
  const theory::WorkSchedule schedule = theory::random_schedule(d2(), 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory::optimal_sale(model, schedule));
  }
}
BENCHMARK(BM_OptimalSale);

// Scheduling overhead of the execution layer itself: per-element submission
// vs chunked parallel_for over a trivial body.  The chunked variant should
// win by an order of magnitude at high element counts.
void BM_ParallelForPerElement(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
                 /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_per_element");
}
BENCHMARK(BM_ParallelForPerElement)->Arg(1 << 10)->Arg(1 << 14);

void BM_ParallelForChunked(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_chunked");
}
BENCHMARK(BM_ParallelForChunked)->Arg(1 << 10)->Arg(1 << 14);

// ---------------------------------------------------------------------
// --smoke: the tracked perf-regression harness.

/// One deterministic fleet workload of the Fig. 3 sweep shape: a synthetic
/// demand trace plus a fixed reservation stream (bulk buy at t=0, renewal
/// at the term boundary, staggered singles in between so expiries and ids
/// interleave).
struct SmokeWorkload {
  Count fleet = 0;
  workload::DemandTrace trace{std::vector<Count>{}};
  sim::ReservationStream stream;
};

SmokeWorkload make_smoke_workload(Count fleet, Hour hours, std::uint64_t seed) {
  SmokeWorkload workload;
  workload.fleet = fleet;
  common::Rng rng(seed);
  workload::Ec2LogSynthesizer::Params params;
  params.base = 0.7 * static_cast<double>(fleet);
  workload.trace = workload::Ec2LogSynthesizer(params).generate(hours, rng);
  std::vector<Count> bookings(static_cast<std::size_t>(hours), 0);
  bookings[0] = fleet;
  if (d2().term < hours) {
    bookings[static_cast<std::size_t>(d2().term)] = fleet;
  }
  for (Hour t = 97; t < hours; t += 97) {
    bookings[static_cast<std::size_t>(t)] += 1;
  }
  workload.stream = sim::ReservationStream(std::move(bookings));
  return workload;
}

sim::SimulationConfig smoke_config(fleet::LedgerEngine engine) {
  sim::SimulationConfig config;
  config.type = d2();
  config.selling_discount = Fraction{0.8};
  config.service_fee = Fraction{0.12};
  config.ledger_engine = engine;
  return config;
}

/// Runs every workload through `engine` once; returns wall seconds and
/// fills `results` (one SimulationResult per workload).
double run_engine_pass(const std::vector<SmokeWorkload>& workloads, fleet::LedgerEngine engine,
                       std::vector<sim::SimulationResult>* results) {
  const sim::SimulationConfig config = smoke_config(engine);
  results->clear();
  const auto begin = std::chrono::steady_clock::now();
  for (const SmokeWorkload& workload : workloads) {
    selling::FixedSpotSelling seller(config.type, Fraction{0.75}, Fraction{0.8});
    results->push_back(sim::simulate(workload.trace, workload.stream, seller, config));
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

bool results_identical(const std::vector<sim::SimulationResult>& a,
                       const std::vector<sim::SimulationResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact double equality on purpose: the engines must take the same
    // arithmetic path, not just land close.
    if (a[i].totals.on_demand != b[i].totals.on_demand ||
        a[i].totals.upfront != b[i].totals.upfront ||
        a[i].totals.reserved_hourly != b[i].totals.reserved_hourly ||
        a[i].totals.sale_income != b[i].totals.sale_income ||
        a[i].reservations_made != b[i].reservations_made ||
        a[i].instances_sold != b[i].instances_sold ||
        a[i].on_demand_hours != b[i].on_demand_hours ||
        a[i].reservations.size() != b[i].reservations.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[i].reservations.size(); ++r) {
      const fleet::Reservation& ra = a[i].reservations[r];
      const fleet::Reservation& rb = b[i].reservations[r];
      if (ra.start != rb.start || ra.worked_hours != rb.worked_hours || ra.sold != rb.sold ||
          ra.sold_at != rb.sold_at) {
        return false;
      }
    }
  }
  return true;
}

/// Steady-state allocations per simulated hour by the delta method: the
/// same bulk-booked fleet over H and 2H hours; the extra hours must not
/// allocate (hot-loop buffers are hoisted), so the expected value is 0.
double steady_state_allocs_per_hour() {
  const auto run = [](Hour hours) {
    common::Rng rng(7);
    workload::Ec2LogSynthesizer::Params params;
    params.base = 40.0;
    const workload::DemandTrace trace = workload::Ec2LogSynthesizer(params).generate(hours, rng);
    std::vector<Count> bookings(static_cast<std::size_t>(hours), 0);
    bookings[0] = 64;
    const sim::ReservationStream stream{std::move(bookings)};
    selling::FixedSpotSelling seller(d2(), Fraction{0.75}, Fraction{0.8});
    const sim::SimulationConfig config = smoke_config(fleet::LedgerEngine::kOptimized);
    const std::uint64_t before = common::allocation_count();
    benchmark::DoNotOptimize(sim::simulate(trace, stream, seller, config));
    return common::allocation_count() - before;
  };
  constexpr Hour kWindow = 1000;
  run(kWindow);  // warm-up
  const std::uint64_t short_run = run(kWindow);
  const std::uint64_t long_run = run(2 * kWindow);
  return static_cast<double>(long_run - short_run) / static_cast<double>(kWindow);
}

int run_smoke(const std::string& out_path) {
  // Fig. 3 sweep shape: a spread of fleet sizes over a two-year horizon.
  // Seeds are fixed; the emitted numbers are machine-dependent but the
  // optimized/naive *ratio* is stable enough to gate on.
  const Hour hours = 2 * kHoursPerYear;
  std::vector<SmokeWorkload> workloads;
  workloads.push_back(make_smoke_workload(64, hours, 11));
  workloads.push_back(make_smoke_workload(512, hours, 22));
  workloads.push_back(make_smoke_workload(2048, hours, 33));
  Hour total_hours = 0;
  for (const SmokeWorkload& workload : workloads) {
    total_hours += workload.trace.length();
  }

  std::vector<sim::SimulationResult> optimized;
  std::vector<sim::SimulationResult> naive;
  // Warm both paths once, then take the best of three timed passes each.
  run_engine_pass(workloads, fleet::LedgerEngine::kOptimized, &optimized);
  run_engine_pass(workloads, fleet::LedgerEngine::kNaive, &naive);
  double optimized_seconds = 1e100;
  double naive_seconds = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    optimized_seconds = std::min(
        optimized_seconds, run_engine_pass(workloads, fleet::LedgerEngine::kOptimized, &optimized));
    naive_seconds =
        std::min(naive_seconds, run_engine_pass(workloads, fleet::LedgerEngine::kNaive, &naive));
  }

  const bool identical = results_identical(optimized, naive);
  const double allocs_per_hour = steady_state_allocs_per_hour();
  const double ns_per_hour_step =
      optimized_seconds * 1e9 / static_cast<double>(total_hours);
  const double hour_steps_per_sec = static_cast<double>(total_hours) / optimized_seconds;
  const double speedup = naive_seconds / optimized_seconds;

  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"workload\": \"fig3-style fleet sweep: 64/512/2048 contracts, 2y horizon\",\n";
  json += common::format("  \"simulated_hours\": %lld,\n",
                         static_cast<long long>(total_hours));
  json += common::format("  \"optimized_seconds\": %.6f,\n", optimized_seconds);
  json += common::format("  \"naive_seconds\": %.6f,\n", naive_seconds);
  json += common::format("  \"ns_per_hour_step\": %.2f,\n", ns_per_hour_step);
  json += common::format("  \"hour_steps_per_sec\": %.0f,\n", hour_steps_per_sec);
  json += common::format("  \"steady_state_allocs_per_hour\": %.4f,\n", allocs_per_hour);
  json += common::format("  \"speedup_vs_naive\": %.2f,\n", speedup);
  json += common::format("  \"results_identical\": %s\n", identical ? "true" : "false");
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!out_path.empty()) {
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: optimized and naive ledger engines diverged\n");
    return 1;
  }
  if (allocs_per_hour != 0.0) {
    std::fprintf(stderr, "FAIL: steady-state hours allocate (%.4f allocs/hour)\n",
                 allocs_per_hour);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// --batch: per-user oracle vs columnar batch engine at population scale.

/// Deterministic synthetic population: traces are cheap arithmetic (no RNG
/// in the inner loop) but still exercise every decision path — bookings,
/// renewals past the term boundary, age-f*T sales, on-demand overflow and
/// the zero-demand tail that motivates selling.
std::vector<workload::User> batch_bench_users(int count, Hour hours) {
  std::vector<workload::User> users;
  users.reserve(static_cast<std::size_t>(count));
  std::vector<Count> demand(static_cast<std::size_t>(hours), 0);
  for (int id = 0; id < count; ++id) {
    // Small per-user fleets, like the paper's per-account traces: the
    // per-member arithmetic (worked-hours credits, per-sale income) is
    // identical in both engines by construction, so tiny fleets measure
    // the per-hour framework cost where the columnar layout actually wins.
    const Count base = 1 + id % 7;
    const Hour phase = id % 13;
    // Jobs end between 60% and 100% of the horizon, so the A_{fT} sellers
    // have idle reservations worth selling.
    const Hour busy = (hours * 3) / 5 + (id % 5) * (hours / 10);
    for (Hour t = 0; t < hours; ++t) {
      const Count spike = (t + phase) % 11 == 0 ? 2 : 0;
      demand[static_cast<std::size_t>(t)] = t < busy ? base + spike : 0;
    }
    const auto group = static_cast<workload::FluctuationGroup>(id % 3);
    users.push_back(workload::User{id, group, 0.0, "bench",
                                   workload::DemandTrace{demand}});
  }
  return users;
}

bool reports_identical(const sim::SweepReport& a, const sim::SweepReport& b) {
  if (a.results.size() != b.results.size() || a.quarantined.size() != b.quarantined.size() ||
      a.retries != b.retries || a.injected_faults != b.injected_faults ||
      a.virtual_backoff_ms != b.virtual_backoff_ms) {
    return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    // Exact double equality on purpose: the batch engine's contract is the
    // same arithmetic in the same order, not "close enough".
    if (a.results[i].user_id != b.results[i].user_id ||
        a.results[i].purchaser != b.results[i].purchaser ||
        a.results[i].seller.kind != b.results[i].seller.kind ||
        a.results[i].net_cost != b.results[i].net_cost ||
        a.results[i].reservations_made != b.results[i].reservations_made ||
        a.results[i].instances_sold != b.results[i].instances_sold ||
        a.results[i].on_demand_hours != b.results[i].on_demand_hours) {
      return false;
    }
  }
  return true;
}

int run_batch_smoke(const std::string& out_path, int users_requested) {
  constexpr Hour kTraceHours = 200;
  const int user_count = users_requested > 0 ? users_requested : 100000;

  sim::EvaluationSpec spec;
  // Short term so renewals and age-f*T sale decisions all occur inside the
  // 200-hour window; prices keep reserved vs on-demand competitive.
  spec.sim.type = pricing::InstanceType{"bench.batch", Rate{1.0}, Money{60.0}, Rate{0.25}, 120};
  spec.sim.selling_discount = Fraction{0.8};
  spec.sim.service_fee = Fraction{0.12};
  // The paper panel plus a fraction ablation of the all-selling strategy
  // (the A_{fT} sellers ignore the spec fraction, so only kAllSelling rows
  // are distinct).  A wider panel amortizes the purchaser-replay cost both
  // engines share and measures the columnar per-seller pass itself.
  spec.sellers = sim::paper_sellers(Fraction{0.75});
  for (const double f : {0.25, 0.4, 0.5, 0.6, 0.9}) {
    spec.sellers.push_back(sim::SellerSpec{sim::SellerKind::kAllSelling, Fraction{f}});
  }
  // One deterministic and one stochastic purchaser: the seeding contract
  // (sim/seeding.hpp) is on the timed path for both engines.  The random
  // purchaser is per-hour O(1), so the shared replay cost does not drown
  // the per-seller pass the bench is meant to measure.
  spec.purchasers = {purchasing::PurchaserKind::kAllReserved,
                     purchasing::PurchaserKind::kRandomReservation};
  spec.seed = 5;
  spec.threads = 0;  // hardware concurrency, same pool size for both passes

  std::printf("synthesizing %d users x %lld hours...\n", user_count,
              static_cast<long long>(kTraceHours));
  const std::vector<workload::User> users = batch_bench_users(user_count, kTraceHours);
  const double hour_steps =
      static_cast<double>(user_count) * static_cast<double>(kTraceHours) *
      static_cast<double>(spec.purchasers.size()) * static_cast<double>(spec.sellers.size());

  const auto timed = [&users](auto&& run) {
    const auto begin = std::chrono::steady_clock::now();
    auto report = run(std::span<const workload::User>(users));
    const auto end = std::chrono::steady_clock::now();
    return std::make_pair(std::chrono::duration<double>(end - begin).count(),
                          std::move(report));
  };
  const auto run_oracle = [&spec](std::span<const workload::User> span) {
    return sim::evaluate_sweep(span, spec);
  };
  const auto run_batch = [&spec](std::span<const workload::User> span) {
    return sim::evaluate_sweep_batch(span, spec);
  };
  std::printf("per-user oracle pass...\n");
  auto [per_user_seconds, oracle] = timed(run_oracle);
  std::printf("batch engine pass...\n");
  auto [batch_seconds, batch] = timed(run_batch);
  // Second timing round, best-of-two per engine, like the --smoke harness:
  // a one-shot wall time on a busy machine overstates whichever pass a
  // scheduler hiccup lands on, and the gate is the ratio of the two.
  std::printf("second timing round...\n");
  per_user_seconds = std::min(per_user_seconds, timed(run_oracle).first);
  batch_seconds = std::min(batch_seconds, timed(run_batch).first);

  const bool identical = reports_identical(oracle, batch);
  const double hour_steps_per_sec = hour_steps / batch_seconds;
  const double ns_per_hour_step = batch_seconds * 1e9 / hour_steps;
  const double speedup = per_user_seconds / batch_seconds;

  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += common::format(
      "  \"workload\": \"batch sweep: %d users x %lld h, %zu purchasers x %zu sellers\",\n",
      user_count, static_cast<long long>(kTraceHours), spec.purchasers.size(),
      spec.sellers.size());
  json += common::format("  \"users\": %d,\n", user_count);
  json += common::format("  \"simulated_hour_steps\": %.0f,\n", hour_steps);
  json += common::format("  \"per_user_seconds\": %.6f,\n", per_user_seconds);
  json += common::format("  \"batch_seconds\": %.6f,\n", batch_seconds);
  json += common::format("  \"ns_per_hour_step\": %.2f,\n", ns_per_hour_step);
  json += common::format("  \"hour_steps_per_sec\": %.0f,\n", hour_steps_per_sec);
  json += common::format("  \"speedup_vs_per_user\": %.2f,\n", speedup);
  json += common::format("  \"results_identical\": %s\n", identical ? "true" : "false");
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!out_path.empty()) {
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: batch engine diverged from the per-user oracle\n");
    return 1;
  }
  return 0;
}

}  // namespace

// Custom main (instead of benchmark_main) so the run ends with the same
// machine-readable METRICS line as the figure/table benches.
int main(int argc, char** argv) {
  bool smoke = false;
  bool batch = false;
  int batch_users = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strncmp(argv[i], "--users=", 8) == 0) {
      batch_users = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (smoke) {
    return run_smoke(out_path);
  }
  if (batch) {
    return run_batch_smoke(out_path, batch_users);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nMETRICS %s\n", common::MetricsRegistry::global().to_json().c_str());
  return 0;
}
