// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// paths.  Not a paper figure — a performance regression net for the
// library itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "fleet/ledger.hpp"
#include "pricing/catalog.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/offline_planner.hpp"
#include "sim/simulator.hpp"
#include "theory/adversary.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rimarket;

const pricing::InstanceType& d2() {
  return pricing::PricingCatalog::builtin().require("d2.xlarge");
}

workload::DemandTrace bench_trace(Hour hours) {
  common::Rng rng(99);
  workload::Ec2LogSynthesizer::Params params;
  params.base = 20.0;
  return workload::Ec2LogSynthesizer(params).generate(hours, rng);
}

void BM_LedgerAssign(benchmark::State& state) {
  const auto fleet_size = static_cast<Count>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    fleet::ReservationLedger ledger(kHoursPerYear);
    for (Count i = 0; i < fleet_size; ++i) {
      ledger.reserve(0);
    }
    state.ResumeTiming();
    for (Hour t = 0; t < 1000; ++t) {
      benchmark::DoNotOptimize(ledger.assign(t, fleet_size / 2));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LedgerAssign)->Arg(8)->Arg(64)->Arg(256);

void BM_TraceGeneration(benchmark::State& state) {
  common::Rng rng(7);
  workload::GoogleClusterSynthesizer generator(workload::GoogleClusterSynthesizer::Params{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(8760)->Arg(17520);

void BM_SimulateYear(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kWangOnline, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    selling::FixedSpotSelling seller(d2(), 0.75, 0.8);
    benchmark::DoNotOptimize(sim::simulate(trace, stream, seller, config));
  }
  state.SetItemsProcessed(state.iterations() * trace.length());
}
BENCHMARK(BM_SimulateYear);

void BM_OfflinePlan(benchmark::State& state) {
  const workload::DemandTrace trace = bench_trace(2 * kHoursPerYear);
  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kAllReserved, d2(), 1);
  const auto stream =
      sim::ReservationStream::generate(trace, *purchaser, trace.length(), d2().term);
  sim::SimulationConfig config;
  config.type = d2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::plan_offline_optimal(trace, stream, config));
  }
}
BENCHMARK(BM_OfflinePlan);

void BM_OptimalSale(benchmark::State& state) {
  theory::SingleInstanceModel model;
  model.type = d2();
  model.selling_discount = 0.8;
  common::Rng rng(3);
  const theory::WorkSchedule schedule = theory::random_schedule(d2(), 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory::optimal_sale(model, schedule));
  }
}
BENCHMARK(BM_OptimalSale);

// Scheduling overhead of the execution layer itself: per-element submission
// vs chunked parallel_for over a trivial body.  The chunked variant should
// win by an order of magnitude at high element counts.
void BM_ParallelForPerElement(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
                 /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_per_element");
}
BENCHMARK(BM_ParallelForPerElement)->Arg(1 << 10)->Arg(1 << 14);

void BM_ParallelForChunked(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sum{0};
  for (auto _ : state) {
    parallel_for(pool, count,
                 [&sum](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  pool.export_metrics(common::MetricsRegistry::global(), "bench_perf.pool_chunked");
}
BENCHMARK(BM_ParallelForChunked)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

// Custom main (instead of benchmark_main) so the run ends with the same
// machine-readable METRICS line as the figure/table benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nMETRICS %s\n", common::MetricsRegistry::global().to_json().c_str());
  return 0;
}
