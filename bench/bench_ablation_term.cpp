// Ablation: reservation term length (the paper's footnote: "Amazon has
// 1-year and 3-year options, meaning T is 1 or 3 years").
//
// The evaluation and proofs fix T = 1 year.  Three things change at 3
// years: theta = p*T/R grows past the paper's (1,4) family statistic (the
// closed-form guarantees computed at the instance's own theta get looser),
// the decision spots move later in wall-clock terms, and the pro-rated
// income at each spot is worth more hours of coverage.  This bench
// quantifies all three.
#include <cstdio>

#include "analysis/summary.hpp"
#include "bench_common.hpp"
#include "pricing/catalog.hpp"
#include "theory/verification.hpp"

using namespace rimarket;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv, "bench_ablation_term");
  if (options.users_per_group == 100) {
    options.users_per_group = 25;
  }
  bench::print_banner(options, "Ablation — 1-year vs 3-year reservation terms");

  // --- bounds side -------------------------------------------------------
  std::printf("closed-form guarantees at the instance's own theta (a=%.2f):\n",
              options.selling_discount);
  std::printf("%-12s %6s %8s %8s %12s %12s %12s\n", "instance", "term", "alpha", "theta",
              "A_{3T/4}", "A_{T/2}", "A_{T/4}");
  for (const pricing::PricingCatalog* catalog :
       {&pricing::PricingCatalog::builtin(), &pricing::PricingCatalog::builtin_3year()}) {
    const auto type = catalog->find(options.instance);
    if (!type) {
      continue;
    }
    std::printf("%-12s %5lldy %8.3f %8.3f", type->name.c_str(),
                static_cast<long long>(type->term / kHoursPerYear), type->alpha().value(),
                type->theta());
    for (const double fraction : {0.75, 0.5, 0.25}) {
      const auto bound =
          theory::competitive_bound(Fraction{fraction}, type->alpha(),
                                    Fraction{options.selling_discount},
                                    std::max(4.0, type->theta()));
      std::printf(" %12.4f", bound.guaranteed);
    }
    std::printf("\n");
  }

  // Empirical verification on the whole 3-year catalog.
  theory::VerificationSpec spec;
  spec.epsilon_steps = 12;
  spec.utilization_steps = 6;
  spec.random_schedules = 4;
  int violations = 0;
  const auto results = theory::verify_catalog(
      pricing::PricingCatalog::builtin_3year().types(), Fraction{options.selling_discount},
      spec);
  for (const auto& result : results) {
    violations += result.holds() ? 0 : 1;
  }
  std::printf("\n3-year catalog verification: %zu configurations, %d violations\n\n",
              results.size(), violations);

  // --- simulation side ---------------------------------------------------
  std::printf("trace evaluation (same demand processes, horizon = 2 terms):\n");
  std::printf("%-6s %12s %12s %12s\n", "term", "A_{3T/4}", "A_{T/2}", "A_{T/4}");
  for (const pricing::PricingCatalog* catalog :
       {&pricing::PricingCatalog::builtin(), &pricing::PricingCatalog::builtin_3year()}) {
    const auto type = catalog->find(options.instance);
    if (!type) {
      std::printf("(no %s in this catalog)\n", options.instance.c_str());
      continue;
    }
    workload::PopulationSpec pop_spec;
    pop_spec.users_per_group = options.users_per_group;
    pop_spec.trace_hours = 2 * type->term;
    pop_spec.seed = options.seed;
    const auto population = workload::UserPopulation::build(pop_spec);

    sim::EvaluationSpec eval;
    eval.sim.type = *type;
    eval.sim.selling_discount = Fraction{options.selling_discount};
    eval.seed = options.seed;
    eval.sellers = sim::paper_sellers(Fraction{0.75});
    const auto normalized = analysis::normalize_to_keep(sim::evaluate(population, eval));
    std::printf("%4lldy ", static_cast<long long>(type->term / kHoursPerYear));
    for (const auto kind :
         {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
      std::printf(" %12.4f", analysis::overall_average(normalized, {kind, Fraction{0.75}}));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: longer terms idle longer when demand drifts, so the marketplace\n"
      "matters more; meanwhile the guarantees computed at the larger 3-year theta are\n"
      "looser — both effects argue for the paper's 1-year focus.\n");
  bench::print_metrics_summary();
  return 0;
}
