// Ablation: modelling choices the paper leaves implicit.
//
//  1. Charge policy — Eq. (1) bills every active reserved hour; the
//     competitive analysis bills worked hours only.  How much does the
//     convention change the measured savings?
//  2. Open vs closed loop — the paper feeds a fixed reservation stream to
//     the selling algorithm; a real user would re-reserve after selling if
//     demand returns.  How much does the feedback help?
//  3. Randomized decision spot (the paper's future-work direction) vs the
//     three fixed spots.
//  4. Whole-contract marketplace selling (the paper's mechanism) vs the
//     related-work alternative of re-leasing idle reserved hours
//     pay-per-use (Zhang et al. ICWS'17, Wang et al. TPDS'15) — a model
//     "currently not supported by public IaaS cloud providers" (paper
//     Section II), priced here between alpha*p and p.
#include <cstdio>

#include "analysis/summary.hpp"
#include "bench_common.hpp"
#include "pricing/catalog.hpp"
#include "purchasing/policy.hpp"
#include "selling/baselines.hpp"
#include "selling/fixed_spot.hpp"
#include "selling/randomized.hpp"
#include "sim/runner.hpp"

using namespace rimarket;

namespace {

double overall(const std::vector<analysis::NormalizedResult>& normalized,
               sim::SellerSpec seller) {
  return analysis::overall_average(normalized, seller);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv, "bench_ablation_modes");
  if (options.users_per_group == 100) {
    options.users_per_group = 25;
  }
  bench::print_banner(options, "Ablation — charge policy, loop mode, randomized spot");

  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = options.users_per_group;
  pop_spec.trace_hours = options.trace_hours;
  pop_spec.seed = options.seed;
  const auto population = workload::UserPopulation::build(pop_spec);

  // --- 1. charge policy ------------------------------------------------
  std::printf("1) charge policy (average normalized cost, all users):\n");
  std::printf("%-22s %12s %12s %12s\n", "billing", "A_{3T/4}", "A_{T/2}", "A_{T/4}");
  for (const auto policy :
       {fleet::ChargePolicy::kAllActiveHours, fleet::ChargePolicy::kWorkedHoursOnly}) {
    sim::EvaluationSpec spec;
    spec.sim.type = pricing::PricingCatalog::builtin().require(options.instance);
    spec.sim.selling_discount = Fraction{options.selling_discount};
    spec.sim.charge_policy = policy;
    spec.seed = options.seed;
    spec.sellers = sim::paper_sellers(Fraction{0.75});
    const auto normalized = analysis::normalize_to_keep(sim::evaluate(population, spec));
    std::printf("%-22s",
                policy == fleet::ChargePolicy::kAllActiveHours ? "Eq.(1) all-active"
                                                               : "analysis worked-only");
    for (const auto kind :
         {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
      std::printf(" %12.4f", overall(normalized, {kind, Fraction{0.75}}));
    }
    std::printf("\n");
  }

  // --- 2. open vs closed loop ------------------------------------------
  std::printf("\n2) open-loop (paper) vs closed-loop re-reservation, A_{3T/4}:\n");
  std::printf("%-14s %14s %14s\n", "mode", "mean cost ($)", "vs keep");
  sim::SimulationConfig config;
  config.type = pricing::PricingCatalog::builtin().require(options.instance);
  config.selling_discount = Fraction{options.selling_discount};
  double open_total = 0.0;
  double closed_total = 0.0;
  double keep_total = 0.0;
  // All-reserved imitation surfaces the feedback: it books enough capacity
  // that sales happen, and in closed loop it re-reserves when demand
  // resumes after a sale.
  for (const workload::User& user : population.users()) {
    const auto purchaser =
        purchasing::make_purchaser(purchasing::PurchaserKind::kAllReserved, config.type, 1);
    const auto stream = sim::ReservationStream::generate(
        user.trace, *purchaser, user.trace.length(), config.type.term);
    selling::KeepReservedPolicy keep;
    keep_total += sim::simulate(user.trace, stream, keep, config).net_cost().value();
    selling::FixedSpotSelling open_seller(config.type, Fraction{0.75},
                                          Fraction{options.selling_discount});
    open_total += sim::simulate(user.trace, stream, open_seller, config).net_cost().value();
    const auto closed_purchaser =
        purchasing::make_purchaser(purchasing::PurchaserKind::kAllReserved, config.type, 1);
    selling::FixedSpotSelling closed_seller(config.type, Fraction{0.75},
                                            Fraction{options.selling_discount});
    closed_total +=
        sim::simulate_closed_loop(user.trace, *closed_purchaser, closed_seller, config)
            .net_cost()
            .value();
  }
  const auto users = static_cast<double>(population.size());
  std::printf("%-14s %14.2f %14.4f\n", "keep", keep_total / users, 1.0);
  std::printf("%-14s %14.2f %14.4f\n", "open-loop", open_total / users,
              open_total / keep_total);
  std::printf("%-14s %14.2f %14.4f\n", "closed-loop", closed_total / users,
              closed_total / keep_total);

  // --- 3. randomized spot ----------------------------------------------
  std::printf("\n3) randomized decision spot (future-work extension):\n");
  sim::EvaluationSpec spec;
  spec.sim.type = pricing::PricingCatalog::builtin().require(options.instance);
  spec.sim.selling_discount = Fraction{options.selling_discount};
  spec.seed = options.seed;
  spec.sellers = sim::paper_sellers(Fraction{0.75});
  spec.sellers.push_back(sim::SellerSpec{sim::SellerKind::kRandomizedSpot, Fraction{0.5}});
  spec.sellers.push_back(sim::SellerSpec{sim::SellerKind::kContinuousSpot, Fraction{0.5}});
  const auto normalized = analysis::normalize_to_keep(sim::evaluate(population, spec));
  std::printf("%-18s %12s %12s %12s\n", "policy", "mean", "%saving", "worst");
  for (const sim::SellerSpec seller :
       {sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}}, sim::SellerSpec{sim::SellerKind::kAT2, Fraction{0.5}},
        sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}},
        sim::SellerSpec{sim::SellerKind::kRandomizedSpot, Fraction{0.5}},
        sim::SellerSpec{sim::SellerKind::kContinuousSpot, Fraction{0.5}}}) {
    const auto sample = analysis::per_user_ratios(normalized, seller);
    const auto summary = analysis::summarize_ratios(sample);
    std::printf("%-18s %12.4f %11.1f%% %12.4f\n", sim::seller_name(seller).c_str(),
                summary.mean_ratio, 100.0 * summary.fraction_saving, summary.max_ratio);
  }

  // --- 4. contract selling vs hour reselling ----------------------------
  std::printf("\n4) whole-contract sales (paper) vs idle-hour reselling (related work):\n");
  std::printf("%-34s %12s\n", "mechanism", "mean ratio");
  {
    sim::EvaluationSpec base;
    base.sim.type = pricing::PricingCatalog::builtin().require(options.instance);
    base.sim.selling_discount = Fraction{options.selling_discount};
    base.seed = options.seed;
    base.sellers = {sim::SellerSpec{sim::SellerKind::kKeepReserved, Fraction{0.0}},
                    sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}}};
    const auto contract_normalized =
        analysis::normalize_to_keep(sim::evaluate(population, base));
    std::printf("%-34s %12.4f\n", "A_{3T/4} contract sales",
                overall(contract_normalized, {sim::SellerKind::kA3T4, Fraction{0.75}}));
    // Hour reselling: keep every contract, lease idle hours.  Lease rates
    // between alpha*p and p; probability models thin lessee demand.
    for (const double rate_fraction : {0.5, 0.8}) {
      for (const double probability : {0.3, 1.0}) {
        sim::EvaluationSpec resale = base;
        resale.sim.idle_resale_rate =
            base.sim.type.on_demand_hourly * rate_fraction;
        resale.sim.idle_resale_probability = Fraction{probability};
        resale.sellers = {sim::SellerSpec{sim::SellerKind::kKeepReserved, Fraction{0.0}}};
        // Ratio = resale keep-cost / plain keep-cost, per (user, purchaser).
        const auto plain = sim::evaluate(population, base);
        const auto leased = sim::evaluate(population, resale);
        double sum = 0.0;
        int count = 0;
        for (std::size_t i = 0, j = 0; i < plain.size() && j < leased.size(); ++i) {
          if (plain[i].seller.kind != sim::SellerKind::kKeepReserved) {
            continue;
          }
          while (j < leased.size() &&
                 (leased[j].user_id != plain[i].user_id ||
                  leased[j].purchaser != plain[i].purchaser)) {
            ++j;
          }
          if (j < leased.size() && plain[i].net_cost > Money{0.0}) {
            sum += leased[j].net_cost / plain[i].net_cost;
            ++count;
          }
        }
        std::printf("hour reselling (rate=%.1fp, P=%.1f)%8s %10.4f\n", rate_fraction,
                    probability, "", count > 0 ? sum / count : 0.0);
      }
    }
  }
  std::printf(
      "\nreading: a liquid hour-resale market would beat whole-contract sales (idle\n"
      "capacity earns continuously, and thinner lessee demand shrinks the edge) —\n"
      "which is why related work proposes it.  But the mechanism is \"currently not\n"
      "supported by public IaaS cloud providers\" (paper Section II); the contract\n"
      "marketplace the paper studies is the one sellers can actually use.\n");
  bench::print_metrics_summary();
  return 0;
}
