// Parameterized catalog-wide invariants: every instance type (both terms)
// must drive the whole pipeline without violating the structural
// invariants the algorithms rely on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pricing/catalog.hpp"
#include "selling/baselines.hpp"
#include "selling/fixed_spot.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace rimarket {
namespace {

std::vector<pricing::InstanceType> all_catalog_types() {
  std::vector<pricing::InstanceType> types;
  for (const auto& type : pricing::PricingCatalog::builtin().types()) {
    types.push_back(type);
  }
  for (const auto& type : pricing::PricingCatalog::builtin_3year().types()) {
    pricing::InstanceType renamed = type;
    renamed.name += "-3y";
    types.push_back(renamed);
  }
  return types;
}

class CatalogSweep : public ::testing::TestWithParam<pricing::InstanceType> {};

TEST_P(CatalogSweep, BreakEvenWithinDecisionWindow) {
  // beta(f) must be positive and lie strictly inside the observation window
  // [0, f*T] for every paper spot — otherwise the decision is degenerate.
  const pricing::InstanceType& type = GetParam();
  for (const double fraction : {0.25, 0.5, 0.75}) {
    for (const double a : {0.2, 0.5, 0.8, 1.0}) {
      const double beta = type.break_even_hours(Fraction{fraction}, Fraction{a}).value();
      EXPECT_GT(beta, 0.0) << type.name;
      EXPECT_LT(beta, fraction * static_cast<double>(type.term)) << type.name << " a=" << a;
    }
  }
}

TEST_P(CatalogSweep, SaleIncomeMonotoneInElapsedTime) {
  const pricing::InstanceType& type = GetParam();
  Money previous = type.sale_income(0, Fraction{0.8});
  for (Hour elapsed = type.term / 8; elapsed <= type.term; elapsed += type.term / 8) {
    const Money income = type.sale_income(elapsed, Fraction{0.8});
    EXPECT_LT(income, previous) << type.name;
    previous = income;
  }
  EXPECT_NEAR(type.sale_income(type.term, Fraction{0.8}).value(), 0.0, 1e-9);
}

TEST_P(CatalogSweep, SellingIdleReservationAlwaysSavesUnderEqOne) {
  // Under Eq. (1) billing an idle reservation burns alpha*p every hour, so
  // every A_f must improve on keep-reserved for a front-loaded workload.
  const pricing::InstanceType& type = GetParam();
  common::Rng rng(11);
  std::vector<Count> demand(static_cast<std::size_t>(type.term), 0);
  for (Hour t = 0; t < type.term / 30; ++t) {
    demand[static_cast<std::size_t>(t)] = 1;
  }
  const workload::DemandTrace trace{std::move(demand)};
  const sim::ReservationStream stream{std::vector<Count>{1}};
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  selling::KeepReservedPolicy keep;
  const Money keep_cost = sim::simulate(trace, stream, keep, config).net_cost();
  for (const double fraction : {0.25, 0.5, 0.75}) {
    selling::FixedSpotSelling seller(type, Fraction{fraction}, Fraction{0.8});
    const auto result = sim::simulate(trace, stream, seller, config);
    EXPECT_EQ(result.instances_sold, 1) << type.name << " f=" << fraction;
    EXPECT_LT(result.net_cost(), keep_cost) << type.name << " f=" << fraction;
  }
}

TEST_P(CatalogSweep, FullyBusyReservationNeverSold) {
  const pricing::InstanceType& type = GetParam();
  const workload::DemandTrace trace{
      std::vector<Count>(static_cast<std::size_t>(type.term), 1)};
  const sim::ReservationStream stream{std::vector<Count>{1}};
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  for (const double fraction : {0.25, 0.5, 0.75}) {
    selling::FixedSpotSelling seller(type, Fraction{fraction}, Fraction{0.8});
    EXPECT_EQ(sim::simulate(trace, stream, seller, config).instances_sold, 0)
        << type.name << " f=" << fraction;
  }
}

TEST_P(CatalogSweep, CostComponentsReconcile) {
  // net == on_demand + upfront + reserved_hourly - sale_income, and every
  // component is non-negative, for a bursty workload on this type.
  const pricing::InstanceType& type = GetParam();
  common::Rng rng(13);
  workload::BurstyGenerator generator(0.01, 4.0, 12.0, 0);
  const workload::DemandTrace trace = generator.generate(type.term, rng);
  const sim::ReservationStream stream{std::vector<Count>{2}};
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  selling::FixedSpotSelling seller(type, Fraction{0.5}, Fraction{0.8});
  const auto result = sim::simulate(trace, stream, seller, config);
  EXPECT_GE(result.totals.on_demand, Money{0.0});
  EXPECT_GE(result.totals.upfront, Money{0.0});
  EXPECT_GE(result.totals.reserved_hourly, Money{0.0});
  EXPECT_GE(result.totals.sale_income, Money{0.0});
  EXPECT_NEAR(result.net_cost().value(),
              (result.totals.on_demand + result.totals.upfront +
               result.totals.reserved_hourly - result.totals.sale_income)
                  .value(),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, CatalogSweep, ::testing::ValuesIn(all_catalog_types()),
                         [](const ::testing::TestParamInfo<pricing::InstanceType>& param_info) {
                           std::string name = param_info.param.name;
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace rimarket
