// Chaos suite (only built when RIMARKET_ENABLE_FAULT_INJECTION is ON).
//
// Drives the evaluation sweep under dozens of randomized fault schedules
// and proves the graceful-degradation contract:
//   * no schedule crashes, terminates, or leaks (ASan in the CI chaos job);
//   * survivors' results are byte-identical (exact double equality) to the
//     fault-free sweep — a retried user must not smuggle in different
//     numbers;
//   * the quarantine report is a pure function of (seed, schedule):
//     identical across 1-thread, N-thread, and repeated runs;
//   * the CSV/trace ingestion layer degrades to error reports, never UB.
//
// Replay a CI failure with RIMARKET_CHAOS_SEED=<seed printed by the job>.
#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <new>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/alloc_hook.hpp"
#include "common/csv.hpp"
#include "common/durable_file.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "sim/batch_engine.hpp"
#include "workload/population.hpp"
#include "workload/streaming.hpp"
#include "workload/trace.hpp"

namespace rimarket::sim {
namespace {

namespace fi = common::fault_injection;

std::uint64_t chaos_base_seed() {
  if (const char* env = std::getenv("RIMARKET_CHAOS_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end != env) {
      return seed;
    }
  }
  return 20260807;
}

// Wires FaultKind::kBadAlloc to the counting allocator this binary links,
// so injected OOM surfaces out of a real operator new call.
class ChaosEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    fi::set_bad_alloc_trigger(&common::trigger_bad_alloc_now);
    std::printf("chaos base seed: %llu (override with RIMARKET_CHAOS_SEED)\n",
                static_cast<unsigned long long>(chaos_base_seed()));
  }
  void TearDown() override { fi::set_bad_alloc_trigger(nullptr); }
};

const ::testing::Environment* const kChaosEnvironment =
    ::testing::AddGlobalTestEnvironment(new ChaosEnvironment);

std::vector<workload::User> chaos_users() {
  workload::PopulationSpec spec;
  spec.users_per_group = 2;
  spec.trace_hours = 500;
  spec.seed = 9;
  const auto population = workload::UserPopulation::build(spec);
  return {population.users().begin(), population.users().end()};
}

EvaluationSpec chaos_spec(std::size_t threads) {
  EvaluationSpec spec;
  spec.sim.type = pricing::InstanceType{"tiny.test", Rate{1.0}, Money{500.0}, Rate{0.25}, 1000};
  spec.sim.selling_discount = Fraction{0.8};
  spec.sellers = paper_sellers(Fraction{0.75});
  spec.seed = 5;
  spec.threads = threads;
  spec.failure_policy = FailurePolicy::kQuarantine;
  spec.max_attempts = 3;
  return spec;
}

void expect_same_report(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.quarantined.size(), b.quarantined.size());
  for (std::size_t i = 0; i < a.quarantined.size(); ++i) {
    EXPECT_EQ(a.quarantined[i].user_id, b.quarantined[i].user_id);
    EXPECT_EQ(a.quarantined[i].site, b.quarantined[i].site);
    EXPECT_EQ(a.quarantined[i].attempts, b.quarantined[i].attempts);
    EXPECT_EQ(a.quarantined[i].message, b.quarantined[i].message);
  }
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.virtual_backoff_ms, b.virtual_backoff_ms);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].user_id, b.results[i].user_id);
    EXPECT_EQ(a.results[i].purchaser, b.results[i].purchaser);
    EXPECT_EQ(a.results[i].seller.kind, b.results[i].seller.kind);
    EXPECT_EQ(a.results[i].net_cost, b.results[i].net_cost);  // exact, no tolerance
    EXPECT_EQ(a.results[i].reservations_made, b.results[i].reservations_made);
    EXPECT_EQ(a.results[i].instances_sold, b.results[i].instances_sold);
    EXPECT_EQ(a.results[i].on_demand_hours, b.results[i].on_demand_hours);
  }
}

TEST(ChaosSweep, FiftyPlusSchedulesDegradeGracefullyAndDeterministically) {
  constexpr int kSchedules = 55;
  const std::array<std::string_view, 3> sites = {fi::kSiteEvaluateUser, fi::kSiteRunScenario,
                                                 fi::kSiteRunLoop};
  const std::vector<workload::User> users = chaos_users();
  const std::uint64_t base = chaos_base_seed();

  // Fault-free reference: what every survivor's numbers must equal.
  const SweepReport baseline =
      evaluate_sweep(std::span<const workload::User>(users), chaos_spec(4));
  ASSERT_TRUE(baseline.quarantined.empty());
  ASSERT_EQ(baseline.injected_faults, 0u);
  const std::size_t per_user = baseline.results.size() / users.size();
  ASSERT_GT(per_user, 0u);

  std::uint64_t total_injected = 0;
  std::uint64_t total_quarantined = 0;
  for (int i = 0; i < kSchedules; ++i) {
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());

    EvaluationSpec spec = chaos_spec(4);
    spec.chaos_schedule = &schedule;
    const SweepReport chaos = evaluate_sweep(std::span<const workload::User>(users), spec);

    // Determinism: same (seed, schedule) on one thread and on a rerun.
    EvaluationSpec serial = chaos_spec(1);
    serial.chaos_schedule = &schedule;
    expect_same_report(chaos,
                       evaluate_sweep(std::span<const workload::User>(users), serial));
    expect_same_report(chaos, evaluate_sweep(std::span<const workload::User>(users), spec));

    // Quarantine is sorted and only ever names real users.
    std::set<int> quarantined_ids;
    for (std::size_t q = 0; q < chaos.quarantined.size(); ++q) {
      EXPECT_EQ(chaos.quarantined[q].attempts, spec.max_attempts);
      EXPECT_FALSE(chaos.quarantined[q].message.empty());
      quarantined_ids.insert(chaos.quarantined[q].user_id);
      if (q > 0) {
        EXPECT_LT(chaos.quarantined[q - 1].user_id, chaos.quarantined[q].user_id);
      }
    }

    // Survivors: byte-identical to the fault-free baseline, in order.
    std::vector<const ScenarioResult*> expected;
    for (const ScenarioResult& result : baseline.results) {
      if (quarantined_ids.find(result.user_id) == quarantined_ids.end()) {
        expected.push_back(&result);
      }
    }
    ASSERT_EQ(chaos.results.size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(chaos.results[r].user_id, expected[r]->user_id);
      ASSERT_EQ(chaos.results[r].purchaser, expected[r]->purchaser);
      ASSERT_EQ(chaos.results[r].seller.kind, expected[r]->seller.kind);
      ASSERT_EQ(chaos.results[r].net_cost, expected[r]->net_cost);
      ASSERT_EQ(chaos.results[r].reservations_made, expected[r]->reservations_made);
      ASSERT_EQ(chaos.results[r].instances_sold, expected[r]->instances_sold);
      ASSERT_EQ(chaos.results[r].on_demand_hours, expected[r]->on_demand_hours);
      // Eq. (1) sanity on the survivor rows (the fault-free run already
      // passed the in-simulator spend audit; keep-reserved must not sell).
      if (chaos.results[r].seller.kind == SellerKind::kKeepReserved) {
        ASSERT_EQ(chaos.results[r].instances_sold, 0);
      }
    }

    total_injected += chaos.injected_faults;
    total_quarantined += chaos.quarantined.size();
  }
  // The suite must actually exercise the machinery, not vacuously pass.
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(total_quarantined, 0u);
}

TEST(ChaosSweep, RetriesCanOutlastTransientFaults) {
  // A fault that fires only on each user's first evaluate_user hit is
  // transient: attempt 2 runs under a different scope key, where an
  // nth-hit-1 rule fires again... so use a probability rule instead and
  // check the weaker—but still load-bearing—property: across many seeds,
  // some users fail an attempt yet still complete (retries > 0 with an
  // empty quarantine list, survivors intact).
  const std::vector<workload::User> users = chaos_users();
  const SweepReport baseline =
      evaluate_sweep(std::span<const workload::User>(users), chaos_spec(2));
  bool saw_recovery = false;
  for (std::uint64_t seed = chaos_base_seed(); seed < chaos_base_seed() + 40 && !saw_recovery;
       ++seed) {
    fi::Rule rule;
    rule.site_pattern = std::string(fi::kSiteEvaluateUser);
    rule.probability = 0.4;
    const fi::Schedule schedule(seed, {rule});
    EvaluationSpec spec = chaos_spec(2);
    spec.chaos_schedule = &schedule;
    const SweepReport report = evaluate_sweep(std::span<const workload::User>(users), spec);
    if (report.retries > 0 && report.quarantined.empty()) {
      saw_recovery = true;
      // Recovered users produce the exact fault-free numbers.
      ASSERT_EQ(report.results.size(), baseline.results.size());
      for (std::size_t r = 0; r < report.results.size(); ++r) {
        EXPECT_EQ(report.results[r].user_id, baseline.results[r].user_id);
        EXPECT_EQ(report.results[r].net_cost, baseline.results[r].net_cost);
      }
    }
  }
  EXPECT_TRUE(saw_recovery) << "no seed produced a retry that then succeeded";
}

TEST(ChaosSweep, SweepWiresTheDocumentedSites) {
  const std::vector<workload::User> users = chaos_users();
  (void)evaluate_sweep(std::span<const workload::User>(users), chaos_spec(2));
  const std::vector<std::string> sites = fi::seen_sites();
  const std::set<std::string> seen(sites.begin(), sites.end());
  EXPECT_TRUE(seen.count(std::string(fi::kSiteEvaluateUser)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteRunScenario)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteRunLoop)));
  EXPECT_TRUE(seen.count(std::string(fi::kSitePoolSubmit)));
  EXPECT_TRUE(seen.count(std::string(fi::kSitePoolTask)));
}

TEST(ChaosWorkload, PopulationBuildFaultSurfacesAsTypedException) {
  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSitePopulationBuild);
  rule.kind = fi::FaultKind::kThrow;
  rule.nth_hit = 1;
  const fi::Schedule schedule(7, {rule});
  fi::ScopedContext context(schedule, 1);
  workload::PopulationSpec spec;
  spec.users_per_group = 2;
  spec.trace_hours = 48;
  EXPECT_THROW((void)workload::UserPopulation::build(spec), fi::InjectedFault);
}

// Installs a process-global schedule for the current scope and always
// clears it on exit, so a failing assertion cannot poison later tests.
class ScopedGlobalSchedule {
 public:
  explicit ScopedGlobalSchedule(const fi::Schedule& schedule) {
    fi::set_global_schedule(&schedule);
  }
  ~ScopedGlobalSchedule() { fi::set_global_schedule(nullptr); }
};

TEST(ChaosBatch, BatchMatchesOracleUnderSchedules) {
  // The batch engine's parity contract holds under chaos too: per-attempt
  // fault placement is keyed by (seed, user, attempt), so the columnar
  // admission probe must quarantine the same users after the same retries
  // and the survivors must carry the identical fault-free numbers.
  const std::array<std::string_view, 3> sites = {fi::kSiteEvaluateUser, fi::kSiteRunScenario,
                                                 fi::kSiteRunLoop};
  const std::vector<workload::User> users = chaos_users();
  const std::uint64_t base = chaos_base_seed() + 2000;
  for (int i = 0; i < 20; ++i) {
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());
    EvaluationSpec spec = chaos_spec(4);
    spec.chaos_schedule = &schedule;
    const SweepReport oracle = evaluate_sweep(std::span<const workload::User>(users), spec);

    BatchOptions options;
    options.shard_size = 2;
    expect_same_report(oracle, evaluate_sweep_batch(users, spec, options));

    // And again single-threaded with a different sharding.
    EvaluationSpec serial = chaos_spec(1);
    serial.chaos_schedule = &schedule;
    BatchOptions one;
    one.shard_size = 1;
    expect_same_report(oracle, evaluate_sweep_batch(users, serial, one));
  }
}

TEST(ChaosBatch, ShardStepFaultIsRecoverableViaCheckpoint) {
  const std::vector<workload::User> users = chaos_users();
  const EvaluationSpec spec = chaos_spec(1);  // one worker: global hits are ordered
  const SweepReport oracle = evaluate_sweep(std::span<const workload::User>(users), spec);

  const std::string path = testing::TempDir() + "/rimarket_chaos_shard.ckpt";
  std::remove(path.c_str());
  BatchOptions options;
  options.shard_size = 2;
  options.checkpoint_path = path;

  {  // Second shard step dies mid-run; the first shard was checkpointed.
    fi::Rule rule;
    rule.site_pattern = std::string(fi::kSiteBatchShardStep);
    rule.nth_hit = 2;
    const fi::Schedule schedule(11, {rule});
    ScopedGlobalSchedule installed(schedule);
    BatchSweepEngine engine(spec, options);
    EXPECT_THROW(engine.run(std::span<const workload::User>(users)), fi::InjectedFault);
  }

  // The crashed run left a resumable checkpoint: the rerun completes and is
  // byte-identical to the oracle.
  BatchSweepEngine engine(spec, options);
  const BatchSweepOutcome outcome = engine.run(std::span<const workload::User>(users));
  ASSERT_TRUE(outcome.finished);
  expect_same_report(oracle, outcome.report);
}

TEST(ChaosBatch, CheckpointWriteFaultDegradesGracefully) {
  const std::vector<workload::User> users = chaos_users();
  const EvaluationSpec spec = chaos_spec(1);
  const SweepReport oracle = evaluate_sweep(std::span<const workload::User>(users), spec);

  const std::string path = testing::TempDir() + "/rimarket_chaos_ckpt_write.ckpt";
  std::remove(path.c_str());
  BatchOptions options;
  options.shard_size = 2;
  options.checkpoint_path = path;

  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteBatchCheckpointWrite);
  rule.probability = 1.0;  // every checkpoint write fails
  const fi::Schedule schedule(12, {rule});
  ScopedGlobalSchedule installed(schedule);
  BatchSweepEngine engine(spec, options);
  const BatchSweepOutcome outcome = engine.run(std::span<const workload::User>(users));
  ASSERT_TRUE(outcome.finished);  // losing checkpoints never kills the run
  expect_same_report(oracle, outcome.report);
}

TEST(ChaosBatch, CheckpointLoadFaultStartsFresh) {
  const std::vector<workload::User> users = chaos_users();
  const EvaluationSpec spec = chaos_spec(1);
  const SweepReport oracle = evaluate_sweep(std::span<const workload::User>(users), spec);

  const std::string path = testing::TempDir() + "/rimarket_chaos_ckpt_load.ckpt";
  std::remove(path.c_str());
  BatchOptions sliced;
  sliced.shard_size = 2;
  sliced.checkpoint_path = path;
  sliced.max_shards_per_run = 1;
  {  // Leave a genuine checkpoint behind.
    BatchSweepEngine engine(spec, sliced);
    const BatchSweepOutcome partial = engine.run(std::span<const workload::User>(users));
    ASSERT_FALSE(partial.finished);
  }

  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteBatchCheckpointLoad);
  rule.kind = fi::FaultKind::kParseError;
  rule.nth_hit = 1;
  const fi::Schedule schedule(13, {rule});
  ScopedGlobalSchedule installed(schedule);
  BatchOptions full;
  full.shard_size = 2;
  full.checkpoint_path = path;
  BatchSweepEngine engine(spec, full);
  const BatchSweepOutcome outcome = engine.run(std::span<const workload::User>(users));
  ASSERT_TRUE(outcome.finished);  // unreadable checkpoint = fresh start, not a crash
  expect_same_report(oracle, outcome.report);
}

TEST(ChaosBatch, WiresTheDocumentedSites) {
  const std::vector<workload::User> users = chaos_users();
  const std::string path = testing::TempDir() + "/rimarket_chaos_sites.ckpt";
  std::remove(path.c_str());
  BatchOptions sliced;
  sliced.shard_size = 2;
  sliced.checkpoint_path = path;
  sliced.max_shards_per_run = 1;
  const EvaluationSpec spec = chaos_spec(1);
  {  // First run writes a checkpoint, second run loads it.
    BatchSweepEngine engine(spec, sliced);
    (void)engine.run(std::span<const workload::User>(users));
  }
  BatchOptions full;
  full.shard_size = 2;
  full.checkpoint_path = path;
  {
    BatchSweepEngine engine(spec, full);
    (void)engine.run(std::span<const workload::User>(users));
  }
  (void)workload::load_trace_chunked(testing::TempDir() + "/rimarket_absent.csv");
  workload::ChunkedTraceParser parser;
  parser.feed("hour,demand\n0,1\n");
  (void)parser.finish();

  const std::vector<std::string> sites = fi::seen_sites();
  const std::set<std::string> seen(sites.begin(), sites.end());
  EXPECT_TRUE(seen.count(std::string(fi::kSiteBatchShardStep)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteBatchCheckpointWrite)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteBatchCheckpointLoad)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteTraceStream)));
}

TEST(ChaosIngestion, ChunkedTraceParserReportsInjectedFaultsCleanly) {
  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteTraceStream);
  rule.kind = fi::FaultKind::kParseError;
  rule.nth_hit = 1;
  const fi::Schedule schedule(14, {rule});
  fi::ScopedContext context(schedule, 1);

  workload::ChunkedTraceParser parser;
  parser.feed("hour,demand\n0,3\n");
  common::CsvError error;
  EXPECT_FALSE(parser.finish(&error).has_value());
  EXPECT_NE(error.message.find("injected"), std::string::npos);

  // The nth-hit rule is spent: a fresh parse of the same bytes succeeds.
  parser.reset();
  parser.feed("hour,demand\n0,3\n");
  const auto trace = parser.finish(&error);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->at(0), 3);
}

TEST(ChaosIngestion, CsvAndTraceParsersReportInjectedFaultsCleanly) {
  const std::string path = testing::TempDir() + "/rimarket_chaos_ingest.csv";
  ASSERT_TRUE(common::write_file(path, "hour,demand\n0,3\n1,4\n"));

  {  // Injected read failure surfaces as a CsvError, not a crash.
    fi::Rule rule;
    rule.site_pattern = std::string(fi::kSiteCsvReadFile);
    rule.kind = fi::FaultKind::kParseError;
    rule.nth_hit = 1;
    const fi::Schedule schedule(1, {rule});
    fi::ScopedContext context(schedule, 1);
    common::CsvError error;
    EXPECT_FALSE(common::read_file(path, &error).has_value());
    EXPECT_NE(error.message.find("injected"), std::string::npos);
    // Second call: the nth-hit rule is spent, the file loads.
    EXPECT_TRUE(common::read_file(path, &error).has_value());
  }
  {  // Injected parse failure in load_csv_file.
    fi::Rule rule;
    rule.site_pattern = std::string(fi::kSiteCsvLoad);
    rule.kind = fi::FaultKind::kParseError;
    rule.nth_hit = 1;
    const fi::Schedule schedule(2, {rule});
    fi::ScopedContext context(schedule, 1);
    common::CsvError error;
    EXPECT_FALSE(common::load_csv_file(path, true, &error).has_value());
    EXPECT_NE(error.message.find("injected"), std::string::npos);
  }
  {  // Injected trace-parse failure.
    fi::Rule rule;
    rule.site_pattern = std::string(fi::kSiteTraceFromCsv);
    rule.kind = fi::FaultKind::kParseError;
    rule.nth_hit = 1;
    const fi::Schedule schedule(3, {rule});
    fi::ScopedContext context(schedule, 1);
    common::CsvError error;
    EXPECT_FALSE(workload::DemandTrace::from_csv("hour,demand\n0,1\n", &error).has_value());
    EXPECT_NE(error.message.find("injected"), std::string::npos);
  }

  // Randomized schedules over the ingestion sites: every outcome must be
  // success, a clean error report, or a typed exception — never UB.
  const std::array<std::string_view, 3> sites = {fi::kSiteCsvReadFile, fi::kSiteCsvLoad,
                                                 fi::kSiteTraceFromCsv};
  const std::uint64_t base = chaos_base_seed() + 1000;
  for (int i = 0; i < 25; ++i) {
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());
    fi::ScopedContext context(schedule, static_cast<std::uint64_t>(i));
    common::CsvError error;
    try {
      const auto doc = common::load_csv_file(path, true, &error);
      if (!doc) {
        EXPECT_FALSE(error.message.empty());
      }
    } catch (const fi::InjectedFault&) {
    } catch (const std::bad_alloc&) {
    }
    try {
      (void)workload::DemandTrace::from_csv("hour,demand\n0,1\n1,2\n", &error);
    } catch (const fi::InjectedFault&) {
    } catch (const std::bad_alloc&) {
    }
  }
  std::remove(path.c_str());
}

TEST(ChaosServe, ParseFaultBecomesPerRequestErrorNeverACrash) {
  // Each request runs under its own ScopedContext, so an nth-hit-1 rule
  // fires on every request — the service must answer ERROR each time and
  // keep serving.
  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteServeParse);
  rule.kind = fi::FaultKind::kParseError;
  rule.nth_hit = 1;
  const fi::Schedule schedule(21, {rule});
  serve::ServiceConfig config;
  config.fault_schedule = &schedule;
  serve::AdvisorService service(config);
  EXPECT_EQ(service.handle_line("PING"),
            "ERROR {\"message\":\"injected parse error\"}");
  EXPECT_EQ(service.handle_line("METRICS"),
            "ERROR {\"message\":\"injected parse error\"}");
  // The service itself is untouched: counters kept counting.
  EXPECT_EQ(service.metrics().get("serve.requests.total"), 2.0);
  EXPECT_EQ(service.metrics().get("serve.requests.errors"), 2.0);
}

TEST(ChaosServe, ExecuteFaultSurfacesAsTypedErrorResponse) {
  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteServeExecute);
  rule.kind = fi::FaultKind::kThrow;
  rule.nth_hit = 1;
  const fi::Schedule schedule(22, {rule});
  serve::ServiceConfig config;
  config.fault_schedule = &schedule;
  serve::AdvisorService service(config);
  const std::string response = service.handle_line("PING");
  EXPECT_EQ(response.find("ERROR "), 0u) << response;
  EXPECT_NE(response.find("injected fault at serve.request.execute"), std::string::npos)
      << response;
}

TEST(ChaosServe, RandomSchedulesDegradeToPerRequestErrorsDeterministically) {
  // The serve acceptance contract: under randomized fault schedules every
  // trace entry still gets a response line (OK or ERROR — the process and
  // the other in-flight requests survive), and because chaos scope keys
  // come from the request sequence, the exact fault placement is identical
  // across worker counts and reruns.
  const std::array<std::string_view, 2> sites = {fi::kSiteServeParse, fi::kSiteServeExecute};
  serve::RequestTraceSpec trace_spec;
  trace_spec.accounts = 2;
  trace_spec.reservations_per_account = 8;
  trace_spec.requests = 120;
  trace_spec.updates = 3;
  const auto trace = serve::generate_request_trace(trace_spec, 17);
  const serve::LatencyReport baseline = serve::ReplayDriver().replay(trace);
  ASSERT_EQ(baseline.errors, 0u);

  const std::uint64_t base = chaos_base_seed() + 3000;
  std::uint64_t total_errors = 0;
  std::uint64_t fault_free_schedules = 0;
  for (int i = 0; i < 25; ++i) {
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());
    serve::ReplayConfig parallel;
    parallel.threads = 4;
    parallel.fault_schedule = &schedule;
    const serve::LatencyReport chaos = serve::ReplayDriver(parallel).replay(trace);

    ASSERT_EQ(chaos.responses.size(), trace.size());
    bool update_faulted = false;
    for (std::size_t r = 0; r < chaos.responses.size(); ++r) {
      const std::string& response = chaos.responses[r];
      ASSERT_TRUE(response.rfind("OK ", 0) == 0 || response.rfind("ERROR ", 0) == 0)
          << response;
      if (response.rfind("ERROR ", 0) == 0 &&
          trace[r].rfind("SNAPSHOT_UPDATE", 0) == 0) {
        update_faulted = true;
      }
    }
    // Requests the schedule spared are byte-identical to the fault-free
    // replay — a fault in one request never bleeds into another.  (Only
    // provable when every snapshot update landed: a faulted update
    // legitimately changes later answers.)
    if (!update_faulted) {
      for (std::size_t r = 0; r < chaos.responses.size(); ++r) {
        if (chaos.responses[r].rfind("OK ", 0) == 0) {
          EXPECT_EQ(chaos.responses[r], baseline.responses[r]) << trace[r];
        }
      }
    }

    // Determinism: one worker, same schedule, same bytes out.
    serve::ReplayConfig serial;
    serial.threads = 1;
    serial.fault_schedule = &schedule;
    const serve::LatencyReport replayed = serve::ReplayDriver(serial).replay(trace);
    EXPECT_EQ(chaos.responses, replayed.responses);
    EXPECT_EQ(chaos.errors, replayed.errors);

    total_errors += chaos.errors;
    fault_free_schedules += chaos.errors == 0 ? 1 : 0;
  }
  // Non-vacuous: the schedules actually injected faults somewhere.
  EXPECT_GT(total_errors, 0u);
  // ... without erroring literally everything (bad-alloc storms aside).
  EXPECT_LT(total_errors, 25u * trace.size());
  (void)fault_free_schedules;
}

TEST(ChaosServe, WiresTheDocumentedSites) {
  serve::AdvisorService service;
  (void)service.handle_line("PING");
  const std::vector<std::string> sites = fi::seen_sites();
  const std::set<std::string> seen(sites.begin(), sites.end());
  EXPECT_TRUE(seen.count(std::string(fi::kSiteServeParse)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteServeExecute)));
}

// --- Snapshot journal under chaos ------------------------------------------
//
// The durability contract (DESIGN.md §16): an update the service ACKED is in
// the journal before it is published, a faulted one is rejected without
// touching the store, and recovery replays exactly the valid prefix.  So no
// matter what a schedule does to the journal sites, a restarted service must
// answer byte-identically to the killed one.

serve::ServiceConfig journaled_config(const std::string& path,
                                      const fi::Schedule* schedule = nullptr) {
  serve::ServiceConfig config;
  config.journal_path = path;
  config.journal_fsync = common::durable::FsyncMode::kNever;
  config.fault_schedule = schedule;
  return config;
}

/// The (account, version) pair fully determines the update payload, so any
/// acked version can be re-derived for a reference service.
std::string journal_update(const std::string& account, std::uint64_t version) {
  return common::format(
      R"(SNAPSHOT_UPDATE %s {"instance":"d2.xlarge","discount":0.8,"now":9000,)"
      R"("reservations":[[1,100,%llu],[2,0,50]],"version":%llu})",
      account.c_str(), static_cast<unsigned long long>(200 + 7 * version),
      static_cast<unsigned long long>(version));
}

struct JournalStep {
  const char* account;
  std::uint64_t version;
};

constexpr JournalStep kJournalSequence[] = {
    {"acme", 1}, {"globex", 1}, {"acme", 2}, {"globex", 2}, {"acme", 3}};

const char* const kJournalReads[] = {
    "ADVISE acme 1",      "ADVISE acme 2",         "ADVISE globex 1",
    "BREAKEVEN acme 0.5", "BREAKEVEN globex 0.25",
};

std::uint64_t account_version(const serve::AdvisorService& service,
                              const std::string& account) {
  const auto snapshot = service.snapshots().lookup(account);
  return snapshot == nullptr ? 0 : snapshot->version;
}

/// True when (acme, globex) versions correspond to some prefix of
/// kJournalSequence — the only states a truncate-at-corruption recovery may
/// surface when every update in the sequence was acked.
bool is_prefix_state(std::uint64_t acme, std::uint64_t globex) {
  std::uint64_t a = 0;
  std::uint64_t g = 0;
  if (acme == a && globex == g) {
    return true;
  }
  for (const JournalStep& step : kJournalSequence) {
    (std::string_view(step.account) == "acme" ? a : g) = step.version;
    if (acme == a && globex == g) {
      return true;
    }
  }
  return false;
}

TEST(ChaosJournal, RandomSchedulesNeverLoseAckedUpdates) {
  // Randomized fault schedules over every journal site: whatever gets
  // rejected, the acked subset must survive the kill byte-for-byte, and a
  // rejected update must leave no trace (the store holds max-acked, never a
  // half-applied or rolled-back version).
  const std::array<std::string_view, 4> sites = {fi::kSiteJournalAppend,
                                                 fi::kSiteJournalFsync,
                                                 fi::kSiteJournalCompact,
                                                 fi::kSiteDurableWrite};
  const std::uint64_t base = chaos_base_seed() + 4000;
  std::uint64_t total_rejected = 0;
  std::uint64_t total_acked = 0;
  for (int i = 0; i < 25; ++i) {
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());
    const std::string path =
        testing::TempDir() + "/rimarket_chaos_journal_" + std::to_string(i) + ".log";
    std::remove(path.c_str());

    std::map<std::string, std::uint64_t> acked;
    std::vector<std::string> expected;
    {
      serve::AdvisorService service(journaled_config(path, &schedule));
      ASSERT_TRUE(service.journal_enabled());
      for (const JournalStep& step : kJournalSequence) {
        const std::string response =
            service.handle_line(journal_update(step.account, step.version));
        if (response.rfind("OK ", 0) == 0) {
          acked[step.account] = step.version;
          ++total_acked;
        } else {
          ++total_rejected;
        }
      }
      // The reads only touch the in-memory store; the schedule's journal
      // rules cannot fire here, so these are the killed service's answers.
      for (const char* read : kJournalReads) {
        expected.push_back(service.handle_line(read));
      }
      // SIGKILL equivalent: scope exit, no flush, no handshake.
    }

    serve::AdvisorService recovered(journaled_config(path));
    ASSERT_TRUE(recovered.journal_enabled());
    for (const JournalStep& step : kJournalSequence) {
      const auto it = acked.find(step.account);
      const std::uint64_t want = it == acked.end() ? 0 : it->second;
      EXPECT_EQ(account_version(recovered, step.account), want) << step.account;
    }
    for (std::size_t r = 0; r < std::size(kJournalReads); ++r) {
      EXPECT_EQ(recovered.handle_line(kJournalReads[r]), expected[r]) << kJournalReads[r];
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  // Non-vacuous: the schedules rejected some updates and spared others.
  EXPECT_GT(total_rejected, 0u);
  EXPECT_GT(total_acked, 0u);
}

TEST(ChaosJournal, RecoveryFaultsAlwaysLeaveAServableConsistentPrefix) {
  // Faults during startup replay (kSiteJournalRecover fires per record,
  // under the process-global schedule: recovery runs in the constructor,
  // outside any request scope).  The service must always start, surface
  // some prefix of the update sequence — never a gap — and a second,
  // fault-free restart must land on exactly the same state with nothing
  // left to truncate.
  const std::string path = testing::TempDir() + "/rimarket_chaos_recover.log";
  std::remove(path.c_str());
  {
    serve::AdvisorService writer(journaled_config(path));
    for (const JournalStep& step : kJournalSequence) {
      ASSERT_EQ(writer.handle_line(journal_update(step.account, step.version)).rfind("OK ", 0),
                0u);
    }
  }
  const std::string pristine = common::read_file(path).value();

  const std::uint64_t base = chaos_base_seed() + 5000;
  std::uint64_t total_truncated = 0;
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(common::write_file(path, pristine));
    const std::array<std::string_view, 1> sites = {fi::kSiteJournalRecover};
    const fi::Schedule schedule = fi::Schedule::random(base + static_cast<std::uint64_t>(i),
                                                       std::span<const std::string_view>(sites));
    SCOPED_TRACE(schedule.to_string());
    std::uint64_t acme = 0;
    std::uint64_t globex = 0;
    {
      ScopedGlobalSchedule installed(schedule);
      serve::AdvisorService faulted(journaled_config(path));
      acme = account_version(faulted, "acme");
      globex = account_version(faulted, "globex");
      EXPECT_TRUE(is_prefix_state(acme, globex)) << acme << "/" << globex;
      total_truncated +=
          static_cast<std::uint64_t>(faulted.metrics().get("serve.journal.truncated_bytes")
                                         .value_or(0.0));
      // Whatever recovery salvaged, the service serves it.
      EXPECT_EQ(faulted.handle_line("PING"), "OK {\"service\":\"rimarket_serve\"}");
    }
    // The faulting recovery physically truncated the file at the record it
    // distrusted, so a clean restart sees a wholly valid journal and the
    // identical state.
    serve::AdvisorService clean(journaled_config(path));
    EXPECT_EQ(clean.metrics().get("serve.journal.truncated_bytes"), 0.0);
    EXPECT_EQ(account_version(clean, "acme"), acme);
    EXPECT_EQ(account_version(clean, "globex"), globex);
  }
  EXPECT_GT(total_truncated, 0u);  // the schedules actually bit
  std::remove(path.c_str());
}

TEST(ChaosJournal, RandomByteCorruptionNeverPreventsStartup) {
  // Flip one seeded byte anywhere in the journal: recovery must come up on
  // a consistent prefix (CRC framing refuses everything from the damaged
  // record on), keep serving, and accept new updates.
  const std::string path = testing::TempDir() + "/rimarket_chaos_corrupt.log";
  std::remove(path.c_str());
  {
    serve::AdvisorService writer(journaled_config(path));
    for (const JournalStep& step : kJournalSequence) {
      ASSERT_EQ(writer.handle_line(journal_update(step.account, step.version)).rfind("OK ", 0),
                0u);
    }
  }
  const std::string pristine = common::read_file(path).value();
  ASSERT_FALSE(pristine.empty());

  std::uint64_t state = chaos_base_seed() + 6000;
  for (int i = 0; i < 40; ++i) {
    std::string damaged = pristine;
    const std::size_t at = static_cast<std::size_t>(common::splitmix64(state)) % damaged.size();
    damaged[at] = static_cast<char>(damaged[at] ^ 0x5A);
    ASSERT_TRUE(common::write_file(path, damaged));
    SCOPED_TRACE("flipped byte " + std::to_string(at));

    serve::AdvisorService recovered(journaled_config(path));
    ASSERT_TRUE(recovered.journal_enabled());
    const std::uint64_t acme = account_version(recovered, "acme");
    const std::uint64_t globex = account_version(recovered, "globex");
    EXPECT_TRUE(is_prefix_state(acme, globex)) << acme << "/" << globex;
    EXPECT_GT(recovered.metrics().get("serve.journal.truncated_bytes").value_or(0.0), 0.0);
    // Still a live, durable service: the next update lands and survives.
    ASSERT_EQ(recovered.handle_line(journal_update("acme", acme + 1)).rfind("OK ", 0), 0u);
    serve::AdvisorService after(journaled_config(path));
    EXPECT_EQ(account_version(after, "acme"), acme + 1);
  }
  std::remove(path.c_str());
}

TEST(ChaosJournal, CompactionFaultDegradesWithoutResidueOrDataLoss) {
  // An injected fault in the rename window of compaction's atomic_replace:
  // the hit order inside a compacting request is append (1), replace entry
  // (2), pre-rename (3).  The tmp file must be cleaned up, the update still
  // acked against the old (uncompacted) log, and every version recoverable.
  fi::Rule rule;
  rule.site_pattern = std::string(fi::kSiteDurableWrite);
  rule.nth_hit = 3;
  const fi::Schedule schedule(31, {rule});
  const std::string path = testing::TempDir() + "/rimarket_chaos_compact.log";
  std::remove(path.c_str());
  serve::ServiceConfig config = journaled_config(path, &schedule);
  config.journal_compact_bytes = 256;  // every update past the first few compacts
  {
    serve::AdvisorService service(config);
    for (std::uint64_t version = 1; version <= 12; ++version) {
      ASSERT_EQ(service.handle_line(journal_update("acme", version)).rfind("OK ", 0), 0u)
          << version;
      EXPECT_FALSE(common::read_file(path + ".tmp").has_value()) << version;
    }
    // Every compaction attempt died in the replace window; the log degraded
    // to append-only growth instead of losing it.
    EXPECT_EQ(service.metrics().get("serve.journal.compactions").value_or(0.0), 0.0);
  }
  serve::AdvisorService recovered(journaled_config(path));
  EXPECT_EQ(account_version(recovered, "acme"), 12u);
  std::remove(path.c_str());
}

TEST(ChaosJournal, WiresTheDocumentedSites) {
  const std::string path = testing::TempDir() + "/rimarket_chaos_journal_sites.log";
  std::remove(path.c_str());
  serve::ServiceConfig config = journaled_config(path);
  config.journal_compact_bytes = 128;
  {  // Appends, fsync points, a successful compaction (durable write).
    serve::AdvisorService service(config);
    for (std::uint64_t version = 1; version <= 6; ++version) {
      ASSERT_EQ(service.handle_line(journal_update("acme", version)).rfind("OK ", 0), 0u);
    }
  }
  {  // Restart replays the compacted journal (recover site).
    serve::AdvisorService service(journaled_config(path));
    ASSERT_GT(account_version(service, "acme"), 0u);
  }
  const std::vector<std::string> sites = fi::seen_sites();
  const std::set<std::string> seen(sites.begin(), sites.end());
  EXPECT_TRUE(seen.count(std::string(fi::kSiteDurableWrite)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteJournalAppend)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteJournalFsync)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteJournalCompact)));
  EXPECT_TRUE(seen.count(std::string(fi::kSiteJournalRecover)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rimarket::sim
