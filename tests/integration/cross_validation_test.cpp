// Cross-validation between independent implementations:
//
//  1. The fleet simulator (sim::simulate, hour loop + ledger + Eq. (1)
//     accounting) against the analytic single-instance model
//     (theory::SingleInstanceModel) on one-reservation scenarios — the two
//     compute the same economics through entirely different code paths.
//
//  2. The per-instance offline planner against an exhaustive brute-force
//     search over all joint sell-hour assignments on small fleets.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "selling/baselines.hpp"
#include "selling/fixed_spot.hpp"
#include "selling/planned.hpp"
#include "sim/offline_planner.hpp"
#include "sim/simulator.hpp"
#include "theory/adversary.hpp"
#include "theory/single_instance.hpp"

namespace rimarket {
namespace {

// Small instance: p=1, R=20, alpha=0.25, T=40h.
pricing::InstanceType tiny_type() {
  return pricing::InstanceType{"tiny.test", Rate{1.0}, Money{20.0}, Rate{0.25}, 40};
}

/// Turns a single-instance work schedule into a demand trace: the instance
/// is the only reservation, so demand 1 at hour h <=> the instance works.
workload::DemandTrace schedule_to_trace(const theory::WorkSchedule& schedule) {
  std::vector<Count> demand(schedule.size(), 0);
  for (std::size_t h = 0; h < schedule.size(); ++h) {
    demand[h] = schedule[h] ? 1 : 0;
  }
  return workload::DemandTrace(std::move(demand));
}

class SimVsTheory : public ::testing::TestWithParam<double> {};

TEST_P(SimVsTheory, OnlineCostsAgreeOnRandomSchedules) {
  const double fraction = GetParam();
  const pricing::InstanceType type = tiny_type();
  const Hour spot = selling::decision_age(type.term, Fraction{fraction});

  theory::SingleInstanceModel model;
  model.type = type;
  model.selling_discount = Fraction{0.8};
  model.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;

  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  config.charge_policy = fleet::ChargePolicy::kWorkedHoursOnly;

  common::Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // No compensation needed: the simulator settles sales before the
    // decision-spot hour's assignment, so its worked window is [0, spot) —
    // exactly the analytic model's.
    const theory::WorkSchedule schedule =
        theory::random_schedule(type, rng.uniform01(), rng);
    const workload::DemandTrace trace = schedule_to_trace(schedule);
    const sim::ReservationStream stream{std::vector<Count>{1}};
    selling::FixedSpotSelling seller(type, Fraction{fraction}, Fraction{0.8});
    const sim::SimulationResult run = sim::simulate(trace, stream, seller, config);
    const Money analytic = model.online_cost(schedule, Fraction{fraction});
    EXPECT_NEAR(run.net_cost().value(), analytic.value(), 1e-9)
        << "fraction=" << fraction << " trial=" << trial;
    // The sell decision itself must agree too.
    EXPECT_EQ(run.instances_sold == 1, model.online_sells(schedule, Fraction{fraction}));
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

INSTANTIATE_TEST_SUITE_P(PaperSpots, SimVsTheory, ::testing::Values(0.25, 0.5, 0.75),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "f" + std::to_string(static_cast<int>(param_info.param * 100));
                         });

TEST(SimVsTheory, AllActiveBillingMatchesExactly) {
  // Under Eq. (1) billing both the simulator and the analytic model bill
  // active hours [0, sell_at): the sale settles at the decision spot, so
  // the spot hour itself is never billed.  The former one-hour gap (the
  // same-hour sale accounting bug) is gone — costs agree exactly.
  const pricing::InstanceType type = tiny_type();
  theory::SingleInstanceModel model;
  model.type = type;
  model.selling_discount = Fraction{0.8};
  model.charge_policy = fleet::ChargePolicy::kAllActiveHours;
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  config.charge_policy = fleet::ChargePolicy::kAllActiveHours;

  const theory::WorkSchedule idle(40, false);
  const workload::DemandTrace trace = schedule_to_trace(idle);
  const sim::ReservationStream stream{std::vector<Count>{1}};
  selling::FixedSpotSelling seller(type, Fraction{0.75}, Fraction{0.8});
  const sim::SimulationResult run = sim::simulate(trace, stream, seller, config);
  EXPECT_EQ(run.instances_sold, 1);
  EXPECT_NEAR(run.net_cost().value(), model.online_cost(idle, Fraction{0.75}).value(), 1e-9);
}

// ---------------------------------------------------------------------
// Brute force: exact fleet optimum on small cases.

/// Minimum cost over every joint assignment of sell hours (or keep) to the
/// fleet's reservations, replayed through the real simulator.
Money brute_force_fleet_optimum(const workload::DemandTrace& trace,
                                  const sim::ReservationStream& stream,
                                  const sim::SimulationConfig& config,
                                  std::span<const Hour> candidate_hours) {
  // Collect (id, start) of every reservation the stream books.
  std::vector<Hour> starts;
  const Hour horizon = config.effective_horizon(trace);
  for (Hour t = 0; t < horizon; ++t) {
    for (Count i = 0; i < stream.at(t); ++i) {
      starts.push_back(t);
    }
  }
  const std::size_t fleet = starts.size();
  const std::size_t options = candidate_hours.size() + 1;  // + "keep"
  std::size_t combinations = 1;
  for (std::size_t i = 0; i < fleet; ++i) {
    combinations *= options;
  }
  Money best{std::numeric_limits<double>::infinity()};
  for (std::size_t combo = 0; combo < combinations; ++combo) {
    std::map<fleet::ReservationId, Hour> plan;
    std::size_t rest = combo;
    bool feasible = true;
    for (std::size_t i = 0; i < fleet; ++i) {
      const std::size_t choice = rest % options;
      rest /= options;
      if (choice == candidate_hours.size()) {
        continue;  // keep
      }
      const Hour when = candidate_hours[choice];
      if (when < starts[i] || when >= starts[i] + config.type.term || when >= horizon) {
        feasible = false;
        break;
      }
      plan[static_cast<fleet::ReservationId>(i)] = when;
    }
    if (!feasible) {
      continue;
    }
    selling::PlannedSellingPolicy policy(std::move(plan));
    best = std::min(best, sim::simulate(trace, stream, policy, config).net_cost());
  }
  return best;
}

TEST(BruteForceOptimum, PerInstancePlannerMatchesExactOnSmallFleets) {
  const pricing::InstanceType type = tiny_type();
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};

  common::Rng rng(17);
  // Full hour grid so the brute-force optimum dominates any plan the
  // planner can produce.
  std::vector<Hour> candidates;
  for (Hour h = 0; h < 40; ++h) {
    candidates.push_back(h);
  }
  for (int trial = 0; trial < 10; ++trial) {
    // Two reservations booked at hours 0 and 3; random demand up to level 2.
    std::vector<Count> demand(60, 0);
    for (auto& d : demand) {
      d = rng.uniform_int(0, 2);
    }
    const workload::DemandTrace trace{std::move(demand)};
    std::vector<Count> bookings(4, 0);
    bookings[0] = 1;
    bookings[3] = 1;
    const sim::ReservationStream stream{std::move(bookings)};

    const Money exact = brute_force_fleet_optimum(trace, stream, config, candidates);
    const Money planner =
        sim::simulate_offline_optimal(trace, stream, config).net_cost();
    selling::KeepReservedPolicy keep;
    const Money keep_cost = sim::simulate(trace, stream, keep, config).net_cost();

    // The per-instance planner is a heuristic benchmark: it cannot beat the
    // exact optimum restricted to the same candidate grid minus grid
    // effects, and must never be worse than keeping everything.
    EXPECT_LE(planner, keep_cost + Money{1e-9}) << "trial " << trial;
    EXPECT_GE(planner, exact - Money{1e-9}) << "trial " << trial;
    // And it should capture most of the exact optimum's improvement.
    const double exact_improvement = (keep_cost - exact).value();
    const double planner_improvement = (keep_cost - planner).value();
    if (exact_improvement > 1.0) {
      EXPECT_GT(planner_improvement, 0.5 * exact_improvement) << "trial " << trial;
    }
  }
}

TEST(BruteForceOptimum, SingleReservationPlannerIsExactOnItsGrid) {
  // With one reservation there is no cross-instance interaction, so the
  // planner's hour-granular scan must match brute force over every hour.
  const pricing::InstanceType type = tiny_type();
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  std::vector<Hour> all_hours;
  for (Hour h = 0; h < 40; ++h) {
    all_hours.push_back(h);
  }
  common::Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Count> demand(40, 0);
    for (auto& d : demand) {
      d = rng.bernoulli(0.4) ? 1 : 0;
    }
    const workload::DemandTrace trace{std::move(demand)};
    const sim::ReservationStream stream{std::vector<Count>{1}};
    const Money exact = brute_force_fleet_optimum(trace, stream, config, all_hours);
    const Money planner =
        sim::simulate_offline_optimal(trace, stream, config).net_cost();
    // The planner's analytic objective and the simulator now share the
    // same sale semantics — a sale settles at the decision spot, bills
    // [0, sell) and sends the spot hour's demand on-demand — so with one
    // reservation the planner's grid scan is exact, not just near-optimal.
    EXPECT_NEAR(planner.value(), exact.value(), 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rimarket
