// Integration: qualitative shape of the paper's evaluation results.
//
// These tests assert the *shape* the paper reports (who wins, directions of
// effects), not its absolute numbers, on a reduced population (the bench
// binaries run the full 300-user reproduction).
#include <gtest/gtest.h>

#include "analysis/normalize.hpp"
#include "analysis/summary.hpp"
#include "pricing/catalog.hpp"
#include "sim/runner.hpp"

namespace rimarket {
namespace {

class PaperShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::PopulationSpec pop_spec;
    pop_spec.users_per_group = 10;
    pop_spec.trace_hours = 2 * kHoursPerYear;
    pop_spec.seed = 2018;
    population_ = new workload::UserPopulation(workload::UserPopulation::build(pop_spec));

    sim::EvaluationSpec spec;
    spec.sim.type = pricing::PricingCatalog::builtin().require("d2.xlarge");
    spec.sim.selling_discount = Fraction{0.8};
    spec.sellers = sim::paper_sellers(Fraction{0.75});
    spec.seed = 1;
    spec.threads = 0;
    results_ = new std::vector<sim::ScenarioResult>(sim::evaluate(*population_, spec));
    normalized_ =
        new std::vector<analysis::NormalizedResult>(analysis::normalize_to_keep(*results_));
  }
  static void TearDownTestSuite() {
    delete population_;
    delete results_;
    delete normalized_;
    population_ = nullptr;
    results_ = nullptr;
    normalized_ = nullptr;
  }

  static workload::UserPopulation* population_;
  static std::vector<sim::ScenarioResult>* results_;
  static std::vector<analysis::NormalizedResult>* normalized_;
};

workload::UserPopulation* PaperShape::population_ = nullptr;
std::vector<sim::ScenarioResult>* PaperShape::results_ = nullptr;
std::vector<analysis::NormalizedResult>* PaperShape::normalized_ = nullptr;

TEST_F(PaperShape, AllThreeAlgorithmsSaveOnAverage) {
  // Paper Table III: every algorithm's average normalized cost < 1 overall.
  for (const auto kind :
       {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
    const double average = analysis::overall_average(*normalized_, {kind, Fraction{0.75}});
    EXPECT_LT(average, 1.0) << sim::seller_name({kind, Fraction{0.75}});
    EXPECT_GT(average, 0.3);
  }
}

TEST_F(PaperShape, EarlierSpotsSaveMoreOnAverage) {
  // Paper Table III: A_{T/4} (0.80) < A_{T/2} (0.86) < A_{3T/4} (0.93).
  const double a34 = analysis::overall_average(*normalized_, {sim::SellerKind::kA3T4, Fraction{0.75}});
  const double at2 = analysis::overall_average(*normalized_, {sim::SellerKind::kAT2, Fraction{0.50}});
  const double at4 = analysis::overall_average(*normalized_, {sim::SellerKind::kAT4, Fraction{0.25}});
  EXPECT_LT(at4, at2);
  EXPECT_LT(at2, a34);
}

TEST_F(PaperShape, MajorityOfUsersSaveWithEachAlgorithm) {
  // Paper Fig. 3: >60% (A_{3T/4}), >70% (A_{T/2}), >75% (A_{T/4}) of users
  // reduce their costs.  Assert the common core: a clear majority saves.
  for (const auto kind :
       {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
    const auto sample = analysis::per_user_ratios(*normalized_, {kind, Fraction{0.75}});
    const auto summary = analysis::summarize_ratios(sample);
    EXPECT_GT(summary.fraction_saving, 0.5) << sim::seller_name({kind, Fraction{0.75}});
  }
}

TEST_F(PaperShape, RegressionsAreRareAndSmallForLateSpot) {
  // Paper Fig. 3a: ~1% of users regress under A_{3T/4} and the worst
  // regression is under 1%.  Assert the qualitative claim: few regressing
  // users, bounded worst case.
  const auto sample = analysis::per_user_ratios(*normalized_, {sim::SellerKind::kA3T4, Fraction{0.75}});
  const auto summary = analysis::summarize_ratios(sample);
  EXPECT_LT(summary.fraction_worse, 0.25);
  EXPECT_LT(summary.max_ratio, 1.10);
}

TEST_F(PaperShape, OnlineBeatsAllSellingOnAverage) {
  // Fig. 3: the utilization-aware rule dominates indiscriminate selling.
  const double a34 = analysis::overall_average(*normalized_, {sim::SellerKind::kA3T4, Fraction{0.75}});
  const double all = analysis::overall_average(*normalized_,
                                               {sim::SellerKind::kAllSelling, Fraction{0.75}});
  EXPECT_LE(a34, all + 1e-9);
}

TEST_F(PaperShape, EveryGroupSavesUnderEveryAlgorithm) {
  // Paper Table III: all nine group cells are below 1.
  for (const auto kind :
       {sim::SellerKind::kA3T4, sim::SellerKind::kAT2, sim::SellerKind::kAT4}) {
    for (const auto group :
         {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
          workload::FluctuationGroup::kHigh}) {
      EXPECT_LT(analysis::group_average(*normalized_, {kind, Fraction{0.75}}, group), 1.02)
          << sim::seller_name({kind, Fraction{0.75}}) << " / " << workload::group_name(group);
    }
  }
}

}  // namespace
}  // namespace rimarket
