// Bit-exact regression against pre-migration goldens.
//
// The strong-unit migration (Money/Rate/Hours/Fraction) was done under a
// "no arithmetic reordering" discipline: every implementation unwraps with
// .value() preserving the exact double expression the raw-double code
// evaluated.  These goldens were captured on the tree immediately before
// the migration; EXPECT_EQ (not NEAR) proves the wrappers changed zero
// bits of simulator output.
//
// If an intentional future change to the cost model moves these numbers,
// re-capture them with a small driver that prints the same quantities via
// std::printf("%a") and update the hexfloat constants.
#include <gtest/gtest.h>

#include "pricing/catalog.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "workload/population.hpp"

namespace rimarket {
namespace {

TEST(GoldenRegression, EvaluationSweepSumIsBitExact) {
  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = 2;
  pop_spec.trace_hours = 2 * kHoursPerYear;
  pop_spec.seed = 77;
  const auto population = workload::UserPopulation::build(pop_spec);

  sim::EvaluationSpec spec;
  spec.sim.type = pricing::PricingCatalog::builtin().require("d2.xlarge");
  spec.sim.selling_discount = Fraction{0.8};
  spec.sim.service_fee = Fraction{0.12};
  spec.sellers = sim::paper_sellers(Fraction{0.75});
  spec.seed = 3;
  spec.threads = 1;
  const auto results = sim::evaluate(population, spec);

  ASSERT_EQ(results.size(), 120u);
  Money sum{0.0};
  for (const auto& result : results) {
    sum += result.net_cost;
  }
  EXPECT_EQ(sum.value(), 0x1.6f608ebba5e8dp+23);  // 12038215.366500163
}

TEST(GoldenRegression, SingleRunComponentsAreBitExact) {
  workload::PopulationSpec pop_spec;
  pop_spec.users_per_group = 2;
  pop_spec.trace_hours = 2 * kHoursPerYear;
  pop_spec.seed = 77;
  const auto population = workload::UserPopulation::build(pop_spec);
  const workload::User& user = population.users().front();

  sim::SimulationConfig config;
  config.type = pricing::PricingCatalog::builtin().require("d2.xlarge");
  config.selling_discount = Fraction{0.8};
  config.service_fee = Fraction{0.12};

  const auto purchaser =
      purchasing::make_purchaser(purchasing::PurchaserKind::kWangOnline, config.type, 42);
  const auto stream = sim::ReservationStream::generate(
      user.trace, *purchaser, config.effective_horizon(user.trace), config.type.term);
  const auto seller =
      sim::make_seller({sim::SellerKind::kAllSelling, Fraction{0.75}}, config, 7);
  const sim::SimulationResult result = sim::simulate(user.trace, stream, *seller, config);

  EXPECT_EQ(result.totals.on_demand.value(), 0x1.378bb851eb725p+16);
  EXPECT_EQ(result.totals.upfront.value(), 0x1.0e9cp+15);
  EXPECT_EQ(result.totals.reserved_hourly.value(), 0x1.3161b0a3d6f47p+14);
  EXPECT_EQ(result.totals.sale_income.value(), 0x1.aeb74bc6a7efap+11);
  EXPECT_EQ(result.instances_sold, 13);
  EXPECT_EQ(result.reservations_made, 23);
}

}  // namespace
}  // namespace rimarket
