// End-to-end exercise of rimarket_cli's error paths: every class of user
// mistake must produce a usage-style diagnostic and its documented sysexits
// code — never a contract abort (SIGABRT) and never a silent 0.
//
// Only built when the examples are (RIMARKET_BUILD_EXAMPLES=ON); the binary
// path is injected by CMake as RIMARKET_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/csv.hpp"

namespace {

// sysexits(3) codes the CLI documents; mirrored here rather than shared so
// the test fails if the binary silently changes its contract.
constexpr int kExitUsage = 64;
constexpr int kExitDataError = 65;
constexpr int kExitNoInput = 66;
constexpr int kExitCantCreate = 73;

/// Runs the CLI with `arguments`, returns its exit code; -1 on signal or
/// harness failure (so an abort shows up as a mismatch, not a crash here).
int run_cli(const std::string& arguments) {
  const std::string command =
      std::string(RIMARKET_CLI_PATH) + " " + arguments + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

TEST(CliErrors, NoArgumentsIsUsageError) { EXPECT_EQ(run_cli(""), kExitUsage); }

TEST(CliErrors, UnknownSubcommandIsUsageError) {
  EXPECT_EQ(run_cli("frobnicate"), kExitUsage);
}

TEST(CliErrors, HelpExitsZero) {
  EXPECT_EQ(run_cli("help"), 0);
  EXPECT_EQ(run_cli("--help"), 0);
}

TEST(CliErrors, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_cli("catalog --no-such-flag=1"), kExitUsage);
}

TEST(CliErrors, SimulateWithoutTraceIsUsageError) {
  EXPECT_EQ(run_cli("simulate"), kExitUsage);
}

TEST(CliErrors, SimulateMissingFileIsNoInput) {
  EXPECT_EQ(run_cli("simulate --trace=/nonexistent/rimarket/trace.csv"), kExitNoInput);
}

TEST(CliErrors, SimulateMalformedCsvIsDataError) {
  const std::string path = testing::TempDir() + "/rimarket_cli_bad_trace.csv";
  ASSERT_TRUE(rimarket::common::write_file(path, "hour,demand\n0,1\n5,2\n"));  // hour gap
  EXPECT_EQ(run_cli("simulate --trace=" + path), kExitDataError);
  std::remove(path.c_str());
}

TEST(CliErrors, SimulateUnknownInstanceIsUsageError) {
  const std::string path = testing::TempDir() + "/rimarket_cli_ok_trace.csv";
  ASSERT_TRUE(rimarket::common::write_file(path, "hour,demand\n0,1\n1,2\n"));
  EXPECT_EQ(run_cli("simulate --trace=" + path + " --instance=z9.mega"), kExitUsage);
  EXPECT_EQ(run_cli("simulate --trace=" + path + " --purchaser=psychic"), kExitUsage);
  EXPECT_EQ(run_cli("simulate --trace=" + path + " --seller=hodl"), kExitUsage);
  std::remove(path.c_str());
}

TEST(CliErrors, OutOfRangeFractionIsUsageErrorNotAbort) {
  // Before the validation layer these tripped the Fraction contract and
  // aborted the process; a user typo must never look like a crash.
  EXPECT_EQ(run_cli("bounds --discount=1.5"), kExitUsage);
  EXPECT_EQ(run_cli("bounds --discount=-0.1"), kExitUsage);
}

TEST(CliErrors, PopulationRangeValidation) {
  EXPECT_EQ(run_cli("population --users=0"), kExitUsage);
  EXPECT_EQ(run_cli("population --users=9 --hours=0"), kExitUsage);
  EXPECT_EQ(run_cli("population --users=9 --hours=100 --seed=-3"), kExitUsage);
}

TEST(CliErrors, PopulationUnwritableOutDirIsCantCreate) {
  EXPECT_EQ(run_cli("population --users=1 --hours=50 --out=/nonexistent/rimarket/dir"),
            kExitCantCreate);
}

TEST(CliErrors, EvaluateThreadRangeValidation) {
  EXPECT_EQ(run_cli("evaluate --users=1 --hours=50 --threads=100000"), kExitUsage);
}

/// Same harness for the portfolio_advisor binary (RIMARKET_ADVISOR_PATH).
int run_advisor(const std::string& arguments) {
  const std::string command =
      std::string(RIMARKET_ADVISOR_PATH) + " " + arguments + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

TEST(AdvisorErrors, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_advisor("--no-such-flag=1"), kExitUsage);
}

TEST(AdvisorErrors, UnknownInstanceIsUsageError) {
  EXPECT_EQ(run_advisor("--instance=z9.mega"), kExitUsage);
}

TEST(AdvisorErrors, OutOfRangeDiscountIsUsageErrorNotAbort) {
  EXPECT_EQ(run_advisor("--discount=1.5"), kExitUsage);
  EXPECT_EQ(run_advisor("--discount=-0.1"), kExitUsage);
}

TEST(AdvisorErrors, ExplicitMissingTraceIsNoInputNotSilentFallback) {
  // The bugfix this PR ships: an explicit --trace that fails to load used
  // to fall back to the synthetic trace and exit 0, silently advising on
  // made-up demand.
  EXPECT_EQ(run_advisor("--trace=/nonexistent/rimarket/advisor.csv"), kExitNoInput);
}

TEST(AdvisorErrors, ExplicitMalformedTraceIsDataError) {
  const std::string path = testing::TempDir() + "/rimarket_advisor_bad_trace.csv";
  ASSERT_TRUE(rimarket::common::write_file(path, "hour,demand\n0,1\n5,2\n"));  // hour gap
  EXPECT_EQ(run_advisor("--trace=" + path), kExitDataError);
  std::remove(path.c_str());
}

TEST(AdvisorSuccess, NoTraceFallsBackToSyntheticAndExitsZero) {
  EXPECT_EQ(run_advisor(""), 0);
}

TEST(AdvisorSuccess, GoodTraceExitsZero) {
  const std::string path = testing::TempDir() + "/rimarket_advisor_good_trace.csv";
  std::string csv = "hour,demand\n";
  for (int hour = 0; hour < 60; ++hour) {
    csv += std::to_string(hour) + ",2\n";
  }
  ASSERT_TRUE(rimarket::common::write_file(path, csv));
  EXPECT_EQ(run_advisor("--trace=" + path), 0);
  std::remove(path.c_str());
}

/// And for the advisor service binary (RIMARKET_SERVE_PATH).
int run_serve(const std::string& arguments) {
  const std::string command =
      std::string(RIMARKET_SERVE_PATH) + " " + arguments + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

TEST(ServeErrors, FlagRangeValidation) {
  EXPECT_EQ(run_serve("--no-such-flag=1"), kExitUsage);
  EXPECT_EQ(run_serve("--generate=10 --accounts=0"), kExitUsage);
  EXPECT_EQ(run_serve("--threads=100000 --generate=1"), kExitUsage);
  EXPECT_EQ(run_serve("--rate=-1 --generate=1"), kExitUsage);
}

TEST(ServeErrors, MissingReplayFileIsNoInput) {
  EXPECT_EQ(run_serve("--replay=/nonexistent/rimarket/requests.txt"), kExitNoInput);
}

TEST(ServeErrors, UnwritableReportIsCantCreate) {
  const std::string trace = testing::TempDir() + "/rimarket_serve_cli_trace.txt";
  ASSERT_TRUE(rimarket::common::write_file(trace, "PING\nPING\n"));
  EXPECT_EQ(run_serve("--replay=" + trace + " --report=/nonexistent/rimarket/report.json"),
            kExitCantCreate);
  std::remove(trace.c_str());
}

TEST(ServeSuccess, GenerateAndReplayRoundTripExitsZero) {
  const std::string trace = testing::TempDir() + "/rimarket_serve_cli_roundtrip.txt";
  const std::string generate = std::string(RIMARKET_SERVE_PATH) +
                               " --generate=50 --seed=3 2>/dev/null >" + trace;
  const int status = std::system(generate.c_str());
  ASSERT_TRUE(status != -1 && WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(run_serve("--replay=" + trace), 0);
  std::remove(trace.c_str());
}

TEST(CliSuccess, SmallSimulateStillExitsZero) {
  // Guard against over-eager validation: a legitimate tiny run passes.
  const std::string path = testing::TempDir() + "/rimarket_cli_good_trace.csv";
  std::string csv = "hour,demand\n";
  for (int hour = 0; hour < 60; ++hour) {
    csv += std::to_string(hour) + ",2\n";
  }
  ASSERT_TRUE(rimarket::common::write_file(path, csv));
  EXPECT_EQ(run_cli("simulate --trace=" + path), 0);
  std::remove(path.c_str());
}

}  // namespace
