// Integration: the full pipeline — population -> purchasing imitators ->
// reservation streams -> selling policies -> normalization -> reports.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/normalize.hpp"
#include "analysis/reports.hpp"
#include "analysis/summary.hpp"
#include "pricing/catalog.hpp"
#include "sim/runner.hpp"

namespace rimarket {
namespace {

workload::UserPopulation tiny_population() {
  workload::PopulationSpec spec;
  spec.users_per_group = 4;
  spec.trace_hours = 2 * kHoursPerYear;
  spec.seed = 77;
  return workload::UserPopulation::build(spec);
}

sim::EvaluationSpec paper_spec() {
  sim::EvaluationSpec spec;
  spec.sim.type = pricing::PricingCatalog::builtin().require("d2.xlarge");
  spec.sim.selling_discount = Fraction{0.8};
  spec.sellers = sim::paper_sellers(Fraction{0.75});
  spec.seed = 3;
  spec.threads = 4;
  return spec;
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    population_ = new workload::UserPopulation(tiny_population());
    results_ = new std::vector<sim::ScenarioResult>(sim::evaluate(*population_, paper_spec()));
  }
  static void TearDownTestSuite() {
    delete population_;
    delete results_;
    population_ = nullptr;
    results_ = nullptr;
  }
  static workload::UserPopulation* population_;
  static std::vector<sim::ScenarioResult>* results_;
};

workload::UserPopulation* EndToEnd::population_ = nullptr;
std::vector<sim::ScenarioResult>* EndToEnd::results_ = nullptr;

TEST_F(EndToEnd, SweepHasFullCoverage) {
  const auto& results = *results_;
  EXPECT_EQ(results.size(), 12u * 4u * 5u);
}

TEST_F(EndToEnd, AllCostsFinite) {
  for (const auto& result : *results_) {
    EXPECT_TRUE(std::isfinite(result.net_cost.value()));
  }
}

TEST_F(EndToEnd, KeepReservedRunsNeverSell) {
  for (const auto& result : *results_) {
    if (result.seller.kind == sim::SellerKind::kKeepReserved) {
      EXPECT_EQ(result.instances_sold, 0);
    } else {
      EXPECT_LE(result.instances_sold, result.reservations_made);
    }
  }
}

TEST_F(EndToEnd, AllSellingDominatesSameSpotAlgorithm) {
  // All-selling@3T/4 decides on exactly the reservations A_{3T/4} decides
  // on (same spot) and always says "sell", so it must sell at least as
  // many instances.  (A_{T/4} may legitimately sell more: its earlier spot
  // also covers reservations booked too late to reach 3T/4 within the
  // horizon.)
  std::map<std::pair<int, purchasing::PurchaserKind>, Count> all_selling_sales;
  for (const auto& result : *results_) {
    if (result.seller.kind == sim::SellerKind::kAllSelling) {
      all_selling_sales[{result.user_id, result.purchaser}] = result.instances_sold;
    }
  }
  for (const auto& result : *results_) {
    if (result.seller.kind == sim::SellerKind::kA3T4) {
      const auto it = all_selling_sales.find({result.user_id, result.purchaser});
      ASSERT_NE(it, all_selling_sales.end());
      EXPECT_LE(result.instances_sold, it->second);
    }
  }
}

TEST_F(EndToEnd, NormalizationJoinsEveryScenario) {
  const auto normalized = analysis::normalize_to_keep(*results_);
  // Some (user, purchaser) pairs can have zero baseline cost (no demand ->
  // no bookings -> no cost); all others must normalize.
  EXPECT_GT(normalized.size(), 0u);
  for (const auto& entry : normalized) {
    EXPECT_GT(entry.keep_cost, Money{0.0});
    EXPECT_TRUE(std::isfinite(entry.ratio));
    EXPECT_GE(entry.ratio, 0.0);
  }
}

TEST_F(EndToEnd, ReportsRenderFromRealData) {
  const auto normalized = analysis::normalize_to_keep(*results_);
  EXPECT_FALSE(analysis::render_table3(normalized).empty());
  EXPECT_FALSE(analysis::render_fig3_panel(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}},
                                           {sim::SellerKind::kAllSelling, Fraction{0.75}})
                   .empty());
  EXPECT_FALSE(
      analysis::render_fig4_panel(normalized, workload::FluctuationGroup::kHigh).empty());
  EXPECT_FALSE(
      analysis::render_table2(*results_, population_->most_fluctuating().id).empty());
  EXPECT_FALSE(analysis::render_fig2(*population_).empty());
}

TEST_F(EndToEnd, SellingNeverSellsMoreThanBooked) {
  for (const auto& result : *results_) {
    EXPECT_GE(result.reservations_made, 0);
    EXPECT_GE(result.instances_sold, 0);
    EXPECT_LE(result.instances_sold, result.reservations_made);
  }
}

TEST_F(EndToEnd, AllReservedPurchaserBooksForEveryUserWithDemand) {
  for (const auto& result : *results_) {
    if (result.purchaser == purchasing::PurchaserKind::kAllReserved &&
        result.seller.kind == sim::SellerKind::kKeepReserved) {
      const auto& user = population_->users()[static_cast<std::size_t>(result.user_id)];
      if (user.trace.total() > 0) {
        EXPECT_GT(result.reservations_made, 0) << "user " << result.user_id;
      }
    }
  }
}

}  // namespace
}  // namespace rimarket
