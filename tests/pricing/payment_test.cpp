#include "pricing/payment.hpp"

#include <gtest/gtest.h>

#include "pricing/catalog.hpp"

namespace rimarket::pricing {
namespace {

TEST(Payment, OptionNamesMatchPaperTable) {
  EXPECT_EQ(payment_option_name(PaymentOption::kNoUpfront), "No Upfront");
  EXPECT_EQ(payment_option_name(PaymentOption::kPartialUpfront), "Partial Upfront");
  EXPECT_EQ(payment_option_name(PaymentOption::kAllUpfront), "All Upfront");
  EXPECT_EQ(payment_option_name(PaymentOption::kOnDemand), "On-Demand");
}

TEST(Payment, MonthsInTerm) {
  EXPECT_DOUBLE_EQ(months_in_term(kHoursPerYear), 12.0);
  EXPECT_DOUBLE_EQ(months_in_term(3 * kHoursPerYear), 36.0);
}

TEST(Payment, EffectiveHourlyMatchesTableI) {
  // Paper Table I: the derived "Effective Hourly" column for d2.xlarge.
  for (const PaymentQuote& quote : d2_xlarge_payment_quotes()) {
    switch (quote.option) {
      case PaymentOption::kNoUpfront:
        EXPECT_NEAR(quote.effective_hourly().value(), 0.402, 0.001);
        break;
      case PaymentOption::kPartialUpfront:
        EXPECT_NEAR(quote.effective_hourly().value(), 0.344, 0.001);
        break;
      case PaymentOption::kAllUpfront:
        EXPECT_NEAR(quote.effective_hourly().value(), 0.337, 0.001);
        break;
      case PaymentOption::kOnDemand:
        EXPECT_DOUBLE_EQ(quote.effective_hourly().value(), 0.69);
        break;
    }
  }
}

TEST(Payment, OnDemandTotalScalesWithUse) {
  PaymentQuote quote;
  quote.option = PaymentOption::kOnDemand;
  quote.hourly = Rate{0.69};
  EXPECT_DOUBLE_EQ(quote.total_cost(0).value(), 0.0);
  EXPECT_NEAR(quote.total_cost(1000).value(), 690.0, 1e-9);
}

TEST(Payment, ReservationTotalIgnoresUse) {
  PaymentQuote quote;
  quote.option = PaymentOption::kPartialUpfront;
  quote.upfront = Money{1506.0};
  quote.monthly = Money{125.56};
  quote.term = kHoursPerYear;
  const Money idle = quote.total_cost(0);
  const Money busy = quote.total_cost(kHoursPerYear);
  EXPECT_DOUBLE_EQ(idle.value(), busy.value());
  EXPECT_NEAR(idle.value(), 1506.0 + 12 * 125.56, 1e-9);
}

TEST(Payment, AllUpfrontHasNoRecurringFee) {
  PaymentQuote quote;
  quote.option = PaymentOption::kAllUpfront;
  quote.upfront = Money{2952.0};
  quote.term = kHoursPerYear;
  EXPECT_DOUBLE_EQ(quote.total_cost(123).value(), 2952.0);
}

}  // namespace
}  // namespace rimarket::pricing
