#include "pricing/instance_type.hpp"

#include <gtest/gtest.h>

namespace rimarket::pricing {
namespace {

InstanceType d2_xlarge() {
  // The paper's running example: R=$1506, p=$0.69/h, alpha=0.25, T=1yr.
  return InstanceType{"d2.xlarge", Rate{0.69}, Money{1506.0}, Rate{0.1725}, kHoursPerYear};
}

TEST(InstanceType, AlphaMatchesPaperExample) {
  EXPECT_NEAR(d2_xlarge().alpha().value(), 0.25, 1e-12);
}

TEST(InstanceType, AlphaOfT2NanoExample) {
  // Paper Section III-A: t2.nano alpha = 0.002/0.0059 ~= 0.34.
  const InstanceType t2{"t2.nano", Rate{0.0059}, Money{18.0}, Rate{0.002}, kHoursPerYear};
  EXPECT_NEAR(t2.alpha().value(), 0.34, 0.01);
}

TEST(InstanceType, ThetaIsOnDemandTermCostOverUpfront) {
  const InstanceType type = d2_xlarge();
  EXPECT_NEAR(type.theta(), 0.69 * 8760.0 / 1506.0, 1e-12);
  EXPECT_GT(type.theta(), 1.0);
  EXPECT_LT(type.theta(), 4.2);
}

TEST(InstanceType, BreakEvenMatchesPaperEquation9) {
  const InstanceType type = d2_xlarge();
  // beta = 3*a*R / (4*p*(1-alpha)) for f = 3/4.
  const double a = 0.8;
  const double expected = 3.0 * a * 1506.0 / (4.0 * 0.69 * 0.75);
  EXPECT_NEAR(type.break_even_hours(Fraction{0.75}, Fraction{a}).value(), expected, 1e-9);
}

TEST(InstanceType, BreakEvenScalesLinearlyInFraction) {
  const InstanceType type = d2_xlarge();
  const Hours half = type.break_even_hours(Fraction{0.5}, Fraction{0.8});
  const Hours quarter = type.break_even_hours(Fraction{0.25}, Fraction{0.8});
  EXPECT_NEAR(half.value(), 2.0 * quarter.value(), 1e-9);
}

TEST(InstanceType, BreakEvenZeroWhenDiscountZero) {
  EXPECT_DOUBLE_EQ(d2_xlarge().break_even_hours(Fraction{0.75}, Fraction{0.0}).value(), 0.0);
}

TEST(InstanceType, ProratedUpfrontEndpoints) {
  const InstanceType type = d2_xlarge();
  EXPECT_DOUBLE_EQ(type.prorated_upfront(0).value(), 1506.0);
  EXPECT_DOUBLE_EQ(type.prorated_upfront(kHoursPerYear).value(), 0.0);
  EXPECT_NEAR(type.prorated_upfront(kHoursPerYear / 2).value(), 753.0, 1e-9);
}

TEST(InstanceType, SaleIncomeMatchesT2NanoExample) {
  // Paper Section III-B: t2.nano, half cycle left, 20% off -> ask $7.2.
  const InstanceType t2{"t2.nano", Rate{0.0059}, Money{18.0}, Rate{0.002}, kHoursPerYear};
  EXPECT_NEAR(t2.sale_income(kHoursPerYear / 2, Fraction{0.8}).value(), 7.2, 1e-9);
}

TEST(InstanceType, SaleIncomeZeroDiscountIsZero) {
  EXPECT_DOUBLE_EQ(d2_xlarge().sale_income(100, Fraction{0.0}).value(), 0.0);
}

TEST(InstanceType, ValidAcceptsGoodContract) {
  EXPECT_TRUE(d2_xlarge().valid());
}

TEST(InstanceType, ValidRejectsBadContracts) {
  InstanceType type = d2_xlarge();
  type.name = "";
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.on_demand_hourly = Rate{0.0};
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.reserved_hourly = type.on_demand_hourly;  // no discount
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.upfront = Money{-1.0};
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.term = 0;
  EXPECT_FALSE(type.valid());
}

TEST(InstanceType, EqualityComparesAllFields) {
  EXPECT_EQ(d2_xlarge(), d2_xlarge());
  InstanceType other = d2_xlarge();
  other.upfront += Money{1.0};
  EXPECT_FALSE(other == d2_xlarge());
}

}  // namespace
}  // namespace rimarket::pricing
