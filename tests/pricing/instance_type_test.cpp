#include "pricing/instance_type.hpp"

#include <gtest/gtest.h>

namespace rimarket::pricing {
namespace {

InstanceType d2_xlarge() {
  // The paper's running example: R=$1506, p=$0.69/h, alpha=0.25, T=1yr.
  return InstanceType{"d2.xlarge", 0.69, 1506.0, 0.1725, kHoursPerYear};
}

TEST(InstanceType, AlphaMatchesPaperExample) {
  EXPECT_NEAR(d2_xlarge().alpha(), 0.25, 1e-12);
}

TEST(InstanceType, AlphaOfT2NanoExample) {
  // Paper Section III-A: t2.nano alpha = 0.002/0.0059 ~= 0.34.
  const InstanceType t2{"t2.nano", 0.0059, 18.0, 0.002, kHoursPerYear};
  EXPECT_NEAR(t2.alpha(), 0.34, 0.01);
}

TEST(InstanceType, ThetaIsOnDemandTermCostOverUpfront) {
  const InstanceType type = d2_xlarge();
  EXPECT_NEAR(type.theta(), 0.69 * 8760.0 / 1506.0, 1e-12);
  EXPECT_GT(type.theta(), 1.0);
  EXPECT_LT(type.theta(), 4.2);
}

TEST(InstanceType, BreakEvenMatchesPaperEquation9) {
  const InstanceType type = d2_xlarge();
  // beta = 3*a*R / (4*p*(1-alpha)) for f = 3/4.
  const double a = 0.8;
  const double expected = 3.0 * a * 1506.0 / (4.0 * 0.69 * 0.75);
  EXPECT_NEAR(type.break_even_hours(0.75, a), expected, 1e-9);
}

TEST(InstanceType, BreakEvenScalesLinearlyInFraction) {
  const InstanceType type = d2_xlarge();
  const double half = type.break_even_hours(0.5, 0.8);
  const double quarter = type.break_even_hours(0.25, 0.8);
  EXPECT_NEAR(half, 2.0 * quarter, 1e-9);
}

TEST(InstanceType, BreakEvenZeroWhenDiscountZero) {
  EXPECT_DOUBLE_EQ(d2_xlarge().break_even_hours(0.75, 0.0), 0.0);
}

TEST(InstanceType, ProratedUpfrontEndpoints) {
  const InstanceType type = d2_xlarge();
  EXPECT_DOUBLE_EQ(type.prorated_upfront(0), 1506.0);
  EXPECT_DOUBLE_EQ(type.prorated_upfront(kHoursPerYear), 0.0);
  EXPECT_NEAR(type.prorated_upfront(kHoursPerYear / 2), 753.0, 1e-9);
}

TEST(InstanceType, SaleIncomeMatchesT2NanoExample) {
  // Paper Section III-B: t2.nano, half cycle left, 20% off -> ask $7.2.
  const InstanceType t2{"t2.nano", 0.0059, 18.0, 0.002, kHoursPerYear};
  EXPECT_NEAR(t2.sale_income(kHoursPerYear / 2, 0.8), 7.2, 1e-9);
}

TEST(InstanceType, SaleIncomeZeroDiscountIsZero) {
  EXPECT_DOUBLE_EQ(d2_xlarge().sale_income(100, 0.0), 0.0);
}

TEST(InstanceType, ValidAcceptsGoodContract) {
  EXPECT_TRUE(d2_xlarge().valid());
}

TEST(InstanceType, ValidRejectsBadContracts) {
  InstanceType type = d2_xlarge();
  type.name = "";
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.on_demand_hourly = 0.0;
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.reserved_hourly = type.on_demand_hourly;  // no discount
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.upfront = -1.0;
  EXPECT_FALSE(type.valid());
  type = d2_xlarge();
  type.term = 0;
  EXPECT_FALSE(type.valid());
}

TEST(InstanceType, EqualityComparesAllFields) {
  EXPECT_EQ(d2_xlarge(), d2_xlarge());
  InstanceType other = d2_xlarge();
  other.upfront += 1.0;
  EXPECT_FALSE(other == d2_xlarge());
}

}  // namespace
}  // namespace rimarket::pricing
