#include "pricing/catalog.hpp"

#include <gtest/gtest.h>

namespace rimarket::pricing {
namespace {

TEST(Catalog, BuiltinIsValidAndNonTrivial) {
  const PricingCatalog& catalog = PricingCatalog::builtin();
  EXPECT_TRUE(catalog.valid());
  EXPECT_GE(catalog.size(), 20u);
}

TEST(Catalog, BuiltinContainsPaperInstance) {
  const auto d2 = PricingCatalog::builtin().find("d2.xlarge");
  ASSERT_TRUE(d2.has_value());
  EXPECT_DOUBLE_EQ(d2->upfront.value(), 1506.0);
  EXPECT_DOUBLE_EQ(d2->on_demand_hourly.value(), 0.69);
  EXPECT_NEAR(d2->alpha().value(), 0.25, 1e-9);
  EXPECT_EQ(d2->term, kHoursPerYear);
}

TEST(Catalog, FindMissingReturnsNullopt) {
  EXPECT_FALSE(PricingCatalog::builtin().find("z9.mega").has_value());
}

TEST(Catalog, RequireReturnsReference) {
  const InstanceType& type = PricingCatalog::builtin().require("m4.large");
  EXPECT_EQ(type.name, "m4.large");
}

TEST(Catalog, StatisticsMatchPaperAssumptions) {
  // The proofs rely on alpha < 0.36 and theta in (1, 4] for standard Linux
  // US-East 1-yr instances (paper Sections IV-C and V).
  const auto stats = PricingCatalog::builtin().statistics();
  EXPECT_GT(stats.min_alpha, 0.0);
  EXPECT_LT(stats.max_alpha, 0.36);
  EXPECT_GT(stats.min_theta, 1.0);
  EXPECT_LT(stats.max_theta, 4.05);
}

TEST(Catalog, EveryBuiltinTypeIsSelfConsistent) {
  for (const InstanceType& type : PricingCatalog::builtin().types()) {
    EXPECT_TRUE(type.valid()) << type.name;
    EXPECT_LT(type.alpha().value(), 1.0) << type.name;
    EXPECT_GT(type.alpha().value(), 0.0) << type.name;
  }
}

TEST(Catalog, FromCsvParsesWellFormedInput) {
  const auto catalog = PricingCatalog::from_csv(
      "name,on_demand,upfront,reserved\n"
      "x1.test,1.0,1000,0.3\n"
      "x2.test,2.0,2000,0.6,17520\n");
  ASSERT_TRUE(catalog.has_value());
  EXPECT_EQ(catalog->size(), 2u);
  EXPECT_EQ(catalog->require("x2.test").term, 17520);
  EXPECT_EQ(catalog->require("x1.test").term, kHoursPerYear);
}

TEST(Catalog, FromCsvRejectsMalformedRows) {
  EXPECT_FALSE(PricingCatalog::from_csv("name,od\nx,1\n").has_value());
  EXPECT_FALSE(PricingCatalog::from_csv(
                   "name,on_demand,upfront,reserved\nx,abc,1,0.1\n")
                   .has_value());
  // Reserved rate >= on-demand is not a valid contract.
  EXPECT_FALSE(PricingCatalog::from_csv(
                   "name,on_demand,upfront,reserved\nx,1.0,100,1.5\n")
                   .has_value());
}

TEST(Catalog, FromCsvRejectsDuplicateNames) {
  EXPECT_FALSE(PricingCatalog::from_csv(
                   "name,on_demand,upfront,reserved\n"
                   "dup,1.0,100,0.3\n"
                   "dup,2.0,200,0.5\n")
                   .has_value());
}

TEST(Catalog3Year, IsValidWithThreeYearTerms) {
  const PricingCatalog& catalog = PricingCatalog::builtin_3year();
  EXPECT_TRUE(catalog.valid());
  EXPECT_GE(catalog.size(), 8u);
  for (const InstanceType& type : catalog.types()) {
    EXPECT_EQ(type.term, 3 * kHoursPerYear) << type.name;
  }
}

TEST(Catalog3Year, DeeperDiscountsThanOneYear) {
  // The 3-year commitment buys a better hourly discount on every instance
  // present in both catalogs.
  for (const InstanceType& three_year : PricingCatalog::builtin_3year().types()) {
    const auto one_year = PricingCatalog::builtin().find(three_year.name);
    ASSERT_TRUE(one_year.has_value()) << three_year.name;
    EXPECT_LT(three_year.alpha().value(), one_year->alpha().value()) << three_year.name;
    EXPECT_GT(three_year.upfront.value(), one_year->upfront.value()) << three_year.name;
  }
}

TEST(Catalog3Year, ThetaCanExceedTheOneYearFamilyStatistic) {
  // The paper's theta in (1,4) holds for 1-yr standard instances; 3-yr
  // contracts break it (which the theory handles by using the instance's
  // own theta).
  const auto stats = PricingCatalog::builtin_3year().statistics();
  EXPECT_GT(stats.max_theta, 4.0);
  EXPECT_GT(stats.min_theta, 1.0);
}

TEST(Catalog, PaymentQuotesMatchTableI) {
  const auto quotes = d2_xlarge_payment_quotes();
  ASSERT_EQ(quotes.size(), 4u);
  EXPECT_DOUBLE_EQ(quotes[0].monthly.value(), 293.46);
  EXPECT_DOUBLE_EQ(quotes[1].upfront.value(), 1506.0);
  EXPECT_DOUBLE_EQ(quotes[2].upfront.value(), 2952.0);
  EXPECT_DOUBLE_EQ(quotes[3].hourly.value(), 0.69);
}

}  // namespace
}  // namespace rimarket::pricing
