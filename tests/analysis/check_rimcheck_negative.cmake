# Negative-mutation gate for rimcheck (ctest: staticcheck.negative_mutation).
#
# A static analyzer that never fails is indistinguishable from one that
# never runs.  This script copies the analyzed tree to a scratch dir,
# verifies the copy scans clean, then applies two single-line mutations
# that must each flip the scan to failing:
#
#   A. delete the RIMARKET_INJECT(kSiteEvaluateUser) call site in
#      src/sim/runner.cpp — the site stays wired in batch_engine.cpp, so
#      only the (site, file) manifest audit can catch the deletion;
#   B. rename the checkpoint record tag "E" in load_checkpoint's parser
#      dispatch — the writer still emits "E", so the tag-set audit must
#      report the mismatch in both directions.
#
# Usage: cmake -DRIMCHECK=<exe> -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch>
#              -P check_rimcheck_negative.cmake

foreach(var RIMCHECK SOURCE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
foreach(dir src tests bench examples)
  file(COPY "${SOURCE_DIR}/${dir}" DESTINATION "${WORK_DIR}")
endforeach()
foreach(doc DESIGN.md EXPERIMENTS.md)
  file(COPY "${SOURCE_DIR}/${doc}" DESTINATION "${WORK_DIR}")
endforeach()
file(COPY "${SOURCE_DIR}/tools/rimcheck/rimcheck.baseline"
          "${SOURCE_DIR}/tools/rimcheck/fault_sites.manifest"
     DESTINATION "${WORK_DIR}/tools/rimcheck")

function(run_rimcheck expect_failure label)
  execute_process(
    COMMAND "${RIMCHECK}" --root "${WORK_DIR}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(expect_failure AND result EQUAL 0)
    message(FATAL_ERROR "${label}: scan PASSED but the mutation should have "
                        "failed it — the audit has lost its teeth\n${output}")
  endif()
  if(NOT expect_failure AND NOT result EQUAL 0)
    message(FATAL_ERROR "${label}: pristine copy does not scan clean "
                        "(exit ${result}):\n${output}")
  endif()
  message(STATUS "${label}: ok (exit ${result})")
endfunction()

# Pristine copy must be clean, or the mutations below prove nothing.
run_rimcheck(FALSE "baseline scan")

# Mutation A: delete one call site of a doubly-wired fault site.
set(runner "${WORK_DIR}/src/sim/runner.cpp")
file(READ "${runner}" pristine_runner)
string(REGEX REPLACE
  "[^\n]*RIMARKET_INJECT\\(common::fault_injection::kSiteEvaluateUser\\);[^\n]*\n" ""
  mutated "${pristine_runner}")
if(mutated STREQUAL pristine_runner)
  message(FATAL_ERROR "mutation A: kSiteEvaluateUser call site not found in "
                      "src/sim/runner.cpp; update this script's pattern")
endif()
file(WRITE "${runner}" "${mutated}")
run_rimcheck(TRUE "mutation A (deleted inject call site)")
file(WRITE "${runner}" "${pristine_runner}")

# Mutation B: rename a checkpoint record tag on the parser side.
set(engine "${WORK_DIR}/src/sim/batch_engine.cpp")
file(READ "${engine}" pristine_engine)
string(REPLACE "tokens[0] == \"E\"" "tokens[0] == \"X\"" mutated "${pristine_engine}")
if(mutated STREQUAL pristine_engine)
  message(FATAL_ERROR "mutation B: tokens[0] == \"E\" not found in "
                      "src/sim/batch_engine.cpp; update this script's pattern")
endif()
file(WRITE "${engine}" "${mutated}")
run_rimcheck(TRUE "mutation B (renamed checkpoint tag)")

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "rimcheck negative-mutation gate passed")
