# Negative-mutation gate for rimcheck (ctest: staticcheck.negative_mutation).
#
# A static analyzer that never fails is indistinguishable from one that
# never runs.  This script copies the analyzed tree to a scratch dir,
# verifies the copy scans clean, then applies two single-line mutations
# that must each flip the scan to failing:
#
#   A. delete the RIMARKET_INJECT(kSiteEvaluateUser) call site in
#      src/sim/runner.cpp — the site stays wired in batch_engine.cpp, so
#      only the (site, file) manifest audit can catch the deletion;
#   B. rename the checkpoint record tag "E" in load_checkpoint's parser
#      dispatch — the writer still emits "E", so the tag-set audit must
#      report the mismatch in both directions.
#
# Two further mutations gate the whole-program rimgraph stage (--graph):
#
#   C. append two functions that acquire the same pair of mutexes in
#      opposite orders — graph.lock-order-cycle must report the cycle;
#   D. append a function that throws while holding a MutexLock —
#      graph.throw-under-lock must report the path.
#
# One more gates the atomic-write-discipline family:
#
#   E. append a function that publishes a state file with a raw
#      std::rename — state.atomic-write-discipline must flag it (only
#      common/durable_file.cpp may touch the raw primitive).
#
# Usage: cmake -DRIMCHECK=<exe> -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch>
#              -P check_rimcheck_negative.cmake

foreach(var RIMCHECK SOURCE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
foreach(dir src tests bench examples)
  file(COPY "${SOURCE_DIR}/${dir}" DESTINATION "${WORK_DIR}")
endforeach()
foreach(doc DESIGN.md EXPERIMENTS.md)
  file(COPY "${SOURCE_DIR}/${doc}" DESTINATION "${WORK_DIR}")
endforeach()
file(COPY "${SOURCE_DIR}/tools/rimcheck/rimcheck.baseline"
          "${SOURCE_DIR}/tools/rimcheck/fault_sites.manifest"
     DESTINATION "${WORK_DIR}/tools/rimcheck")

function(run_rimcheck expect_failure label)
  execute_process(
    COMMAND "${RIMCHECK}" --root "${WORK_DIR}" ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(expect_failure AND result EQUAL 0)
    message(FATAL_ERROR "${label}: scan PASSED but the mutation should have "
                        "failed it — the audit has lost its teeth\n${output}")
  endif()
  if(NOT expect_failure AND NOT result EQUAL 0)
    message(FATAL_ERROR "${label}: pristine copy does not scan clean "
                        "(exit ${result}):\n${output}")
  endif()
  message(STATUS "${label}: ok (exit ${result})")
endfunction()

# Pristine copy must be clean, or the mutations below prove nothing.
run_rimcheck(FALSE "baseline scan")
run_rimcheck(FALSE "baseline graph scan" --graph)

# Mutation A: delete one call site of a doubly-wired fault site.
set(runner "${WORK_DIR}/src/sim/runner.cpp")
file(READ "${runner}" pristine_runner)
string(REGEX REPLACE
  "[^\n]*RIMARKET_INJECT\\(common::fault_injection::kSiteEvaluateUser\\);[^\n]*\n" ""
  mutated "${pristine_runner}")
if(mutated STREQUAL pristine_runner)
  message(FATAL_ERROR "mutation A: kSiteEvaluateUser call site not found in "
                      "src/sim/runner.cpp; update this script's pattern")
endif()
file(WRITE "${runner}" "${mutated}")
run_rimcheck(TRUE "mutation A (deleted inject call site)")
file(WRITE "${runner}" "${pristine_runner}")

# Mutation B: rename a checkpoint record tag on the parser side.
set(engine "${WORK_DIR}/src/sim/batch_engine.cpp")
file(READ "${engine}" pristine_engine)
string(REPLACE "tokens[0] == \"E\"" "tokens[0] == \"X\"" mutated "${pristine_engine}")
if(mutated STREQUAL pristine_engine)
  message(FATAL_ERROR "mutation B: tokens[0] == \"E\" not found in "
                      "src/sim/batch_engine.cpp; update this script's pattern")
endif()
file(WRITE "${engine}" "${mutated}")
run_rimcheck(TRUE "mutation B (renamed checkpoint tag)")
file(WRITE "${engine}" "${pristine_engine}")

# Mutation C: a seeded lock-order inversion.  Both functions spell the same
# two mutexes through the same parameter, so rimgraph unifies the keys and
# must see the A->B / B->A cycle.  --rule keeps the gate focused: the
# snippet's unannotated members would otherwise trip lock.no-guarded-state
# and mask a broken cycle detector.
set(service "${WORK_DIR}/src/serve/service.cpp")
file(READ "${service}" pristine_service)
file(WRITE "${service}" "${pristine_service}
namespace rimgraph_mutation {
struct Pair {
  rimarket::common::Mutex first_;
  rimarket::common::Mutex second_;
};
void probe_forward(Pair& p) {
  const rimarket::common::MutexLock hold_first(p.first_);
  const rimarket::common::MutexLock hold_second(p.second_);
}
void probe_backward(Pair& p) {
  const rimarket::common::MutexLock hold_second(p.second_);
  const rimarket::common::MutexLock hold_first(p.first_);
}
}  // namespace rimgraph_mutation
")
run_rimcheck(TRUE "mutation C (seeded lock-order inversion)"
             --graph --rule graph.lock-order-cycle)
file(WRITE "${service}" "${pristine_service}")

# Mutation D: a seeded throw while a MutexLock is held.
file(WRITE "${service}" "${pristine_service}
namespace rimgraph_mutation {
struct Box {
  rimarket::common::Mutex mu_;
};
void probe_throw(Box& b) {
  const rimarket::common::MutexLock hold(b.mu_);
  throw 1;
}
}  // namespace rimgraph_mutation
")
run_rimcheck(TRUE "mutation D (seeded throw under lock)"
             --graph --rule graph.throw-under-lock)
file(WRITE "${service}" "${pristine_service}")

# Mutation E: a seeded raw std::rename state publish outside
# common/durable_file.cpp.  --rule keeps the gate on the discipline family.
file(WRITE "${service}" "${pristine_service}
namespace state_mutation {
bool probe_publish(const std::string& path) {
  return std::rename((path + \".tmp\").c_str(), path.c_str()) == 0;
}
}  // namespace state_mutation
")
run_rimcheck(TRUE "mutation E (raw std::rename state publish)"
             --rule state.)

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "rimcheck negative-mutation gate passed")
