#include "analysis/summary.hpp"

#include <gtest/gtest.h>

namespace rimarket::analysis {
namespace {

TEST(SavingsSummary, EmptySample) {
  const SavingsSummary summary = summarize_ratios({});
  EXPECT_EQ(summary.users, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_ratio, 0.0);
}

TEST(SavingsSummary, HeadlineFractions) {
  const std::vector<double> ratios{0.5, 0.65, 0.75, 0.9, 1.0, 1.1};
  const SavingsSummary summary = summarize_ratios(ratios);
  EXPECT_EQ(summary.users, 6u);
  EXPECT_NEAR(summary.fraction_saving, 4.0 / 6.0, 1e-12);     // ratio < 1
  EXPECT_NEAR(summary.fraction_saving_20, 3.0 / 6.0, 1e-12);  // ratio < 0.8
  EXPECT_NEAR(summary.fraction_saving_30, 2.0 / 6.0, 1e-12);  // ratio < 0.7
  EXPECT_NEAR(summary.fraction_worse, 1.0 / 6.0, 1e-12);      // ratio > 1
  EXPECT_DOUBLE_EQ(summary.max_ratio, 1.1);
  EXPECT_DOUBLE_EQ(summary.min_ratio, 0.5);
  EXPECT_NEAR(summary.mean_ratio, (0.5 + 0.65 + 0.75 + 0.9 + 1.0 + 1.1) / 6.0, 1e-12);
}

TEST(SavingsSummary, ExactlyOneIsNeitherSavingNorWorse) {
  const std::vector<double> ratios{1.0, 1.0};
  const SavingsSummary summary = summarize_ratios(ratios);
  EXPECT_DOUBLE_EQ(summary.fraction_saving, 0.0);
  EXPECT_DOUBLE_EQ(summary.fraction_worse, 0.0);
}

namespace helpers {

NormalizedResult entry(int user, workload::FluctuationGroup group, sim::SellerKind seller,
                       double ratio) {
  NormalizedResult result;
  result.user_id = user;
  result.group = group;
  result.purchaser = purchasing::PurchaserKind::kAllReserved;
  result.seller = sim::SellerSpec{seller, Fraction{0.75}};
  result.ratio = ratio;
  result.keep_cost = Money{1.0};
  result.net_cost = Money{ratio};
  return result;
}

}  // namespace helpers

TEST(GroupAverage, PerGroupMeans) {
  using helpers::entry;
  const std::vector<NormalizedResult> normalized{
      entry(0, workload::FluctuationGroup::kStable, sim::SellerKind::kA3T4, 0.8),
      entry(1, workload::FluctuationGroup::kStable, sim::SellerKind::kA3T4, 1.0),
      entry(2, workload::FluctuationGroup::kHigh, sim::SellerKind::kA3T4, 0.5),
  };
  EXPECT_NEAR(group_average(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}},
                            workload::FluctuationGroup::kStable),
              0.9, 1e-12);
  EXPECT_NEAR(group_average(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}},
                            workload::FluctuationGroup::kHigh),
              0.5, 1e-12);
  EXPECT_NEAR(overall_average(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}}),
              (0.8 + 1.0 + 0.5) / 3.0, 1e-12);
}

TEST(RatioCdf, BuildsPerUserCdf) {
  using helpers::entry;
  const std::vector<NormalizedResult> normalized{
      entry(0, workload::FluctuationGroup::kStable, sim::SellerKind::kAT2, 0.6),
      entry(1, workload::FluctuationGroup::kStable, sim::SellerKind::kAT2, 0.8),
      entry(2, workload::FluctuationGroup::kStable, sim::SellerKind::kAT2, 1.2),
  };
  const common::EmpiricalCdf cdf = ratio_cdf(normalized, {sim::SellerKind::kAT2, Fraction{0.5}});
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_NEAR(cdf.at(1.0), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace rimarket::analysis
