#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace rimarket::analysis {
namespace {

sim::ScenarioResult sample_scenario() {
  sim::ScenarioResult result;
  result.user_id = 7;
  result.group = workload::FluctuationGroup::kModerate;
  result.purchaser = purchasing::PurchaserKind::kWangOnline;
  result.seller = sim::SellerSpec{sim::SellerKind::kA3T4, Fraction{0.75}};
  result.net_cost = Money{1234.5678};
  result.reservations_made = 9;
  result.instances_sold = 4;
  result.on_demand_hours = 321;
  return result;
}

TEST(Export, ScenariosCsvHasHeaderAndRow) {
  const std::vector<sim::ScenarioResult> results{sample_scenario()};
  const std::string csv = scenarios_to_csv(results);
  EXPECT_NE(csv.find("user,group,purchaser,seller"), std::string::npos);
  EXPECT_NE(csv.find("7,1,wang,a3t4,0.7500,1234.567800,9,4,321"), std::string::npos);
}

TEST(Export, ScenariosRoundTrip) {
  std::vector<sim::ScenarioResult> results;
  for (const auto seller :
       {sim::SellerKind::kKeepReserved, sim::SellerKind::kAllSelling, sim::SellerKind::kA3T4,
        sim::SellerKind::kAT2, sim::SellerKind::kAT4, sim::SellerKind::kRandomizedSpot,
        sim::SellerKind::kContinuousSpot, sim::SellerKind::kOfflineOptimal}) {
    sim::ScenarioResult result = sample_scenario();
    result.seller.kind = seller;
    result.user_id = static_cast<int>(results.size());
    results.push_back(result);
  }
  const auto parsed = scenarios_from_csv(scenarios_to_csv(results));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ((*parsed)[i].user_id, results[i].user_id);
    EXPECT_EQ((*parsed)[i].seller.kind, results[i].seller.kind);
    EXPECT_EQ((*parsed)[i].purchaser, results[i].purchaser);
    EXPECT_NEAR((*parsed)[i].net_cost.value(), results[i].net_cost.value(), 1e-4);
    EXPECT_EQ((*parsed)[i].instances_sold, results[i].instances_sold);
  }
}

TEST(Export, ScenariosFromCsvRejectsMalformed) {
  EXPECT_FALSE(scenarios_from_csv("bogus\n1,2\n").has_value());
  EXPECT_FALSE(scenarios_from_csv(
                   "user,group,purchaser,seller,fraction,net_cost,reservations,sold,"
                   "on_demand_hours\n1,9,wang,a3t4,0.75,1,1,1,1\n")  // group out of range
                   .has_value());
  EXPECT_FALSE(scenarios_from_csv(
                   "user,group,purchaser,seller,fraction,net_cost,reservations,sold,"
                   "on_demand_hours\n1,1,nosuch,a3t4,0.75,1,1,1,1\n")
                   .has_value());
}

TEST(Export, NormalizedCsv) {
  NormalizedResult entry;
  entry.user_id = 3;
  entry.group = workload::FluctuationGroup::kHigh;
  entry.purchaser = purchasing::PurchaserKind::kAllReserved;
  entry.seller = sim::SellerSpec{sim::SellerKind::kAT4, Fraction{0.25}};
  entry.net_cost = Money{80.0};
  entry.keep_cost = Money{100.0};
  entry.ratio = 0.8;
  const std::vector<NormalizedResult> normalized{entry};
  const std::string csv = normalized_to_csv(normalized);
  EXPECT_NE(csv.find("3,2,all_reserved,at4,0.2500,80.000000,100.000000,0.800000"),
            std::string::npos);
}

TEST(Export, CdfCsvIsMonotone) {
  const std::vector<double> sample{0.7, 0.8, 0.9, 1.0, 1.1};
  const common::EmpiricalCdf cdf(sample);
  const std::string csv = cdf_to_csv(cdf, 8);
  const auto parsed = common::parse_csv(csv, /*expect_header=*/true);
  ASSERT_EQ(parsed.rows.size(), 8u);
  double last_probability = -1.0;
  for (const auto& row : parsed.rows) {
    const double probability = *common::parse_double(row[1]);
    EXPECT_GE(probability, last_probability);
    last_probability = probability;
  }
  EXPECT_DOUBLE_EQ(last_probability, 1.0);
}

}  // namespace
}  // namespace rimarket::analysis
