#include "analysis/normalize.hpp"

#include <gtest/gtest.h>

namespace rimarket::analysis {
namespace {

sim::ScenarioResult scenario(int user, workload::FluctuationGroup group,
                             purchasing::PurchaserKind purchaser, sim::SellerKind seller,
                             double cost) {
  sim::ScenarioResult result;
  result.user_id = user;
  result.group = group;
  result.purchaser = purchaser;
  result.seller = sim::SellerSpec{seller, Fraction{0.75}};
  result.net_cost = Money{cost};
  return result;
}

std::vector<sim::ScenarioResult> sample_results() {
  using workload::FluctuationGroup;
  using purchasing::PurchaserKind;
  using sim::SellerKind;
  return {
      scenario(0, FluctuationGroup::kStable, PurchaserKind::kAllReserved,
               SellerKind::kKeepReserved, 100.0),
      scenario(0, FluctuationGroup::kStable, PurchaserKind::kAllReserved, SellerKind::kA3T4,
               90.0),
      scenario(0, FluctuationGroup::kStable, PurchaserKind::kAllReserved, SellerKind::kAT2,
               120.0),
      scenario(0, FluctuationGroup::kStable, PurchaserKind::kWangOnline,
               SellerKind::kKeepReserved, 200.0),
      scenario(0, FluctuationGroup::kStable, PurchaserKind::kWangOnline, SellerKind::kA3T4,
               150.0),
      scenario(1, FluctuationGroup::kHigh, PurchaserKind::kAllReserved,
               SellerKind::kKeepReserved, 50.0),
      scenario(1, FluctuationGroup::kHigh, PurchaserKind::kAllReserved, SellerKind::kA3T4,
               25.0),
  };
}

TEST(Normalize, RatiosAgainstMatchingBaseline) {
  const auto normalized = normalize_to_keep(sample_results());
  // 4 non-keep scenarios.
  ASSERT_EQ(normalized.size(), 4u);
  EXPECT_DOUBLE_EQ(normalized[0].ratio, 0.9);   // 90/100
  EXPECT_DOUBLE_EQ(normalized[1].ratio, 1.2);   // 120/100
  EXPECT_DOUBLE_EQ(normalized[2].ratio, 0.75);  // 150/200
  EXPECT_DOUBLE_EQ(normalized[3].ratio, 0.5);   // 25/50
}

TEST(Normalize, KeepsJoinKeys) {
  const auto normalized = normalize_to_keep(sample_results());
  EXPECT_EQ(normalized[2].purchaser, purchasing::PurchaserKind::kWangOnline);
  EXPECT_EQ(normalized[3].user_id, 1);
  EXPECT_EQ(normalized[3].group, workload::FluctuationGroup::kHigh);
  EXPECT_DOUBLE_EQ(normalized[3].keep_cost.value(), 50.0);
  EXPECT_DOUBLE_EQ(normalized[3].net_cost.value(), 25.0);
}

TEST(Normalize, DropsScenariosWithNonpositiveBaseline) {
  auto results = sample_results();
  results.push_back(scenario(2, workload::FluctuationGroup::kStable,
                             purchasing::PurchaserKind::kAllReserved,
                             sim::SellerKind::kKeepReserved, 0.0));
  results.push_back(scenario(2, workload::FluctuationGroup::kStable,
                             purchasing::PurchaserKind::kAllReserved, sim::SellerKind::kA3T4,
                             0.0));
  const auto normalized = normalize_to_keep(results);
  for (const auto& entry : normalized) {
    EXPECT_NE(entry.user_id, 2);
  }
}

TEST(SelectSeller, FiltersByKind) {
  const auto normalized = normalize_to_keep(sample_results());
  const auto a34 = select_seller(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}});
  EXPECT_EQ(a34.size(), 3u);
  const auto at2 = select_seller(normalized, {sim::SellerKind::kAT2, Fraction{0.50}});
  EXPECT_EQ(at2.size(), 1u);
}

TEST(SelectSeller, AllSellingComparesFraction) {
  std::vector<sim::ScenarioResult> results = {
      scenario(0, workload::FluctuationGroup::kStable,
               purchasing::PurchaserKind::kAllReserved, sim::SellerKind::kKeepReserved, 10.0),
  };
  sim::ScenarioResult all_75 = scenario(0, workload::FluctuationGroup::kStable,
                                        purchasing::PurchaserKind::kAllReserved,
                                        sim::SellerKind::kAllSelling, 9.0);
  all_75.seller.fraction = Fraction{0.75};
  sim::ScenarioResult all_25 = all_75;
  all_25.seller.fraction = Fraction{0.25};
  results.push_back(all_75);
  results.push_back(all_25);
  const auto normalized = normalize_to_keep(results);
  EXPECT_EQ(select_seller(normalized, {sim::SellerKind::kAllSelling, Fraction{0.75}}).size(), 1u);
  EXPECT_EQ(select_seller(normalized, {sim::SellerKind::kAllSelling, Fraction{0.25}}).size(), 1u);
}

TEST(SelectGroup, FiltersByGroup) {
  const auto normalized = normalize_to_keep(sample_results());
  EXPECT_EQ(select_group(normalized, workload::FluctuationGroup::kHigh).size(), 1u);
  EXPECT_EQ(select_group(normalized, workload::FluctuationGroup::kStable).size(), 3u);
  EXPECT_TRUE(select_group(normalized, workload::FluctuationGroup::kModerate).empty());
}

TEST(Ratios, ExtractsColumn) {
  const auto normalized = normalize_to_keep(sample_results());
  const auto column = ratios(normalized);
  ASSERT_EQ(column.size(), normalized.size());
  EXPECT_DOUBLE_EQ(column[0], 0.9);
}

TEST(PerUserRatios, AveragesAcrossPurchasers) {
  const auto normalized = normalize_to_keep(sample_results());
  const auto per_user = per_user_ratios(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}});
  // User 0: (0.9 + 0.75)/2; user 1: 0.5.
  ASSERT_EQ(per_user.size(), 2u);
  EXPECT_NEAR(per_user[0], 0.825, 1e-12);
  EXPECT_NEAR(per_user[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace rimarket::analysis
