#include "analysis/reports.hpp"

#include <gtest/gtest.h>

namespace rimarket::analysis {
namespace {

TEST(Reports, Table1ContainsPaperRows) {
  const std::string table = render_table1();
  EXPECT_NE(table.find("No Upfront"), std::string::npos);
  EXPECT_NE(table.find("Partial Upfront"), std::string::npos);
  EXPECT_NE(table.find("All Upfront"), std::string::npos);
  EXPECT_NE(table.find("On-Demand"), std::string::npos);
  EXPECT_NE(table.find("$1506"), std::string::npos);
  EXPECT_NE(table.find("$2952"), std::string::npos);
  EXPECT_NE(table.find("293.46"), std::string::npos);
  EXPECT_NE(table.find("0.69"), std::string::npos);
}

TEST(Reports, Fig2ListsAllThreeGroups) {
  workload::PopulationSpec spec;
  spec.users_per_group = 4;
  spec.trace_hours = 3000;
  const auto population = workload::UserPopulation::build(spec);
  const std::string figure = render_fig2(population);
  EXPECT_NE(figure.find("group 1"), std::string::npos);
  EXPECT_NE(figure.find("group 2"), std::string::npos);
  EXPECT_NE(figure.find("group 3"), std::string::npos);
  EXPECT_NE(figure.find("sigma/mu"), std::string::npos);
}

namespace helpers {

NormalizedResult entry(int user, workload::FluctuationGroup group, sim::SellerSpec seller,
                       double ratio) {
  NormalizedResult result;
  result.user_id = user;
  result.group = group;
  result.purchaser = purchasing::PurchaserKind::kAllReserved;
  result.seller = seller;
  result.ratio = ratio;
  result.keep_cost = Money{100.0};
  result.net_cost = Money{100.0 * ratio};
  return result;
}

std::vector<NormalizedResult> full_grid() {
  std::vector<NormalizedResult> normalized;
  const sim::SellerSpec sellers[] = {
      {sim::SellerKind::kA3T4, Fraction{0.75}},
      {sim::SellerKind::kAT2, Fraction{0.50}},
      {sim::SellerKind::kAT4, Fraction{0.25}},
      {sim::SellerKind::kAllSelling, Fraction{0.75}},
  };
  int user = 0;
  for (const auto group :
       {workload::FluctuationGroup::kStable, workload::FluctuationGroup::kModerate,
        workload::FluctuationGroup::kHigh}) {
    for (int i = 0; i < 3; ++i, ++user) {
      double ratio = 0.7 + 0.1 * i;
      for (const auto& seller : sellers) {
        normalized.push_back(entry(user, group, seller, ratio));
        ratio += 0.02;
      }
    }
  }
  return normalized;
}

}  // namespace helpers

TEST(Reports, Fig3PanelShowsAlgorithmAndBaseline) {
  const auto normalized = helpers::full_grid();
  const std::string panel = render_fig3_panel(normalized, {sim::SellerKind::kA3T4, Fraction{0.75}},
                                              {sim::SellerKind::kAllSelling, Fraction{0.75}});
  EXPECT_NE(panel.find("A_{3T/4}"), std::string::npos);
  EXPECT_NE(panel.find("all-selling@0.75T"), std::string::npos);
  EXPECT_NE(panel.find("%saving"), std::string::npos);
  EXPECT_NE(panel.find("CDF"), std::string::npos);
}

TEST(Reports, Fig4PanelScopesToGroup) {
  const auto normalized = helpers::full_grid();
  const std::string panel =
      render_fig4_panel(normalized, workload::FluctuationGroup::kModerate);
  EXPECT_NE(panel.find("group 2"), std::string::npos);
  EXPECT_NE(panel.find("A_{3T/4}"), std::string::npos);
  EXPECT_NE(panel.find("A_{T/2}"), std::string::npos);
  EXPECT_NE(panel.find("A_{T/4}"), std::string::npos);
}

TEST(Reports, Table2ShowsAllFourColumns) {
  std::vector<sim::ScenarioResult> results;
  for (const auto kind : {sim::SellerKind::kA3T4, sim::SellerKind::kAT2,
                          sim::SellerKind::kAT4, sim::SellerKind::kKeepReserved}) {
    sim::ScenarioResult result;
    result.user_id = 42;
    result.seller = sim::SellerSpec{kind, Fraction{0.75}};
    result.net_cost = Money{9.4e4};
    results.push_back(result);
  }
  const std::string table = render_table2(results, 42);
  EXPECT_NE(table.find("A_{3T/4}"), std::string::npos);
  EXPECT_NE(table.find("Keep-Reserved"), std::string::npos);
  EXPECT_NE(table.find("9.40e+04"), std::string::npos);
}

TEST(Reports, Table3HasGroupsAndOverall) {
  const auto normalized = helpers::full_grid();
  const std::string table = render_table3(normalized);
  EXPECT_NE(table.find("Group 1"), std::string::npos);
  EXPECT_NE(table.find("Group 3"), std::string::npos);
  EXPECT_NE(table.find("All users"), std::string::npos);
  EXPECT_NE(table.find("A_{T/4}"), std::string::npos);
}

TEST(Reports, BoundsTableShowsVerdicts) {
  theory::VerificationResult result;
  result.fraction = 0.75;
  result.alpha = 0.25;
  result.selling_discount = 0.8;
  result.theta = 4.01;
  result.max_ratio = 1.44;
  result.bound = 1.55;
  result.worst_schedule = "case1(eps=1.000)";
  const std::vector<theory::VerificationResult> results{result};
  const std::string table = render_bounds(results);
  EXPECT_NE(table.find("yes"), std::string::npos);
  EXPECT_NE(table.find("case1"), std::string::npos);
  EXPECT_NE(table.find("1.5500"), std::string::npos);
}

}  // namespace
}  // namespace rimarket::analysis
