# Negative-compilation driver for the strong unit types.
#
# Invoked by ctest (test `units.no_dimension_mixing`) as
#   cmake -DCOMPILER=<c++> -DSOURCE_DIR=<repo> -P check_no_compile.cmake
#
# Compiles tests/units_negative/dimension_mixing.cpp once per case with
# -fsyntax-only: the CONTROL case must succeed (proving the harness and the
# include paths work) and every dimension-mixing case must fail.
if(NOT COMPILER OR NOT SOURCE_DIR)
  message(FATAL_ERROR "usage: cmake -DCOMPILER=<c++> -DSOURCE_DIR=<repo root> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(fixture "${SOURCE_DIR}/tests/units_negative/dimension_mixing.cpp")

set(must_fail_cases
  CASE_MONEY_PLUS_HOURS
  CASE_MONEY_TIMES_MONEY
  CASE_MONEY_PLUS_DOUBLE
  CASE_RATE_PLUS_MONEY
  CASE_FRACTION_PLUS_FRACTION
  CASE_IMPLICIT_FROM_DOUBLE
  CASE_IMPLICIT_TO_DOUBLE
  CASE_CONSTEXPR_FRACTION_OUT_OF_RANGE)

function(compile_case case_macro out_result)
  execute_process(
    COMMAND "${COMPILER}" -std=c++20 -fsyntax-only
            "-I${SOURCE_DIR}/src" "-D${case_macro}" "${fixture}"
    RESULT_VARIABLE result
    OUTPUT_QUIET ERROR_QUIET)
  set(${out_result} "${result}" PARENT_SCOPE)
endfunction()

compile_case(CASE_CONTROL control_result)
if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
    "control case failed to compile — the harness is broken (wrong compiler "
    "or include path), so the negative results below would be meaningless")
endif()
message(STATUS "CASE_CONTROL: compiles (harness sane)")

set(leaks "")
foreach(case_macro IN LISTS must_fail_cases)
  compile_case(${case_macro} result)
  if(result EQUAL 0)
    list(APPEND leaks ${case_macro})
    message(STATUS "${case_macro}: COMPILED — dimension leak!")
  else()
    message(STATUS "${case_macro}: rejected (good)")
  endif()
endforeach()

if(leaks)
  message(FATAL_ERROR "dimension-mixing expressions compiled: ${leaks}")
endif()
list(LENGTH must_fail_cases n)
message(STATUS "all ${n} dimension-mixing cases rejected")
