// Negative-compilation fixture for the strong unit types (common/units.hpp).
//
// Driven by tests/units_negative/check_no_compile.cmake: the file is
// compiled once per CASE_* macro with -fsyntax-only.  CASE_CONTROL must
// compile (it proves the harness sees a working translation unit and the
// right include paths); every other case mixes dimensions and MUST fail —
// a case that starts compiling means the unit algebra sprang a leak.
#include "common/units.hpp"

namespace rimarket {

#if defined(CASE_CONTROL)
// Valid algebra: compiles.  Exercises the whole Eq. (1) shape.
constexpr Money valid = Rate{1.0} * Hours{2.0} + Money{20.0} * Fraction{0.5} -
                        Fraction{0.8} * (Fraction{0.5} * Money{20.0});
static_assert(valid.value() == 2.0 + 10.0 - 8.0);
#elif defined(CASE_MONEY_PLUS_HOURS)
// Dollars plus a duration has no dimension.
constexpr auto bad = Money{1.0} + Hours{1.0};
#elif defined(CASE_MONEY_TIMES_MONEY)
// Square dollars do not exist in Eq. (1).
constexpr auto bad = Money{2.0} * Money{3.0};
#elif defined(CASE_MONEY_PLUS_DOUBLE)
// A raw literal cannot sneak into a monetary sum unlabeled.
constexpr auto bad = Money{1.0} + 1.0;
#elif defined(CASE_RATE_PLUS_MONEY)
// $/h plus $ mixes dimensions.
constexpr auto bad = Rate{1.0} + Money{1.0};
#elif defined(CASE_FRACTION_PLUS_FRACTION)
// Sums of [0,1] values may leave [0,1]; Fraction deliberately has no +.
constexpr auto bad = Fraction{0.5} + Fraction{0.6};
#elif defined(CASE_IMPLICIT_FROM_DOUBLE)
// Constructors are explicit: no silent promotion of a raw double.
constexpr Money bad = 1.0;
#elif defined(CASE_IMPLICIT_TO_DOUBLE)
// No silent escape either: leaving the algebra requires .value().
constexpr double bad = Money{1.0};
#elif defined(CASE_CONSTEXPR_FRACTION_OUT_OF_RANGE)
// The [0,1] contract is not a constant expression when violated, so an
// out-of-range constexpr Fraction is a compile error, not a runtime abort.
constexpr Fraction bad{1.2};
#else
#error "define exactly one CASE_* macro (see check_no_compile.cmake)"
#endif

}  // namespace rimarket
