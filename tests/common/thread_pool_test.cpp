#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace rimarket::common {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  // Rendezvous: two tasks that can each only finish once the other has
  // started — deadlocks unless the pool really runs them concurrently.
  std::mutex mutex;
  std::condition_variable both_started;
  int started = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++started;
    both_started.notify_all();
    both_started.wait(lock, [&] { return started >= 2; });
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.wait_idle();
  EXPECT_EQ(started, 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

// --- exception safety ------------------------------------------------------

TEST(ThreadPool, ThrowingTaskNeitherDeadlocksNorTerminates) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  // Regression: before the exception-safe rewrite this wait_idle() hung
  // forever (the in-flight count was never decremented) or the process
  // terminated on the escaped exception.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleRethrowsWithMessage) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("bad trace in user 7"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow the task's exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "bad trace in user 7");
  }
}

TEST(ThreadPool, PoolIsReusableAfterError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first wave fails"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error latch must reset: the next wave runs normally.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, FailureCancelsQueuedTasks) {
  // One worker makes the schedule deterministic: the throwing task runs
  // first, so everything behind it in the queue must be cancelled.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 0);
  const ThreadPoolMetrics metrics = pool.metrics();
  EXPECT_EQ(metrics.tasks_failed, 1u);
  EXPECT_EQ(metrics.tasks_cancelled, 10u);
}

TEST(ThreadPool, FirstOfManyErrorsIsReported) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");  // the second task was cancelled
  }
}

TEST(ThreadPool, ConcurrentErrorsAreCountedAndMentionedInMessage) {
  ThreadPool pool(2);
  // Rendezvous before throwing: both tasks are already running when they
  // fail, so cancellation cannot save the second one — it must be recorded
  // as suppressed, not silently dropped.
  std::atomic<int> arrived{0};
  auto failing = [&arrived] {
    arrived.fetch_add(1);
    while (arrived.load() < 2) {
      std::this_thread::yield();
    }
    throw std::runtime_error("concurrent boom");
  };
  pool.submit(failing);
  pool.submit(failing);
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("concurrent boom"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("[1 more task error(s) suppressed]"),
              std::string::npos);
  }
  EXPECT_EQ(pool.metrics().errors_suppressed, 1u);
  MetricsRegistry registry;
  pool.export_metrics(registry, "test.pool");
  EXPECT_EQ(registry.get("test.pool.errors_suppressed"), 1.0);
}

TEST(ThreadPool, SingleErrorMessageStaysUnwrapped) {
  // The suppression suffix must only appear when something was actually
  // suppressed; a lone failure keeps its exact message and type.
  ThreadPool pool(2);
  pool.submit([] { throw std::out_of_range("lone failure"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow";
  } catch (const std::out_of_range& error) {
    EXPECT_STREQ(error.what(), "lone failure");
  }
  EXPECT_EQ(pool.metrics().errors_suppressed, 0u);
}

TEST(ThreadPool, CancelDropsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  // Block the single worker so the queue is under our control.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool started = false;
  bool open = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    started = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return open; });
  });
  {
    // The gate task must be *running* (not queued) before we cancel, or it
    // would be dropped too and the cancelled count below would read 6.
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return started; });
  }
  for (int i = 0; i < 5; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.cancel();
  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    open = true;
  }
  gate_cv.notify_all();
  pool.wait_idle();  // no error: cancel() is not a failure
  EXPECT_EQ(counter.load(), 0);
  EXPECT_EQ(pool.metrics().tasks_cancelled, 5u);
}

// --- parallel_for ----------------------------------------------------------

TEST(ParallelFor, RethrowsFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 100,
                            [&ran](std::size_t i) {
                              if (i == 3) {
                                throw std::invalid_argument("index 3 is poisoned");
                              }
                              ran.fetch_add(1);
                            }),
               std::invalid_argument);
  // Cancellation is best-effort (running chunks finish), but the pool must
  // come back clean for the next wave.
  std::atomic<int> second{0};
  parallel_for(pool, 50, [&second](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 50);
}

TEST(ParallelFor, ExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(50);
    parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (auto& hit : hits) {
      ASSERT_EQ(hit.load(), 1) << "grain " << grain;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, ChunkingAmortizesSubmissions) {
  ThreadPool pool(4);
  parallel_for(pool, 10000, [](std::size_t) {});
  // Auto-grain submits a few chunks per worker, not one task per element.
  EXPECT_LE(pool.metrics().tasks_submitted, 16u);
}

// --- futures ---------------------------------------------------------------

TEST(ThreadPool, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
  pool.wait_idle();  // future errors do not poison the pool
}

TEST(ThreadPool, SubmitWithResultPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit_with_result(
      []() -> int { throw std::out_of_range("future boom"); });
  EXPECT_THROW(future.get(), std::out_of_range);
  // The exception went through the future, not the pool's error latch.
  pool.wait_idle();
  EXPECT_EQ(pool.metrics().tasks_failed, 0u);
}

// --- metrics ---------------------------------------------------------------

TEST(ThreadPool, MetricsCountLifetimeActivity) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 25; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  const ThreadPoolMetrics metrics = pool.metrics();
  EXPECT_EQ(metrics.tasks_submitted, 25u);
  EXPECT_EQ(metrics.tasks_run, 25u);
  EXPECT_EQ(metrics.tasks_failed, 0u);
  EXPECT_EQ(metrics.tasks_cancelled, 0u);
  EXPECT_GE(metrics.max_queue_depth, 1u);
  EXPECT_LE(metrics.max_queue_depth, 25u);
}

TEST(ThreadPool, ExportMetricsWritesPrefixedKeys) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  MetricsRegistry registry;
  pool.export_metrics(registry, "test.pool");
  EXPECT_EQ(registry.get("test.pool.threads"), 3.0);
  EXPECT_EQ(registry.get("test.pool.tasks_run"), 4.0);
  EXPECT_EQ(registry.get("test.pool.tasks_failed"), 0.0);
  ASSERT_TRUE(registry.get("test.pool.total_task_millis").has_value());
  EXPECT_GE(*registry.get("test.pool.total_task_millis"), 0.0);
}

// --- stress (run under TSAN in CI) -----------------------------------------

TEST(ThreadPool, StressWavesWithInterleavedFailures) {
  ThreadPool pool(4);
  std::atomic<int> ok{0};
  for (int wave = 0; wave < 20; ++wave) {
    const bool failing_wave = wave % 3 == 0;
    bool threw = false;
    try {
      parallel_for(pool, 64, [&ok, failing_wave](std::size_t i) {
        if (failing_wave && i == 13) {
          throw std::runtime_error("unlucky");
        }
        ok.fetch_add(1, std::memory_order_relaxed);
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_EQ(threw, failing_wave) << "wave " << wave;
  }
  EXPECT_GT(ok.load(), 0);
}

}  // namespace
}  // namespace rimarket::common
