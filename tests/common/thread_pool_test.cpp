#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rimarket::common {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  // Rendezvous: two tasks that can each only finish once the other has
  // started — deadlocks unless the pool really runs them concurrently.
  std::mutex mutex;
  std::condition_variable both_started;
  int started = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++started;
    both_started.notify_all();
    both_started.wait(lock, [&] { return started >= 2; });
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.wait_idle();
  EXPECT_EQ(started, 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace rimarket::common
