// Contract macros: death tests (the macros abort by design).
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <csignal>

namespace rimarket::common {
namespace {

TEST(ContractsDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ RIMARKET_CHECK(1 == 2); }, "check failed: 1 == 2");
}

TEST(ContractsDeathTest, CheckMessageIsIncluded) {
  EXPECT_DEATH({ RIMARKET_CHECK_MSG(false, "ledger corrupted"); }, "ledger corrupted");
}

TEST(ContractsDeathTest, ExpectsReportsPrecondition) {
  EXPECT_DEATH({ RIMARKET_EXPECTS(2 < 1); }, "precondition failed");
}

TEST(ContractsDeathTest, EnsuresReportsPostcondition) {
  EXPECT_DEATH({ RIMARKET_ENSURES(false); }, "postcondition failed");
}

TEST(ContractsDeathTest, UnreachableAborts) {
  EXPECT_DEATH({ RIMARKET_UNREACHABLE("impossible enum value"); }, "impossible enum value");
}

TEST(ContractsDeathTest, DiagnosticNamesFileAndLine) {
  // The diagnostic must point at the violation site: this file, and the
  // exact line the macro expands on (captured right before the call).
  const long expected_line = __LINE__ + 1;
  EXPECT_DEATH({ RIMARKET_CHECK(false); },
               testing::ContainsRegex("assert_test\\.cpp:" + std::to_string(expected_line)));
}

TEST(ContractsDeathTest, DiagnosticQuotesTheFailedExpression) {
  EXPECT_DEATH({ RIMARKET_EXPECTS(2 + 2 == 5); }, "2 \\+ 2 == 5");
}

TEST(ContractsDeathTest, FailureRaisesSigabrt) {
  // The contract handler must abort() (SIGABRT), not exit() with a status —
  // sanitizers and core dumps rely on the real signal.
  EXPECT_EXIT({ RIMARKET_CHECK_MSG(false, "abort check"); },
              testing::KilledBySignal(SIGABRT), "abort check");
}

TEST(ContractsDeathTest, MessageAndExpressionBothAppear) {
  EXPECT_DEATH({ RIMARKET_CHECK_MSG(1 > 2, "cost ledger drift"); },
               "check failed: 1 > 2.*cost ledger drift");
}

TEST(Contracts, PassingConditionsAreSilent) {
  RIMARKET_CHECK(1 + 1 == 2);
  RIMARKET_CHECK_MSG(true, "never printed");
  RIMARKET_EXPECTS(true);
  RIMARKET_ENSURES(true);
  SUCCEED();
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto side_effect = [&calls] {
    ++calls;
    return true;
  };
  RIMARKET_CHECK(side_effect());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace rimarket::common
