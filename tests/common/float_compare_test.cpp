// Epsilon comparisons backing the float-eq lint rule's sanctioned fixes.
#include "common/float_compare.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rimarket::common {
namespace {

TEST(FloatCompare, NearZeroAcceptsTinyValues) {
  EXPECT_TRUE(near_zero(0.0));
  EXPECT_TRUE(near_zero(-0.0));
  EXPECT_TRUE(near_zero(1e-13));
  EXPECT_TRUE(near_zero(-1e-13));
}

TEST(FloatCompare, NearZeroRejectsRealValues) {
  EXPECT_FALSE(near_zero(1e-6));
  EXPECT_FALSE(near_zero(-0.25));
  EXPECT_FALSE(near_zero(1.0));
}

TEST(FloatCompare, ApproxEqualToleratesArithmeticNoise) {
  // The classic case the lint rule exists for: 0.1 + 0.2 != 0.3 exactly.
  EXPECT_TRUE(approx_equal(0.1 + 0.2, 0.3));
  // Product-of-fractions noise like the break-even computation produces.
  const double beta = 0.75 * 0.8 * 1000.0 / (0.5 * (1.0 - 0.3));
  const double beta_again = (0.75 * 0.8) * (1000.0 / 0.5) / (1.0 - 0.3);
  EXPECT_TRUE(approx_equal(beta, beta_again));
}

TEST(FloatCompare, ApproxEqualScalesWithMagnitude) {
  // At 1e12 scale an absolute 1e-12 tolerance would always fail; the
  // relative scale keeps neighbouring representable values equal.
  const double big = 1e12;
  EXPECT_TRUE(approx_equal(big, std::nextafter(big, 2e12)));
  EXPECT_FALSE(approx_equal(big, big * (1.0 + 1e-9)));
}

TEST(FloatCompare, ApproxEqualDistinguishesRealDifferences) {
  EXPECT_FALSE(approx_equal(1.0, 1.0001));
  EXPECT_FALSE(approx_equal(0.0, 1e-6));
  EXPECT_FALSE(approx_equal(-1.0, 1.0));
}

TEST(FloatCompare, NonFiniteNeverCompareEqual) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(approx_equal(nan, nan));
  EXPECT_FALSE(approx_equal(inf, -inf));
  EXPECT_FALSE(near_zero(nan));
}

TEST(FloatCompare, ExplicitToleranceIsRespected) {
  EXPECT_TRUE(approx_equal(1.0, 1.01, 0.02));
  EXPECT_FALSE(approx_equal(1.0, 1.01, 0.001));
  EXPECT_TRUE(near_zero(0.5, 0.6));
}

}  // namespace
}  // namespace rimarket::common
