#include "common/cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace rimarket::common {
namespace {

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 0.0);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  const std::vector<double> sample{1.0, 1.0, 1.0, 2.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(0.99), 0.0);
}

TEST(EmpiricalCdf, UnsortedInputIsSorted) {
  const std::vector<double> sample{3.0, 1.0, 2.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
}

TEST(EmpiricalCdf, QuantileRoundTrip) {
  const std::vector<double> sample{10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, QuantileSingleSample) {
  const std::vector<double> sample{4.5};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 4.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.5);
}

TEST(EmpiricalCdf, QuantileEndpointsMatchMinMax) {
  const std::vector<double> sample{9.0, -2.0, 5.0, 5.0, 0.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), cdf.min());
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), cdf.max());
  // q just shy of 1 must stay inside the sample, never index past it.
  EXPECT_LE(cdf.quantile(std::nextafter(1.0, 0.0)), cdf.max());
  EXPECT_GE(cdf.quantile(std::nextafter(0.0, 1.0)), cdf.min());
}

TEST(EmpiricalCdf, QuantileMatchesFreeFunction) {
  const std::vector<double> sample{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const EmpiricalCdf cdf(sample);
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(cdf.quantile(q), quantile(sample, q)) << "q=" << q;
  }
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  const std::vector<double> sample{5.0, 1.0, 3.0, 3.0, 8.0, 2.0};
  const EmpiricalCdf cdf(sample);
  const auto curve = cdf.sample_curve(16);
  ASSERT_EQ(curve.size(), 16u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].probability, curve[i - 1].probability);
    EXPECT_GE(curve[i].x, curve[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(curve.back().probability, 1.0);
}

TEST(EmpiricalCdf, CurveOfEmptyCdfIsEmpty) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.sample_curve(8).empty());
}

TEST(EmpiricalCdf, ToTableContainsHeaderAndRows) {
  const std::vector<double> sample{1.0, 2.0};
  const EmpiricalCdf cdf(sample);
  const std::string table = cdf.to_table(4, "ratio");
  EXPECT_NE(table.find("ratio"), std::string::npos);
  EXPECT_NE(table.find("F(x)"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace rimarket::common
