#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace rimarket::common {
namespace {

TEST(ParseCsvLine, PlainFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLine, QuotedFieldWithComma) {
  const CsvRow row = parse_csv_line("x,\"a,b\",y");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "a,b");
}

TEST(ParseCsvLine, EscapedQuote) {
  const CsvRow row = parse_csv_line("\"he said \"\"hi\"\"\"");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "he said \"hi\"");
}

TEST(ParseCsvLine, StripsTrailingCarriageReturn) {
  const CsvRow row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(ParseCsvLine, EmptyLineIsOneEmptyField) {
  const CsvRow row = parse_csv_line("");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "");
}

TEST(MakeCsvLine, RoundTripsSpecialCharacters) {
  const CsvRow original{"plain", "with,comma", "with\"quote", ""};
  const CsvRow parsed = parse_csv_line(make_csv_line(original));
  EXPECT_EQ(parsed, original);
}

TEST(ParseCsv, HeaderAndRows) {
  const CsvDocument doc = parse_csv("h1,h2\n1,2\n3,4\n", /*expect_header=*/true);
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "h1");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(ParseCsv, SkipsBlankLines) {
  const CsvDocument doc = parse_csv("h\n\n1\n\n2\n", /*expect_header=*/true);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(ParseCsv, NoHeaderMode) {
  const CsvDocument doc = parse_csv("1,2\n3,4", /*expect_header=*/false);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(FileIo, RoundTrip) {
  const std::string path = testing::TempDir() + "/rimarket_csv_test.txt";
  ASSERT_TRUE(write_file(path, "hello\nworld\n"));
  const auto contents = read_file(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileIsNullopt) {
  EXPECT_FALSE(read_file("/nonexistent/rimarket/file.csv").has_value());
  EXPECT_FALSE(load_csv_file("/nonexistent/rimarket/file.csv", true).has_value());
}

TEST(FileIo, LoadCsvFile) {
  const std::string path = testing::TempDir() + "/rimarket_csv_load.csv";
  ASSERT_TRUE(write_file(path, "h\n7\n"));
  const auto doc = load_csv_file(path, /*expect_header=*/true);
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "7");
  std::remove(path.c_str());
}

TEST(ParseCsv, RecordsPhysicalLineNumbers) {
  const CsvDocument doc = parse_csv("h\n\n1\n\n2\n", /*expect_header=*/true);
  EXPECT_EQ(doc.header_line, 1u);
  ASSERT_EQ(doc.row_lines.size(), 2u);
  // Blank lines are skipped as rows but still advance the physical count.
  EXPECT_EQ(doc.row_lines[0], 3u);
  EXPECT_EQ(doc.row_lines[1], 5u);
}

TEST(ParseCsv, NoHeaderModeNumbersRowsFromLineOne) {
  const CsvDocument doc = parse_csv("1,2\n3,4", /*expect_header=*/false);
  EXPECT_EQ(doc.header_line, 0u);
  ASSERT_EQ(doc.row_lines.size(), 2u);
  EXPECT_EQ(doc.row_lines[0], 1u);
  EXPECT_EQ(doc.row_lines[1], 2u);
}

TEST(CsvErrorReporting, ReadFailureCarriesPathAndErrno) {
  CsvError error;
  EXPECT_FALSE(read_file("/nonexistent/rimarket/file.csv", &error).has_value());
  EXPECT_EQ(error.path, "/nonexistent/rimarket/file.csv");
  EXPECT_NE(error.errno_value, 0);
  EXPECT_EQ(error.line, 0u);
  EXPECT_FALSE(error.message.empty());
  const std::string text = error.to_string();
  EXPECT_NE(text.find("/nonexistent/rimarket/file.csv"), std::string::npos);
  EXPECT_NE(text.find("errno"), std::string::npos);
}

TEST(CsvErrorReporting, RaggedRowIsRejectedWithLineNumber) {
  const std::string path = testing::TempDir() + "/rimarket_csv_ragged.csv";
  ASSERT_TRUE(write_file(path, "a,b\n1,2\n3\n4,5\n"));
  CsvError error;
  EXPECT_FALSE(load_csv_file(path, /*expect_header=*/true, &error).has_value());
  EXPECT_EQ(error.path, path);
  EXPECT_EQ(error.line, 3u);  // the short row sits on physical line 3
  EXPECT_NE(error.message.find("expected 2"), std::string::npos);
  const std::string text = error.to_string();
  EXPECT_NE(text.find(path + ":3:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvErrorReporting, WellFormedFileLoadsThroughErrorVariant) {
  const std::string path = testing::TempDir() + "/rimarket_csv_ok.csv";
  ASSERT_TRUE(write_file(path, "h1,h2\n1,2\n"));
  CsvError error;
  const auto doc = load_csv_file(path, /*expect_header=*/true, &error);
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->row_lines[0], 2u);
  std::remove(path.c_str());
}

TEST(CsvErrorReporting, ToStringFormatsEachShape) {
  CsvError with_line{"data.csv", 0, 12, "bad row"};
  EXPECT_EQ(with_line.to_string(), "data.csv:12: bad row");
  CsvError plain{"data.csv", 0, 0, "unreadable"};
  EXPECT_EQ(plain.to_string(), "data.csv: unreadable");
  CsvError anonymous{"", 0, 2, "bad row"};
  EXPECT_EQ(anonymous.to_string(), "<input>:2: bad row");
}

}  // namespace
}  // namespace rimarket::common
