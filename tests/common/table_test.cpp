#include "common/table.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "0.25"});
  table.add_row({"theta", "4.01"});
  const std::string text = table.render();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("|--"), std::string::npos);
  // header + rule + 2 rows = 4 lines
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlignToWidestCell) {
  TextTable table({"H", "V"});
  table.add_row({"averyverylonglabel", "1"});
  const std::string text = table.render();
  // Each line should be the same length.
  std::size_t first_len = text.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < text.size()) {
    const std::size_t next = text.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, NumericRowFormatsPrecision) {
  TextTable table({"Label", "a", "b"});
  table.add_row_numeric("row", {1.23456, 2.0}, 2);
  const std::string text = table.render();
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("2.00"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
}

}  // namespace
}  // namespace rimarket::common
