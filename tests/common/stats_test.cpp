#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace rimarket::common {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 2.0);
}

TEST(RunningStats, SumMatches) {
  RunningStats stats;
  stats.add(1.5);
  stats.add(2.5);
  stats.add(6.0);
  EXPECT_NEAR(stats.sum(), 10.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats filled;
  filled.add(1.0);
  filled.add(2.0);
  RunningStats empty;
  RunningStats copy = filled;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 1.5);
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats stats;
  stats.add(5.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.coefficient_of_variation(), 0.0);
  RunningStats varying;
  varying.add(0.0);
  varying.add(10.0);
  EXPECT_DOUBLE_EQ(varying.coefficient_of_variation(), 1.0);  // sigma=5, mu=5
}

TEST(RunningStats, CvOfZeroMeanNonzeroVarianceIsInfinite) {
  RunningStats stats;
  stats.add(-1.0);
  stats.add(1.0);
  EXPECT_TRUE(std::isinf(stats.coefficient_of_variation()));
}

TEST(RunningStats, CvOfAllZerosIsZero) {
  RunningStats stats;
  stats.add(0.0);
  stats.add(0.0);
  EXPECT_DOUBLE_EQ(stats.coefficient_of_variation(), 0.0);
}

TEST(FreeFunctions, MeanAndStddev) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_DOUBLE_EQ(stddev(values), 2.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(values), 0.4);
}

TEST(FreeFunctions, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Quantile, Endpoints) {
  const std::vector<double> values{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(values, 0.75), 7.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> values{7.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 7.0);
}

TEST(Quantile, NearOneStaysInRange) {
  // Guard against indexing one past the end when q*(n-1) rounds up to n-1:
  // the result for q -> 1 must approach (and never exceed) the maximum.
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const double near_one = std::nextafter(1.0, 0.0);
  EXPECT_LE(quantile(values, near_one), 999.0);
  EXPECT_GE(quantile(values, near_one), 998.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 999.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
}

TEST(QuantileSorted, SkipsTheCopyButMatchesQuantile) {
  const std::vector<double> sorted{1.0, 2.0, 4.0, 8.0};
  for (const double q : {0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, q), quantile(sorted, q)) << "q=" << q;
  }
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 42.0);
}

TEST(Fractions, BelowAndAbove) {
  const std::vector<double> values{0.5, 0.9, 1.0, 1.1, 2.0};
  EXPECT_DOUBLE_EQ(fraction_below(values, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(fraction_above(values, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(fraction_below(values, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above(values, 100.0), 0.0);
}

TEST(Fractions, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(fraction_below({}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 1.0), 0.0);
}

TEST(ToDoubles, ConvertsValues) {
  const std::vector<long long> values{1, 2, 3};
  const std::vector<double> converted = to_doubles(values);
  ASSERT_EQ(converted.size(), 3u);
  EXPECT_DOUBLE_EQ(converted[0], 1.0);
  EXPECT_DOUBLE_EQ(converted[2], 3.0);
}

}  // namespace
}  // namespace rimarket::common
