#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace rimarket::common {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ZeroSeedStillProducesVariedOutput) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(rng());
  }
  EXPECT_GT(seen.size(), 30u);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanApproximatelyHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, NormalZeroStddevIsConstant) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  }
}

TEST(Rng, LognormalIsExpOfNormal) {
  Rng rng(31);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal(1.0, 0.5);
    ASSERT_GT(v, 0.0);
    const double log_v = std::log(v);
    sum += log_v;
    sumsq += log_v * log_v;
  }
  // log of the samples must have the parameters of the underlying normal.
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(0.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0);
  }
}

TEST(Rng, PoissonSmallMeanMatches) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.poisson(3.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(43);
  int large = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1.0) > 100.0) {
      ++large;
    }
  }
  // P[X > 100] = 1/100 for shape 1.
  EXPECT_NEAR(static_cast<double>(large) / n, 0.01, 0.005);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(47);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a() == child_b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsReproducible) {
  Rng parent_a(53);
  Rng parent_b(53);
  Rng child_a = parent_a.fork(9);
  Rng child_b = parent_b.fork(9);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_a(), child_b());
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace rimarket::common
