#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

TEST(Histogram, BinEdges) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_EQ(hist.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(hist.bin_high(4), 10.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.0);
  hist.add(1.9);
  hist.add(2.0);
  hist.add(9.99);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram hist(0.0, 1.0, 2);
  hist.add(-0.5);
  hist.add(1.0);   // hi is exclusive -> overflow
  hist.add(2.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram hist(0.0, 4.0, 2);
  hist.add(1.0);
  hist.add(1.5);
  hist.add(3.0);
  const std::string text = hist.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(Histogram, RenderOmitsEmptyOverflowRows) {
  Histogram hist(0.0, 4.0, 2);
  hist.add(1.0);
  const std::string text = hist.render(10);
  EXPECT_EQ(text.find('<'), std::string::npos);
  EXPECT_EQ(text.find('>'), std::string::npos);
}

}  // namespace
}  // namespace rimarket::common
