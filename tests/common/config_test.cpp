#include "common/config.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto config = Config::parse("a = 1\nb = hello\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get("a"), "1");
  EXPECT_EQ(config->get("b"), "hello");
  EXPECT_EQ(config->size(), 2u);
}

TEST(Config, CommentsAndBlanksIgnored) {
  const auto config = Config::parse("# comment\n\nkey = v # trailing\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get("key"), "v");
  EXPECT_EQ(config->size(), 1u);
}

TEST(Config, MalformedLineRejected) {
  EXPECT_FALSE(Config::parse("no equals sign\n").has_value());
  EXPECT_FALSE(Config::parse("= value\n").has_value());
}

TEST(Config, TypedAccessors) {
  const auto config = Config::parse("i = 42\nd = 2.5\nb = true\ns = text\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_int("i"), 42);
  EXPECT_DOUBLE_EQ(config->get_double("d").value(), 2.5);
  EXPECT_EQ(config->get_bool("b"), true);
  EXPECT_FALSE(config->get_int("s").has_value());
  EXPECT_FALSE(config->get_int("missing").has_value());
}

TEST(Config, DefaultAccessors) {
  const auto config = Config::parse("x = 7\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_int_or("x", 0), 7);
  EXPECT_EQ(config->get_int_or("y", 9), 9);
  EXPECT_DOUBLE_EQ(config->get_double_or("y", 1.5), 1.5);
  EXPECT_EQ(config->get_bool_or("y", true), true);
  EXPECT_EQ(config->get_or("y", "fallback"), "fallback");
}

TEST(Config, SetOverrides) {
  Config config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get("k"), "2");
  EXPECT_TRUE(config.contains("k"));
  EXPECT_FALSE(config.contains("other"));
}

TEST(Config, ToStringRoundTrips) {
  Config config;
  config.set("alpha", "0.25");
  config.set("name", "d2.xlarge");
  const auto reparsed = Config::parse(config.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->get("alpha"), "0.25");
  EXPECT_EQ(reparsed->get("name"), "d2.xlarge");
}

TEST(Config, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(Config::load("/nonexistent/rimarket.conf").has_value());
}

}  // namespace
}  // namespace rimarket::common
