// Durable-file contract tests: framing round-trips, prefix recovery that
// truncates at the first torn or corrupt record, atomic replacement that
// never leaves `.tmp` residue, and the append log's rollback discipline.
#include "common/durable_file.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "common/csv.hpp"

namespace rimarket::common::durable {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(Crc32, MatchesKnownVectors) {
  // IEEE 802.3 reference values ("check" input from the CRC catalogue).
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(FrameRecord, HeaderIsLengthThenCrcLittleEndian) {
  std::string out;
  frame_record("abc", out);
  ASSERT_EQ(out.size(), 8u + 3u);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 3u);  // length LE
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0u);
  EXPECT_EQ(out.substr(8), "abc");
  // Appending a second record extends, never resets.
  frame_record("", out);
  EXPECT_EQ(out.size(), 11u + 8u);
}

TEST(ReadRecords, RoundTripsMultipleRecords) {
  const std::string path = temp_path("durable_roundtrip.log");
  std::string contents;
  frame_record("first", contents);
  frame_record("", contents);
  frame_record(std::string(1000, 'x'), contents);
  ASSERT_TRUE(write_file(path, contents));
  const ReadResult result = read_records(path);
  EXPECT_FALSE(result.missing);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].payload, "first");
  EXPECT_EQ(result.records[1].payload, "");
  EXPECT_EQ(result.records[2].payload, std::string(1000, 'x'));
  EXPECT_EQ(result.valid_bytes, contents.size());
  EXPECT_EQ(result.truncated_bytes, 0u);
  // end_offset walks the file: each record ends where the next begins.
  EXPECT_EQ(result.records[0].end_offset, 8u + 5u);
  EXPECT_EQ(result.records[2].end_offset, contents.size());
  std::remove(path.c_str());
}

TEST(ReadRecords, MissingFileIsDistinctFromEmptyFile) {
  const std::string path = temp_path("durable_missing.log");
  std::remove(path.c_str());
  EXPECT_TRUE(read_records(path).missing);
  ASSERT_TRUE(write_file(path, ""));
  const ReadResult empty = read_records(path);
  EXPECT_FALSE(empty.missing);
  EXPECT_TRUE(empty.records.empty());
  std::remove(path.c_str());
}

TEST(ReadRecords, TruncatesAtTornTailAtEveryByteBoundary) {
  // Simulate SIGKILL mid-append: for every prefix length of the second
  // record's frame, the reader must recover exactly the first record and
  // report the dangling bytes.
  const std::string path = temp_path("durable_torn.log");
  std::string first;
  frame_record("keep-me", first);
  std::string second;
  frame_record("torn-record-payload", second);
  for (std::size_t cut = 0; cut < second.size(); ++cut) {
    ASSERT_TRUE(write_file(path, first + second.substr(0, cut)));
    const ReadResult result = read_records(path);
    ASSERT_EQ(result.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(result.records[0].payload, "keep-me");
    EXPECT_EQ(result.valid_bytes, first.size()) << "cut=" << cut;
    EXPECT_EQ(result.truncated_bytes, cut) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

TEST(ReadRecords, CorruptPayloadStopsThePrefix) {
  const std::string path = temp_path("durable_corrupt.log");
  std::string contents;
  frame_record("good", contents);
  const std::size_t second_start = contents.size();
  frame_record("to-be-flipped", contents);
  frame_record("behind-the-corruption", contents);
  contents[second_start + 8 + 2] ^= 0x40;  // flip one payload bit of record 2
  ASSERT_TRUE(write_file(path, contents));
  const ReadResult result = read_records(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].payload, "good");
  EXPECT_EQ(result.valid_bytes, second_start);
  // Everything from the corrupt record on is refused, including the intact
  // third record behind it — prefix recovery, not salvage.
  EXPECT_EQ(result.truncated_bytes, contents.size() - second_start);
  std::remove(path.c_str());
}

TEST(ReadRecords, CorruptHeaderLengthCannotOverrun) {
  const std::string path = temp_path("durable_badlen.log");
  std::string contents;
  frame_record("x", contents);
  contents[0] = static_cast<char>(0xFF);  // declared length far past EOF
  contents[1] = static_cast<char>(0xFF);
  ASSERT_TRUE(write_file(path, contents));
  const ReadResult result = read_records(path);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_EQ(result.truncated_bytes, contents.size());
  std::remove(path.c_str());
}

TEST(AtomicReplace, ReplacesAndLeavesNoTmp) {
  const std::string path = temp_path("durable_replace.txt");
  ASSERT_TRUE(write_file(path, "old contents"));
  ASSERT_TRUE(atomic_replace(path, "new contents", FsyncMode::kAlways));
  EXPECT_EQ(read_file(path).value_or(""), "new contents");
  EXPECT_FALSE(read_file(path + ".tmp").has_value());
  // kNever works too (no barrier, same visible result).
  ASSERT_TRUE(atomic_replace(path, "newer", FsyncMode::kNever));
  EXPECT_EQ(read_file(path).value_or(""), "newer");
  std::remove(path.c_str());
}

TEST(AtomicReplace, FailedRenameKeepsOldFileAndRemovesTmp) {
  // Renaming a file over a non-empty directory fails with ENOTDIR/EISDIR,
  // which exercises the failure branch without any fault injection.
  const std::string dir = temp_path("durable_replace_dir");
  const std::string inner = dir + "/occupant";
  std::remove(inner.c_str());
  std::remove(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  ASSERT_TRUE(write_file(inner, "x"));
  EXPECT_FALSE(atomic_replace(dir, "does not matter", FsyncMode::kNever));
  // The failed replace left no `.tmp` residue behind (the historical
  // checkpoint-writer bug this module exists to prevent).
  EXPECT_FALSE(read_file(dir + ".tmp").has_value());
  std::remove(inner.c_str());
  std::remove(dir.c_str());
}

TEST(AppendLog, AppendsSurviveCloseAndReopen) {
  const std::string path = temp_path("durable_appendlog.log");
  std::remove(path.c_str());
  AppendLog log;
  EXPECT_FALSE(log.is_open());
  EXPECT_FALSE(log.append("before open"));
  ASSERT_TRUE(log.open(path, FsyncMode::kAlways));
  EXPECT_TRUE(log.is_open());
  EXPECT_EQ(log.path(), path);
  EXPECT_EQ(log.size_bytes(), 0u);
  ASSERT_TRUE(log.append("one"));
  ASSERT_TRUE(log.append("two"));
  EXPECT_TRUE(log.sync());
  EXPECT_EQ(log.size_bytes(), 2u * 8u + 6u);
  log.close();
  EXPECT_FALSE(log.is_open());
  // Reopen resumes at the existing size; new appends land after old ones.
  ASSERT_TRUE(log.open(path, FsyncMode::kNever));
  EXPECT_EQ(log.size_bytes(), 2u * 8u + 6u);
  ASSERT_TRUE(log.append("three"));
  log.close();
  const ReadResult result = read_records(path);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].payload, "one");
  EXPECT_EQ(result.records[2].payload, "three");
  std::remove(path.c_str());
}

TEST(AppendLog, TruncateToRollsBackTheTail) {
  const std::string path = temp_path("durable_truncate_to.log");
  std::remove(path.c_str());
  AppendLog log;
  ASSERT_TRUE(log.open(path, FsyncMode::kNever));
  ASSERT_TRUE(log.append("keep"));
  const std::size_t keep_size = log.size_bytes();
  ASSERT_TRUE(log.append("discard"));
  // Growing the log is not something truncate_to can do.
  EXPECT_FALSE(log.truncate_to(log.size_bytes() + 1));
  ASSERT_TRUE(log.truncate_to(keep_size));
  EXPECT_EQ(log.size_bytes(), keep_size);
  ASSERT_TRUE(log.append("after"));
  log.close();
  const ReadResult result = read_records(path);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].payload, "keep");
  EXPECT_EQ(result.records[1].payload, "after");
  std::remove(path.c_str());
}

TEST(TruncateAndRename, FileHelpers) {
  const std::string path = temp_path("durable_helpers.txt");
  const std::string moved = temp_path("durable_helpers_moved.txt");
  std::remove(moved.c_str());
  ASSERT_TRUE(write_file(path, "0123456789"));
  ASSERT_TRUE(truncate_file(path, 4));
  EXPECT_EQ(read_file(path).value_or(""), "0123");
  EXPECT_FALSE(truncate_file(temp_path("durable_nonexistent"), 0));
  ASSERT_TRUE(rename_file(path, moved));
  EXPECT_FALSE(read_file(path).has_value());
  EXPECT_EQ(read_file(moved).value_or(""), "0123");
  EXPECT_FALSE(rename_file(path, moved));  // source is gone now
  std::remove(moved.c_str());
}

}  // namespace
}  // namespace rimarket::common::durable
