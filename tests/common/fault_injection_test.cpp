#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <new>
#include <string>
#include <vector>

// These tests drive the schedule machinery directly through hit() /
// hit_parse_error(), so they run identically whether or not the build
// compiles the RIMARKET_INJECT sites in — they belong to tier 1.
namespace rimarket::common::fault_injection {
namespace {

Schedule nth_hit_schedule(std::string site, FaultKind kind, std::uint64_t nth) {
  Rule rule;
  rule.site_pattern = std::move(site);
  rule.kind = kind;
  rule.nth_hit = nth;
  return Schedule(1, {rule});
}

TEST(Rule, MatchesExactName) {
  Rule rule;
  rule.site_pattern = "sim.run_loop";
  EXPECT_TRUE(rule.matches("sim.run_loop"));
  EXPECT_FALSE(rule.matches("sim.run_loop2"));
  EXPECT_FALSE(rule.matches("sim.run"));
}

TEST(Rule, MatchesPrefixWildcard) {
  Rule rule;
  rule.site_pattern = "sim.*";
  EXPECT_TRUE(rule.matches("sim.run_loop"));
  EXPECT_TRUE(rule.matches("sim."));
  EXPECT_FALSE(rule.matches("csv.read_file"));
}

TEST(FaultKindName, CoversAllKinds) {
  EXPECT_EQ(fault_kind_name(FaultKind::kThrow), "throw");
  EXPECT_EQ(fault_kind_name(FaultKind::kBadAlloc), "bad_alloc");
  EXPECT_EQ(fault_kind_name(FaultKind::kParseError), "parse-error");
}

TEST(ScopedContext, NthHitFiresExactlyOnThatHit) {
  const Schedule schedule = nth_hit_schedule("t.nth", FaultKind::kThrow, 2);
  ScopedContext context(schedule, /*scope_key=*/7);
  EXPECT_NO_THROW(hit("t.nth"));
  try {
    hit("t.nth");
    FAIL() << "second hit should fire";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.site(), "t.nth");
    EXPECT_EQ(fault.hit_index(), 2u);
    EXPECT_NE(std::string(fault.what()).find("t.nth"), std::string::npos);
  }
  EXPECT_NO_THROW(hit("t.nth"));
  EXPECT_EQ(context.faults_fired(), 1u);
}

TEST(ScopedContext, HitCountersArePerSite) {
  const Schedule schedule = nth_hit_schedule("t.a", FaultKind::kThrow, 1);
  ScopedContext context(schedule, 7);
  // Hits at an unrelated site must not advance t.a's counter.
  EXPECT_NO_THROW(hit("t.other"));
  EXPECT_NO_THROW(hit("t.other"));
  EXPECT_THROW(hit("t.a"), InjectedFault);
}

TEST(ScopedContext, SameScopeKeyReplaysSameFirePattern) {
  Rule rule;
  rule.site_pattern = "t.prob";
  rule.probability = 0.3;
  const Schedule schedule(42, {rule});
  const auto pattern_for = [&schedule](std::uint64_t scope_key) {
    std::vector<bool> fired;
    ScopedContext context(schedule, scope_key);
    for (int i = 0; i < 200; ++i) {
      bool threw = false;
      try {
        hit("t.prob");
      } catch (const InjectedFault&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  const std::vector<bool> first = pattern_for(11);
  const std::vector<bool> replay = pattern_for(11);
  EXPECT_EQ(first, replay);
  // A different unit of work draws a different (but equally reproducible)
  // pattern; p=0.3 over 200 hits makes a collision astronomically unlikely.
  EXPECT_NE(first, pattern_for(12));
  // And the pattern actually contains both outcomes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
}

TEST(ScopedContext, FirstMatchingRuleShadowsLaterOnes) {
  Rule inert;  // matches but never fires (probability 0)
  inert.site_pattern = "t.shadow";
  Rule eager;
  eager.site_pattern = "t.*";
  eager.nth_hit = 1;
  const Schedule schedule(1, {inert, eager});
  ScopedContext context(schedule, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(hit("t.shadow"));
  }
  // A site the inert rule does not match falls through to the eager rule.
  EXPECT_THROW(hit("t.unshadowed"), InjectedFault);
}

TEST(ScopedContext, InnermostContextWins) {
  const Schedule outer = nth_hit_schedule("t.nest", FaultKind::kThrow, 1);
  const Schedule inner_schedule(1, {});  // no rules: nothing fires
  ScopedContext outer_context(outer, 1);
  {
    ScopedContext inner_context(inner_schedule, 2);
    EXPECT_NO_THROW(hit("t.nest"));
  }
  // Back under the outer context, whose counter has not advanced.
  EXPECT_THROW(hit("t.nest"), InjectedFault);
}

TEST(GlobalSchedule, FallbackFiresAndClears) {
  const Schedule schedule = nth_hit_schedule("t.global", FaultKind::kThrow, 1);
  set_global_schedule(&schedule);
  EXPECT_THROW(hit("t.global"), InjectedFault);
  set_global_schedule(nullptr);
  EXPECT_NO_THROW(hit("t.global"));
}

TEST(GlobalSchedule, ReinstallResetsHitCounters) {
  const Schedule schedule = nth_hit_schedule("t.reset", FaultKind::kThrow, 2);
  set_global_schedule(&schedule);
  EXPECT_NO_THROW(hit("t.reset"));
  set_global_schedule(&schedule);  // fresh counters: next hit is hit 1 again
  EXPECT_NO_THROW(hit("t.reset"));
  EXPECT_THROW(hit("t.reset"), InjectedFault);
  set_global_schedule(nullptr);
}

TEST(HitParseError, ParseKindReportsInsteadOfThrowing) {
  const Schedule schedule = nth_hit_schedule("t.parse", FaultKind::kParseError, 1);
  ScopedContext context(schedule, 1);
  EXPECT_TRUE(hit_parse_error("t.parse"));
  EXPECT_FALSE(hit_parse_error("t.parse"));
  EXPECT_EQ(context.faults_fired(), 1u);
}

TEST(HitParseError, ThrowKindStillThrows) {
  const Schedule schedule = nth_hit_schedule("t.parse2", FaultKind::kThrow, 1);
  ScopedContext context(schedule, 1);
  EXPECT_THROW(hit_parse_error("t.parse2"), InjectedFault);
}

TEST(Hit, ParseKindAtNonParseSiteThrows) {
  // A site registered with RIMARKET_INJECT (not _PARSE) cannot report a
  // parse error, so the fault degrades to a throw instead of vanishing.
  const Schedule schedule = nth_hit_schedule("t.noparse", FaultKind::kParseError, 1);
  ScopedContext context(schedule, 1);
  EXPECT_THROW(hit("t.noparse"), InjectedFault);
}

TEST(BadAlloc, WithoutTriggerThrowsBadAlloc) {
  const Schedule schedule = nth_hit_schedule("t.oom", FaultKind::kBadAlloc, 1);
  ScopedContext context(schedule, 1);
  EXPECT_THROW(hit("t.oom"), std::bad_alloc);
}

TEST(BadAlloc, InstalledTriggerIsInvoked) {
  const Schedule schedule = nth_hit_schedule("t.oom2", FaultKind::kBadAlloc, 1);
  ScopedContext context(schedule, 1);
  set_bad_alloc_trigger(+[]() { throw std::bad_alloc(); });
  EXPECT_THROW(hit("t.oom2"), std::bad_alloc);
  set_bad_alloc_trigger(nullptr);
}

TEST(Counters, SeenSitesAndFiredTotalAdvance) {
  const Schedule schedule = nth_hit_schedule("t.counted", FaultKind::kThrow, 1);
  const std::uint64_t fired_before = fired_total();
  ScopedContext context(schedule, 1);
  EXPECT_THROW(hit("t.counted"), InjectedFault);
  EXPECT_EQ(fired_total(), fired_before + 1);
  const std::vector<std::string> sites = seen_sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "t.counted"), sites.end());
}

TEST(RandomSchedule, IsAPureFunctionOfSeed) {
  const std::array<std::string_view, 4> sites = {"a.one", "a.two", "b.three", "b.four"};
  const Schedule first = Schedule::random(99, sites);
  const Schedule replay = Schedule::random(99, sites);
  EXPECT_EQ(first, replay);
  EXPECT_FALSE(first.rules().empty());
  for (const Rule& rule : first.rules()) {
    EXPECT_TRUE((rule.nth_hit > 0) != (rule.probability > 0.0));
  }
}

TEST(RandomSchedule, DifferentSeedsDiffer) {
  const std::array<std::string_view, 4> sites = {"a.one", "a.two", "b.three", "b.four"};
  // Two draws agreeing on every rule across 8 seeds would mean the seed is
  // ignored; any difference passes.
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 8 && !any_difference; ++seed) {
    any_difference = !(Schedule::random(seed, sites) == Schedule::random(seed + 100, sites));
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomSchedule, ToStringCarriesSeedAndRules) {
  const std::array<std::string_view, 2> sites = {"x.a", "x.b"};
  const Schedule schedule = Schedule::random(7, sites);
  const std::string text = schedule.to_string();
  EXPECT_NE(text.find("seed=7"), std::string::npos);
  EXPECT_NE(text.find("site="), std::string::npos);
}

TEST(InjectedFaultType, MessageNamesSiteAndHit) {
  const InjectedFault fault("some.site", 3);
  EXPECT_EQ(fault.site(), "some.site");
  EXPECT_EQ(fault.hit_index(), 3u);
  EXPECT_STREQ(fault.what(), "injected fault at some.site (hit 3)");
}

}  // namespace
}  // namespace rimarket::common::fault_injection
