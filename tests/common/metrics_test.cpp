#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rimarket::common {
namespace {

TEST(MetricsRegistry, SetAndGet) {
  MetricsRegistry registry;
  registry.set("pool.tasks_run", std::int64_t{42});
  registry.set("pool.total_task_millis", 1.5);
  EXPECT_EQ(registry.get("pool.tasks_run"), 42.0);
  EXPECT_EQ(registry.get("pool.total_task_millis"), 1.5);
  EXPECT_FALSE(registry.get("missing").has_value());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, IncrementCreatesAndAccumulates) {
  MetricsRegistry registry;
  registry.increment("sweeps");
  registry.increment("sweeps", 4);
  EXPECT_EQ(registry.get("sweeps"), 5.0);
}

TEST(MetricsRegistry, AddCreatesAndAccumulatesGauges) {
  MetricsRegistry registry;
  registry.add("backoff_ms", 10.0);
  registry.add("backoff_ms", 2.5);
  EXPECT_EQ(registry.get("backoff_ms"), 12.5);
}

TEST(MetricsRegistry, AddPromotesAnIntegerSlotToGauge) {
  MetricsRegistry registry;
  registry.increment("mixed", 3);
  registry.add("mixed", 0.5);
  EXPECT_EQ(registry.get("mixed"), 3.5);
}

TEST(MetricsRegistry, SetOverwritesKind) {
  MetricsRegistry registry;
  registry.set("x", 2.5);
  registry.set("x", std::int64_t{3});
  EXPECT_EQ(registry.get("x"), 3.0);
}

TEST(MetricsRegistry, ToJsonSortsKeysAndFormatsKinds) {
  MetricsRegistry registry;
  registry.set("b.count", std::int64_t{7});
  registry.set("a.ratio", 0.5);
  EXPECT_EQ(registry.to_json(), "{\"a.ratio\":0.5,\"b.count\":7}");
}

TEST(MetricsRegistry, EmptyJsonIsAnEmptyObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(), "{}");
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.increment("n");
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.to_json(), "{}");
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  MetricsRegistry::global().set("metrics_test.marker", std::int64_t{1});
  EXPECT_EQ(MetricsRegistry::global().get("metrics_test.marker"), 1.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsDoNotLoseUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.increment("hits");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.get("hits"), static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace rimarket::common
