#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rimarket::common {
namespace {

TEST(MetricsRegistry, SetAndGet) {
  MetricsRegistry registry;
  registry.set("pool.tasks_run", std::int64_t{42});
  registry.set("pool.total_task_millis", 1.5);
  EXPECT_EQ(registry.get("pool.tasks_run"), 42.0);
  EXPECT_EQ(registry.get("pool.total_task_millis"), 1.5);
  EXPECT_FALSE(registry.get("missing").has_value());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, IncrementCreatesAndAccumulates) {
  MetricsRegistry registry;
  registry.increment("sweeps");
  registry.increment("sweeps", 4);
  EXPECT_EQ(registry.get("sweeps"), 5.0);
}

TEST(MetricsRegistry, AddCreatesAndAccumulatesGauges) {
  MetricsRegistry registry;
  registry.add("backoff_ms", 10.0);
  registry.add("backoff_ms", 2.5);
  EXPECT_EQ(registry.get("backoff_ms"), 12.5);
}

TEST(MetricsRegistry, AddPromotesAnIntegerSlotToGauge) {
  MetricsRegistry registry;
  registry.increment("mixed", 3);
  registry.add("mixed", 0.5);
  EXPECT_EQ(registry.get("mixed"), 3.5);
}

TEST(MetricsRegistry, SetOverwritesKind) {
  MetricsRegistry registry;
  registry.set("x", 2.5);
  registry.set("x", std::int64_t{3});
  EXPECT_EQ(registry.get("x"), 3.0);
}

TEST(MetricsRegistry, ToJsonSortsKeysAndFormatsKinds) {
  MetricsRegistry registry;
  registry.set("b.count", std::int64_t{7});
  registry.set("a.ratio", 0.5);
  EXPECT_EQ(registry.to_json(), "{\"a.ratio\":0.5,\"b.count\":7}");
}

TEST(MetricsRegistry, EmptyJsonIsAnEmptyObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(), "{}");
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.increment("n");
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.to_json(), "{}");
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  MetricsRegistry::global().set("metrics_test.marker", std::int64_t{1});
  EXPECT_EQ(MetricsRegistry::global().get("metrics_test.marker"), 1.0);
}

TEST(MetricsRegistry, ObserveBuildsADistribution) {
  MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.observe("latency_us", static_cast<double>(i));
  }
  const auto snapshot = registry.distribution("latency_us");
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->count, 100u);
  EXPECT_DOUBLE_EQ(snapshot->mean, 50.5);
  EXPECT_DOUBLE_EQ(snapshot->min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot->max, 100.0);
  // p99 of 1..100 is 99 exactly; the log2-binned estimate reports the upper
  // edge of the covering bin, so it lands within one bin width (~9%) above.
  EXPECT_GE(snapshot->p99, 99.0);
  EXPECT_LE(snapshot->p99, 100.0);  // clamped into [min, max]
}

TEST(MetricsRegistry, DistributionAbsentUntilObserved) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.distribution("latency_us").has_value());
  registry.increment("latency_us");  // a counter, not a distribution
  EXPECT_FALSE(registry.distribution("latency_us").has_value());
}

TEST(MetricsRegistry, SingleObservationPinsAllStatistics) {
  MetricsRegistry registry;
  registry.observe("d", 7.25);
  const auto snapshot = registry.distribution("d");
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->count, 1u);
  EXPECT_DOUBLE_EQ(snapshot->mean, 7.25);
  EXPECT_DOUBLE_EQ(snapshot->min, 7.25);
  EXPECT_DOUBLE_EQ(snapshot->max, 7.25);
  EXPECT_DOUBLE_EQ(snapshot->p99, 7.25);  // clamp to [min, max] makes it exact
}

TEST(MetricsRegistry, NonPositiveObservationsAreCountedNotDropped) {
  MetricsRegistry registry;
  registry.observe("d", 0.0);
  registry.observe("d", -3.0);
  registry.observe("d", 2.0);
  const auto snapshot = registry.distribution("d");
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->count, 3u);
  EXPECT_DOUBLE_EQ(snapshot->min, -3.0);
  EXPECT_DOUBLE_EQ(snapshot->max, 2.0);
}

TEST(MetricsRegistry, ToJsonExpandsDistributionsIntoFiveSortedKeys) {
  MetricsRegistry registry;
  registry.observe("lat", 4.0);
  registry.increment("requests", 2);
  EXPECT_EQ(registry.to_json(),
            "{\"lat.count\":1,\"lat.max\":4,\"lat.mean\":4,\"lat.min\":4,"
            "\"lat.p99\":4,\"requests\":2}");
}

TEST(MetricsRegistry, SizeCountsValuesAndDistributions) {
  MetricsRegistry registry;
  registry.increment("a");
  registry.observe("b", 1.0);
  EXPECT_EQ(registry.size(), 2u);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.distribution("b").has_value());
}

TEST(MetricsRegistry, ConcurrentObservationsDoNotLoseSamples) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.observe("lat", static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto snapshot = registry.distribution("lat");
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snapshot->min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot->max, static_cast<double>(kThreads));
}

TEST(MetricsRegistry, ConcurrentIncrementsDoNotLoseUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.increment("hits");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.get("hits"), static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace rimarket::common
