#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultLevelIsWarn) {
  // The library must not chatter on stdout/stderr by default.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Logging, EmitsToStderrAtOrAboveThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info("hello %d", 42);
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("hello 42"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
}

TEST(Logging, SuppressedBelowThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_debug("invisible");
  log_info("invisible");
  log_warn("invisible");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Logging, OffSilencesEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_error("even errors");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Logging, MessageInterfaceRespectsThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kWarn, "warned");
  log_message(LogLevel::kInfo, "hidden");
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("warned"), std::string::npos);
  EXPECT_EQ(output.find("hidden"), std::string::npos);
}

}  // namespace
}  // namespace rimarket::common
