#include "common/units.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

namespace rimarket {
namespace {

// --- zero-overhead guarantee ------------------------------------------
// Each wrapper is exactly one double wide and trivially copyable, so it
// passes in registers and vectorizes like the raw double it replaced.
static_assert(sizeof(Money) == sizeof(double));
static_assert(sizeof(Rate) == sizeof(double));
static_assert(sizeof(Hours) == sizeof(double));
static_assert(sizeof(Fraction) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Money>);
static_assert(std::is_trivially_copyable_v<Rate>);
static_assert(std::is_trivially_copyable_v<Hours>);
static_assert(std::is_trivially_copyable_v<Fraction>);

// No implicit conversions in either direction: a raw double cannot sneak
// into a Money slot and a Money cannot decay back to double.
static_assert(!std::is_convertible_v<double, Money>);
static_assert(!std::is_convertible_v<Money, double>);
static_assert(!std::is_convertible_v<double, Fraction>);
static_assert(!std::is_convertible_v<Fraction, double>);
static_assert(!std::is_convertible_v<Money, Rate>);
static_assert(!std::is_convertible_v<Rate, Money>);

// --- compile-time algebra ---------------------------------------------
// Every operation is constexpr; these identities are proved at build time.
static_assert(Money{2.0} + Money{3.0} == Money{5.0});
static_assert(Money{5.0} - Money{3.0} == Money{2.0});
static_assert(-Money{2.0} == Money{0.0} - Money{2.0});
static_assert(Money{10.0} * 3.0 == Money{30.0});
static_assert(3.0 * Money{10.0} == Money{30.0});
static_assert(Money{10.0} * Fraction{0.25} == Money{2.5});
static_assert(Fraction{0.25} * Money{10.0} == Money{2.5});
static_assert(Money{10.0} / 4.0 == Money{2.5});
static_assert(Money{10.0} / Money{4.0} == 2.5);
static_assert(Money{1.0} < Money{2.0});

static_assert(Rate{1.5} * Hours{2.0} == Money{3.0});
static_assert(Hours{2.0} * Rate{1.5} == Money{3.0});
static_assert(Money{3.0} / Rate{1.5} == Hours{2.0});
static_assert(Money{3.0} / Hours{2.0} == Rate{1.5});
static_assert(Rate{1.0} * Fraction{0.3} == Rate{0.3});
static_assert(Fraction{0.3} * Rate{1.0} == Rate{0.3});
static_assert(Rate{2.0} + Rate{1.0} == Rate{3.0});
static_assert(Rate{0.5} / Rate{2.0} == 0.25);

static_assert(Hours{1.0} + Hours{2.0} == Hours{3.0});
static_assert(Hours{3.0} - Hours{2.0} == Hours{1.0});
static_assert(Hours{2.0} * 3.0 == Hours{6.0});
static_assert(Hours{8.0} * Fraction{0.75} == Hours{6.0});
static_assert(Hours{4.0} / Hours{2.0} == 2.0);
static_assert(Hours{Hour{5}} == Hours{5.0});

static_assert(Fraction{0.5} * Fraction{0.5} == Fraction{0.25});
static_assert(Fraction{0.25}.complement() == Fraction{0.75});
static_assert(Fraction{0.0} < Fraction{1.0});
static_assert(Fraction{0.0}.value() == 0.0);  // boundary values are legal
static_assert(Fraction{1.0}.value() == 1.0);

// Eq. (1) spelled in the algebra, one hour of each term with p=1, R=20,
// alpha=0.25, a=0.8, rp=1/2:
//   C = o*p + n*R + r*alpha*p - s*a*rp*R = 1 + 20 + 0.25 - 8.
constexpr Rate kOnDemand{1.0};
constexpr Money kUpfront{20.0};
constexpr Money kEqOne = kOnDemand * Hours{1.0} + kUpfront +
                         (kOnDemand * Fraction{0.25}) * Hours{1.0} -
                         Fraction{0.8} * (Fraction{0.5} * kUpfront);
static_assert(kEqOne == Money{1.0 + 20.0 + 0.25 - 8.0});

// The break-even identity beta = f*a*R / (p*(1-alpha)) has dimension time.
constexpr Hours kBreakEven =
    Fraction{0.75} * (Fraction{0.8} * kUpfront) / (kOnDemand * Fraction{0.25}.complement());
static_assert(kBreakEven == Hours{0.75 * (0.8 * 20.0) / (1.0 * 0.75)});

TEST(Units, CompoundAssignmentAccumulates) {
  Money total{0.0};
  total += Money{2.5};
  total += Money{1.5};
  EXPECT_EQ(total, Money{4.0});
  total -= Money{1.0};
  EXPECT_EQ(total, Money{3.0});
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_EQ(Money{}.value(), 0.0);
  EXPECT_EQ(Rate{}.value(), 0.0);
  EXPECT_EQ(Hours{}.value(), 0.0);
  EXPECT_EQ(Fraction{}.value(), 0.0);
}

TEST(Units, ArithmeticIsBitExactWithRawDoubles) {
  // The wrappers must not perturb a single bit relative to the raw-double
  // expressions they replaced (the golden-regression test relies on this).
  const double p = 0.690;
  const double upfront = 3997.0;
  const double alpha = 0.4529;
  const Money wrapped =
      Rate{p} * Hours{123.0} + Money{upfront} * Fraction{alpha} - Money{17.25};
  const double raw = p * 123.0 + upfront * alpha - 17.25;
  EXPECT_EQ(wrapped.value(), raw);  // exact, not NEAR
}

using UnitsDeathTest = ::testing::Test;

TEST(UnitsDeathTest, FractionRejectsValueAboveOne) {
  EXPECT_DEATH(Fraction{1.0000001}, "precondition failed");
}

TEST(UnitsDeathTest, FractionRejectsNegativeValue) {
  EXPECT_DEATH(Fraction{-0.1}, "precondition failed");
}

TEST(UnitsDeathTest, FractionRejectsNan) {
  // NaN fails both comparisons, so the contract traps it too.
  EXPECT_DEATH(Fraction{std::numeric_limits<double>::quiet_NaN()}, "precondition failed");
}

}  // namespace
}  // namespace rimarket
