#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto fields = split(",x,,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto fields = split("whole", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "whole");
}

TEST(Trim, RemovesWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int(" 13 "), 13);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsMalformed) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double(" 0.69 ").value(), 0.69);
}

TEST(ParseDouble, RejectsMalformed) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("x").has_value());
  EXPECT_FALSE(parse_double("1.5zz").has_value());
}

TEST(ParseDouble, RejectsNonFiniteTokens) {
  // strtod happily accepts these; a CSV cell holding "inf" or "nan" is
  // corrupt data, not a demand value.
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("-inf").has_value());
  EXPECT_FALSE(parse_double("infinity").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("-nan").has_value());
  EXPECT_FALSE(parse_double("NAN").has_value());
}

TEST(ParseDouble, RejectsHexFloatSyntax) {
  EXPECT_FALSE(parse_double("0x1p3").has_value());
  EXPECT_FALSE(parse_double("0X1P3").has_value());
  EXPECT_FALSE(parse_double("0x10").has_value());
}

TEST(ParseDouble, RejectsOutOfRangeMagnitudes) {
  // ERANGE overflow clamps to +-HUGE_VAL under strtod; that is a parse
  // failure here, not a "valid" infinite value.
  EXPECT_FALSE(parse_double("1e999").has_value());
  EXPECT_FALSE(parse_double("-1e999").has_value());
  // Denormal underflow still yields a finite value and stays accepted.
  EXPECT_TRUE(parse_double("1e308").has_value());
}

TEST(ParseBool, AcceptsCommonSpellings) {
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("YES"), true);
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool("on"), true);
  EXPECT_EQ(parse_bool("false"), false);
  EXPECT_EQ(parse_bool("No"), false);
  EXPECT_EQ(parse_bool("0"), false);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_FALSE(parse_bool("maybe").has_value());
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", ".csv"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace rimarket::common
