#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace rimarket::common {
namespace {

CliParser make_parser() {
  CliParser parser;
  parser.add_flag("count", "number of things", "10");
  parser.add_flag("ratio", "a double", "0.5");
  parser.add_flag("verbose", "boolean flag", "false");
  parser.add_flag("name", "a string", "default");
  return parser;
}

TEST(CliParser, DefaultsWhenNotProvided) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("count", 0), 10);
  EXPECT_DOUBLE_EQ(parser.get_double("ratio", 0.0), 0.5);
  EXPECT_FALSE(parser.get_bool("verbose", true));
  EXPECT_FALSE(parser.provided("count"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--count=42", "--name=foo"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("count", 0), 42);
  EXPECT_EQ(parser.get("name"), "foo");
  EXPECT_TRUE(parser.provided("count"));
}

TEST(CliParser, SpaceSyntax) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--count", "7"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("count", 0), 7);
}

TEST(CliParser, BareBooleanFlag) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose", false));
}

TEST(CliParser, UnknownFlagFails) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(CliParser, PositionalArguments) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "input.csv", "--count=1", "more"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.csv");
  EXPECT_EQ(parser.positional()[1], "more");
}

TEST(CliParser, HelpListsFlags) {
  CliParser parser = make_parser();
  const std::string help = parser.help("prog");
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("number of things"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace rimarket::common
