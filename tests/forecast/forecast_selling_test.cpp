#include "forecast/forecast_selling.hpp"

#include <gtest/gtest.h>

#include "pricing/catalog.hpp"
#include "selling/baselines.hpp"
#include "sim/simulator.hpp"

namespace rimarket::forecast {
namespace {

// Small instance: p=1, R=20, alpha=0.25, T=40h.
pricing::InstanceType tiny_type() {
  return pricing::InstanceType{"tiny.test", Rate{1.0}, Money{20.0}, Rate{0.25}, 40};
}

ForecastSelling make_policy(double fraction = 0.75) {
  return ForecastSelling(tiny_type(), Fraction{fraction}, Fraction{0.8},
                         std::make_unique<EwmaForecaster>(0.2));
}

TEST(ForecastSelling, ForwardBreakEvenMatchesFormula) {
  const ForecastSelling policy = make_policy(0.75);
  // beta_fwd = (1-f)*a*R / (p*(1-alpha)) = 0.25*0.8*20/0.75.
  EXPECT_NEAR(policy.forward_break_even_hours().value(), 0.25 * 0.8 * 20.0 / 0.75, 1e-9);
}

TEST(ForecastSelling, ExpectedUtilizationClamps) {
  EXPECT_DOUBLE_EQ(ForecastSelling::expected_utilization(3.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(ForecastSelling::expected_utilization(3.5, 3), 0.5);
  EXPECT_DOUBLE_EQ(ForecastSelling::expected_utilization(3.5, 4), 0.0);
  EXPECT_DOUBLE_EQ(ForecastSelling::expected_utilization(0.0, 0), 0.0);
}

TEST(ForecastSelling, SellsWhenForecastSeesNoDemand) {
  fleet::ReservationLedger ledger(40);
  const fleet::ReservationId id = ledger.reserve(0);
  ForecastSelling policy = make_policy(0.75);
  for (Hour t = 0; t < 30; ++t) {
    policy.observe(t, 0);
    ledger.assign(t, 0);
    if (t < 30 - 1) {
      EXPECT_TRUE(selling::decide_once(policy, t, ledger).empty());
    }
  }
  policy.observe(30, 0);
  const auto decision = selling::decide_once(policy, 30, ledger);
  ASSERT_EQ(decision.size(), 1u);
  EXPECT_EQ(decision[0], id);
}

TEST(ForecastSelling, KeepsWhenForecastSeesDemand) {
  fleet::ReservationLedger ledger(40);
  ledger.reserve(0);
  ForecastSelling policy = make_policy(0.75);
  for (Hour t = 0; t <= 30; ++t) {
    policy.observe(t, 1);
    ledger.assign(t, 1);
    EXPECT_TRUE(selling::decide_once(policy, t, ledger).empty()) << t;
  }
}

TEST(ForecastSelling, RankDependentDecision) {
  // Two reservations, steady demand of one instance: the EWMA predicts
  // mean 1, so rank 0 expects full utilization (keep) and rank 1 expects
  // none (sell).
  fleet::ReservationLedger ledger(40);
  const fleet::ReservationId first = ledger.reserve(0);
  const fleet::ReservationId second = ledger.reserve(0);
  ForecastSelling policy = make_policy(0.75);
  std::vector<fleet::ReservationId> decision;
  for (Hour t = 0; t <= 30; ++t) {
    policy.observe(t, 1);
    ledger.assign(t, 1);
    const auto now = selling::decide_once(policy, t, ledger);
    decision.insert(decision.end(), now.begin(), now.end());
  }
  ASSERT_EQ(decision.size(), 1u);
  EXPECT_EQ(decision[0], second);
  (void)first;
}

TEST(ForecastSelling, MisledByDelayedOnset) {
  // Quiet before the spot, demand after: the backward-looking A_{3T/4}
  // would also sell here, but the *forecast* policy sells precisely
  // because its prediction extrapolates the quiet past — the paper's
  // criticism of prediction-based strategies in one scenario.
  const pricing::InstanceType type = tiny_type();
  std::vector<Count> demand(40, 0);
  for (int t = 31; t < 40; ++t) {
    demand[static_cast<std::size_t>(t)] = 1;  // returns right after the spot
  }
  const workload::DemandTrace trace{std::move(demand)};
  const sim::ReservationStream stream{std::vector<Count>{1}};
  sim::SimulationConfig config;
  config.type = type;
  config.selling_discount = Fraction{0.8};
  ForecastSelling policy(type, Fraction{0.75}, Fraction{0.8}, std::make_unique<EwmaForecaster>(0.2));
  const sim::SimulationResult result = sim::simulate(trace, stream, policy, config);
  EXPECT_EQ(result.instances_sold, 1);
  EXPECT_EQ(result.on_demand_hours, 9);
}

TEST(ForecastSelling, NameIncludesForecasterAndSpot) {
  const ForecastSelling policy = make_policy(0.5);
  EXPECT_NE(policy.name().find("ewma"), std::string::npos);
  EXPECT_NE(policy.name().find("0.50T"), std::string::npos);
}

TEST(ForecastSelling, NoObservationsNoSales) {
  fleet::ReservationLedger ledger(40);
  ledger.reserve(0);
  ForecastSelling policy = make_policy(0.75);
  // decide() without a single observe() must not touch the forecaster.
  EXPECT_TRUE(selling::decide_once(policy, 30, ledger).empty());
}

}  // namespace
}  // namespace rimarket::forecast
