#include "forecast/forecasters.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rimarket::forecast {
namespace {

TEST(Ewma, SeedsWithFirstObservation) {
  EwmaForecaster forecaster(0.1);
  forecaster.observe(10);
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(100), 10.0);
}

TEST(Ewma, ConvergesToConstantSignal) {
  EwmaForecaster forecaster(0.2);
  forecaster.observe(0);
  for (int i = 0; i < 200; ++i) {
    forecaster.observe(8);
  }
  EXPECT_NEAR(forecaster.predict_mean(1), 8.0, 0.01);
}

TEST(Ewma, SmoothingControlsReactionSpeed) {
  EwmaForecaster slow(0.01);
  EwmaForecaster fast(0.5);
  slow.observe(0);
  fast.observe(0);
  for (int i = 0; i < 10; ++i) {
    slow.observe(10);
    fast.observe(10);
  }
  EXPECT_LT(slow.predict_mean(1), fast.predict_mean(1));
}

TEST(Ewma, FlatForecastAcrossHorizons) {
  EwmaForecaster forecaster;
  forecaster.observe(5);
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(1), forecaster.predict_mean(10000));
}

TEST(SeasonalNaive, LearnsPeriodicPattern) {
  SeasonalNaiveForecaster forecaster(/*period=*/24);
  // 10 days of: 12 busy hours at level 6, 12 idle hours.
  for (int day = 0; day < 10; ++day) {
    for (int h = 0; h < 24; ++h) {
      forecaster.observe(h < 12 ? 6 : 0);
    }
  }
  // Mean over the next full day = 3.
  EXPECT_NEAR(forecaster.predict_mean(24), 3.0, 0.01);
  // Mean over the next 12 hours (the busy half, since observation ends at
  // a day boundary) = 6.
  EXPECT_NEAR(forecaster.predict_mean(12), 6.0, 0.01);
}

TEST(SeasonalNaive, HandlesPartialHistory) {
  SeasonalNaiveForecaster forecaster(/*period=*/24);
  forecaster.observe(4);
  EXPECT_NEAR(forecaster.predict_mean(24), 4.0, 1e-9);
}

TEST(Holt, SeedsWithFirstObservationAndZeroTrend) {
  HoltForecaster forecaster(0.2, 0.1);
  forecaster.observe(6);
  EXPECT_DOUBLE_EQ(forecaster.level(), 6.0);
  EXPECT_DOUBLE_EQ(forecaster.trend(), 0.0);
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(100), 6.0);
}

TEST(Holt, LearnsALinearRamp) {
  HoltForecaster forecaster(0.5, 0.3);
  for (Count d = 0; d <= 200; ++d) {
    forecaster.observe(d);
  }
  // On a unit-slope ramp the learned trend approaches 1 and predictions
  // extrapolate upward, unlike the flat EWMA.
  EXPECT_NEAR(forecaster.trend(), 1.0, 0.1);
  EXPECT_GT(forecaster.predict_mean(100), 200.0);
}

TEST(Holt, PredictionClampedAtZeroOnDecline) {
  HoltForecaster forecaster(0.5, 0.5);
  for (Count d = 50; d >= 1; --d) {
    forecaster.observe(d);
  }
  // Steep decline extrapolated far out must not go negative.
  EXPECT_GE(forecaster.predict_mean(10000), 0.0);
}

TEST(Holt, ConstantSignalHasNoTrend) {
  HoltForecaster forecaster;
  for (int i = 0; i < 300; ++i) {
    forecaster.observe(4);
  }
  EXPECT_NEAR(forecaster.trend(), 0.0, 1e-6);
  EXPECT_NEAR(forecaster.predict_mean(500), 4.0, 0.01);
}

TEST(WindowMean, AveragesRecentWindow) {
  WindowMeanForecaster forecaster(/*window=*/4);
  for (const Count d : {Count{1}, Count{2}, Count{3}, Count{4}}) {
    forecaster.observe(d);
  }
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(10), 2.5);
  // Two more observations push out the oldest two.
  forecaster.observe(10);
  forecaster.observe(10);
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(10), (3 + 4 + 10 + 10) / 4.0);
}

TEST(WindowMean, PartialWindow) {
  WindowMeanForecaster forecaster(/*window=*/100);
  forecaster.observe(2);
  forecaster.observe(4);
  EXPECT_DOUBLE_EQ(forecaster.predict_mean(1), 3.0);
}

TEST(Factory, ProducesEveryKind) {
  for (const auto kind :
       {ForecasterKind::kEwma, ForecasterKind::kSeasonalNaive, ForecasterKind::kWindowMean,
        ForecasterKind::kHolt}) {
    const auto forecaster = make_forecaster(kind);
    ASSERT_NE(forecaster, nullptr);
    forecaster->observe(3);
    EXPECT_GE(forecaster->predict_mean(24), 0.0);
    EXPECT_FALSE(forecaster->name().empty());
  }
}

TEST(Forecasters, TrackStationaryNoiseMean) {
  common::Rng rng(5);
  EwmaForecaster ewma(0.05);
  WindowMeanForecaster window(500);
  for (int i = 0; i < 5000; ++i) {
    const Count demand = rng.poisson(7.0);
    ewma.observe(demand);
    window.observe(demand);
  }
  EXPECT_NEAR(ewma.predict_mean(100), 7.0, 0.8);
  EXPECT_NEAR(window.predict_mean(100), 7.0, 0.4);
}

}  // namespace
}  // namespace rimarket::forecast
