// Chunked-ingestion parity suite (workload/streaming.hpp).
//
// The contract under test: for EVERY input and EVERY chunking,
// ChunkedTraceParser accepts exactly the files DemandTrace::from_csv
// accepts, produces the same demand sequence, and reports the same
// CsvError (same 1-based line, same message).  The edge-case corpus pins
// the cases a boundary can land on: CRLF endings, a missing trailing
// newline, an empty trailing field, header-only and empty files, blank
// lines, and malformed rows of every diagnosis.
#include "workload/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace rimarket::workload {
namespace {

struct ParseOutcome {
  bool ok = false;
  std::vector<Count> demand;
  std::size_t error_line = 0;
  std::string error_message;
};

ParseOutcome parse_whole(std::string_view text) {
  ParseOutcome outcome;
  common::CsvError error;
  if (const auto trace = DemandTrace::from_csv(text, &error)) {
    outcome.ok = true;
    outcome.demand.assign(trace->values().begin(), trace->values().end());
  } else {
    outcome.error_line = error.line;
    outcome.error_message = error.message;
  }
  return outcome;
}

ParseOutcome parse_chunked(std::string_view text, const std::vector<std::size_t>& cut_points) {
  ChunkedTraceParser parser;
  std::size_t start = 0;
  for (const std::size_t cut : cut_points) {
    parser.feed(text.substr(start, cut - start));
    start = cut;
  }
  parser.feed(text.substr(start));
  ParseOutcome outcome;
  common::CsvError error;
  if (const auto trace = parser.finish(&error)) {
    outcome.ok = true;
    outcome.demand.assign(trace->values().begin(), trace->values().end());
  } else {
    outcome.error_line = error.line;
    outcome.error_message = error.message;
  }
  return outcome;
}

void expect_same_outcome(const ParseOutcome& whole, const ParseOutcome& chunked,
                         std::string_view label) {
  ASSERT_EQ(whole.ok, chunked.ok) << label;
  if (whole.ok) {
    EXPECT_EQ(whole.demand, chunked.demand) << label;
  } else {
    EXPECT_EQ(whole.error_line, chunked.error_line) << label;
    EXPECT_EQ(whole.error_message, chunked.error_message) << label;
  }
}

/// The satellite corpus: every entry is a file shape a chunk boundary or a
/// whole-file reader must treat identically.
const char* const kCorpus[] = {
    // Plain happy path, trailing newline.
    "hour,demand\n0,3\n1,0\n2,7\n",
    // Missing trailing newline: last row arrives only at finish().
    "hour,demand\n0,3\n1,0\n2,7",
    // CRLF line endings throughout.
    "hour,demand\r\n0,3\r\n1,5\r\n",
    // CRLF with no final newline (pending ends in a bare CR-less row).
    "hour,demand\r\n0,3\r\n1,5",
    // Mixed endings: LF header, CRLF rows.
    "hour,demand\n0,2\r\n1,4\r\n",
    // Header-only, with and without the newline.
    "hour,demand\n",
    "hour,demand",
    // Empty file and a lone newline.
    "",
    "\n",
    // Blank lines between rows and at the end.
    "hour,demand\n\n0,1\n\n1,2\n\n",
    // A lone CR line (blank after trimming).
    "hour,demand\n0,1\n\r\n1,2\n",
    // Empty trailing field: "1," parses as two fields, the second empty.
    "hour,demand\n0,3\n1,\n",
    // Empty trailing field on the final, unterminated line.
    "hour,demand\n0,3\n1,",
    // Too few fields.
    "hour,demand\n0\n",
    // Too many fields.
    "hour,demand\n0,1,2\n",
    // Non-numeric demand.
    "hour,demand\n0,three\n",
    // Negative demand.
    "hour,demand\n0,-1\n",
    // Hour out of sequence.
    "hour,demand\n1,5\n",
    // Error on a later line: the 1-based line number must survive chunking.
    "hour,demand\n0,1\n1,2\nbogus row\n3,4\n",
};

TEST(ChunkedTraceParser, EveryBoundaryMatchesWholeFile) {
  // Exhaustive single-cut sweep: one boundary at every byte offset.  This
  // walks a cut through mid-field, mid-number, between CR and LF, and
  // before/after every newline of every corpus entry.
  for (const char* text : kCorpus) {
    const std::string_view input(text);
    const ParseOutcome whole = parse_whole(input);
    for (std::size_t cut = 0; cut <= input.size(); ++cut) {
      expect_same_outcome(whole, parse_chunked(input, {cut}),
                          std::string("cut at ") + std::to_string(cut) + " of: " + text);
    }
  }
}

TEST(ChunkedTraceParser, RandomizedMultiCutMatchesWholeFile) {
  common::Rng rng(20260808);
  for (const char* text : kCorpus) {
    const std::string_view input(text);
    const ParseOutcome whole = parse_whole(input);
    for (int trial = 0; trial < 32; ++trial) {
      std::vector<std::size_t> cuts;
      const int cut_count = static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < cut_count; ++i) {
        cuts.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(input.size()))));
      }
      std::sort(cuts.begin(), cuts.end());
      expect_same_outcome(whole, parse_chunked(input, cuts),
                          std::string("random cuts of: ") + text);
    }
  }
}

TEST(ChunkedTraceParser, ByteAtATime) {
  const std::string_view input = "hour,demand\r\n0,10\r\n1,20\r\n2,30";
  ChunkedTraceParser parser;
  for (const char byte : input) {
    parser.feed(std::string_view(&byte, 1));
  }
  const auto trace = parser.finish();
  ASSERT_TRUE(trace.has_value());
  const std::vector<Count> expected{10, 20, 30};
  EXPECT_EQ(std::vector<Count>(trace->values().begin(), trace->values().end()), expected);
}

TEST(ChunkedTraceParser, ResetMakesTheParserReusable) {
  ChunkedTraceParser parser;
  parser.feed("hour,demand\n0,bogus\n");
  common::CsvError error;
  EXPECT_FALSE(parser.finish(&error).has_value());
  parser.reset();
  parser.feed("hour,demand\n0,4\n");
  const auto trace = parser.finish();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->length(), 1);
  EXPECT_EQ(trace->at(0), 4);
}

TEST(ChunkedTraceParser, HoursParsedTracksProgress) {
  ChunkedTraceParser parser;
  EXPECT_EQ(parser.hours_parsed(), 0);
  parser.feed("hour,demand\n0,1\n1,2\n");
  EXPECT_EQ(parser.hours_parsed(), 2);
  parser.feed("2,3\n");
  EXPECT_EQ(parser.hours_parsed(), 3);
}

TEST(ChunkedTraceParser, RoundTripsToCsvOutput) {
  // to_csv output must be ingestible by both readers identically.
  const DemandTrace original{std::vector<Count>{4, 0, 9, 2, 2}};
  const std::string text = original.to_csv();
  const ParseOutcome whole = parse_whole(text);
  ASSERT_TRUE(whole.ok);
  expect_same_outcome(whole, parse_chunked(text, {text.size() / 2}), "to_csv round trip");
  const std::vector<Count> expected(original.values().begin(), original.values().end());
  EXPECT_EQ(whole.demand, expected);
}

std::string write_temp(const std::string& name, std::string_view contents) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(common::write_file(path, contents));
  return path;
}

TEST(LoadTraceChunked, MatchesFromCsvAcrossChunkSizes) {
  for (const char* text : kCorpus) {
    const std::string path = write_temp("rimarket_stream_case.csv", text);
    const ParseOutcome whole = parse_whole(text);
    for (const std::size_t chunk_bytes : {std::size_t{1}, std::size_t{3}, std::size_t{4096}}) {
      common::CsvError error;
      const auto trace = load_trace_chunked(path, &error, chunk_bytes);
      ASSERT_EQ(whole.ok, trace.has_value()) << text;
      if (whole.ok) {
        EXPECT_EQ(whole.demand,
                  std::vector<Count>(trace->values().begin(), trace->values().end()));
      } else {
        EXPECT_EQ(error.path, path);  // the file loader owns the path field
        EXPECT_EQ(whole.error_line, error.line) << text;
        EXPECT_EQ(whole.error_message, error.message) << text;
      }
    }
    std::remove(path.c_str());
  }
}

TEST(LoadTraceChunked, MissingFileReportsErrno) {
  common::CsvError error;
  const auto trace = load_trace_chunked(::testing::TempDir() + "/rimarket_no_such_trace.csv",
                                        &error);
  EXPECT_FALSE(trace.has_value());
  EXPECT_NE(error.errno_value, 0);
  EXPECT_FALSE(error.message.empty());
}

TEST(SpanUserSource, StreamsAndRewinds) {
  std::vector<User> users;
  users.push_back(User{1, FluctuationGroup::kStable, 0.0, "test",
                       DemandTrace{std::vector<Count>{1, 2}}});
  users.push_back(User{2, FluctuationGroup::kHigh, 1.5, "test",
                       DemandTrace{std::vector<Count>{3}}});
  SpanUserSource source{std::span<const User>(users)};
  StreamedUser unit;
  ASSERT_TRUE(source.next(unit));
  EXPECT_TRUE(unit.ok);
  EXPECT_EQ(unit.user.id, 1);
  ASSERT_TRUE(source.next(unit));
  EXPECT_EQ(unit.user.id, 2);
  EXPECT_FALSE(source.next(unit));
  source.rewind();
  ASSERT_TRUE(source.next(unit));
  EXPECT_EQ(unit.user.id, 1);
}

class ManifestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rimarket_manifest_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::remove(dir_.c_str());
    ASSERT_EQ(std::system(("mkdir -p " + dir_).c_str()), 0);
  }

  std::string write(const std::string& name, std::string_view contents) {
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(common::write_file(path, contents));
    return path;
  }

  std::string dir_;
};

TEST_F(ManifestFixture, StreamsUsersResolvingRelativePaths) {
  write("alice.csv", "hour,demand\n0,2\n1,3\n");
  const std::string bob_abs = write("bob.csv", "hour,demand\n0,5\n");
  const std::string manifest = write(
      "manifest.csv",
      "id,group,path\n1,stable,alice.csv\n2,high," + bob_abs + "\n");
  TraceManifestSource source(manifest);
  EXPECT_EQ(source.user_count(), 2u);

  StreamedUser unit;
  ASSERT_TRUE(source.next(unit));
  EXPECT_TRUE(unit.ok);
  EXPECT_EQ(unit.user.id, 1);
  EXPECT_EQ(unit.user.group, FluctuationGroup::kStable);
  EXPECT_EQ(unit.user.generator, "manifest");
  EXPECT_EQ(unit.user.trace.length(), 2);
  EXPECT_EQ(unit.user.trace.at(1), 3);

  ASSERT_TRUE(source.next(unit));
  EXPECT_TRUE(unit.ok);
  EXPECT_EQ(unit.user.id, 2);
  EXPECT_EQ(unit.user.group, FluctuationGroup::kHigh);
  EXPECT_EQ(unit.user.trace.at(0), 5);
  EXPECT_FALSE(source.next(unit));

  // rewind() must replay identically (checkpoint resume depends on it).
  source.rewind();
  ASSERT_TRUE(source.next(unit));
  EXPECT_EQ(unit.user.id, 1);
  EXPECT_EQ(unit.user.trace.length(), 2);
}

TEST_F(ManifestFixture, BadRowsBecomeFailedUnitsNotExceptions) {
  write("good.csv", "hour,demand\n0,1\n");
  write("bad.csv", "hour,demand\nnope\n");
  const std::string manifest = write("manifest.csv",
                                     "id,group,path\n"
                                     "abc,stable,good.csv\n"     // bad id
                                     "2,mystery,good.csv\n"      // bad group
                                     "3,high,missing.csv\n"      // unreadable trace
                                     "4,moderate,bad.csv\n"      // invalid trace
                                     "5,stable,good.csv\n");     // fine
  TraceManifestSource source(manifest);
  EXPECT_EQ(source.user_count(), 5u);

  StreamedUser unit;
  ASSERT_TRUE(source.next(unit));
  EXPECT_FALSE(unit.ok);
  EXPECT_NE(unit.error.message.find("non-numeric user id"), std::string::npos);
  EXPECT_EQ(unit.error.line, 2u);  // 1-based manifest line

  ASSERT_TRUE(source.next(unit));
  EXPECT_FALSE(unit.ok);
  EXPECT_EQ(unit.user.id, 2);
  EXPECT_NE(unit.error.message.find("unknown group"), std::string::npos);

  ASSERT_TRUE(source.next(unit));
  EXPECT_FALSE(unit.ok);
  EXPECT_EQ(unit.user.id, 3);
  EXPECT_NE(unit.error.errno_value, 0);

  ASSERT_TRUE(source.next(unit));
  EXPECT_FALSE(unit.ok);
  EXPECT_EQ(unit.user.id, 4);
  EXPECT_EQ(unit.error.line, 2u);  // trace file's own line number

  ASSERT_TRUE(source.next(unit));
  EXPECT_TRUE(unit.ok);
  EXPECT_EQ(unit.user.id, 5);
  EXPECT_FALSE(source.next(unit));
}

TEST_F(ManifestFixture, BadHeaderThrows) {
  const std::string manifest = write("manifest.csv", "user,grp,file\n1,stable,x.csv\n");
  EXPECT_THROW(TraceManifestSource{manifest}, std::runtime_error);
}

TEST_F(ManifestFixture, UnreadableManifestThrows) {
  EXPECT_THROW(TraceManifestSource{dir_ + "/absent.csv"}, std::runtime_error);
}

}  // namespace
}  // namespace rimarket::workload
