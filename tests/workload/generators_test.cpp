#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workload/classify.hpp"

namespace rimarket::workload {
namespace {

constexpr Hour kTestHours = 4000;

TEST(StableGenerator, StaysNearBase) {
  common::Rng rng(1);
  StableGenerator gen(10, 2);
  const DemandTrace trace = gen.generate(kTestHours, rng);
  EXPECT_EQ(trace.length(), kTestHours);
  EXPECT_NEAR(trace.mean(), 10.0, 0.5);
  EXPECT_LT(trace.coefficient_of_variation(), 0.5);
  for (Hour t = 0; t < trace.length(); ++t) {
    EXPECT_GE(trace.at(t), 8);
    EXPECT_LE(trace.at(t), 12);
  }
}

TEST(StableGenerator, ZeroJitterIsConstant) {
  common::Rng rng(2);
  StableGenerator gen(5, 0);
  const DemandTrace trace = gen.generate(100, rng);
  for (Hour t = 0; t < trace.length(); ++t) {
    EXPECT_EQ(trace.at(t), 5);
  }
}

TEST(DiurnalGenerator, HasDailyPeriodicity) {
  common::Rng rng(3);
  DiurnalGenerator gen(20.0, 8.0, 0.0);
  const DemandTrace trace = gen.generate(kHoursPerDay * 10, rng);
  // Noise-free: hour h and h+24 must match exactly.
  for (Hour t = 0; t + kHoursPerDay < trace.length(); ++t) {
    EXPECT_EQ(trace.at(t), trace.at(t + kHoursPerDay));
  }
  EXPECT_NEAR(trace.mean(), 20.0, 1.0);
}

TEST(OnOffGenerator, DutyCycleFormula) {
  OnOffGenerator gen(5.0, 30.0, 90.0);
  EXPECT_NEAR(gen.duty_cycle(), 0.25, 1e-12);
}

TEST(OnOffGenerator, ProducesZerosAndBusyHours) {
  common::Rng rng(4);
  OnOffGenerator gen(5.0, 48.0, 96.0);
  const DemandTrace trace = gen.generate(kTestHours, rng);
  Hour zero_hours = 0;
  Hour busy_hours = 0;
  for (Hour t = 0; t < trace.length(); ++t) {
    (trace.at(t) == 0 ? zero_hours : busy_hours) += 1;
  }
  EXPECT_GT(zero_hours, kTestHours / 4);
  EXPECT_GT(busy_hours, kTestHours / 10);
}

TEST(OnOffGenerator, ModerateDutyLandsInGroupTwoBand) {
  common::Rng rng(5);
  OnOffGenerator gen(8.0, 48.0, 144.0);  // duty 0.25 -> square-wave cv ~1.73
  const DemandTrace trace = gen.generate(3 * kTestHours, rng);
  const double cv = trace.coefficient_of_variation();
  EXPECT_GT(cv, 0.8);
  EXPECT_LT(cv, 3.5);
}

TEST(BurstyGenerator, MostHoursAtBaseline) {
  common::Rng rng(6);
  BurstyGenerator gen(0.001, 10.0, 12.0, 0);
  const DemandTrace trace = gen.generate(kTestHours, rng);
  Hour baseline_hours = 0;
  for (Hour t = 0; t < trace.length(); ++t) {
    if (trace.at(t) == 0) {
      ++baseline_hours;
    }
  }
  EXPECT_GT(baseline_hours, kTestHours * 8 / 10);
}

TEST(BurstyGenerator, RareBurstsGiveHighCv) {
  common::Rng rng(7);
  BurstyGenerator gen(0.0015, 20.0, 12.0, 0);
  const DemandTrace trace = gen.generate(3 * kTestHours, rng);
  EXPECT_GT(trace.coefficient_of_variation(), 2.0);
}

TEST(PoissonGenerator, MeanMatches) {
  common::Rng rng(8);
  PoissonGenerator gen(6.0);
  const DemandTrace trace = gen.generate(kTestHours, rng);
  EXPECT_NEAR(trace.mean(), 6.0, 0.3);
}

TEST(PoissonGenerator, ZeroMeanIsAllZero) {
  common::Rng rng(9);
  PoissonGenerator gen(0.0);
  const DemandTrace trace = gen.generate(100, rng);
  EXPECT_EQ(trace.total(), 0);
}

TEST(RandomWalkGenerator, RespectsBounds) {
  common::Rng rng(10);
  RandomWalkGenerator gen(5, 0.5, 10);
  const DemandTrace trace = gen.generate(kTestHours, rng);
  for (Hour t = 0; t < trace.length(); ++t) {
    EXPECT_GE(trace.at(t), 0);
    EXPECT_LE(trace.at(t), 10);
  }
}

TEST(RandomWalkGenerator, StepsAreUnitSized) {
  common::Rng rng(11);
  RandomWalkGenerator gen(5, 1.0, 100);
  const DemandTrace trace = gen.generate(1000, rng);
  for (Hour t = 1; t < trace.length(); ++t) {
    EXPECT_LE(std::abs(trace.at(t) - trace.at(t - 1)), 1);
  }
}

TEST(DelayedOnsetGenerator, SpikeGapThenSustainedLoad) {
  common::Rng rng(21);
  workload::DelayedOnsetGenerator::Params params;
  params.level = 6.0;
  params.spike_hours = 24;
  params.onset = 2000;
  params.gap_before_onset = 1500;
  params.duty_after_onset = 1.0;
  DelayedOnsetGenerator gen(params);
  const DemandTrace trace = gen.generate(4000, rng);
  // Spike at [500, 524).
  EXPECT_EQ(trace.at(499), 0);
  EXPECT_EQ(trace.at(500), 6);
  EXPECT_EQ(trace.at(523), 6);
  EXPECT_EQ(trace.at(524), 0);
  // Quiet gap.
  EXPECT_EQ(trace.at(1999), 0);
  // Sustained load from onset to end (duty 1.0).
  EXPECT_EQ(trace.at(2000), 6);
  EXPECT_EQ(trace.at(3999), 6);
}

TEST(DelayedOnsetGenerator, BusyWindowBoundsTheLoad) {
  common::Rng rng(22);
  workload::DelayedOnsetGenerator::Params params;
  params.level = 4.0;
  params.onset = 1000;
  params.gap_before_onset = 800;
  params.duty_after_onset = 1.0;
  params.busy_window = 500;
  DelayedOnsetGenerator gen(params);
  const DemandTrace trace = gen.generate(3000, rng);
  EXPECT_EQ(trace.at(1000), 4);
  EXPECT_EQ(trace.at(1499), 4);
  EXPECT_EQ(trace.at(1500), 0);
  EXPECT_EQ(trace.at(2999), 0);
}

TEST(DelayedOnsetGenerator, DutyControlsDensity) {
  common::Rng rng(23);
  workload::DelayedOnsetGenerator::Params params;
  params.level = 3.0;
  params.onset = 0;
  params.gap_before_onset = 0;
  params.duty_after_onset = 0.5;
  DelayedOnsetGenerator gen(params);
  const DemandTrace trace = gen.generate(20000, rng);
  Hour busy = 0;
  for (Hour t = 0; t < trace.length(); ++t) {
    busy += trace.at(t) > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(busy) / 20000.0, 0.5, 0.02);
}

TEST(DelayedOnsetGenerator, OnsetBeyondTraceIsAllQuietAfterSpike) {
  common::Rng rng(24);
  workload::DelayedOnsetGenerator::Params params;
  params.level = 5.0;
  params.onset = 10000;
  params.gap_before_onset = 3000;  // spike at hour 7000, inside the trace
  DelayedOnsetGenerator gen(params);
  const DemandTrace trace = gen.generate(8000, rng);
  // Only the spike is inside the trace; the onset never arrives.
  EXPECT_EQ(trace.total(), 5 * params.spike_hours);
  EXPECT_EQ(trace.at(7000), 5);
  EXPECT_EQ(trace.at(7999), 0);
}

TEST(Ec2LogSynthesizer, ProducesPositiveStableDemand) {
  common::Rng rng(12);
  Ec2LogSynthesizer gen(Ec2LogSynthesizer::Params{});
  const DemandTrace trace = gen.generate(kTestHours, rng);
  EXPECT_GT(trace.mean(), 5.0);
  EXPECT_LT(trace.coefficient_of_variation(), 1.5);
}

TEST(GoogleClusterSynthesizer, SessionsAndGaps) {
  common::Rng rng(13);
  GoogleClusterSynthesizer gen(GoogleClusterSynthesizer::Params{});
  const DemandTrace trace = gen.generate(3 * kTestHours, rng);
  Hour idle = 0;
  Hour busy = 0;
  for (Hour t = 0; t < trace.length(); ++t) {
    (trace.at(t) == 0 ? idle : busy) += 1;
  }
  EXPECT_GT(idle, 0);
  EXPECT_GT(busy, 0);
}

TEST(Generators, DescribeIsNonEmpty) {
  common::Rng rng(14);
  const std::unique_ptr<DemandGenerator> generators[] = {
      std::make_unique<StableGenerator>(5, 1),
      std::make_unique<DiurnalGenerator>(10.0, 3.0, 1.0),
      std::make_unique<OnOffGenerator>(4.0, 24.0, 48.0),
      std::make_unique<BurstyGenerator>(0.01, 5.0, 6.0, 1),
      std::make_unique<PoissonGenerator>(2.0),
      std::make_unique<RandomWalkGenerator>(3, 0.3, 20),
      std::make_unique<Ec2LogSynthesizer>(Ec2LogSynthesizer::Params{}),
      std::make_unique<GoogleClusterSynthesizer>(GoogleClusterSynthesizer::Params{}),
  };
  for (const auto& generator : generators) {
    EXPECT_FALSE(generator->describe().empty());
    EXPECT_EQ(generator->generate(0, rng).length(), 0);  // zero hours is legal
  }
}

TEST(Generators, SameSeedSameTrace) {
  BurstyGenerator gen(0.01, 8.0, 6.0, 0);
  common::Rng rng_a(99);
  common::Rng rng_b(99);
  const DemandTrace a = gen.generate(500, rng_a);
  const DemandTrace b = gen.generate(500, rng_b);
  ASSERT_EQ(a.length(), b.length());
  for (Hour t = 0; t < a.length(); ++t) {
    EXPECT_EQ(a.at(t), b.at(t));
  }
}

}  // namespace
}  // namespace rimarket::workload
