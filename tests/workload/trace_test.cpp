#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/csv.hpp"

namespace rimarket::workload {
namespace {

TEST(DemandTrace, EmptyTrace) {
  DemandTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.length(), 0);
  EXPECT_EQ(trace.at(0), 0);
  EXPECT_DOUBLE_EQ(trace.mean(), 0.0);
}

TEST(DemandTrace, AtReturnsValuesAndZeroPad) {
  DemandTrace trace({1, 2, 3});
  EXPECT_EQ(trace.length(), 3);
  EXPECT_EQ(trace.at(0), 1);
  EXPECT_EQ(trace.at(2), 3);
  // Beyond the recorded range the job has finished: zero demand.
  EXPECT_EQ(trace.at(3), 0);
  EXPECT_EQ(trace.at(1000), 0);
}

TEST(DemandTrace, Statistics) {
  DemandTrace trace({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(trace.mean(), 5.0);
  EXPECT_DOUBLE_EQ(trace.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(trace.coefficient_of_variation(), 0.4);
  EXPECT_EQ(trace.peak(), 9);
  EXPECT_EQ(trace.total(), 40);
}

TEST(DemandTrace, SliceWithinRange) {
  DemandTrace trace({0, 1, 2, 3, 4});
  const DemandTrace slice = trace.slice(1, 3);
  EXPECT_EQ(slice.length(), 3);
  EXPECT_EQ(slice.at(0), 1);
  EXPECT_EQ(slice.at(2), 3);
}

TEST(DemandTrace, SliceBeyondEndZeroFills) {
  DemandTrace trace({5, 6});
  const DemandTrace slice = trace.slice(1, 4);
  EXPECT_EQ(slice.length(), 4);
  EXPECT_EQ(slice.at(0), 6);
  EXPECT_EQ(slice.at(1), 0);
  EXPECT_EQ(slice.at(3), 0);
}

TEST(DemandTrace, SumZeroExtendsShorter) {
  DemandTrace a({1, 1});
  DemandTrace b({2, 2, 2});
  const DemandTrace sum = DemandTrace::sum(a, b);
  EXPECT_EQ(sum.length(), 3);
  EXPECT_EQ(sum.at(0), 3);
  EXPECT_EQ(sum.at(2), 2);
}

TEST(DemandTrace, CsvRoundTrip) {
  DemandTrace trace({0, 3, 0, 7});
  const auto parsed = DemandTrace::from_csv(trace.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->length(), 4);
  EXPECT_EQ(parsed->at(1), 3);
  EXPECT_EQ(parsed->at(3), 7);
}

TEST(DemandTrace, FromCsvRejectsBadInput) {
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0,1\n2,1\n").has_value());  // gap
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0,-1\n").has_value());      // negative
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0\n").has_value());         // short row
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\nx,1\n").has_value());       // non-numeric
}

TEST(DemandTrace, FromCsvErrorVariantPinpointsTheBadLine) {
  common::CsvError error;
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0,1\n2,1\n", &error).has_value());
  EXPECT_EQ(error.line, 3u);  // header is line 1, the gap sits on line 3
  EXPECT_NE(error.message.find("hour 2 out of sequence (expected 1)"), std::string::npos);

  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0,-1\n", &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("negative demand -1"), std::string::npos);

  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n0\n", &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("expected 2 fields"), std::string::npos);

  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\nx,1\n", &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("non-numeric field"), std::string::npos);
}

TEST(DemandTrace, FromCsvErrorVariantSkipsBlankLinesInCount) {
  common::CsvError error;
  EXPECT_FALSE(DemandTrace::from_csv("hour,demand\n\n0,1\n\n0,2\n", &error).has_value());
  // The duplicate hour 0 is the second data row, physical line 5.
  EXPECT_EQ(error.line, 5u);
  // The caller owns filling in the path (from_csv only sees text).
  EXPECT_TRUE(error.path.empty());
  EXPECT_EQ(error.to_string().find("<input>:5:"), 0u);
}

TEST(DemandTrace, LoadFileReadsAndParses) {
  const std::string path = testing::TempDir() + "/rimarket_trace_load_ok.csv";
  ASSERT_TRUE(common::write_file(path, "hour,demand\n0,4\n1,5\n"));
  const auto trace = DemandTrace::load_file(path);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->length(), 2);
  EXPECT_EQ(trace->at(1), 5);
  std::remove(path.c_str());
}

TEST(DemandTrace, LoadFileFillsErrnoAndPathForMissingFile) {
  common::CsvError error;
  EXPECT_FALSE(DemandTrace::load_file("/nonexistent/rimarket/trace.csv", &error).has_value());
  EXPECT_EQ(error.path, "/nonexistent/rimarket/trace.csv");
  EXPECT_NE(error.errno_value, 0);
  EXPECT_EQ(error.line, 0u);
}

TEST(DemandTrace, LoadFileFillsPathAndLineForMalformedFile) {
  // The loading layer owns CsvError::path — callers must never patch it by
  // hand after a parse failure.
  const std::string path = testing::TempDir() + "/rimarket_trace_load_bad.csv";
  ASSERT_TRUE(common::write_file(path, "hour,demand\n0,1\n5,2\n"));
  common::CsvError error;
  EXPECT_FALSE(DemandTrace::load_file(path, &error).has_value());
  EXPECT_EQ(error.path, path);
  EXPECT_EQ(error.errno_value, 0);
  EXPECT_EQ(error.line, 3u);
  EXPECT_NE(error.message.find("out of sequence"), std::string::npos);
  EXPECT_EQ(error.to_string().find(path + ":3:"), 0u);
  std::remove(path.c_str());
}

TEST(DemandTrace, FromCsvErrorVariantSucceedsOnGoodInput) {
  common::CsvError error;
  const auto parsed = DemandTrace::from_csv("hour,demand\n0,4\n1,5\n", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at(1), 5);
}

TEST(DemandTrace, FromCsvEmptyBodyIsEmptyTrace) {
  const auto parsed = DemandTrace::from_csv("hour,demand\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace rimarket::workload
