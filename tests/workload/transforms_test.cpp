#include "workload/transforms.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace rimarket::workload {
namespace {

TEST(DownsampleMax, TakesWindowPeaks) {
  const DemandTrace trace({1, 5, 2, 0, 3, 3});
  const DemandTrace out = downsample_max(trace, 2);
  ASSERT_EQ(out.length(), 3);
  EXPECT_EQ(out.at(0), 5);
  EXPECT_EQ(out.at(1), 2);
  EXPECT_EQ(out.at(2), 3);
}

TEST(DownsampleMax, PartialTailWindow) {
  const DemandTrace trace({1, 2, 9});
  const DemandTrace out = downsample_max(trace, 2);
  ASSERT_EQ(out.length(), 2);
  EXPECT_EQ(out.at(1), 9);
}

TEST(DownsampleMax, FactorOneIsIdentity) {
  const DemandTrace trace({4, 0, 7});
  const DemandTrace out = downsample_max(trace, 1);
  ASSERT_EQ(out.length(), 3);
  EXPECT_EQ(out.at(2), 7);
}

TEST(DownsampleMean, RoundsHalfUp) {
  const DemandTrace trace({1, 2, 2, 3});
  const DemandTrace out = downsample_mean(trace, 2);
  ASSERT_EQ(out.length(), 2);
  EXPECT_EQ(out.at(0), 2);  // 1.5 -> 2
  EXPECT_EQ(out.at(1), 3);  // 2.5 -> 3
}

TEST(UpsampleRepeat, RepeatsSamples) {
  const DemandTrace trace({2, 5});
  const DemandTrace out = upsample_repeat(trace, 3);
  ASSERT_EQ(out.length(), 6);
  EXPECT_EQ(out.at(0), 2);
  EXPECT_EQ(out.at(2), 2);
  EXPECT_EQ(out.at(3), 5);
  EXPECT_EQ(out.at(5), 5);
}

TEST(UpsampleDownsampleRoundTrip, MaxRecoversOriginal) {
  const DemandTrace trace({3, 1, 4, 1, 5});
  const DemandTrace round = downsample_max(upsample_repeat(trace, 4), 4);
  ASSERT_EQ(round.length(), trace.length());
  for (Hour h = 0; h < trace.length(); ++h) {
    EXPECT_EQ(round.at(h), trace.at(h));
  }
}

TEST(Scale, MultipliesAndRounds) {
  const DemandTrace trace({1, 2, 3});
  const DemandTrace doubled = scale(trace, 2.0);
  EXPECT_EQ(doubled.at(2), 6);
  const DemandTrace halved = scale(trace, 0.5);
  EXPECT_EQ(halved.at(0), 1);  // 0.5 rounds half-up
  EXPECT_EQ(halved.at(1), 1);
  EXPECT_EQ(halved.at(2), 2);  // 1.5 -> 2
}

TEST(Scale, ZeroFactorZeroesTrace) {
  const DemandTrace trace({7, 8});
  EXPECT_EQ(scale(trace, 0.0).total(), 0);
}

TEST(Clip, CapsSamples) {
  const DemandTrace trace({0, 5, 10});
  const DemandTrace out = clip(trace, 6);
  EXPECT_EQ(out.at(0), 0);
  EXPECT_EQ(out.at(1), 5);
  EXPECT_EQ(out.at(2), 6);
}

TEST(Delay, ZeroFillsPrefix) {
  const DemandTrace trace({4, 5});
  const DemandTrace out = delay(trace, 3);
  ASSERT_EQ(out.length(), 5);
  EXPECT_EQ(out.at(0), 0);
  EXPECT_EQ(out.at(2), 0);
  EXPECT_EQ(out.at(3), 4);
  EXPECT_EQ(out.at(4), 5);
}

TEST(Delay, ZeroDelayIsIdentity) {
  const DemandTrace trace({1, 2});
  const DemandTrace out = delay(trace, 0);
  EXPECT_EQ(out.length(), 2);
  EXPECT_EQ(out.at(0), 1);
}

TEST(Downsample, HugeFactorIsOneWindow) {
  // A factor near the Hour maximum is a legal "collapse to one sample"
  // request; the window arithmetic must not overflow computing start+factor.
  const DemandTrace trace({3, 9, 1});
  constexpr Hour kHuge = std::numeric_limits<Hour>::max();
  EXPECT_EQ(downsample_max(trace, kHuge).length(), 1);
  EXPECT_EQ(downsample_max(trace, kHuge).at(0), 9);
  EXPECT_EQ(downsample_mean(trace, kHuge).length(), 1);
}

TEST(TransformsDeath, UpsampleOverflowingHourDies) {
  const DemandTrace trace({1, 2});
  EXPECT_DEATH(upsample_repeat(trace, std::numeric_limits<Hour>::max()),
               "trace transform output length overflows Hour");
}

TEST(TransformsDeath, DelayOverflowingHourDies) {
  // The guard must fire before the zero-fill prefix is allocated: a poisoned
  // size reaching the vector constructor would be OOM, not a diagnosis.
  const DemandTrace trace({7});
  EXPECT_DEATH(delay(trace, std::numeric_limits<Hour>::max()),
               "trace transform output length overflows Hour");
}

TEST(TransformsDeath, ScaleOverflowingCountDies) {
  const DemandTrace trace({1000000});
  EXPECT_DEATH(scale(trace, 1.0e19), "scaled demand overflows Count");
}

TEST(Transforms, PreserveNonNegativityAndTotals) {
  const DemandTrace trace({2, 0, 6, 1, 3, 3, 0, 9});
  // Mean-downsampling then repeating approximately preserves total demand.
  const DemandTrace round = upsample_repeat(downsample_mean(trace, 2), 2);
  EXPECT_NEAR(static_cast<double>(round.total()), static_cast<double>(trace.total()), 4.0);
  for (Hour h = 0; h < round.length(); ++h) {
    EXPECT_GE(round.at(h), 0);
  }
}

}  // namespace
}  // namespace rimarket::workload
