#include "workload/classify.hpp"

#include <gtest/gtest.h>

namespace rimarket::workload {
namespace {

TEST(Classify, CvBands) {
  EXPECT_EQ(classify_cv(0.0), FluctuationGroup::kStable);
  EXPECT_EQ(classify_cv(0.99), FluctuationGroup::kStable);
  EXPECT_EQ(classify_cv(1.0), FluctuationGroup::kModerate);
  EXPECT_EQ(classify_cv(2.0), FluctuationGroup::kModerate);
  EXPECT_EQ(classify_cv(3.0), FluctuationGroup::kModerate);
  EXPECT_EQ(classify_cv(3.01), FluctuationGroup::kHigh);
  EXPECT_EQ(classify_cv(100.0), FluctuationGroup::kHigh);
}

TEST(Classify, TraceClassification) {
  // Constant trace: cv = 0 -> stable.
  EXPECT_EQ(classify(DemandTrace({5, 5, 5, 5})), FluctuationGroup::kStable);
  // Square wave duty 0.2 -> cv = 2 -> moderate.
  std::vector<Count> moderate;
  for (int cycle = 0; cycle < 50; ++cycle) {
    moderate.push_back(10);
    for (int i = 0; i < 4; ++i) {
      moderate.push_back(0);
    }
  }
  EXPECT_EQ(classify(DemandTrace(std::move(moderate))), FluctuationGroup::kModerate);
  // Rare spikes -> high.
  std::vector<Count> high(1000, 0);
  high[100] = 50;
  high[500] = 50;
  EXPECT_EQ(classify(DemandTrace(std::move(high))), FluctuationGroup::kHigh);
}

TEST(Classify, GroupNamesMatchPaperNumbering) {
  EXPECT_EQ(group_name(FluctuationGroup::kStable), "group 1 (stable)");
  EXPECT_EQ(group_name(FluctuationGroup::kModerate), "group 2 (slightly fluctuating)");
  EXPECT_EQ(group_name(FluctuationGroup::kHigh), "group 3 (highly fluctuating)");
}

TEST(Classify, GroupIndices) {
  EXPECT_EQ(group_index(FluctuationGroup::kStable), 0);
  EXPECT_EQ(group_index(FluctuationGroup::kModerate), 1);
  EXPECT_EQ(group_index(FluctuationGroup::kHigh), 2);
  EXPECT_EQ(kGroupCount, 3);
}

}  // namespace
}  // namespace rimarket::workload
