#include "workload/population.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rimarket::workload {
namespace {

PopulationSpec small_spec() {
  PopulationSpec spec;
  spec.users_per_group = 8;
  spec.trace_hours = 6000;  // keep the test fast
  spec.seed = 123;
  return spec;
}

TEST(UserPopulation, BuildsRequestedGroupSizes) {
  const UserPopulation population = UserPopulation::build(small_spec());
  EXPECT_EQ(population.size(), 24u);
  EXPECT_EQ(population.group(FluctuationGroup::kStable).size(), 8u);
  EXPECT_EQ(population.group(FluctuationGroup::kModerate).size(), 8u);
  EXPECT_EQ(population.group(FluctuationGroup::kHigh).size(), 8u);
}

TEST(UserPopulation, MeasuredCvMatchesAssignedGroup) {
  const UserPopulation population = UserPopulation::build(small_spec());
  for (const User& user : population.users()) {
    EXPECT_EQ(classify_cv(user.cv), user.group) << "user " << user.id;
    // The recorded cv is the trace's actual statistic.
    EXPECT_NEAR(user.cv, user.trace.coefficient_of_variation(), 1e-9);
  }
}

TEST(UserPopulation, UserIdsAreUniqueAndDense) {
  const UserPopulation population = UserPopulation::build(small_spec());
  std::set<int> ids;
  for (const User& user : population.users()) {
    ids.insert(user.id);
  }
  EXPECT_EQ(ids.size(), population.size());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int>(population.size()) - 1);
}

TEST(UserPopulation, TracesHaveRequestedLengthAndDemand) {
  const UserPopulation population = UserPopulation::build(small_spec());
  for (const User& user : population.users()) {
    EXPECT_EQ(user.trace.length(), 6000);
    EXPECT_GT(user.trace.total(), 0) << "user " << user.id;
  }
}

TEST(UserPopulation, ReproducibleFromSeed) {
  const UserPopulation a = UserPopulation::build(small_spec());
  const UserPopulation b = UserPopulation::build(small_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.users()[i].cv, b.users()[i].cv);
    EXPECT_EQ(a.users()[i].trace.total(), b.users()[i].trace.total());
  }
}

TEST(UserPopulation, DifferentSeedsDiffer) {
  PopulationSpec other = small_spec();
  other.seed = 456;
  const UserPopulation a = UserPopulation::build(small_spec());
  const UserPopulation b = UserPopulation::build(other);
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.users()[i].trace.total() == b.users()[i].trace.total()) {
      ++identical;
    }
  }
  EXPECT_LT(identical, static_cast<int>(a.size()));
}

TEST(UserPopulation, MostFluctuatingIsInHighGroup) {
  const UserPopulation population = UserPopulation::build(small_spec());
  const User& extreme = population.most_fluctuating();
  EXPECT_EQ(extreme.group, FluctuationGroup::kHigh);
  for (const User& user : population.users()) {
    EXPECT_LE(user.cv, extreme.cv);
  }
}

TEST(UserPopulation, GeneratorDescriptionRecorded) {
  const UserPopulation population = UserPopulation::build(small_spec());
  for (const User& user : population.users()) {
    EXPECT_FALSE(user.generator.empty());
  }
}

}  // namespace
}  // namespace rimarket::workload
